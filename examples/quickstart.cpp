// Quickstart: specify a small asynchronous controller as an STG, run the
// MC-driven synthesis flow, and print a verified basic-gate netlist.
//
//   $ ./quickstart
//
// The controller here is a two-phase latch controller: an input
// handshake (rin/ain) is bridged to an output handshake (rout/aout),
// with the latch-enable `le` pulsing in between. The spec has a CSC
// conflict (the idle code recurs mid-cycle), so the flow will insert one
// state signal before implementing it.
#include <cstdio>

#include "si/netlist/print.hpp"
#include "si/sg/from_stg.hpp"
#include "si/stg/parse.hpp"
#include "si/synth/synthesize.hpp"

int main() {
    // 1. Describe the behaviour as a Signal Transition Graph (.g text).
    const char* spec = R"(
.model latch-ctl
.inputs rin aout
.outputs ain rout le
.graph
rin+ le+
le+ rout+
rout+ aout+
aout+ rout-
rout- aout-
aout- ain+
ain+ rin-
rin- le-
le- ain-
ain- rin+
.marking { <ain-,rin+> }
.end
)";
    const auto stg = si::stg::read_g(spec);

    // 2. Unfold the token game into the state graph.
    const auto graph = si::sg::build_state_graph(stg);
    std::printf("state graph: %zu states, %zu arcs\n", graph.num_states(), graph.num_arcs());

    // 3. Synthesize: find monotonous-cover cubes per excitation region,
    //    inserting state signals where the requirement is violated, and
    //    build the standard C-element implementation.
    si::synth::SynthOptions options;
    options.verify_result = true; // close the loop with the SI verifier
    const auto result = si::synth::synthesize(graph, options);

    std::printf("%s\n\n", result.summary().c_str());
    std::printf("gate-level implementation:\n%s\n",
                si::net::to_equations(result.netlist).c_str());
    std::printf("verification: %s\n", result.verification.describe().c_str());

    // 4. Export structural Verilog if you want to take it elsewhere.
    std::printf("\nverilog:\n%s", si::net::to_verilog(result.netlist).c_str());
    return result.verification.ok ? 0 : 1;
}
