// Command-line synthesis driver — a miniature petrify-style tool.
//
//   synthesize_stg [options] <file.g | builtin:NAME>
//
//   --rs         use RS latches (dual-rail) instead of C-elements
//   --share      enable generalized-MC AND-gate sharing (Section VI)
//   --no-verify  skip the speed-independence verification
//   --verilog    print structural Verilog instead of equations
//   --sg         also dump the (transformed) state graph
//   --out-g      fold the (transformed) state graph back into a .g STG
//                via region synthesis and print it
//
// `builtin:NAME` loads one of the embedded Table-1 benchmarks
// (builtin:Delement, builtin:nak-pa, ...); `builtin:list` lists them.
#include <cstdio>
#include <cstring>
#include <string>

#include "si/bench_stgs/table1.hpp"
#include "si/netlist/print.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/net_synthesis.hpp"
#include "si/sg/read_sg.hpp"
#include "si/stg/parse.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/error.hpp"

using namespace si;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: synthesize_stg [--rs] [--share] [--no-verify] [--verilog] [--sg]\n"
                 "                      <file.g | builtin:NAME | builtin:list>\n");
    return 2;
}

stg::Stg load_spec(const std::string& arg) {
    if (arg.rfind("builtin:", 0) == 0) {
        const std::string name = arg.substr(8);
        for (const auto& e : bench::table1_suite())
            if (e.name == name) return bench::load(e);
        std::string known;
        for (const auto& e : bench::table1_suite()) known += " " + e.name;
        throw ParseError("unknown builtin '" + name + "'; available:" + known);
    }
    return stg::read_g_file(arg);
}

} // namespace

int main(int argc, char** argv) {
    synth::SynthOptions opts;
    opts.verify_result = true;
    bool emit_verilog = false;
    bool dump_sg = false;
    bool out_g = false;
    std::string input;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--rs") opts.build.use_rs_latches = true;
        else if (a == "--share") opts.enable_sharing = true;
        else if (a == "--no-verify") opts.verify_result = false;
        else if (a == "--verilog") emit_verilog = true;
        else if (a == "--sg") dump_sg = true;
        else if (a == "--out-g") out_g = true;
        else if (!a.empty() && a[0] == '-') return usage();
        else if (input.empty()) input = a;
        else return usage();
    }
    if (input == "builtin:list") {
        for (const auto& e : bench::table1_suite())
            std::printf("%s (in=%d out=%d)\n", e.name.c_str(), e.paper_inputs, e.paper_outputs);
        return 0;
    }
    if (input.empty()) return usage();

    try {
        const auto net = load_spec(input);
        const auto graph = sg::build_state_graph(net);
        std::printf("specification '%s': %zu signals, %zu states\n", graph.name.c_str(),
                    graph.num_signals(), graph.num_states());

        const auto result = synth::synthesize(graph, opts);
        std::printf("%s\n\n", result.summary().c_str());
        if (dump_sg) std::printf("%s\n", sg::write_sg(result.graph).c_str());
        if (out_g) {
            const auto folded = sg::synthesize_stg(result.graph);
            std::printf("# transformed specification (%s, %zu places)\n%s\n",
                        folded.used_regions ? "region net" : "state-machine net",
                        folded.net.num_places(), stg::write_g(folded.net).c_str());
        }
        if (emit_verilog)
            std::printf("%s", net::to_verilog(result.netlist).c_str());
        else
            std::printf("%s", net::to_equations(result.netlist).c_str());
        if (opts.verify_result) {
            std::printf("\n%s\n", result.verification.describe().c_str());
            if (!result.verification.ok) return 1;
        }
        const auto inv = net::inverter_constraint(result.netlist);
        if (inv.input_inversions > 0 && !opts.build.use_rs_latches)
            std::printf("\nnote: %s\n", inv.describe().c_str());
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
