// The whole toolchain on one specification, as a worked report:
//
//   full_flow [<file.g | builtin:NAME>]     (default: builtin:Delement)
//
//  1. Petri-net structure analysis (class, safeness, liveness)
//  2. state-graph unfolding + Section-II properties
//  3. region decomposition and the Monotonous Cover report
//  4. MC-driven synthesis (state-signal insertion) in four architectures:
//     C-elements, RS latches, shared gates, complex gates
//  5. speed-independence verification and unit-delay cycle time of each
//  6. proof certificate (the per-region cubes) and its independent re-check
//  7. interface-projection check of the inserted signals
//  8. folding the transformed specification back into a .g STG
#include <cstdio>
#include <fstream>
#include <sstream>

#include "si/bench_stgs/table1.hpp"
#include "si/mc/certificate.hpp"
#include "si/netlist/print.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/net_synthesis.hpp"
#include "si/sg/projection.hpp"
#include "si/sg/regions.hpp"
#include "si/stg/parse.hpp"
#include "si/stg/structure.hpp"
#include "si/synth/complex_gate.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/error.hpp"
#include "si/util/table.hpp"
#include "si/verify/performance.hpp"
#include "si/verify/verifier.hpp"

using namespace si;

int main(int argc, char** argv) {
    const std::string input = argc > 1 ? argv[1] : "builtin:Delement";
    try {
        // Load.
        stg::Stg net = [&] {
            if (input.rfind("builtin:", 0) == 0) {
                for (const auto& e : bench::table1_suite())
                    if (e.name == input.substr(8)) return bench::load(e);
                throw ParseError("unknown builtin '" + input + "'");
            }
            return stg::read_g_file(input);
        }();

        std::printf("==== 1. Petri net ====\n%s\n\n",
                    stg::analyze_structure(net).describe().c_str());

        const auto graph = sg::build_state_graph(net);
        std::printf("==== 2. State graph ====\n");
        std::printf("%zu states, %zu arcs; output semi-modular: %s; distributive: %s; "
                    "CSC: %s; USC: %s\n\n",
                    graph.num_states(), graph.num_arcs(),
                    sg::is_output_semimodular(graph) ? "yes" : "no",
                    sg::is_output_distributive(graph) ? "yes" : "no",
                    sg::find_csc_violations(graph).empty() ? "yes" : "VIOLATED",
                    sg::has_unique_state_coding(graph) ? "yes" : "no");

        std::printf("==== 3. Regions and the MC requirement ====\n");
        const sg::RegionAnalysis ra(graph);
        std::printf("%s\n", ra.report().c_str());
        const auto mc_report = mc::check_requirement(ra);
        std::printf("%s\n", mc_report.describe(ra).c_str());

        std::printf("==== 4/5. Synthesis across architectures ====\n\n");
        TextTable table({"architecture", "added", "AND", "OR", "latches", "literals",
                         "SI-verified", "cycle (gate delays)"});
        synth::SynthesisResult kept = [&] {
            synth::SynthOptions o;
            o.verify_result = true;
            return synth::synthesize(graph, o);
        }();
        auto add_row = [&](const std::string& name, const synth::SynthesisResult& r) {
            const auto s = r.netlist.stats();
            const auto cycle = verify::estimate_cycle_time(r.netlist, r.graph);
            table.add_row({name, std::to_string(r.inserted.size()), std::to_string(s.and_gates),
                           std::to_string(s.or_gates),
                           std::to_string(s.c_elements + s.rs_latches),
                           std::to_string(s.literals), r.verification.ok ? "yes" : "NO",
                           cycle.periodic ? std::to_string(cycle.period_ticks) : "-"});
        };
        add_row("C-elements", kept);
        {
            synth::SynthOptions o;
            o.build.use_rs_latches = true;
            o.verify_result = true;
            add_row("RS latches", synth::synthesize(graph, o));
        }
        {
            synth::SynthOptions o;
            o.enable_sharing = true;
            o.verify_result = true;
            add_row("shared gates", synth::synthesize(graph, o));
        }
        try {
            const auto nl = synth::build_complex_gate_implementation(ra);
            const auto v = verify::verify_speed_independence(nl, graph);
            const auto cycle = verify::estimate_cycle_time(nl, graph);
            const auto s = nl.stats();
            table.add_row({"complex gates", "0", "-", "-",
                           std::to_string(s.complex_gates), std::to_string(s.literals),
                           v.ok ? "yes" : "NO",
                           cycle.periodic ? std::to_string(cycle.period_ticks) : "-"});
        } catch (const Error&) {
            table.add_row({"complex gates", "-", "-", "-", "-", "-", "no CSC", "-"});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("C-element implementation:\n%s\n",
                    net::to_equations(kept.netlist).c_str());

        std::printf("==== 6. Proof certificate ====\n");
        const sg::RegionAnalysis kept_ra(kept.graph);
        const auto cert = mc::make_certificate(kept_ra, kept.mc);
        std::printf("%s", cert.to_text(kept.graph.signals()).c_str());
        const auto cert_check = mc::check_certificate(kept.graph, cert);
        std::printf("independent re-check: %s\n\n",
                    cert_check.ok ? "valid" : cert_check.reason.c_str());

        std::printf("==== 7. Interface projection ====\n");
        const auto proj = sg::check_projection(kept.graph, graph);
        std::printf("hiding %zu inserted signal(s) preserves the interface: %s\n\n",
                    kept.inserted.size(), proj.ok ? "yes" : proj.reason.c_str());

        std::printf("==== 8. Transformed specification as .g ====\n");
        const auto folded = sg::synthesize_stg(kept.graph);
        std::printf("(%s, %zu places, %zu removed as redundant)\n%s",
                    folded.used_regions ? "region net" : "state-machine net",
                    folded.net.num_places(), folded.places_removed,
                    stg::write_g(folded.net).c_str());
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
