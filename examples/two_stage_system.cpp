// System case study: two pipeline-stage controllers designed separately,
// then closed into one system by parallel composition (pcomp-style) on
// their shared link handshake, and synthesized/verified both ways.
//
//   left stage :  env (l/la)  ->  link (m/ma)
//   right stage:  link (m/ma) ->  out (r/ra)
//
// Demonstrates: per-stage synthesis, STG composition with shared-signal
// internalization, whole-system synthesis (the link signals become
// internal state the flow may exploit), and end-to-end verification.
#include <cstdio>

#include "si/netlist/print.hpp"
#include "si/sg/from_stg.hpp"
#include "si/stg/compose.hpp"
#include "si/stg/parse.hpp"
#include "si/stg/structure.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/error.hpp"

using namespace si;

int main() {
    const auto left = stg::read_g(R"(
.model left
.inputs l ma
.outputs la m
.graph
l+ m+
m+ ma+
ma+ la+
la+ l-
l- m-
m- ma-
ma- la-
la- l+
.marking { <la-,l+> }
.end
)");
    const auto right = stg::read_g(R"(
.model right
.inputs m ra
.outputs ma r
.graph
m+ r+
r+ ra+
ra+ ma+
ma+ m-
m- r-
r- ra-
ra- ma-
ma- m+
.marking { <ma-,m+> }
.end
)");

    try {
        std::printf("== per-stage synthesis ==\n");
        for (const auto* stage : {&left, &right}) {
            const auto g = sg::build_state_graph(*stage);
            synth::SynthOptions opts;
            opts.verify_result = true;
            const auto res = synth::synthesize(g, opts);
            std::printf("%s\n", res.summary().c_str());
        }

        std::printf("\n== composition on the shared link (m, ma) ==\n");
        const auto system = stg::compose(left, right);
        std::printf("net: %zu transitions, %zu places; %s\n", system.num_transitions(),
                    system.num_places(), stg::analyze_structure(system).describe().c_str());

        const auto g = sg::build_state_graph(system);
        std::printf("joint state graph: %zu states\n\n", g.num_states());

        std::printf("== whole-system synthesis (link internalized) ==\n");
        synth::SynthOptions opts;
        opts.enable_sharing = true;
        opts.verify_result = true;
        const auto res = synth::synthesize(g, opts);
        std::printf("%s\n\n%s\n", res.summary().c_str(),
                    net::to_equations(res.netlist).c_str());
        std::printf("verification: %s\n", res.verification.describe().c_str());
        return res.verification.ok ? 0 : 1;
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
