// Verifies a hand-written basic-gate netlist against a specification:
//
//   verify_netlist <spec.g | spec.sg | builtin:NAME> <netlist.eqn>
//
// The netlist uses the equation format of to_equations() (see
// si/netlist/parse_eqn.hpp). Exit code 0 = speed-independent and
// conformant; 1 = a violation was found (printed with its trace).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "si/bench_stgs/table1.hpp"
#include "si/netlist/parse_eqn.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/read_sg.hpp"
#include "si/stg/parse.hpp"
#include "si/util/error.hpp"
#include "si/verify/verifier.hpp"

using namespace si;

namespace {

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw ParseError("cannot open '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

sg::StateGraph load_spec(const std::string& arg) {
    if (arg.rfind("builtin:", 0) == 0) {
        for (const auto& e : bench::table1_suite())
            if (e.name == arg.substr(8)) return sg::build_state_graph(bench::load(e));
        throw ParseError("unknown builtin '" + arg + "'");
    }
    const std::string text = slurp(arg);
    if (arg.size() > 3 && arg.substr(arg.size() - 3) == ".sg") return sg::read_sg(text);
    return sg::build_state_graph(stg::read_g(text));
}

} // namespace

int main(int argc, char** argv) {
    if (argc != 3) {
        std::fprintf(stderr, "usage: verify_netlist <spec.g|spec.sg|builtin:NAME> <netlist.eqn>\n");
        return 2;
    }
    try {
        const auto spec = load_spec(argv[1]);
        const auto nl = net::parse_equations(slurp(argv[2]), spec);
        std::printf("netlist '%s': %zu gates against spec '%s' (%zu states)\n",
                    nl.name.c_str(), nl.num_gates(), spec.name.c_str(), spec.num_states());
        const auto result = verify::verify_speed_independence(nl, spec);
        std::printf("%s\n", result.describe().c_str());
        return result.ok ? 0 : 1;
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
