// Side-by-side comparison of the Beerel-style baseline (minimized
// correct covers, no MC discipline) and the MC-driven flow, across the
// embedded benchmark suite: gate counts and — the point of the paper —
// whether the result is actually hazard-free.
#include <cstdio>

#include "si/bench_stgs/figures.hpp"
#include "si/bench_stgs/table1.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/regions.hpp"
#include "si/synth/baseline.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/error.hpp"
#include "si/util/table.hpp"
#include "si/verify/verifier.hpp"

using namespace si;

namespace {

struct Row {
    std::string name;
    sg::StateGraph graph;
};

void run(const Row& row, TextTable& table) {
    // Baseline: two-level minimized excitation functions on the original
    // graph, no insertion, no MC.
    const sg::RegionAnalysis ra(row.graph);
    std::string base_lits = "-", base_ok = "-";
    try {
        const auto networks = synth::derive_baseline_networks(ra);
        const auto nl = net::build_standard_implementation(row.graph, networks);
        base_lits = std::to_string(nl.stats().literals);
        base_ok = verify::verify_speed_independence(nl, row.graph).ok ? "yes" : "HAZARD";
    } catch (const Error& e) {
        base_ok = "error";
    }

    // MC flow.
    synth::SynthOptions opts;
    opts.verify_result = true;
    const auto res = synth::synthesize(row.graph, opts);
    table.add_row({row.name, base_lits, base_ok, std::to_string(res.netlist.stats().literals),
                   std::to_string(res.inserted.size()), res.verification.ok ? "yes" : "NO"});
}

} // namespace

int main() {
    TextTable table({"example", "baseline lits", "baseline SI?", "MC lits", "MC added",
                     "MC SI?"});
    run({"fig1", bench::figure1()}, table);
    run({"fig4", bench::figure4()}, table);
    for (const auto& entry : bench::table1_suite())
        run({entry.name, sg::build_state_graph(bench::load(entry))}, table);
    std::printf("%s\n", table.render().c_str());
    std::printf("The baseline is smaller where it works, but it silently produces\n"
                "hazardous logic on specifications like fig1/fig4 (the paper's Examples\n"
                "1 and 2); the MC flow pays a state signal and stays speed-independent.\n");
    return 0;
}
