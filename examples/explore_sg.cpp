// Specification analysis report — everything Section II/IV of the paper
// defines, on one spec:
//
//   explore_sg [--dot] <file.g | file.sg | builtin:NAME>
//
// With --dot, a Graphviz rendering (offending MC states highlighted) is
// printed instead of the text report.
//
// Prints the state graph, conflict/detonant states, semi-modularity and
// distributivity classification, CSC status, the full region
// decomposition (ERs with minimal states, triggers, persistency; QRs),
// and the Monotonous Cover report with per-region cubes or violation
// witnesses.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "si/bench_stgs/table1.hpp"
#include "si/mc/requirement.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/dot.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/read_sg.hpp"
#include "si/sg/regions.hpp"
#include "si/stg/parse.hpp"
#include "si/stg/structure.hpp"
#include "si/util/error.hpp"

using namespace si;

namespace {

sg::StateGraph load(const std::string& arg, std::string* net_report) {
    if (arg.rfind("builtin:", 0) == 0) {
        for (const auto& e : bench::table1_suite()) {
            if (e.name != arg.substr(8)) continue;
            const auto net = bench::load(e);
            if (net_report) *net_report = stg::analyze_structure(net).describe();
            return sg::build_state_graph(net);
        }
        throw ParseError("unknown builtin '" + arg + "'");
    }
    std::ifstream in(arg);
    if (!in) throw ParseError("cannot open '" + arg + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (arg.size() > 3 && arg.substr(arg.size() - 3) == ".sg") return sg::read_sg(text);
    const auto net = stg::read_g(text);
    if (net_report) *net_report = stg::analyze_structure(net).describe();
    return sg::build_state_graph(net);
}

} // namespace

int main(int argc, char** argv) {
    bool dot = false;
    std::string input;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--dot") dot = true;
        else if (input.empty()) input = a;
        else { input.clear(); break; }
    }
    if (input.empty()) {
        std::fprintf(stderr, "usage: explore_sg [--dot] <file.g | file.sg | builtin:NAME>\n");
        return 2;
    }
    try {
        std::string net_report;
        const auto g = load(input, &net_report);
        if (dot) {
            // Highlight the offending states of the first MC violation.
            const sg::RegionAnalysis dra(g);
            const auto drep = mc::check_requirement(dra);
            BitVec bad(g.num_states());
            for (const auto& r : drep.regions)
                for (const auto& v : r.violations)
                    for (const auto st : v.states) bad.set(st.index());
            sg::DotOptions opts;
            if (bad.any()) opts.highlight = &bad;
            std::printf("%s", sg::to_dot(g, opts).c_str());
            return 0;
        }
        std::printf("== state graph ==\n%s\n", g.dump().c_str());
        if (!net_report.empty()) std::printf("== petri net ==\n%s\n\n", net_report.c_str());

        std::printf("== properties ==\n");
        const auto conflicts = sg::find_conflicts(g);
        for (const auto& c : conflicts) std::printf("  %s\n", c.describe(g).c_str());
        const auto detonants = sg::find_detonants(g);
        for (const auto& d : detonants) std::printf("  %s\n", d.describe(g).c_str());
        std::printf("semi-modular:        %s\n", sg::is_semimodular(g) ? "yes" : "no");
        std::printf("output semi-modular: %s\n", sg::is_output_semimodular(g) ? "yes" : "no");
        std::printf("output distributive: %s\n", sg::is_output_distributive(g) ? "yes" : "no");
        std::printf("unique state coding: %s\n", sg::has_unique_state_coding(g) ? "yes" : "no");
        const auto csc = sg::find_csc_violations(g);
        std::printf("CSC:                 %s\n", csc.empty() ? "satisfied" : "VIOLATED");
        for (const auto& v : csc) std::printf("  %s\n", v.describe(g).c_str());

        std::printf("\n== regions ==\n");
        const sg::RegionAnalysis ra(g);
        std::printf("%s", ra.report().c_str());

        std::printf("\n== monotonous cover requirement ==\n");
        const auto report = mc::check_requirement(ra);
        std::printf("%s", report.describe(ra).c_str());
        for (const auto& r : report.regions)
            for (const auto& v : r.violations)
                std::printf("  %s\n", v.describe_with_trace(ra).c_str());
        std::printf("satisfied: %s\n", report.satisfied() ? "yes" : "no");
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
