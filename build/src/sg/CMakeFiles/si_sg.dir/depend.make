# Empty dependencies file for si_sg.
# This may be replaced when dependencies are built.
