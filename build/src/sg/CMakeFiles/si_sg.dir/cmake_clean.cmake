file(REMOVE_RECURSE
  "CMakeFiles/si_sg.dir/src/analysis.cpp.o"
  "CMakeFiles/si_sg.dir/src/analysis.cpp.o.d"
  "CMakeFiles/si_sg.dir/src/dot.cpp.o"
  "CMakeFiles/si_sg.dir/src/dot.cpp.o.d"
  "CMakeFiles/si_sg.dir/src/from_stg.cpp.o"
  "CMakeFiles/si_sg.dir/src/from_stg.cpp.o.d"
  "CMakeFiles/si_sg.dir/src/minimize_sg.cpp.o"
  "CMakeFiles/si_sg.dir/src/minimize_sg.cpp.o.d"
  "CMakeFiles/si_sg.dir/src/net_synthesis.cpp.o"
  "CMakeFiles/si_sg.dir/src/net_synthesis.cpp.o.d"
  "CMakeFiles/si_sg.dir/src/projection.cpp.o"
  "CMakeFiles/si_sg.dir/src/projection.cpp.o.d"
  "CMakeFiles/si_sg.dir/src/read_sg.cpp.o"
  "CMakeFiles/si_sg.dir/src/read_sg.cpp.o.d"
  "CMakeFiles/si_sg.dir/src/regions.cpp.o"
  "CMakeFiles/si_sg.dir/src/regions.cpp.o.d"
  "CMakeFiles/si_sg.dir/src/state_graph.cpp.o"
  "CMakeFiles/si_sg.dir/src/state_graph.cpp.o.d"
  "libsi_sg.a"
  "libsi_sg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_sg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
