
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sg/src/analysis.cpp" "src/sg/CMakeFiles/si_sg.dir/src/analysis.cpp.o" "gcc" "src/sg/CMakeFiles/si_sg.dir/src/analysis.cpp.o.d"
  "/root/repo/src/sg/src/dot.cpp" "src/sg/CMakeFiles/si_sg.dir/src/dot.cpp.o" "gcc" "src/sg/CMakeFiles/si_sg.dir/src/dot.cpp.o.d"
  "/root/repo/src/sg/src/from_stg.cpp" "src/sg/CMakeFiles/si_sg.dir/src/from_stg.cpp.o" "gcc" "src/sg/CMakeFiles/si_sg.dir/src/from_stg.cpp.o.d"
  "/root/repo/src/sg/src/minimize_sg.cpp" "src/sg/CMakeFiles/si_sg.dir/src/minimize_sg.cpp.o" "gcc" "src/sg/CMakeFiles/si_sg.dir/src/minimize_sg.cpp.o.d"
  "/root/repo/src/sg/src/net_synthesis.cpp" "src/sg/CMakeFiles/si_sg.dir/src/net_synthesis.cpp.o" "gcc" "src/sg/CMakeFiles/si_sg.dir/src/net_synthesis.cpp.o.d"
  "/root/repo/src/sg/src/projection.cpp" "src/sg/CMakeFiles/si_sg.dir/src/projection.cpp.o" "gcc" "src/sg/CMakeFiles/si_sg.dir/src/projection.cpp.o.d"
  "/root/repo/src/sg/src/read_sg.cpp" "src/sg/CMakeFiles/si_sg.dir/src/read_sg.cpp.o" "gcc" "src/sg/CMakeFiles/si_sg.dir/src/read_sg.cpp.o.d"
  "/root/repo/src/sg/src/regions.cpp" "src/sg/CMakeFiles/si_sg.dir/src/regions.cpp.o" "gcc" "src/sg/CMakeFiles/si_sg.dir/src/regions.cpp.o.d"
  "/root/repo/src/sg/src/state_graph.cpp" "src/sg/CMakeFiles/si_sg.dir/src/state_graph.cpp.o" "gcc" "src/sg/CMakeFiles/si_sg.dir/src/state_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/si_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stg/CMakeFiles/si_stg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
