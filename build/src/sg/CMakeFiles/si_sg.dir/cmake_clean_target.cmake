file(REMOVE_RECURSE
  "libsi_sg.a"
)
