# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("boolean")
subdirs("bdd")
subdirs("sat")
subdirs("stg")
subdirs("sg")
subdirs("mc")
subdirs("netlist")
subdirs("verify")
subdirs("synth")
subdirs("bench_stgs")
