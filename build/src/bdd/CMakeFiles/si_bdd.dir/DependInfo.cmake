
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdd/src/bdd.cpp" "src/bdd/CMakeFiles/si_bdd.dir/src/bdd.cpp.o" "gcc" "src/bdd/CMakeFiles/si_bdd.dir/src/bdd.cpp.o.d"
  "/root/repo/src/bdd/src/symbolic.cpp" "src/bdd/CMakeFiles/si_bdd.dir/src/symbolic.cpp.o" "gcc" "src/bdd/CMakeFiles/si_bdd.dir/src/symbolic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/si_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stg/CMakeFiles/si_stg.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/si_sg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
