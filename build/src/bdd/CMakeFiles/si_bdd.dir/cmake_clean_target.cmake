file(REMOVE_RECURSE
  "libsi_bdd.a"
)
