file(REMOVE_RECURSE
  "CMakeFiles/si_bdd.dir/src/bdd.cpp.o"
  "CMakeFiles/si_bdd.dir/src/bdd.cpp.o.d"
  "CMakeFiles/si_bdd.dir/src/symbolic.cpp.o"
  "CMakeFiles/si_bdd.dir/src/symbolic.cpp.o.d"
  "libsi_bdd.a"
  "libsi_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
