# Empty dependencies file for si_bdd.
# This may be replaced when dependencies are built.
