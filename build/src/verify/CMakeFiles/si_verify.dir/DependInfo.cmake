
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/src/fault.cpp" "src/verify/CMakeFiles/si_verify.dir/src/fault.cpp.o" "gcc" "src/verify/CMakeFiles/si_verify.dir/src/fault.cpp.o.d"
  "/root/repo/src/verify/src/performance.cpp" "src/verify/CMakeFiles/si_verify.dir/src/performance.cpp.o" "gcc" "src/verify/CMakeFiles/si_verify.dir/src/performance.cpp.o.d"
  "/root/repo/src/verify/src/timed.cpp" "src/verify/CMakeFiles/si_verify.dir/src/timed.cpp.o" "gcc" "src/verify/CMakeFiles/si_verify.dir/src/timed.cpp.o.d"
  "/root/repo/src/verify/src/verifier.cpp" "src/verify/CMakeFiles/si_verify.dir/src/verifier.cpp.o" "gcc" "src/verify/CMakeFiles/si_verify.dir/src/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/si_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/si_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/si_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/stg/CMakeFiles/si_stg.dir/DependInfo.cmake"
  "/root/repo/build/src/boolean/CMakeFiles/si_boolean.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
