file(REMOVE_RECURSE
  "CMakeFiles/si_verify.dir/src/fault.cpp.o"
  "CMakeFiles/si_verify.dir/src/fault.cpp.o.d"
  "CMakeFiles/si_verify.dir/src/performance.cpp.o"
  "CMakeFiles/si_verify.dir/src/performance.cpp.o.d"
  "CMakeFiles/si_verify.dir/src/timed.cpp.o"
  "CMakeFiles/si_verify.dir/src/timed.cpp.o.d"
  "CMakeFiles/si_verify.dir/src/verifier.cpp.o"
  "CMakeFiles/si_verify.dir/src/verifier.cpp.o.d"
  "libsi_verify.a"
  "libsi_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
