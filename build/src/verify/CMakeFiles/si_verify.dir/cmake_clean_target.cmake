file(REMOVE_RECURSE
  "libsi_verify.a"
)
