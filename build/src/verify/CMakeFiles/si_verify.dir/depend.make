# Empty dependencies file for si_verify.
# This may be replaced when dependencies are built.
