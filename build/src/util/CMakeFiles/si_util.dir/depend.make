# Empty dependencies file for si_util.
# This may be replaced when dependencies are built.
