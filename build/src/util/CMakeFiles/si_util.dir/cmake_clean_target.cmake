file(REMOVE_RECURSE
  "libsi_util.a"
)
