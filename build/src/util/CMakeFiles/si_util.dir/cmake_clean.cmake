file(REMOVE_RECURSE
  "CMakeFiles/si_util.dir/src/bitvec.cpp.o"
  "CMakeFiles/si_util.dir/src/bitvec.cpp.o.d"
  "CMakeFiles/si_util.dir/src/budget.cpp.o"
  "CMakeFiles/si_util.dir/src/budget.cpp.o.d"
  "CMakeFiles/si_util.dir/src/table.cpp.o"
  "CMakeFiles/si_util.dir/src/table.cpp.o.d"
  "CMakeFiles/si_util.dir/src/text.cpp.o"
  "CMakeFiles/si_util.dir/src/text.cpp.o.d"
  "libsi_util.a"
  "libsi_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
