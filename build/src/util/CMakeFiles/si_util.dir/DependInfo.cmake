
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/src/bitvec.cpp" "src/util/CMakeFiles/si_util.dir/src/bitvec.cpp.o" "gcc" "src/util/CMakeFiles/si_util.dir/src/bitvec.cpp.o.d"
  "/root/repo/src/util/src/budget.cpp" "src/util/CMakeFiles/si_util.dir/src/budget.cpp.o" "gcc" "src/util/CMakeFiles/si_util.dir/src/budget.cpp.o.d"
  "/root/repo/src/util/src/table.cpp" "src/util/CMakeFiles/si_util.dir/src/table.cpp.o" "gcc" "src/util/CMakeFiles/si_util.dir/src/table.cpp.o.d"
  "/root/repo/src/util/src/text.cpp" "src/util/CMakeFiles/si_util.dir/src/text.cpp.o" "gcc" "src/util/CMakeFiles/si_util.dir/src/text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
