
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/boolean/src/cover.cpp" "src/boolean/CMakeFiles/si_boolean.dir/src/cover.cpp.o" "gcc" "src/boolean/CMakeFiles/si_boolean.dir/src/cover.cpp.o.d"
  "/root/repo/src/boolean/src/cube.cpp" "src/boolean/CMakeFiles/si_boolean.dir/src/cube.cpp.o" "gcc" "src/boolean/CMakeFiles/si_boolean.dir/src/cube.cpp.o.d"
  "/root/repo/src/boolean/src/minimize.cpp" "src/boolean/CMakeFiles/si_boolean.dir/src/minimize.cpp.o" "gcc" "src/boolean/CMakeFiles/si_boolean.dir/src/minimize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/si_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
