file(REMOVE_RECURSE
  "libsi_boolean.a"
)
