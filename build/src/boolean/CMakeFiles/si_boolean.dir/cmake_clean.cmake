file(REMOVE_RECURSE
  "CMakeFiles/si_boolean.dir/src/cover.cpp.o"
  "CMakeFiles/si_boolean.dir/src/cover.cpp.o.d"
  "CMakeFiles/si_boolean.dir/src/cube.cpp.o"
  "CMakeFiles/si_boolean.dir/src/cube.cpp.o.d"
  "CMakeFiles/si_boolean.dir/src/minimize.cpp.o"
  "CMakeFiles/si_boolean.dir/src/minimize.cpp.o.d"
  "libsi_boolean.a"
  "libsi_boolean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_boolean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
