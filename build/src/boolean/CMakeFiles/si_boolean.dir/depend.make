# Empty dependencies file for si_boolean.
# This may be replaced when dependencies are built.
