# Empty dependencies file for si_sat.
# This may be replaced when dependencies are built.
