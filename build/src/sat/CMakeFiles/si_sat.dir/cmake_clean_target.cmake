file(REMOVE_RECURSE
  "libsi_sat.a"
)
