file(REMOVE_RECURSE
  "CMakeFiles/si_sat.dir/src/solver.cpp.o"
  "CMakeFiles/si_sat.dir/src/solver.cpp.o.d"
  "libsi_sat.a"
  "libsi_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
