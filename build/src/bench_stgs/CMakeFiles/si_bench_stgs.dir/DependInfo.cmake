
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_stgs/src/components.cpp" "src/bench_stgs/CMakeFiles/si_bench_stgs.dir/src/components.cpp.o" "gcc" "src/bench_stgs/CMakeFiles/si_bench_stgs.dir/src/components.cpp.o.d"
  "/root/repo/src/bench_stgs/src/figures.cpp" "src/bench_stgs/CMakeFiles/si_bench_stgs.dir/src/figures.cpp.o" "gcc" "src/bench_stgs/CMakeFiles/si_bench_stgs.dir/src/figures.cpp.o.d"
  "/root/repo/src/bench_stgs/src/generators.cpp" "src/bench_stgs/CMakeFiles/si_bench_stgs.dir/src/generators.cpp.o" "gcc" "src/bench_stgs/CMakeFiles/si_bench_stgs.dir/src/generators.cpp.o.d"
  "/root/repo/src/bench_stgs/src/table1.cpp" "src/bench_stgs/CMakeFiles/si_bench_stgs.dir/src/table1.cpp.o" "gcc" "src/bench_stgs/CMakeFiles/si_bench_stgs.dir/src/table1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stg/CMakeFiles/si_stg.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/si_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/si_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
