# Empty dependencies file for si_bench_stgs.
# This may be replaced when dependencies are built.
