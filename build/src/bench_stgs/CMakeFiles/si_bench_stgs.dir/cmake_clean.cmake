file(REMOVE_RECURSE
  "CMakeFiles/si_bench_stgs.dir/src/components.cpp.o"
  "CMakeFiles/si_bench_stgs.dir/src/components.cpp.o.d"
  "CMakeFiles/si_bench_stgs.dir/src/figures.cpp.o"
  "CMakeFiles/si_bench_stgs.dir/src/figures.cpp.o.d"
  "CMakeFiles/si_bench_stgs.dir/src/generators.cpp.o"
  "CMakeFiles/si_bench_stgs.dir/src/generators.cpp.o.d"
  "CMakeFiles/si_bench_stgs.dir/src/table1.cpp.o"
  "CMakeFiles/si_bench_stgs.dir/src/table1.cpp.o.d"
  "libsi_bench_stgs.a"
  "libsi_bench_stgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_bench_stgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
