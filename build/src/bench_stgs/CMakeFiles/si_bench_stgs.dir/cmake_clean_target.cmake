file(REMOVE_RECURSE
  "libsi_bench_stgs.a"
)
