file(REMOVE_RECURSE
  "CMakeFiles/si_synth.dir/src/baseline.cpp.o"
  "CMakeFiles/si_synth.dir/src/baseline.cpp.o.d"
  "CMakeFiles/si_synth.dir/src/complex_gate.cpp.o"
  "CMakeFiles/si_synth.dir/src/complex_gate.cpp.o.d"
  "CMakeFiles/si_synth.dir/src/insertion.cpp.o"
  "CMakeFiles/si_synth.dir/src/insertion.cpp.o.d"
  "CMakeFiles/si_synth.dir/src/labeling.cpp.o"
  "CMakeFiles/si_synth.dir/src/labeling.cpp.o.d"
  "CMakeFiles/si_synth.dir/src/sharing.cpp.o"
  "CMakeFiles/si_synth.dir/src/sharing.cpp.o.d"
  "CMakeFiles/si_synth.dir/src/synthesize.cpp.o"
  "CMakeFiles/si_synth.dir/src/synthesize.cpp.o.d"
  "libsi_synth.a"
  "libsi_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
