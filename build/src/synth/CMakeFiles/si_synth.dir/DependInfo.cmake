
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/src/baseline.cpp" "src/synth/CMakeFiles/si_synth.dir/src/baseline.cpp.o" "gcc" "src/synth/CMakeFiles/si_synth.dir/src/baseline.cpp.o.d"
  "/root/repo/src/synth/src/complex_gate.cpp" "src/synth/CMakeFiles/si_synth.dir/src/complex_gate.cpp.o" "gcc" "src/synth/CMakeFiles/si_synth.dir/src/complex_gate.cpp.o.d"
  "/root/repo/src/synth/src/insertion.cpp" "src/synth/CMakeFiles/si_synth.dir/src/insertion.cpp.o" "gcc" "src/synth/CMakeFiles/si_synth.dir/src/insertion.cpp.o.d"
  "/root/repo/src/synth/src/labeling.cpp" "src/synth/CMakeFiles/si_synth.dir/src/labeling.cpp.o" "gcc" "src/synth/CMakeFiles/si_synth.dir/src/labeling.cpp.o.d"
  "/root/repo/src/synth/src/sharing.cpp" "src/synth/CMakeFiles/si_synth.dir/src/sharing.cpp.o" "gcc" "src/synth/CMakeFiles/si_synth.dir/src/sharing.cpp.o.d"
  "/root/repo/src/synth/src/synthesize.cpp" "src/synth/CMakeFiles/si_synth.dir/src/synthesize.cpp.o" "gcc" "src/synth/CMakeFiles/si_synth.dir/src/synthesize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/si_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/si_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/si_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/si_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/si_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/boolean/CMakeFiles/si_boolean.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/si_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/stg/CMakeFiles/si_stg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
