# Empty dependencies file for si_synth.
# This may be replaced when dependencies are built.
