file(REMOVE_RECURSE
  "libsi_synth.a"
)
