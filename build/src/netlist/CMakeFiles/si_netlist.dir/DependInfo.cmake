
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/src/builder.cpp" "src/netlist/CMakeFiles/si_netlist.dir/src/builder.cpp.o" "gcc" "src/netlist/CMakeFiles/si_netlist.dir/src/builder.cpp.o.d"
  "/root/repo/src/netlist/src/netlist.cpp" "src/netlist/CMakeFiles/si_netlist.dir/src/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/si_netlist.dir/src/netlist.cpp.o.d"
  "/root/repo/src/netlist/src/parse_eqn.cpp" "src/netlist/CMakeFiles/si_netlist.dir/src/parse_eqn.cpp.o" "gcc" "src/netlist/CMakeFiles/si_netlist.dir/src/parse_eqn.cpp.o.d"
  "/root/repo/src/netlist/src/print.cpp" "src/netlist/CMakeFiles/si_netlist.dir/src/print.cpp.o" "gcc" "src/netlist/CMakeFiles/si_netlist.dir/src/print.cpp.o.d"
  "/root/repo/src/netlist/src/transform.cpp" "src/netlist/CMakeFiles/si_netlist.dir/src/transform.cpp.o" "gcc" "src/netlist/CMakeFiles/si_netlist.dir/src/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/si_util.dir/DependInfo.cmake"
  "/root/repo/build/src/boolean/CMakeFiles/si_boolean.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/si_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/stg/CMakeFiles/si_stg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
