file(REMOVE_RECURSE
  "CMakeFiles/si_netlist.dir/src/builder.cpp.o"
  "CMakeFiles/si_netlist.dir/src/builder.cpp.o.d"
  "CMakeFiles/si_netlist.dir/src/netlist.cpp.o"
  "CMakeFiles/si_netlist.dir/src/netlist.cpp.o.d"
  "CMakeFiles/si_netlist.dir/src/parse_eqn.cpp.o"
  "CMakeFiles/si_netlist.dir/src/parse_eqn.cpp.o.d"
  "CMakeFiles/si_netlist.dir/src/print.cpp.o"
  "CMakeFiles/si_netlist.dir/src/print.cpp.o.d"
  "CMakeFiles/si_netlist.dir/src/transform.cpp.o"
  "CMakeFiles/si_netlist.dir/src/transform.cpp.o.d"
  "libsi_netlist.a"
  "libsi_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
