# Empty dependencies file for si_netlist.
# This may be replaced when dependencies are built.
