file(REMOVE_RECURSE
  "libsi_netlist.a"
)
