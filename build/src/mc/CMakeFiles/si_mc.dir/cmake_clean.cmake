file(REMOVE_RECURSE
  "CMakeFiles/si_mc.dir/src/certificate.cpp.o"
  "CMakeFiles/si_mc.dir/src/certificate.cpp.o.d"
  "CMakeFiles/si_mc.dir/src/cover_cube.cpp.o"
  "CMakeFiles/si_mc.dir/src/cover_cube.cpp.o.d"
  "CMakeFiles/si_mc.dir/src/monotonous.cpp.o"
  "CMakeFiles/si_mc.dir/src/monotonous.cpp.o.d"
  "CMakeFiles/si_mc.dir/src/requirement.cpp.o"
  "CMakeFiles/si_mc.dir/src/requirement.cpp.o.d"
  "libsi_mc.a"
  "libsi_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
