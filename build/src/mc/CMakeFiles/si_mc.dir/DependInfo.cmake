
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mc/src/certificate.cpp" "src/mc/CMakeFiles/si_mc.dir/src/certificate.cpp.o" "gcc" "src/mc/CMakeFiles/si_mc.dir/src/certificate.cpp.o.d"
  "/root/repo/src/mc/src/cover_cube.cpp" "src/mc/CMakeFiles/si_mc.dir/src/cover_cube.cpp.o" "gcc" "src/mc/CMakeFiles/si_mc.dir/src/cover_cube.cpp.o.d"
  "/root/repo/src/mc/src/monotonous.cpp" "src/mc/CMakeFiles/si_mc.dir/src/monotonous.cpp.o" "gcc" "src/mc/CMakeFiles/si_mc.dir/src/monotonous.cpp.o.d"
  "/root/repo/src/mc/src/requirement.cpp" "src/mc/CMakeFiles/si_mc.dir/src/requirement.cpp.o" "gcc" "src/mc/CMakeFiles/si_mc.dir/src/requirement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/si_util.dir/DependInfo.cmake"
  "/root/repo/build/src/boolean/CMakeFiles/si_boolean.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/si_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/stg/CMakeFiles/si_stg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
