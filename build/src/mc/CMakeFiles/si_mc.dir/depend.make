# Empty dependencies file for si_mc.
# This may be replaced when dependencies are built.
