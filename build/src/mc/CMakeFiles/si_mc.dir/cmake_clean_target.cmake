file(REMOVE_RECURSE
  "libsi_mc.a"
)
