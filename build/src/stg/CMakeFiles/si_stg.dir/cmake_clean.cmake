file(REMOVE_RECURSE
  "CMakeFiles/si_stg.dir/src/compose.cpp.o"
  "CMakeFiles/si_stg.dir/src/compose.cpp.o.d"
  "CMakeFiles/si_stg.dir/src/dot.cpp.o"
  "CMakeFiles/si_stg.dir/src/dot.cpp.o.d"
  "CMakeFiles/si_stg.dir/src/parse.cpp.o"
  "CMakeFiles/si_stg.dir/src/parse.cpp.o.d"
  "CMakeFiles/si_stg.dir/src/signals.cpp.o"
  "CMakeFiles/si_stg.dir/src/signals.cpp.o.d"
  "CMakeFiles/si_stg.dir/src/stg.cpp.o"
  "CMakeFiles/si_stg.dir/src/stg.cpp.o.d"
  "CMakeFiles/si_stg.dir/src/structure.cpp.o"
  "CMakeFiles/si_stg.dir/src/structure.cpp.o.d"
  "libsi_stg.a"
  "libsi_stg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_stg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
