
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stg/src/compose.cpp" "src/stg/CMakeFiles/si_stg.dir/src/compose.cpp.o" "gcc" "src/stg/CMakeFiles/si_stg.dir/src/compose.cpp.o.d"
  "/root/repo/src/stg/src/dot.cpp" "src/stg/CMakeFiles/si_stg.dir/src/dot.cpp.o" "gcc" "src/stg/CMakeFiles/si_stg.dir/src/dot.cpp.o.d"
  "/root/repo/src/stg/src/parse.cpp" "src/stg/CMakeFiles/si_stg.dir/src/parse.cpp.o" "gcc" "src/stg/CMakeFiles/si_stg.dir/src/parse.cpp.o.d"
  "/root/repo/src/stg/src/signals.cpp" "src/stg/CMakeFiles/si_stg.dir/src/signals.cpp.o" "gcc" "src/stg/CMakeFiles/si_stg.dir/src/signals.cpp.o.d"
  "/root/repo/src/stg/src/stg.cpp" "src/stg/CMakeFiles/si_stg.dir/src/stg.cpp.o" "gcc" "src/stg/CMakeFiles/si_stg.dir/src/stg.cpp.o.d"
  "/root/repo/src/stg/src/structure.cpp" "src/stg/CMakeFiles/si_stg.dir/src/structure.cpp.o" "gcc" "src/stg/CMakeFiles/si_stg.dir/src/structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/si_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
