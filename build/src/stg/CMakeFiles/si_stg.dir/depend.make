# Empty dependencies file for si_stg.
# This may be replaced when dependencies are built.
