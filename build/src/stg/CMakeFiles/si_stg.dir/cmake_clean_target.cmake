file(REMOVE_RECURSE
  "libsi_stg.a"
)
