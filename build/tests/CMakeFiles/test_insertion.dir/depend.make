# Empty dependencies file for test_insertion.
# This may be replaced when dependencies are built.
