file(REMOVE_RECURSE
  "CMakeFiles/test_insertion.dir/insertion_test.cpp.o"
  "CMakeFiles/test_insertion.dir/insertion_test.cpp.o.d"
  "test_insertion"
  "test_insertion.pdb"
  "test_insertion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_insertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
