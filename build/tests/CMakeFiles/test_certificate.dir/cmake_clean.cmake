file(REMOVE_RECURSE
  "CMakeFiles/test_certificate.dir/certificate_test.cpp.o"
  "CMakeFiles/test_certificate.dir/certificate_test.cpp.o.d"
  "test_certificate"
  "test_certificate.pdb"
  "test_certificate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_certificate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
