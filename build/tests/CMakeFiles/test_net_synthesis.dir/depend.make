# Empty dependencies file for test_net_synthesis.
# This may be replaced when dependencies are built.
