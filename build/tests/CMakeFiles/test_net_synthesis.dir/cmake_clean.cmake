file(REMOVE_RECURSE
  "CMakeFiles/test_net_synthesis.dir/net_synthesis_test.cpp.o"
  "CMakeFiles/test_net_synthesis.dir/net_synthesis_test.cpp.o.d"
  "test_net_synthesis"
  "test_net_synthesis.pdb"
  "test_net_synthesis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
