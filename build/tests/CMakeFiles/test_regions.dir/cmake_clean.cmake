file(REMOVE_RECURSE
  "CMakeFiles/test_regions.dir/regions_test.cpp.o"
  "CMakeFiles/test_regions.dir/regions_test.cpp.o.d"
  "test_regions"
  "test_regions.pdb"
  "test_regions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
