# Empty dependencies file for test_timed.
# This may be replaced when dependencies are built.
