file(REMOVE_RECURSE
  "CMakeFiles/test_timed.dir/timed_test.cpp.o"
  "CMakeFiles/test_timed.dir/timed_test.cpp.o.d"
  "test_timed"
  "test_timed.pdb"
  "test_timed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
