# Empty dependencies file for test_boolean.
# This may be replaced when dependencies are built.
