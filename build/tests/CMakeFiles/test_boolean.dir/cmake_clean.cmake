file(REMOVE_RECURSE
  "CMakeFiles/test_boolean.dir/boolean_test.cpp.o"
  "CMakeFiles/test_boolean.dir/boolean_test.cpp.o.d"
  "test_boolean"
  "test_boolean.pdb"
  "test_boolean[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_boolean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
