# Empty dependencies file for test_sg.
# This may be replaced when dependencies are built.
