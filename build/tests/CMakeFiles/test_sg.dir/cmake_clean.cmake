file(REMOVE_RECURSE
  "CMakeFiles/test_sg.dir/sg_test.cpp.o"
  "CMakeFiles/test_sg.dir/sg_test.cpp.o.d"
  "test_sg"
  "test_sg.pdb"
  "test_sg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
