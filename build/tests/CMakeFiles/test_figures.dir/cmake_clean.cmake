file(REMOVE_RECURSE
  "CMakeFiles/test_figures.dir/figures_test.cpp.o"
  "CMakeFiles/test_figures.dir/figures_test.cpp.o.d"
  "test_figures"
  "test_figures.pdb"
  "test_figures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
