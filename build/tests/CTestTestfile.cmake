# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_boolean[1]_include.cmake")
include("/root/repo/build/tests/test_minimize[1]_include.cmake")
include("/root/repo/build/tests/test_sat[1]_include.cmake")
include("/root/repo/build/tests/test_stg[1]_include.cmake")
include("/root/repo/build/tests/test_sg[1]_include.cmake")
include("/root/repo/build/tests/test_regions[1]_include.cmake")
include("/root/repo/build/tests/test_mc[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_verify[1]_include.cmake")
include("/root/repo/build/tests/test_insertion[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_figures[1]_include.cmake")
include("/root/repo/build/tests/test_table1[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_interchange[1]_include.cmake")
include("/root/repo/build/tests/test_projection[1]_include.cmake")
include("/root/repo/build/tests/test_structure[1]_include.cmake")
include("/root/repo/build/tests/test_bdd[1]_include.cmake")
include("/root/repo/build/tests/test_net_synthesis[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
include("/root/repo/build/tests/test_timed[1]_include.cmake")
include("/root/repo/build/tests/test_compose[1]_include.cmake")
include("/root/repo/build/tests/test_components[1]_include.cmake")
include("/root/repo/build/tests/test_certificate[1]_include.cmake")
