file(REMOVE_RECURSE
  "CMakeFiles/explore_sg.dir/explore_sg.cpp.o"
  "CMakeFiles/explore_sg.dir/explore_sg.cpp.o.d"
  "explore_sg"
  "explore_sg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_sg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
