# Empty dependencies file for explore_sg.
# This may be replaced when dependencies are built.
