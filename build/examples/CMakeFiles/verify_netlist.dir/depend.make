# Empty dependencies file for verify_netlist.
# This may be replaced when dependencies are built.
