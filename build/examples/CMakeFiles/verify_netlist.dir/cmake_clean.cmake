file(REMOVE_RECURSE
  "CMakeFiles/verify_netlist.dir/verify_netlist.cpp.o"
  "CMakeFiles/verify_netlist.dir/verify_netlist.cpp.o.d"
  "verify_netlist"
  "verify_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
