# Empty dependencies file for baseline_vs_mc.
# This may be replaced when dependencies are built.
