file(REMOVE_RECURSE
  "CMakeFiles/baseline_vs_mc.dir/baseline_vs_mc.cpp.o"
  "CMakeFiles/baseline_vs_mc.dir/baseline_vs_mc.cpp.o.d"
  "baseline_vs_mc"
  "baseline_vs_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_vs_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
