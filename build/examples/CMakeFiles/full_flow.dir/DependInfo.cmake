
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/full_flow.cpp" "examples/CMakeFiles/full_flow.dir/full_flow.cpp.o" "gcc" "examples/CMakeFiles/full_flow.dir/full_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/si_util.dir/DependInfo.cmake"
  "/root/repo/build/src/boolean/CMakeFiles/si_boolean.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/si_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/si_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/stg/CMakeFiles/si_stg.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/si_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/si_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/si_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/si_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/si_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_stgs/CMakeFiles/si_bench_stgs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
