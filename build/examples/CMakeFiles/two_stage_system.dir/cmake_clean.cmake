file(REMOVE_RECURSE
  "CMakeFiles/two_stage_system.dir/two_stage_system.cpp.o"
  "CMakeFiles/two_stage_system.dir/two_stage_system.cpp.o.d"
  "two_stage_system"
  "two_stage_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_stage_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
