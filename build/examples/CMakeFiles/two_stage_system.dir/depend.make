# Empty dependencies file for two_stage_system.
# This may be replaced when dependencies are built.
