file(REMOVE_RECURSE
  "CMakeFiles/synthesize_stg.dir/synthesize_stg.cpp.o"
  "CMakeFiles/synthesize_stg.dir/synthesize_stg.cpp.o.d"
  "synthesize_stg"
  "synthesize_stg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesize_stg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
