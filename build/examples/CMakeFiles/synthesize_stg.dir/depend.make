# Empty dependencies file for synthesize_stg.
# This may be replaced when dependencies are built.
