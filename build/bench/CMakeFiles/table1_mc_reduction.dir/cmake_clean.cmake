file(REMOVE_RECURSE
  "CMakeFiles/table1_mc_reduction.dir/table1_mc_reduction.cpp.o"
  "CMakeFiles/table1_mc_reduction.dir/table1_mc_reduction.cpp.o.d"
  "table1_mc_reduction"
  "table1_mc_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_mc_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
