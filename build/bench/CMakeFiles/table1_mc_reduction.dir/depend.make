# Empty dependencies file for table1_mc_reduction.
# This may be replaced when dependencies are built.
