# Empty dependencies file for fig4_hazard.
# This may be replaced when dependencies are built.
