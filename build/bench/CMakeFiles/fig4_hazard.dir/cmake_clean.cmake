file(REMOVE_RECURSE
  "CMakeFiles/fig4_hazard.dir/fig4_hazard.cpp.o"
  "CMakeFiles/fig4_hazard.dir/fig4_hazard.cpp.o.d"
  "fig4_hazard"
  "fig4_hazard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_hazard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
