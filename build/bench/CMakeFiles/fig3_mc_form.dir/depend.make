# Empty dependencies file for fig3_mc_form.
# This may be replaced when dependencies are built.
