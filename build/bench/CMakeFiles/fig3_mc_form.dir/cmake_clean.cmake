file(REMOVE_RECURSE
  "CMakeFiles/fig3_mc_form.dir/fig3_mc_form.cpp.o"
  "CMakeFiles/fig3_mc_form.dir/fig3_mc_form.cpp.o.d"
  "fig3_mc_form"
  "fig3_mc_form.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mc_form.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
