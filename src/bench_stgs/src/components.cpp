#include "si/bench_stgs/components.hpp"

#include "si/stg/parse.hpp"

namespace si::bench {

const std::vector<Component>& component_suite() {
    static const std::vector<Component> suite = {
        Component{
            "toggle",
            "alternating element: successive pulses on a steer to t1, t2 in turn; "
            "the two phases share codes, so state signals are required",
            ".model toggle\n"
            ".inputs a\n"
            ".outputs t1 t2\n"
            ".graph\n"
            "a+ t1+\n"
            "t1+ a-\n"
            "a- t1-\n"
            "t1- a+/2\n"
            "a+/2 t2+\n"
            "t2+ a-/2\n"
            "a-/2 t2-\n"
            "t2- a+\n"
            ".marking { <t2-,a+> }\n"
            ".end\n",
            true},
        Component{
            "call",
            "call element, shared-done variant: two mutually exclusive clients "
            "(free input choice) share one procedure handshake (c/d). Remembering "
            "which client to acknowledge needs state — the shared done wire makes "
            "every reset cube re-rise across the opposite branch, so two state "
            "signals (one per service branch) are inserted",
            ".model call\n"
            ".inputs r1 r2 d\n"
            ".outputs a1 a2 c\n"
            ".graph\n"
            "p0 r1+ r2+\n"
            "r1+ c+\n"
            "c+ d+\n"
            "d+ a1+\n"
            "a1+ r1-\n"
            "r1- c-\n"
            "c- d-\n"
            "d- a1-\n"
            "a1- p0\n"
            "r2+ c+/2\n"
            "c+/2 d+/2\n"
            "d+/2 a2+\n"
            "a2+ r2-\n"
            "r2- c-/2\n"
            "c-/2 d-/2\n"
            "d-/2 a2-\n"
            "a2- p0\n"
            ".marking { p0 }\n"
            ".end\n",
            true},
        Component{
            "call2",
            "call element, split-done variant: the procedure acknowledges each "
            "client on its own done wire, so the branch identity is visible in the "
            "codes and no state signal is needed",
            ".model call2\n"
            ".inputs r1 r2 d1 d2\n"
            ".outputs a1 a2 c\n"
            ".graph\n"
            "p0 r1+ r2+\n"
            "r1+ c+\n"
            "c+ d1+\n"
            "d1+ a1+\n"
            "a1+ r1-\n"
            "r1- c-\n"
            "c- d1-\n"
            "d1- a1-\n"
            "a1- p0\n"
            "r2+ c+/2\n"
            "c+/2 d2+\n"
            "d2+ a2+\n"
            "a2+ r2-\n"
            "r2- c-/2\n"
            "c-/2 d2-\n"
            "d2- a2-\n"
            "a2- p0\n"
            ".marking { p0 }\n"
            ".end\n",
            false},
        Component{
            "join",
            "join: the output rises after BOTH inputs rose and falls after both fell "
            "— the specification of the Muller C-element itself",
            ".model join\n"
            ".inputs a b\n"
            ".outputs c\n"
            ".graph\n"
            "a+ c+\n"
            "b+ c+\n"
            "c+ a- b-\n"
            "a- c-\n"
            "b- c-\n"
            "c- a+ b+\n"
            ".marking { <c-,a+> <c-,b+> }\n"
            ".end\n",
            false},
        Component{
            "merge",
            "merge: the output follows whichever input the environment chose "
            "(free choice), with label-split output transitions per branch",
            ".model merge\n"
            ".inputs a b\n"
            ".outputs y\n"
            ".graph\n"
            "p0 a+ b+\n"
            "a+ y+\n"
            "y+ a-\n"
            "a- y-\n"
            "y- p0\n"
            "b+ y+/2\n"
            "y+/2 b-\n"
            "b- y-/2\n"
            "y-/2 p0\n"
            ".marking { p0 }\n"
            ".end\n",
            false},
    };
    return suite;
}

stg::Stg load(const Component& c) { return stg::read_g(c.g_text); }

} // namespace si::bench
