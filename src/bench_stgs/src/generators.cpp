#include "si/bench_stgs/generators.hpp"

#include "si/stg/parse.hpp"
#include "si/util/error.hpp"

namespace si::bench {

namespace {

std::string outputs_decl(const char* stem, int n) {
    std::string s;
    for (int i = 0; i < n; ++i) s += " " + std::string(stem) + std::to_string(i);
    return s;
}

} // namespace

stg::Stg make_pipeline(int stages) {
    require(stages >= 1, "pipeline needs at least one stage");
    std::string g = ".model pipe" + std::to_string(stages) + "\n.inputs r\n.outputs" +
                    outputs_decl("s", stages) + "\n.graph\n";
    std::string prev = "r+";
    for (int i = 0; i < stages; ++i) {
        g += prev + " s" + std::to_string(i) + "+\n";
        prev = "s" + std::to_string(i) + "+";
    }
    g += prev + " r-\n";
    prev = "r-";
    for (int i = 0; i < stages; ++i) {
        g += prev + " s" + std::to_string(i) + "-\n";
        prev = "s" + std::to_string(i) + "-";
    }
    g += prev + " r+\n.marking { <" + prev + ",r+> }\n.end\n";
    return stg::read_g(g);
}

stg::Stg make_fork_join(int width) {
    require(width >= 1, "fork-join needs at least one branch");
    std::string g = ".model fork" + std::to_string(width) + "\n.inputs r\n.outputs" +
                    outputs_decl("y", width) + "\n.graph\n";
    for (int i = 0; i < width; ++i) {
        const std::string y = "y" + std::to_string(i);
        g += "r+ " + y + "+\n" + y + "+ r-\n";
        g += "r- " + y + "-\n" + y + "- r+\n";
    }
    g += ".marking {";
    for (int i = 0; i < width; ++i) g += " <y" + std::to_string(i) + "-,r+>";
    g += " }\n.end\n";
    return stg::read_g(g);
}

stg::Stg make_sequencer(int ways) {
    require(ways >= 2, "sequencer needs at least two ways");
    // Every way answers one full input handshake; the code after each r+
    // repeats while a *different* output is excited: ways-1 CSC conflicts
    // that the synthesis flow must separate with state signals.
    std::string g = ".model seq" + std::to_string(ways) + "\n.inputs r\n.outputs" +
                    outputs_decl("a", ways) + "\n.graph\n";
    std::vector<std::string> seq;
    for (int i = 0; i < ways; ++i) {
        const std::string inst = i == 0 ? "" : "/" + std::to_string(i + 1);
        seq.push_back("r+" + inst);
        seq.push_back("a" + std::to_string(i) + "+");
        seq.push_back("r-" + inst);
        seq.push_back("a" + std::to_string(i) + "-");
    }
    for (std::size_t i = 0; i < seq.size(); ++i)
        g += seq[i] + " " + seq[(i + 1) % seq.size()] + "\n";
    g += ".marking { <" + seq.back() + "," + seq.front() + "> }\n.end\n";
    return stg::read_g(g);
}

stg::Stg make_ring(int stations) {
    require(stations >= 1, "ring needs at least one station");
    // Rising phase sequential, falling phase fully concurrent.
    std::string g = ".model ring" + std::to_string(stations) + "\n.inputs r\n.outputs" +
                    outputs_decl("t", stations) + "\n.graph\n";
    std::string prev = "r+";
    for (int i = 0; i < stations; ++i) {
        g += prev + " t" + std::to_string(i) + "+\n";
        prev = "t" + std::to_string(i) + "+";
    }
    g += prev + " r-\n";
    for (int i = 0; i < stations; ++i) {
        g += "r- t" + std::to_string(i) + "-\n";
        g += "t" + std::to_string(i) + "- r+\n";
    }
    g += ".marking {";
    for (int i = 0; i < stations; ++i) g += " <t" + std::to_string(i) + "-,r+>";
    g += " }\n.end\n";
    return stg::read_g(g);
}

stg::Stg make_tree(unsigned seed, int max_depth) {
    require(max_depth >= 1, "tree needs depth >= 1");
    // Deterministic splitmix-style stream.
    auto next = [state = static_cast<std::uint64_t>(seed) * 2654435769u + 1]() mutable {
        state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    };

    std::string graph_lines;
    std::string outputs;
    int counter = 0;

    // Emits the subtree rooted at request `req` (already declared); the
    // node acknowledges on its own signal and returns its name.
    auto build = [&](auto&& self, const std::string& req, int depth) -> std::string {
        const std::string ack = "a" + std::to_string(counter++);
        outputs += " " + ack;
        const int kids = depth > 1 ? 1 + static_cast<int>(next() % 3) : 0;
        if (kids == 0) {
            graph_lines += req + "+ " + ack + "+\n";
            graph_lines += req + "- " + ack + "-\n";
            return ack;
        }
        for (int k = 0; k < kids; ++k) {
            const std::string child_req = "r" + std::to_string(counter++);
            outputs += " " + child_req;
            graph_lines += req + "+ " + child_req + "+\n";
            graph_lines += req + "- " + child_req + "-\n";
            const std::string child_ack = self(self, child_req, depth - 1);
            graph_lines += child_ack + "+ " + ack + "+\n";
            graph_lines += child_ack + "- " + ack + "-\n";
        }
        return ack;
    };

    const std::string root_ack = build(build, "r", max_depth);
    std::string g = ".model tree" + std::to_string(seed) + "\n.inputs r\n.outputs" + outputs +
                    "\n.graph\n" + graph_lines;
    g += root_ack + "+ r-\n" + root_ack + "- r+\n";
    g += ".marking { <" + root_ack + "-,r+> }\n.end\n";
    return stg::read_g(g);
}

} // namespace si::bench
