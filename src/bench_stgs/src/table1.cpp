#include "si/bench_stgs/table1.hpp"

#include "si/stg/parse.hpp"
#include "si/util/text.hpp"

namespace si::bench {

namespace {

// Renders a purely sequential cycle of transitions as .g text: each
// consecutive pair becomes an implicit-place arc, with the initial token
// on the wrap-around place.
std::string cycle_g(const std::string& name, const std::string& inputs,
                    const std::string& outputs, const std::vector<std::string>& seq) {
    std::string g = ".model " + name + "\n.inputs " + inputs + "\n.outputs " + outputs +
                    "\n.graph\n";
    for (std::size_t i = 0; i < seq.size(); ++i)
        g += seq[i] + " " + seq[(i + 1) % seq.size()] + "\n";
    g += ".marking { <" + seq.back() + "," + seq.front() + "> }\n.end\n";
    return g;
}

std::vector<Table1Entry> make_suite() {
    std::vector<Table1Entry> suite;

    // nak-pa: NAK protocol adapter — input handshake (rin/ain), output
    // handshake (rout/aout), sequencing outputs q, s, t acknowledged by
    // environment probes u, v. The rout+..aout- sub-handshake returns to
    // the code of "after q+", exciting different outputs there (rout vs
    // s): a CSC conflict.
    suite.push_back(Table1Entry{
        "nak-pa",
        cycle_g("nak-pa", "rin aout u v", "ain rout q s t",
                {"rin+", "q+", "rout+", "aout+", "rout-", "aout-", "s+", "u+", "t+", "v+",
                 "ain+", "rin-", "q-", "s-", "u-", "t-", "v-", "ain-"}),
        4, 5, 1});

    // nowick: a burst-mode-style control; the code 10000 recurs three
    // times with different excited outputs (y, then z, then y again), so
    // the circuit cannot tell the phases apart without a state signal.
    suite.push_back(Table1Entry{
        "nowick",
        cycle_g("nowick", "a b c", "y z",
                {"a+", "y+", "b+", "y-", "b-", "z+", "c+", "z-", "c-", "y+/2", "a-",
                 "y-/2"}),
        3, 2, 1});

    // duplicator: one handshake on (a,b) is duplicated into two
    // handshakes on (c,d); after the first c/d handshake the code
    // returns to "after a+", and the futures diverge at the next code
    // repetition (c- vs b+ excited): CSC conflicts in both phases.
    suite.push_back(Table1Entry{
        "duplicator",
        cycle_g("duplicator", "a d", "b c",
                {"a+", "c+", "d+", "c-", "d-", "c+/2", "d+/2", "b+", "a-", "c-/2", "d-/2",
                 "b-"}),
        2, 2, 2});

    // ganesh_8: three sequential phases (a/b handshake, c/d handshake,
    // c/b handshake); the c+ states of phases 2 and 3 share a code but
    // excite different outputs (d vs b).
    suite.push_back(Table1Entry{
        "ganesh_8",
        cycle_g("ganesh_8", "a c", "b d",
                {"a+", "b+", "a-", "b-", "c+", "d+", "c-", "d-", "c+/2", "b+/2", "c-/2",
                 "b-/2"}),
        2, 2, 2});

    // berkel2: the b-handshake retracts (b+ c+ b- c-) before d answers;
    // the code after a+ repeats with different excited outputs (b vs d).
    suite.push_back(Table1Entry{
        "berkel2",
        cycle_g("berkel2", "a c", "b d", {"a+", "b+", "c+", "b-", "c-", "d+", "a-", "d-"}),
        2, 2, 1});

    // berkel3: a toggles twice with different answers (b then d), plus a
    // third phase on c/b: two separate coding conflicts.
    suite.push_back(Table1Entry{
        "berkel3",
        cycle_g("berkel3", "a c", "b d",
                {"a+", "b+", "a-", "b-", "a+/2", "d+", "a-/2", "d-", "c+", "b+/2", "c-",
                 "b-/2"}),
        2, 2, 2});

    // mp-forward-pkt: a straight pipeline acknowledgement chain; all
    // codes are distinct and every trigger persistent, so it synthesizes
    // with no inserted signals.
    suite.push_back(Table1Entry{
        "mp-forward-pkt",
        cycle_g("mp-forward-pkt", "a b c", "w x y z",
                {"a+", "w+", "b+", "x+", "y+", "c+", "z+", "a-", "w-", "b-", "x-", "y-",
                 "c-", "z-"}),
        3, 4, 0});

    // luciano: the idle code 000 recurs mid-cycle with output c excited
    // the second time: the circuit cannot tell the phases apart.
    suite.push_back(Table1Entry{
        "luciano",
        cycle_g("luciano", "a", "b c", {"a+", "b+", "a-", "b-", "c+", "b+/2", "c-", "b-/2"}),
        1, 2, 1});

    // Delement: the classic D-element; after the output handshake
    // retracts (r2+ a2+ r2- a2-) the code of "after r1+" recurs with a1
    // instead of r2 excited.
    suite.push_back(Table1Entry{
        "Delement",
        cycle_g("Delement", "r1 a2", "a1 r2",
                {"r1+", "r2+", "a2+", "r2-", "a2-", "a1+", "r1-", "a1-"}),
        2, 2, 1});

    return suite;
}

} // namespace

const std::vector<Table1Entry>& table1_suite() {
    static const std::vector<Table1Entry> suite = make_suite();
    return suite;
}

stg::Stg load(const Table1Entry& entry) { return stg::read_g(entry.g_text); }

} // namespace si::bench
