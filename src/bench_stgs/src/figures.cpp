#include "si/bench_stgs/figures.hpp"

#include "si/sg/read_sg.hpp"

namespace si::bench {

sg::StateGraph figure1() {
    // Signal order a b c d; codes as printed in the paper's Figure 1.
    static const char* text = R"(
.model fig1
.inputs a b
.outputs c d
.arcs
0000 a+ 1000    # 0*0*00 -> 100*0*
0000 b+ 0100    # 0*0*00 -> 010*0
1000 c+ 1010    # 100*0* -> 1*010*
1000 d+ 1001    # 100*0* -> 100*1
0100 c+ 0110    # 010*0  -> 0*110
1010 a- 0010    # 1*010* -> 0010*
1010 d+ 1011    # 1*010* -> 1*0*11
1001 c+ 1011    # 100*1  -> 1*0*11
0110 a+ 1110    # 0*110  -> 1110*
1011 a- 0011    # 1*0*11 -> 00*11
1011 b+ 1111    # 1*0*11 -> 1*111
1110 d+ 1111    # 1110*  -> 1*111
1111 a- 0111    # 1*111  -> 011*1
0111 c- 0101    # 011*1  -> 01*01
0101 b- 0001    # 01*01  -> 0001*
0010 d+ 0011    # 0010*  -> 00*11
0011 b+ 0111    # 00*11  -> 011*1
0001 d- 0000    # 0001*  -> 0*0*00
.initial 0000
.end
)";
    auto graph = sg::read_sg(text);
    return graph;
}

sg::StateGraph figure3() {
    // Signal order a b c d x; codes as printed in Figure 3. The initial
    // state is 0*0*001 (x starts at 1; the d = x' wire starts at 0).
    static const char* text = R"(
.model fig3
.inputs a b
.outputs c d
.internal x
.arcs
00001 a+ 10001   # 0*0*001 -> 10001*
00001 b+ 01001   # 0*0*001 -> 010*01
10001 x- 10000   # 10001*  -> 100*0*0
01001 c+ 01101   # 010*01  -> 0*1101
10000 c+ 10100   # 100*0*0 -> 1*010*0
10000 d+ 10010   # 100*0*0 -> 100*10
10100 a- 00100   # 1*010*0 -> 0010*0
10100 d+ 10110   # 1*010*0 -> 1*0*110
10010 c+ 10110   # 100*10  -> 1*0*110
00100 d+ 00110   # 0010*0  -> 00*110
10110 a- 00110   # 1*0*110 -> 00*110
10110 b+ 11110   # 1*0*110 -> 1*1110
00110 b+ 01110   # 00*110  -> 011*10
11110 a- 01110   # 1*1110  -> 011*10
01110 c- 01010   # 011*10  -> 01*010
01010 b- 00010   # 01*010  -> 00010*
00010 x+ 00011   # 00010*  -> 0001*1
00011 d- 00001   # 0001*1  -> 0*0*001
01101 a+ 11101   # 0*1101  -> 11101*
11101 x- 11100   # 11101*  -> 1110*0
11100 d+ 11110   # 1110*0  -> 1*1110
.initial 00001
.end
)";
    auto graph = sg::read_sg(text);
    return graph;
}

sg::StateGraph figure4() {
    // Signal order a b c d. Two pairs of states share binary codes
    // (1100 appears as 110*0 and 1*100), so the graph is assembled
    // explicitly instead of through the unique-code text reader.
    sg::StateGraph graph;
    graph.name = "fig4";
    const SignalId a = graph.signals().add("a", SignalKind::Input);
    const SignalId b = graph.signals().add("b", SignalKind::Output);
    const SignalId c = graph.signals().add("c", SignalKind::Input);
    const SignalId d = graph.signals().add("d", SignalKind::Input);

    auto code = [&](unsigned av, unsigned bv, unsigned cv, unsigned dv) {
        BitVec v(4);
        if (av) v.set(a.index());
        if (bv) v.set(b.index());
        if (cv) v.set(c.index());
        if (dv) v.set(d.index());
        return v;
    };
    // States in the paper's figure (excitations in comments).
    const StateId t1 = graph.add_state(code(0, 0, 0, 0));  // 0*000
    const StateId t2 = graph.add_state(code(1, 0, 0, 0));  // 10*0*0
    const StateId t3 = graph.add_state(code(1, 1, 0, 0));  // 110*0
    const StateId t4 = graph.add_state(code(1, 0, 1, 0));  // 10*10*
    const StateId t5 = graph.add_state(code(1, 1, 1, 0));  // 1110*
    const StateId t6 = graph.add_state(code(1, 0, 1, 1));  // 10*11
    const StateId t7 = graph.add_state(code(1, 1, 1, 1));  // 1*111
    const StateId t8 = graph.add_state(code(0, 1, 1, 1));  // 01*11
    const StateId t9 = graph.add_state(code(0, 0, 1, 1));  // 001*1
    const StateId t10 = graph.add_state(code(0, 0, 0, 1)); // 0*0*01
    const StateId t11 = graph.add_state(code(1, 0, 0, 1)); // 10*01
    const StateId t12 = graph.add_state(code(0, 1, 0, 1)); // 0*101
    const StateId t13 = graph.add_state(code(1, 1, 0, 1)); // 1101*
    const StateId t14 = graph.add_state(code(1, 1, 0, 0)); // 1*100 (code clash with t3)
    const StateId t15 = graph.add_state(code(0, 1, 0, 0)); // 01*00

    graph.add_arc(t1, t2, a);   // a+
    graph.add_arc(t2, t3, b);   // b+  (ER(+b,1))
    graph.add_arc(t2, t4, c);   // c+
    graph.add_arc(t3, t5, c);   // c+
    graph.add_arc(t4, t5, b);   // b+
    graph.add_arc(t4, t6, d);   // d+
    graph.add_arc(t5, t7, d);   // d+
    graph.add_arc(t6, t7, b);   // b+
    graph.add_arc(t7, t8, a);   // a-
    graph.add_arc(t8, t9, b);   // b-
    graph.add_arc(t9, t10, c);  // c-
    graph.add_arc(t10, t11, a); // a+  (inside ER(+b,2))
    graph.add_arc(t10, t12, b); // b+  (ER(+b,2))
    graph.add_arc(t11, t13, b); // b+
    graph.add_arc(t12, t13, a); // a+
    graph.add_arc(t13, t14, d); // d-
    graph.add_arc(t14, t15, a); // a-
    graph.add_arc(t15, t1, b);  // b-
    graph.set_initial(t1);
    return graph;
}

} // namespace si::bench
