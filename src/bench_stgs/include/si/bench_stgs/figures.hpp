// The three state graphs of the paper, transcribed state-for-state from
// the figures (the state codes and excitation asterisks in the paper
// determine the graphs completely).
#pragma once

#include "si/sg/state_graph.hpp"

namespace si::bench {

/// Figure 1: inputs a, b; outputs c, d; 14 states. The initial state
/// 0*0*00 is an input conflict (environment choice); the graph is output
/// distributive, but ER(+d,1)'s trigger +a is non-persistent, so no
/// single cube covers it — the paper's Example 1.
[[nodiscard]] sg::StateGraph figure1();

/// Figure 3: Figure 1 after MC-reduction, with the inserted internal
/// signal x; 17 states over a, b, c, d, x. Satisfies the (generalized)
/// MC requirement — both ERs of +d are covered by the shared cube x',
/// giving the paper's d = x' wire.
[[nodiscard]] sg::StateGraph figure3();

/// Figure 4: inputs a, c, d; output b; 15 states (two pairs share
/// binary codes, which is why this graph is built programmatically).
/// Persistent, yet cube a for ER(+b,1) also covers state 10*01 inside
/// ER(+b,2) — outside CFR(+b,1) — so the naive implementation
/// t = c'd, b = a + t is hazardous: the paper's Example 2.
[[nodiscard]] sg::StateGraph figure4();

} // namespace si::bench
