// Parametric specification generators: scalable families of well-formed
// control circuits used by the property tests and the performance
// benchmarks. All return valid .g nets (validated, consistent, live).
#pragma once

#include "si/stg/stg.hpp"

namespace si::bench {

/// A linear acknowledgement pipeline: r+ ripples through `stages`
/// sequential output stages and back. 2(stages+1) reachable states.
[[nodiscard]] stg::Stg make_pipeline(int stages);

/// A fork-join: r+ forks `width` concurrent output handshakes that all
/// re-join before r-. 2^width + ... reachable states — the concurrency
/// stress test for reachability and region analysis.
[[nodiscard]] stg::Stg make_fork_join(int width);

/// A round-robin sequencer: one input handshake is answered by `ways`
/// output handshakes in turn within one cycle. Exercises multi-instance
/// transitions; CSC holds (every phase changes a distinct output).
[[nodiscard]] stg::Stg make_sequencer(int ways);

/// A token ring of `stations` coupled two-phase stages, each station an
/// output reacting to its predecessor; station 0 is driven by the input.
/// Deeply sequential with long cycles.
[[nodiscard]] stg::Stg make_ring(int stations);

/// A random request/acknowledge tree: every node forks its request to
/// its children, gathers their acknowledges into its own, and mirrors
/// the protocol on the falling phase. The root request is the input.
/// Deterministic in `seed`; rich nested concurrency with safe, live
/// marked-graph structure.
[[nodiscard]] stg::Stg make_tree(unsigned seed, int max_depth);

} // namespace si::bench
