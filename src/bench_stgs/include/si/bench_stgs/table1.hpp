// The nine Table-1 benchmarks.
//
// The original .tim/.g files of the 1994 suite are not shipped here;
// each entry is a reconstruction with the same name and the same
// input/output signal counts as Table 1, engineered to sit in the same
// difficulty class (mp-forward-pkt synthesizes without insertion; the
// others contain CSC-style conflicts or non-persistent triggers that
// force state-signal insertion). See DESIGN.md "Substitutions".
#pragma once

#include <string>
#include <vector>

#include "si/stg/stg.hpp"

namespace si::bench {

struct Table1Entry {
    std::string name;
    std::string g_text;   ///< the .g source
    int paper_inputs;     ///< "in" column of Table 1
    int paper_outputs;    ///< "out" column of Table 1
    int paper_added;      ///< "added signals" column of Table 1
};

/// All nine benchmarks, in the paper's row order.
[[nodiscard]] const std::vector<Table1Entry>& table1_suite();

/// Parses an entry's .g text.
[[nodiscard]] stg::Stg load(const Table1Entry& entry);

} // namespace si::bench
