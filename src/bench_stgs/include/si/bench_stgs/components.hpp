// A gallery of classic asynchronous control components, specified as
// STGs: the standard cells of handshake-circuit folklore. Used as
// additional end-to-end workloads beyond Table 1 and as documentation of
// what the specs of such cells look like in this library's .g dialect.
#pragma once

#include <string>
#include <vector>

#include "si/stg/stg.hpp"

namespace si::bench {

struct Component {
    std::string name;
    std::string description;
    std::string g_text;
    bool needs_state_signals; ///< expected: insertion required?
};

/// toggle, call, join (C-element spec) and merge.
[[nodiscard]] const std::vector<Component>& component_suite();

[[nodiscard]] stg::Stg load(const Component& c);

} // namespace si::bench
