// si::gen — seeded, deterministic generation of live/safe STGs from
// known-speed-independent building blocks.
//
// A Recipe is a replayable build description: a composition mode plus a
// list of parameterized blocks (sequencers, fork/joins, arbitration-free
// input choice, pipelines, rings — the component zoo of Section VII's
// examples). `build` turns a recipe into a validated STG; `random_recipe`
// draws one deterministically from a seed. The pair (seed, recipe string)
// is the replayable one-liner every fuzzing failure reduces to: the
// recipe alone rebuilds the exact net, the seed documents where it came
// from.
//
// All blocks are composed so the result is a live and safe net whose
// state graph is output semi-modular — the precondition of the paper's
// synthesis flow. CSC may or may not hold (sequencers and shared-ack
// choices violate it on purpose), so generated workloads exercise the
// state-signal insertion path as well as the direct one.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "si/stg/stg.hpp"

namespace si::gen {

// ---------------------------------------------------------------------------
// Recipes

enum class BlockKind : unsigned char {
    Pipe,   ///< linear acknowledgement pipeline of `param` stages
    Fork,   ///< `param`-way fork re-joined before the phase completes
    Ring,   ///< sequential rise through `param` stations, concurrent fall
    Choice, ///< arbitration-free input choice among `param` branches
    Seq,    ///< round-robin sequencer over `param` output handshakes
            ///< (multi-instance transitions; parallel recipes only)
};
inline constexpr std::size_t kNumBlockKinds = 5;

[[nodiscard]] const char* to_string(BlockKind k);

struct Block {
    BlockKind kind = BlockKind::Pipe;
    int param = 1; ///< the block's size dial (stages / width / branches)

    friend bool operator==(const Block&, const Block&) = default;
};

/// A deterministic build description. Serializes to a compact string —
/// "ser:pipe2,fork3" / "par:seq2,choice2" — that parses back losslessly,
/// which is what makes every fuzzing failure a replayable one-liner.
struct Recipe {
    /// true: blocks are chained on one four-phase master handshake (the
    /// ack of block i triggers block i+1). false: blocks run in parallel,
    /// each under its own environment handshake (the state graph is the
    /// product of the components).
    bool serial = false;
    std::vector<Block> blocks;

    [[nodiscard]] std::string to_string() const;
    /// Inverse of to_string. nullopt on malformed text, unknown block
    /// kinds, out-of-range params, or a serial recipe with a Seq block.
    [[nodiscard]] static std::optional<Recipe> parse(std::string_view text);

    friend bool operator==(const Recipe&, const Recipe&) = default;
};

// ---------------------------------------------------------------------------
// Generation

struct GenOptions {
    int min_blocks = 1;
    int max_blocks = 3;
    /// Upper bound on each block's param (lower bounds are per-kind:
    /// choice/seq need 2 branches, the rest accept 1).
    int max_param = 3;
    bool allow_serial = true;
    /// Permit Choice blocks (free input choice). Off restricts recipes
    /// to marked-graph structure.
    bool allow_choice = true;
    /// Permit Seq blocks in parallel recipes (CSC violations that force
    /// state-signal insertion).
    bool allow_seq = true;
};

/// Draws a recipe deterministically from `seed`: same seed, same recipe,
/// on every platform and thread count.
[[nodiscard]] Recipe random_recipe(std::uint64_t seed, const GenOptions& opts = {});

/// Builds the recipe's STG (named "gen_<recipe>", validated, live, safe).
/// Throws SpecError on invalid recipes (empty, bad params, Seq in a
/// serial recipe) — build() never produces an unvalidated net.
[[nodiscard]] stg::Stg build(const Recipe& recipe);

/// build(random_recipe(seed, opts)).
[[nodiscard]] stg::Stg generate(std::uint64_t seed, const GenOptions& opts = {});

/// Splitmix64-derived per-item seed stream: item `index` of a campaign
/// seeded with `campaign_seed` draws from derive_seed(campaign_seed,
/// index), so adding or removing one case never reshuffles the others —
/// the fault engine's per-fault derived-seed discipline.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t campaign_seed, std::uint64_t index);

// ---------------------------------------------------------------------------
// Shrinking

struct ShrinkStats {
    std::size_t attempts = 0; ///< candidate recipes probed
    std::size_t accepted = 0; ///< probes that still reproduced the failure
};

/// Greedy recipe minimization: repeatedly tries dropping a block and
/// shrinking a block's param (halving, then decrementing), keeping any
/// candidate for which `still_fails` returns true, until no candidate
/// reproduces the failure. Deterministic candidate order; at most
/// `max_attempts` probes. `still_fails(failing)` is assumed true.
[[nodiscard]] Recipe shrink(Recipe failing,
                            const std::function<bool(const Recipe&)>& still_fails,
                            ShrinkStats* stats = nullptr, std::size_t max_attempts = 256);

} // namespace si::gen
