// Differential fuzzing of the synthesis pipeline (Theorem 3 at scale)
// and hostile-input fuzzing of the .g parser.
//
// Each generated STG is driven through the full flow — token-game
// unfolding, MC requirement check, state-signal insertion, standard-C
// implementation — and the final netlist is handed to the gate-level
// speed-independence verifier. Theorem 3 promises the two oracles agree:
// a satisfied MC report means the implementation is hazard-free. The
// campaign fails loudly on any disagreement, reduces the failing case to
// a replayable seed+recipe one-liner via the greedy recipe shrinker, and
// tallies budget exhaustion as a distinct Unknown verdict — a campaign
// degrades, it never aborts.
//
// The same harness mutates each case's .g text into hostile parser
// input: the parser must either parse it or reject it with a structured
// si::Error. Anything else (foreign exception, crash, sanitizer report)
// is a finding.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "si/gen/gen.hpp"
#include "si/mc/requirement.hpp"
#include "si/stg/stg.hpp"

namespace si::gen {

// ---------------------------------------------------------------------------
// One differential case

enum class Verdict : unsigned char {
    Agree,    ///< MC satisfied and the gate-level verifier found no hazard
    Disagree, ///< the oracles contradict each other: a Theorem-3 violation
    Unknown,  ///< a budget ran out before either oracle finished
    Error,    ///< unexpected exception inside the pipeline (also a finding)
};

[[nodiscard]] const char* to_string(Verdict v);

/// Which MC machinery judges the spec pre-insertion. Cross runs both and
/// treats any difference in (satisfied, regions, missing) as a finding —
/// the differential oracle for the symbolic BDD engine itself.
enum class McEngineMode : unsigned char { Explicit, Symbolic, Cross };

/// Which insertion engine repairs CSC violations during synthesis
/// (fuzz_diff --insertion-engine). Cross synthesizes once per spec
/// engine (eager, cegar, portfolio) and treats any difference in the
/// inserted signals or the final implementation as a finding — the
/// differential oracle for the canonical-stream identity contract. A
/// budget exhaustion in any cross run makes the case Unknown, never a
/// disagreement: the engines spend solver effort differently, so one
/// may run out where another finished.
enum class InsertEngineMode : unsigned char { Legacy, Eager, Cegar, Portfolio, Cross };

struct DiffOptions {
    /// Cap on spec state-graph markings (small by default: a campaign
    /// wants many cheap cases, the scaling bench wants few huge ones).
    std::size_t max_sg_states = 1u << 11;
    /// Cap on composite states per gate-level verification.
    std::size_t max_verify_states = 1u << 14;
    /// Shared per-case budget — deterministic resources only (never a
    /// wall-clock deadline: verdicts must not flip across machines).
    /// States across all explorations, Steps across all traversals,
    /// Conflicts in the insertion SAT solver, Attempts in its CEGAR
    /// loop. Exhaustion yields Verdict::Unknown.
    std::uint64_t budget_states = 1u << 15;
    std::uint64_t budget_steps = 1u << 19;
    std::uint64_t budget_conflicts = 1u << 14;
    std::uint64_t budget_attempts = 128;
    mc::McCubeSearch cube_search;
    /// Engine for the pre-insertion MC verdict (fuzz_diff --engine).
    McEngineMode mc_engine = McEngineMode::Explicit;
    /// Engine for CSC repair (fuzz_diff --insertion-engine).
    InsertEngineMode insertion_engine = InsertEngineMode::Legacy;
    /// Caps forwarded to the insertion repair loop. Each branch-and-bound
    /// round re-analyzes a candidate graph, which is the dominant cost on
    /// CSC-conflicted cases — keep the rounds low for campaign speed.
    std::size_t max_inserted_signals = 4;
    std::size_t max_search_nodes = 24;
};

struct CaseOutcome {
    Verdict verdict = Verdict::Unknown;
    std::string detail;    ///< disagreement / exhaustion / error description
    std::string span_path; ///< obs provenance of the deciding event
    std::size_t sg_states = 0;        ///< spec state-graph size
    std::size_t mc_missing = 0;       ///< regions without MC cube pre-insertion
    std::size_t inserted_signals = 0; ///< state signals the repair loop added
    std::size_t verify_states = 0;    ///< composite states the verifier walked
};

/// Runs one spec through pipeline and both oracles. Never throws: every
/// failure mode is folded into the verdict.
[[nodiscard]] CaseOutcome diff_case(const stg::Stg& spec, const DiffOptions& opts = {});

// ---------------------------------------------------------------------------
// Hostile parser input

/// Deterministically mutates .g text into hostile parser input: byte
/// flips, span deletions, line duplication, token injection, digit
/// explosion, truncation. Same (text, seed) in, same mutant out.
[[nodiscard]] std::string mutate_g(const std::string& text, std::uint64_t seed);

struct HostileResult {
    bool handled = false; ///< parsed cleanly or rejected with an si::Error
    bool parsed = false;  ///< the mutant still parsed as a valid net
    std::string error;    ///< the rejection (or foreign-exception) text
};

/// Feeds `text` to the .g parser under a try/catch harness. handled is
/// false only for non-si exceptions — those are findings.
[[nodiscard]] HostileResult parse_hostile(const std::string& text);

// ---------------------------------------------------------------------------
// Campaigns

struct CampaignOptions {
    std::uint64_t seed = 1;
    std::size_t count = 200; ///< differential cases
    GenOptions gen;
    DiffOptions diff;
    /// Hostile parser mutants derived from each case's .g text.
    std::size_t hostile_per_case = 1;
    /// Shrink every Disagree/Error finding to a minimal recipe.
    bool shrink_failures = true;
    /// Probe cap per shrink (each probe replays the full pipeline).
    std::size_t shrink_max_attempts = 64;
    /// Test hook: force Verdict::Disagree for matching recipes, so the
    /// failure-to-one-liner path is exercisable without a real bug.
    std::function<bool(const Recipe&)> inject_disagree;
};

struct FailureRecord {
    std::size_t case_index = 0;
    std::uint64_t case_seed = 0; ///< derive_seed(campaign seed, index)
    Recipe recipe;
    Verdict verdict = Verdict::Error;
    std::string detail;
    std::string span_path;
    /// Shrunk reproduction (== recipe when shrinking is off or no
    /// candidate reproduced).
    Recipe shrunk;
    ShrinkStats shrink;
    /// Parser finding: the failure is a hostile mutant, not a diff case;
    /// hostile_index identifies the mutant stream.
    bool parser = false;
    std::size_t hostile_index = 0;

    /// The replayable one-liner: "seed=<s> recipe=<shrunk>" (diff) or
    /// "seed=<s> recipe=<r> hostile=<k>" (parser) — paste into
    /// replay_one_liner / fuzz_diff --replay.
    [[nodiscard]] std::string one_liner() const;
};

struct CampaignResult {
    std::size_t cases = 0;
    std::size_t agree = 0;
    std::size_t disagree = 0;
    std::size_t unknown = 0; ///< budget-exhausted cases (never an abort)
    std::size_t errors = 0;
    std::size_t hostile = 0;
    std::size_t hostile_parsed = 0;
    std::size_t hostile_rejected = 0;
    std::size_t hostile_unhandled = 0;
    std::size_t sg_states_total = 0;
    std::vector<FailureRecord> failures;

    /// True when no finding was recorded (Unknowns are not findings).
    [[nodiscard]] bool clean() const { return failures.empty(); }
    [[nodiscard]] std::string describe() const;
};

/// Runs the campaign: `count` differential cases with per-case derived
/// seeds, plus `hostile_per_case` parser mutants each. Deterministic for
/// a fixed option set; degrades to Unknown tallies under exhaustion.
[[nodiscard]] CampaignResult run_campaign(const CampaignOptions& opts = {});

// ---------------------------------------------------------------------------
// Replay

struct ReplayOutcome {
    bool ok = false;       ///< the one-liner parsed and replayed
    std::string error;     ///< why not, when !ok
    bool reproduced = false; ///< replay yielded a finding again
    CaseOutcome outcome;   ///< diff replays: the pipeline verdict
    HostileResult hostile; ///< parser replays: the parse harness result
    [[nodiscard]] std::string describe() const;
};

/// Replays a FailureRecord::one_liner(): rebuilds the recipe's STG and
/// re-runs the pipeline (or regenerates the hostile mutant and re-feeds
/// the parser). The injection hook is re-applied so injected findings
/// reproduce too.
[[nodiscard]] ReplayOutcome replay_one_liner(const std::string& line,
                                             const CampaignOptions& opts = {});

} // namespace si::gen
