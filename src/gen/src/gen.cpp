#include "si/gen/gen.hpp"

#include <algorithm>

#include "si/obs/obs.hpp"
#include "si/stg/parse.hpp"
#include "si/util/error.hpp"
#include "si/util/text.hpp"

namespace si::gen {

namespace {

/// Hard ceiling on any block param; random_recipe stays far below it,
/// Recipe::parse rejects anything past it (a replayed one-liner must not
/// be able to demand a 10^9-way fork).
constexpr int kMaxParam = 64;

/// Smallest param that makes the block well-formed: a choice or
/// sequencer needs two branches to choose between / alternate over.
int min_param(BlockKind k) {
    return (k == BlockKind::Choice || k == BlockKind::Seq) ? 2 : 1;
}

/// splitmix64: the deterministic stream every seeded decision draws
/// from (same constants as the fault engine's walk streams).
struct Rng {
    std::uint64_t state;
    std::uint64_t next() {
        state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }
    /// Uniform draw in [lo, hi] (hi >= lo).
    int range(int lo, int hi) {
        return lo + static_cast<int>(next() % static_cast<std::uint64_t>(hi - lo + 1));
    }
};

// ---------------------------------------------------------------------------
// .g emission
//
// Blocks are emitted as four-phase fragments over "ports". A port is the
// set of transition labels whose firing completes a phase — usually one
// label, several mutually exclusive ones downstream of a choice (the
// ack's /k instances, exactly one of which fires per cycle).
//
// Arc semantics of the .g dialect used below:
//   * "a+ b+"  — implicit place per arc: multiple arcs FROM a label fork
//     (concurrency), multiple arcs INTO a label join (AND-causality);
//   * an explicit place with several producers and one consumer is an
//     OR-merge — the port-to-single-consumer adapter for choice outputs;
//   * an explicit place with several input-transition consumers is a
//     free choice resolved by the environment.

struct Port {
    std::vector<std::string> labels; ///< mutually exclusive completers
};

struct Emitter {
    std::string inputs;  ///< " name" accumulations for .inputs
    std::string outputs; ///< ... for .outputs
    std::string graph;   ///< .graph section body
    int place_counter = 0;

    void arc(const std::string& from, const std::string& to) { graph += from + " " + to + "\n"; }

    std::string fresh_place(const std::string& prefix) {
        return prefix + "p" + std::to_string(place_counter++);
    }

    /// Routes `port` into the single consumer `target`: a direct arc, or
    /// an OR-merge place when the port has alternatives. Returns the
    /// marking token naming the connection (the implicit-place token or
    /// the explicit place) so wrap-up arcs can carry the initial token.
    std::string trigger(const Port& port, const std::string& target, const std::string& prefix) {
        if (port.labels.size() == 1) {
            arc(port.labels.front(), target);
            return "<" + port.labels.front() + "," + target + ">";
        }
        const std::string pl = fresh_place(prefix);
        for (const auto& l : port.labels) arc(l, pl);
        arc(pl, target);
        return pl;
    }
};

/// Linear pipeline: the phase ripples through `n` sequential stages.
void emit_pipe(Emitter& em, const std::string& prefix, int n, Port& rise, Port& fall) {
    for (int k = 0; k < n; ++k) {
        const std::string s = prefix + "s" + std::to_string(k);
        em.outputs += " " + s;
        em.trigger(rise, s + "+", prefix);
        em.trigger(fall, s + "-", prefix);
        rise = {{s + "+"}};
        fall = {{s + "-"}};
    }
}

/// Fork-join: the phase forks into `n` concurrent branches that all
/// AND-join on a fresh signal before the block completes.
void emit_fork(Emitter& em, const std::string& prefix, int n, Port& rise, Port& fall) {
    const std::string j = prefix + "j";
    for (int k = 0; k < n; ++k) {
        const std::string y = prefix + "y" + std::to_string(k);
        em.outputs += " " + y;
        em.trigger(rise, y + "+", prefix);
        em.arc(y + "+", j + "+");
        em.trigger(fall, y + "-", prefix);
        em.arc(y + "-", j + "-");
    }
    em.outputs += " " + j;
    rise = {{j + "+"}};
    fall = {{j + "-"}};
}

/// Ring: sequential rise through `n` stations, fully concurrent fall,
/// both phases completed by a join signal.
void emit_ring(Emitter& em, const std::string& prefix, int n, Port& rise, Port& fall) {
    const std::string u = prefix + "u";
    std::vector<std::string> stations;
    for (int k = 0; k < n; ++k) {
        const std::string t = prefix + "t" + std::to_string(k);
        em.outputs += " " + t;
        stations.push_back(t);
        em.trigger(rise, t + "+", prefix);
        rise = {{t + "+"}};
    }
    em.arc(stations.back() + "+", u + "+");
    for (const auto& t : stations) {
        em.trigger(fall, t + "-", prefix);
        em.arc(t + "-", u + "-");
    }
    em.outputs += " " + u;
    rise = {{u + "+"}};
    fall = {{u + "-"}};
}

/// Arbitration-free choice: the rising phase reaches a free-choice place
/// whose consumers are `n` environment inputs; the chosen branch raises
/// its private output and one instance of the shared ack. A memory place
/// per branch steers the falling phase back through the same branch, so
/// the net stays safe and the choice is only ever resolved by inputs.
void emit_choice(Emitter& em, const std::string& prefix, int n, Port& rise, Port& fall) {
    const std::string ack = prefix + "ack";
    const std::string pc = em.fresh_place(prefix);
    const std::string pf = em.fresh_place(prefix);
    for (const auto& l : rise.labels) em.arc(l, pc);
    for (const auto& l : fall.labels) em.arc(l, pf);
    std::vector<std::string> ack_rise;
    std::vector<std::string> ack_fall;
    for (int k = 0; k < n; ++k) {
        const std::string c = prefix + "c" + std::to_string(k);
        const std::string a = prefix + "a" + std::to_string(k);
        em.inputs += " " + c;
        em.outputs += " " + a;
        const std::string inst = k == 0 ? "" : "/" + std::to_string(k + 1);
        em.arc(pc, c + "+");
        em.arc(c + "+", a + "+");
        em.arc(a + "+", ack + "+" + inst);
        const std::string q = em.fresh_place(prefix);
        em.arc(c + "+", q);
        em.arc(pf, c + "-");
        em.arc(q, c + "-");
        em.arc(c + "-", a + "-");
        em.arc(a + "-", ack + "-" + inst);
        ack_rise.push_back(ack + "+" + inst);
        ack_fall.push_back(ack + "-" + inst);
    }
    em.outputs += " " + ack;
    rise = {std::move(ack_rise)};
    fall = {std::move(ack_fall)};
}

/// Standalone round-robin sequencer (parallel recipes only): one input
/// handshake answered by `n` output handshakes in turn within one cycle.
/// The phases share codes, so CSC fails and state signals are inserted —
/// the workload that exercises the repair loop.
void emit_seq(Emitter& em, const std::string& prefix, int n, std::string& marking) {
    const std::string r = prefix + "r";
    em.inputs += " " + r;
    std::vector<std::string> cycle;
    for (int k = 0; k < n; ++k) {
        const std::string a = prefix + "a" + std::to_string(k);
        em.outputs += " " + a;
        const std::string inst = k == 0 ? "" : "/" + std::to_string(k + 1);
        cycle.push_back(r + "+" + inst);
        cycle.push_back(a + "+");
        cycle.push_back(r + "-" + inst);
        cycle.push_back(a + "-");
    }
    for (std::size_t i = 0; i < cycle.size(); ++i)
        em.arc(cycle[i], cycle[(i + 1) % cycle.size()]);
    marking += " <" + cycle.back() + "," + cycle.front() + ">";
}

/// Emits one block as a four-phase fragment between the given ports.
void emit_block(Emitter& em, const Block& b, const std::string& prefix, Port& rise, Port& fall) {
    switch (b.kind) {
    case BlockKind::Pipe: emit_pipe(em, prefix, b.param, rise, fall); return;
    case BlockKind::Fork: emit_fork(em, prefix, b.param, rise, fall); return;
    case BlockKind::Ring: emit_ring(em, prefix, b.param, rise, fall); return;
    case BlockKind::Choice: emit_choice(em, prefix, b.param, rise, fall); return;
    case BlockKind::Seq: break; // standalone only; handled by the caller
    }
    throw SpecError("gen: block kind not emittable as a fragment");
}

void validate_recipe(const Recipe& r) {
    if (r.blocks.empty()) throw SpecError("gen: recipe has no blocks");
    for (const auto& b : r.blocks) {
        if (b.param < min_param(b.kind) || b.param > kMaxParam)
            throw SpecError("gen: block param " + std::to_string(b.param) + " out of range for " +
                            std::string(to_string(b.kind)));
        if (b.kind == BlockKind::Seq && r.serial)
            throw SpecError("gen: seq blocks require a parallel recipe");
    }
}

} // namespace

const char* to_string(BlockKind k) {
    switch (k) {
    case BlockKind::Pipe: return "pipe";
    case BlockKind::Fork: return "fork";
    case BlockKind::Ring: return "ring";
    case BlockKind::Choice: return "choice";
    case BlockKind::Seq: return "seq";
    }
    return "?";
}

std::string Recipe::to_string() const {
    std::string s = serial ? "ser:" : "par:";
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        if (i != 0) s += ",";
        s += gen::to_string(blocks[i].kind);
        s += std::to_string(blocks[i].param);
    }
    return s;
}

std::optional<Recipe> Recipe::parse(std::string_view text) {
    const auto colon = text.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    const std::string_view mode = text.substr(0, colon);
    Recipe r;
    if (mode == "ser") {
        r.serial = true;
    } else if (mode == "par") {
        r.serial = false;
    } else {
        return std::nullopt;
    }
    for (const auto& tok : split(text.substr(colon + 1), ",")) {
        std::size_t i = 0;
        while (i < tok.size() && tok[i] >= 'a' && tok[i] <= 'z') ++i;
        if (i == 0 || i == tok.size()) return std::nullopt;
        const std::string_view name(tok.data(), i);
        Block b;
        bool known = false;
        for (std::size_t k = 0; k < kNumBlockKinds; ++k) {
            if (name == gen::to_string(static_cast<BlockKind>(k))) {
                b.kind = static_cast<BlockKind>(k);
                known = true;
                break;
            }
        }
        if (!known) return std::nullopt;
        int param = 0;
        for (; i < tok.size(); ++i) {
            if (tok[i] < '0' || tok[i] > '9') return std::nullopt;
            if (param > kMaxParam) return std::nullopt;
            param = param * 10 + (tok[i] - '0');
        }
        if (param < min_param(b.kind) || param > kMaxParam) return std::nullopt;
        b.param = param;
        if (b.kind == BlockKind::Seq && r.serial) return std::nullopt;
        r.blocks.push_back(b);
    }
    if (r.blocks.empty()) return std::nullopt;
    return r;
}

Recipe random_recipe(std::uint64_t seed, const GenOptions& opts) {
    Rng rng{seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull};
    Recipe r;
    r.serial = opts.allow_serial && (rng.next() & 1) != 0;
    std::vector<BlockKind> kinds = {BlockKind::Pipe, BlockKind::Fork, BlockKind::Ring};
    if (opts.allow_choice) kinds.push_back(BlockKind::Choice);
    if (opts.allow_seq && !r.serial) kinds.push_back(BlockKind::Seq);
    const int lo = std::max(1, opts.min_blocks);
    const int hi = std::max(lo, opts.max_blocks);
    const int n = rng.range(lo, hi);
    for (int i = 0; i < n; ++i) {
        Block b;
        b.kind = kinds[static_cast<std::size_t>(rng.next() % kinds.size())];
        const int pmin = min_param(b.kind);
        const int pmax = std::min(kMaxParam, std::max(pmin, opts.max_param));
        b.param = rng.range(pmin, pmax);
        r.blocks.push_back(b);
    }
    return r;
}

stg::Stg build(const Recipe& recipe) {
    validate_recipe(recipe);
    obs::Span span("gen.build");
    span.attr("recipe", recipe.to_string());

    Emitter em;
    std::string marking;
    if (recipe.serial) {
        // One master environment handshake; blocks chain on it: the ack
        // of block i triggers block i+1 in both phases.
        em.inputs += " r";
        Port rise{{"r+"}};
        Port fall{{"r-"}};
        for (std::size_t i = 0; i < recipe.blocks.size(); ++i)
            emit_block(em, recipe.blocks[i], "b" + std::to_string(i) + "_", rise, fall);
        em.trigger(rise, "r-", "w_");
        marking += " " + em.trigger(fall, "r+", "w_");
    } else {
        // Independent components, each under its own environment
        // handshake; the state graph is the product of the blocks.
        for (std::size_t i = 0; i < recipe.blocks.size(); ++i) {
            const std::string prefix = "b" + std::to_string(i) + "_";
            const Block& b = recipe.blocks[i];
            if (b.kind == BlockKind::Seq) {
                emit_seq(em, prefix, b.param, marking);
                continue;
            }
            const std::string r = prefix + "r";
            em.inputs += " " + r;
            Port rise{{r + "+"}};
            Port fall{{r + "-"}};
            emit_block(em, b, prefix, rise, fall);
            em.trigger(rise, r + "-", prefix);
            marking += " " + em.trigger(fall, r + "+", prefix);
        }
    }

    std::string g = ".model gen_" + recipe.to_string() + "\n";
    if (!em.inputs.empty()) g += ".inputs" + em.inputs + "\n";
    if (!em.outputs.empty()) g += ".outputs" + em.outputs + "\n";
    g += ".graph\n" + em.graph;
    g += ".marking {" + marking + " }\n.end\n";

    stg::Stg net = stg::read_g(g);
    if (obs::enabled()) {
        obs::count("gen.built");
        obs::count("gen.blocks", recipe.blocks.size());
        obs::count("gen.transitions", net.num_transitions());
    }
    return net;
}

stg::Stg generate(std::uint64_t seed, const GenOptions& opts) {
    return build(random_recipe(seed, opts));
}

std::uint64_t derive_seed(std::uint64_t campaign_seed, std::uint64_t index) {
    // One splitmix step over (seed, index): item streams are independent
    // of how many other items the campaign draws — the fault engine's
    // per-fault derived-seed discipline.
    Rng rng{(campaign_seed * 0x9e3779b97f4a7c15ull + 1) ^ (index * 0xbf58476d1ce4e5b9ull)};
    return rng.next();
}

Recipe shrink(Recipe failing, const std::function<bool(const Recipe&)>& still_fails,
              ShrinkStats* stats, std::size_t max_attempts) {
    ShrinkStats local;
    ShrinkStats& st = stats != nullptr ? *stats : local;
    st = {};

    auto try_candidate = [&](const Recipe& cand) {
        if (st.attempts >= max_attempts) return false;
        ++st.attempts;
        if (!still_fails(cand)) return false;
        ++st.accepted;
        return true;
    };

    bool progress = true;
    while (progress && st.attempts < max_attempts) {
        progress = false;
        // Drop one block (later blocks first, so prefixes of the
        // survivors stay stable).
        for (std::size_t i = failing.blocks.size(); i-- > 0 && failing.blocks.size() > 1;) {
            Recipe cand = failing;
            cand.blocks.erase(cand.blocks.begin() + static_cast<std::ptrdiff_t>(i));
            if (try_candidate(cand)) {
                failing = std::move(cand);
                progress = true;
                break;
            }
        }
        if (progress) continue;
        // Halve, then decrement, a block's param.
        for (std::size_t i = 0; i < failing.blocks.size() && !progress; ++i) {
            const Block& b = failing.blocks[i];
            for (const int smaller : {b.param / 2, b.param - 1}) {
                if (smaller < min_param(b.kind) || smaller >= b.param) continue;
                Recipe cand = failing;
                cand.blocks[i].param = smaller;
                if (try_candidate(cand)) {
                    failing = std::move(cand);
                    progress = true;
                    break;
                }
            }
        }
        if (progress) continue;
        // Serial-to-parallel flip: decomposes a chain into independent
        // components, which often still reproduces generator-level
        // faults with a much smaller state graph.
        if (failing.serial) {
            Recipe cand = failing;
            cand.serial = false;
            if (try_candidate(cand)) {
                failing = std::move(cand);
                progress = true;
            }
        }
    }
    return failing;
}

} // namespace si::gen
