#include "si/gen/fuzz.hpp"

#include <algorithm>
#include <iterator>

#include "si/mc/symbolic.hpp"
#include "si/obs/live.hpp"
#include "si/obs/obs.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/regions.hpp"
#include "si/stg/parse.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/budget.hpp"
#include "si/util/error.hpp"
#include "si/util/text.hpp"
#include "si/verify/verifier.hpp"

namespace si::gen {

namespace {

struct Rng {
    std::uint64_t state;
    std::uint64_t next() {
        state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }
    std::size_t below(std::size_t n) { return n == 0 ? 0 : next() % n; }
};

/// The hostile mutant stream of a case: index 0 is the case's own
/// recipe stream, so mutants start at 1. Shared by campaign and replay.
std::uint64_t hostile_seed(std::uint64_t case_seed, std::size_t k) {
    return derive_seed(case_seed, 1 + k);
}

std::string provenance(const std::string& fallback) {
    const std::string path = obs::current_span_path();
    return path.empty() ? fallback : path;
}

CaseOutcome unknown_outcome(const util::Exhaustion& why, std::size_t sg_states) {
    CaseOutcome out;
    out.verdict = Verdict::Unknown;
    out.detail = why.describe();
    out.span_path = provenance(why.stage);
    out.sg_states = sg_states;
    return out;
}

} // namespace

const char* to_string(Verdict v) {
    switch (v) {
    case Verdict::Agree: return "agree";
    case Verdict::Disagree: return "DISAGREE";
    case Verdict::Unknown: return "unknown";
    case Verdict::Error: return "ERROR";
    }
    return "?";
}

CaseOutcome diff_case(const stg::Stg& spec, const DiffOptions& opts) {
    obs::Span span("fuzz.case");
    span.attr("model", spec.name);
    CaseOutcome out;
    util::Budget budget;
    budget.cap(util::Resource::States, opts.budget_states)
        .cap(util::Resource::Steps, opts.budget_steps)
        .cap(util::Resource::Conflicts, opts.budget_conflicts)
        .cap(util::Resource::Attempts, opts.budget_attempts);
    try {
        // 1. Token-game unfolding.
        auto sgo = sg::build_state_graph_outcome(spec, {opts.max_sg_states, &budget});
        if (!sgo.is_complete()) return unknown_outcome(sgo.why(), 0);
        const sg::StateGraph& graph = sgo.value();
        out.sg_states = graph.num_states();

        // Generator soundness gate: every composed net must yield an
        // output semi-modular graph — the paper's precondition. A miss
        // is a generator bug, not a pipeline verdict.
        if (!sg::is_output_semimodular(graph)) {
            out.verdict = Verdict::Error;
            out.detail = "generated state graph is not output semi-modular";
            out.span_path = provenance("fuzz.case");
            return out;
        }

        // 2. MC checker's verdict on the spec as given (pre-insertion),
        // through the engine(s) the campaign asked for.
        std::size_t explicit_regions = 0;
        bool explicit_satisfied = false;
        if (opts.mc_engine != McEngineMode::Symbolic) {
            sg::RegionAnalysis ra(graph);
            auto mco = mc::check_requirement_outcome(ra, opts.cube_search, &budget);
            if (!mco.is_complete()) return unknown_outcome(mco.why(), out.sg_states);
            out.mc_missing = mco.value().violation_count();
            explicit_regions = mco.value().regions.size();
            explicit_satisfied = mco.value().satisfied();
        }
        if (opts.mc_engine != McEngineMode::Explicit) {
            mc::StgMcOptions mopts;
            mopts.cube_search = opts.cube_search;
            mopts.max_sg_states = opts.max_sg_states;
            const auto sy = mc::check_stg(spec, mc::Engine::Symbolic, mopts, &budget);
            if (!sy.complete()) return unknown_outcome(*sy.exhaustion, out.sg_states);
            if (opts.mc_engine == McEngineMode::Cross) {
                // The BDD path must reproduce the explicit verdict
                // triple exactly — a symbolic-engine differential oracle
                // rides along with the Theorem-3 one.
                if (sy.satisfied != explicit_satisfied || sy.regions != explicit_regions ||
                    sy.missing != out.mc_missing) {
                    out.verdict = Verdict::Disagree;
                    out.detail = "symbolic MC engine disagrees with explicit: explicit " +
                                 std::to_string(explicit_regions) + " regions / " +
                                 std::to_string(out.mc_missing) + " missing, symbolic " +
                                 std::to_string(sy.regions) + " regions / " +
                                 std::to_string(sy.missing) + " missing";
                    out.span_path = provenance("fuzz.case");
                    return out;
                }
            } else {
                out.mc_missing = sy.missing;
            }
        }

        // 3. Full synthesis (inserts state signals until MC holds).
        synth::SynthOptions sopts;
        sopts.cube_search = opts.cube_search;
        sopts.max_inserted_signals = opts.max_inserted_signals;
        sopts.max_search_nodes = opts.max_search_nodes;
        const auto engine_of = [](InsertEngineMode m) {
            switch (m) {
            case InsertEngineMode::Eager: return synth::InsertEngine::Eager;
            case InsertEngineMode::Cegar: return synth::InsertEngine::Cegar;
            case InsertEngineMode::Portfolio: return synth::InsertEngine::Portfolio;
            default: return synth::InsertEngine::Legacy;
            }
        };
        const bool cross_insert = opts.insertion_engine == InsertEngineMode::Cross;
        sopts.insertion.engine =
            engine_of(cross_insert ? InsertEngineMode::Eager : opts.insertion_engine);
        auto so = synth::synthesize_outcome(graph, sopts, &budget);
        if (!so.is_complete()) return unknown_outcome(so.why(), out.sg_states);
        const synth::SynthesisResult& res = so.value();
        out.inserted_signals = res.inserted.size();

        if (cross_insert) {
            // The spec engines promise byte-identical synthesis; any
            // difference in the inserted signals or the summary is a
            // finding. Each extra run gets a fresh budget with the
            // case's full caps, so every engine faces the same limits
            // regardless of what the earlier stages spent — and an
            // exhaustion stays Unknown, never a disagreement.
            for (const InsertEngineMode m :
                 {InsertEngineMode::Cegar, InsertEngineMode::Portfolio}) {
                synth::SynthOptions xopts = sopts;
                xopts.insertion.engine = engine_of(m);
                util::Budget xbudget;
                xbudget.cap(util::Resource::States, opts.budget_states)
                    .cap(util::Resource::Steps, opts.budget_steps)
                    .cap(util::Resource::Conflicts, opts.budget_conflicts)
                    .cap(util::Resource::Attempts, opts.budget_attempts);
                auto xo = synth::synthesize_outcome(graph, xopts, &xbudget);
                if (!xo.is_complete()) return unknown_outcome(xo.why(), out.sg_states);
                if (xo.value().inserted != res.inserted ||
                    xo.value().summary() != res.summary()) {
                    out.verdict = Verdict::Disagree;
                    out.detail = std::string("insertion engines disagree: eager vs ") +
                                 synth::to_string(engine_of(m)) + ": " + res.summary() +
                                 " vs " + xo.value().summary();
                    out.span_path = provenance("fuzz.case");
                    return out;
                }
            }
        }
        if (!res.mc.satisfied()) {
            out.verdict = Verdict::Disagree;
            out.detail = "synthesis returned an unsatisfied MC report";
            out.span_path = provenance("fuzz.case");
            return out;
        }

        // 4. The gate-level hazard oracle on the synthesized netlist.
        verify::VerifyOptions vopts;
        vopts.max_states = opts.max_verify_states;
        vopts.budget = &budget;
        const verify::VerifyResult vr =
            verify::verify_speed_independence(res.netlist, res.graph, vopts);
        out.verify_states = vr.states_explored;
        switch (vr.verdict()) {
        case verify::HazardVerdict::Clean:
            out.verdict = Verdict::Agree;
            out.span_path = provenance("fuzz.case");
            break;
        case verify::HazardVerdict::Hazard:
            // Theorem 3 broken: the MC checker accepted the very netlist
            // the verifier rejects.
            out.verdict = Verdict::Disagree;
            out.detail = "MC satisfied but the gate-level verifier found: " +
                         (vr.violations.empty() ? std::string("(no witness recorded)")
                                                : vr.violations.front().describe());
            out.span_path = !vr.violations.empty() && !vr.violations.front().span_path.empty()
                                ? vr.violations.front().span_path
                                : provenance("fuzz.case");
            break;
        case verify::HazardVerdict::Unknown:
            return unknown_outcome(vr.exhaustion.has_value()
                                       ? *vr.exhaustion
                                       : util::Exhaustion{"verify.explore",
                                                          util::Resource::States,
                                                          vr.states_explored,
                                                          opts.max_verify_states},
                                   out.sg_states);
        }
        return out;
    } catch (const util::BudgetExhausted& e) {
        return unknown_outcome(e.why(), out.sg_states);
    } catch (const Error& e) {
        out.verdict = Verdict::Error;
        out.detail = std::string("pipeline threw: ") + e.what();
        out.span_path = provenance("fuzz.case");
        return out;
    } catch (const std::exception& e) {
        out.verdict = Verdict::Error;
        out.detail = std::string("pipeline threw a foreign exception: ") + e.what();
        out.span_path = provenance("fuzz.case");
        return out;
    }
}

// ---------------------------------------------------------------------------
// Hostile parser input

std::string mutate_g(const std::string& text, std::uint64_t seed) {
    static constexpr const char* kTokens[] = {
        " <",          " >",         " <a+,",       " {",          " }",
        " .graph",     " .end",      " .marking",   " .dummy x",   " .unknown",
        " a+/",        "/9999999999999999999",      "=99999999999999999999",
        " +",          " -",         " a+ a+",      "\x01\xff\x7f", " p=256",
        " <,>",        " </2>",
    };
    Rng rng{seed * 0x9e3779b97f4a7c15ull + 0x632be59bd9b4e019ull};
    std::string out = text;
    const std::size_t rounds = 1 + rng.below(3);
    for (std::size_t r = 0; r < rounds; ++r) {
        switch (rng.below(6)) {
        case 0: { // flip one byte
            if (out.empty()) break;
            out[rng.below(out.size())] = static_cast<char>(rng.next() & 0xff);
            break;
        }
        case 1: { // delete a span
            if (out.empty()) break;
            const std::size_t pos = rng.below(out.size());
            const std::size_t len = 1 + rng.below(16);
            out.erase(pos, std::min(len, out.size() - pos));
            break;
        }
        case 2: { // duplicate a line
            const auto lines = lines_of(out);
            if (lines.empty()) break;
            out += lines[rng.below(lines.size())] + "\n";
            break;
        }
        case 3: { // inject a hostile token
            const char* tok = kTokens[rng.below(std::size(kTokens))];
            const std::size_t pos = out.empty() ? 0 : rng.below(out.size());
            out.insert(pos, tok);
            break;
        }
        case 4: { // truncate
            if (out.empty()) break;
            out.resize(rng.below(out.size()));
            break;
        }
        case 5: { // drop the .end terminator
            const auto pos = out.rfind(".end");
            if (pos != std::string::npos) out.erase(pos, 4);
            break;
        }
        }
    }
    return out;
}

HostileResult parse_hostile(const std::string& text) {
    HostileResult res;
    try {
        const stg::Stg net = stg::read_g(text);
        res.handled = true;
        res.parsed = true;
        res.error = "";
        (void)net;
    } catch (const Error& e) {
        // Structured rejection: ParseError/SpecError are the contract.
        res.handled = true;
        res.parsed = false;
        res.error = e.what();
    } catch (const std::exception& e) {
        res.handled = false;
        res.parsed = false;
        res.error = std::string("foreign exception: ") + e.what();
    }
    return res;
}

// ---------------------------------------------------------------------------
// Campaigns

std::string FailureRecord::one_liner() const {
    std::string s = "seed=" + std::to_string(case_seed);
    if (parser) {
        s += " recipe=" + recipe.to_string();
        s += " hostile=" + std::to_string(hostile_index);
    } else {
        s += " recipe=" + shrunk.to_string();
    }
    return s;
}

std::string CampaignResult::describe() const {
    std::string s = "fuzz campaign: " + std::to_string(cases) + " cases — " +
                    std::to_string(agree) + " agree, " + std::to_string(disagree) +
                    " disagree, " + std::to_string(unknown) + " unknown, " +
                    std::to_string(errors) + " errors; " + std::to_string(hostile) +
                    " hostile parser inputs — " + std::to_string(hostile_parsed) + " parsed, " +
                    std::to_string(hostile_rejected) + " rejected, " +
                    std::to_string(hostile_unhandled) + " UNHANDLED; " +
                    std::to_string(sg_states_total) + " spec states total\n";
    for (const auto& f : failures) {
        s += "  [" + std::string(to_string(f.verdict)) + (f.parser ? "/parser" : "") +
             "] case " + std::to_string(f.case_index) + ": " + f.one_liner() + "\n";
        if (!f.detail.empty()) s += "    " + f.detail + "\n";
        if (!f.span_path.empty()) s += "    found in: " + f.span_path + "\n";
        if (!f.parser && !(f.shrunk == f.recipe))
            s += "    shrunk from " + f.recipe.to_string() + " in " +
                 std::to_string(f.shrink.attempts) + " probes\n";
    }
    return s;
}

CampaignResult run_campaign(const CampaignOptions& opts) {
    obs::Span span("fuzz.campaign");
    span.attr("count", static_cast<std::uint64_t>(opts.count));
    obs::Progress progress("fuzz.campaign", opts.count);
    CampaignResult result;

    // A case fails when the oracles disagree or the pipeline errored —
    // the same predicate drives shrinking, with the injection hook
    // applied first so injected findings reproduce without a real bug.
    auto fails = [&](const Recipe& r) {
        if (opts.inject_disagree && opts.inject_disagree(r)) return true;
        try {
            const CaseOutcome o = diff_case(build(r), opts.diff);
            return o.verdict == Verdict::Disagree || o.verdict == Verdict::Error;
        } catch (const Error&) {
            return false; // a candidate build() refuses is no reproduction
        }
    };

    for (std::size_t i = 0; i < opts.count; ++i) {
        const std::uint64_t case_seed = derive_seed(opts.seed, i);
        // Each case is one request: under tracing its whole pipeline —
        // including pool fan-outs — records under a "request" span keyed
        // by the case index, so a trace of a long campaign attributes
        // every span to the case that produced it.
        obs::RequestScope request(i, case_seed);
        const Recipe recipe = random_recipe(case_seed, opts.gen);
        ++result.cases;
        obs::count("fuzz.cases");

        CaseOutcome outcome;
        if (opts.inject_disagree && opts.inject_disagree(recipe)) {
            outcome.verdict = Verdict::Disagree;
            outcome.detail = "injected disagreement (test hook)";
            outcome.span_path = provenance("fuzz.campaign");
        } else {
            try {
                outcome = diff_case(build(recipe), opts.diff);
            } catch (const Error& e) {
                outcome.verdict = Verdict::Error;
                outcome.detail = std::string("build threw: ") + e.what();
                outcome.span_path = provenance("fuzz.campaign");
            }
        }
        result.sg_states_total += outcome.sg_states;

        switch (outcome.verdict) {
        case Verdict::Agree: ++result.agree; obs::count("fuzz.agree"); break;
        case Verdict::Unknown: ++result.unknown; obs::count("fuzz.unknown"); break;
        case Verdict::Disagree: ++result.disagree; obs::count("fuzz.disagree"); break;
        case Verdict::Error: ++result.errors; obs::count("fuzz.errors"); break;
        }
        if (outcome.verdict == Verdict::Disagree || outcome.verdict == Verdict::Error) {
            FailureRecord rec;
            rec.case_index = i;
            rec.case_seed = case_seed;
            rec.recipe = recipe;
            rec.verdict = outcome.verdict;
            rec.detail = outcome.detail;
            rec.span_path = outcome.span_path;
            rec.shrunk = recipe;
            if (opts.shrink_failures)
                rec.shrunk = shrink(recipe, fails, &rec.shrink, opts.shrink_max_attempts);
            obs::count("fuzz.shrink_attempts", rec.shrink.attempts);
            result.failures.push_back(std::move(rec));
        }

        // Hostile parser mutants of this case's .g text.
        if (opts.hostile_per_case > 0) {
            std::string g_text;
            try {
                g_text = stg::write_g(build(recipe));
            } catch (const Error&) {
                g_text = ".model broken\n.graph\n.end\n";
            }
            for (std::size_t k = 0; k < opts.hostile_per_case; ++k) {
                ++result.hostile;
                obs::count("fuzz.hostile");
                const std::string mutant = mutate_g(g_text, hostile_seed(case_seed, k));
                const HostileResult hr = parse_hostile(mutant);
                if (!hr.handled) {
                    ++result.hostile_unhandled;
                    FailureRecord rec;
                    rec.case_index = i;
                    rec.case_seed = case_seed;
                    rec.recipe = recipe;
                    rec.shrunk = recipe;
                    rec.verdict = Verdict::Error;
                    rec.detail = "parser did not reject hostile input structurally: " + hr.error;
                    rec.span_path = provenance("fuzz.campaign");
                    rec.parser = true;
                    rec.hostile_index = k;
                    result.failures.push_back(std::move(rec));
                } else if (hr.parsed) {
                    ++result.hostile_parsed;
                    obs::count("fuzz.hostile_parsed");
                } else {
                    ++result.hostile_rejected;
                    obs::count("fuzz.hostile_rejected");
                }
            }
        }
        progress.advance();
    }
    return result;
}

// ---------------------------------------------------------------------------
// Replay

std::string ReplayOutcome::describe() const {
    if (!ok) return "replay failed: " + error;
    std::string s = reproduced ? "reproduced" : "did NOT reproduce";
    if (!outcome.detail.empty()) s += ": " + outcome.detail;
    if (!hostile.error.empty()) s += ": " + hostile.error;
    return s;
}

ReplayOutcome replay_one_liner(const std::string& line, const CampaignOptions& opts) {
    ReplayOutcome out;
    std::uint64_t seed = 0;
    bool saw_seed = false;
    std::optional<Recipe> recipe;
    std::optional<std::size_t> hostile_index;
    for (const auto& tok : split(line)) {
        const auto eq = tok.find('=');
        if (eq == std::string::npos) {
            out.error = "token '" + tok + "' is not key=value";
            return out;
        }
        const std::string key = tok.substr(0, eq);
        const std::string value = tok.substr(eq + 1);
        if (key == "seed" || key == "hostile") {
            if (value.empty()) {
                out.error = "empty value in '" + tok + "'";
                return out;
            }
            std::uint64_t v = 0;
            for (const char c : value) {
                const auto d = static_cast<std::uint64_t>(c - '0');
                if (c < '0' || c > '9' || v > (UINT64_MAX - d) / 10) {
                    out.error = "bad number in '" + tok + "'";
                    return out;
                }
                v = v * 10 + d;
            }
            if (key == "seed") {
                seed = v;
                saw_seed = true;
            } else {
                hostile_index = static_cast<std::size_t>(v);
            }
        } else if (key == "recipe") {
            recipe = Recipe::parse(value);
            if (!recipe) {
                out.error = "unparsable recipe '" + value + "'";
                return out;
            }
        } else {
            out.error = "unknown key '" + key + "'";
            return out;
        }
    }
    if (!recipe) {
        out.error = "one-liner carries no recipe=";
        return out;
    }
    if (hostile_index && !saw_seed) {
        out.error = "hostile replay needs seed=";
        return out;
    }
    try {
        if (hostile_index) {
            const std::string g_text = stg::write_g(build(*recipe));
            const std::string mutant = mutate_g(g_text, hostile_seed(seed, *hostile_index));
            out.hostile = parse_hostile(mutant);
            out.reproduced = !out.hostile.handled;
        } else if (opts.inject_disagree && opts.inject_disagree(*recipe)) {
            out.outcome.verdict = Verdict::Disagree;
            out.outcome.detail = "injected disagreement (test hook)";
            out.reproduced = true;
        } else {
            out.outcome = diff_case(build(*recipe), opts.diff);
            out.reproduced = out.outcome.verdict == Verdict::Disagree ||
                             out.outcome.verdict == Verdict::Error;
        }
    } catch (const Error& e) {
        out.error = std::string("replay threw: ") + e.what();
        return out;
    }
    out.ok = true;
    return out;
}

} // namespace si::gen
