// Graphviz export of state graphs — region/violation overlays help when
// reading synthesis diagnostics.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "si/sg/state_graph.hpp"
#include "si/util/bitvec.hpp"

namespace si::sg {

struct DotOptions {
    /// States in this set get a highlighted fill (e.g. an excitation
    /// region or the offending states of an MC violation).
    const BitVec* highlight = nullptr;
    std::string highlight_color = "lightsalmon";
};

/// Renders the graph in Graphviz dot syntax. Nodes are labelled with the
/// paper-style asterisked codes, the initial state is double-circled.
[[nodiscard]] std::string to_dot(const StateGraph& sg, const DotOptions& opts = {});

/// Shortest action path from `from` to `to` (edge labels like "+a"),
/// empty when to == from, nullopt when unreachable. Used to print
/// counterexample-style context for region/MC diagnostics.
[[nodiscard]] std::optional<std::vector<std::string>> shortest_path(const StateGraph& sg,
                                                                    StateId from, StateId to);

} // namespace si::sg
