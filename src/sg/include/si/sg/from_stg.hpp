// Token-game reachability: builds the state graph of an STG.
//
// Section II of the paper: "the translation from different high-level
// specifications (e.g. STGs) to state graphs is straightforward". This is
// that translation — BFS over reachable markings, with initial signal
// values inferred from the first transition polarity of each signal and
// the consistent-state-assignment rules enforced along the way.
#pragma once

#include "si/sg/state_graph.hpp"
#include "si/stg/stg.hpp"

namespace si::sg {

struct FromStgOptions {
    /// Abort with SpecError when the marking graph exceeds this size.
    std::size_t max_states = 1u << 20;
};

/// Builds the reachable state graph. Throws SpecError for inconsistent
/// state assignments, unbounded places or state explosion past the cap.
[[nodiscard]] StateGraph build_state_graph(const stg::Stg& stg, const FromStgOptions& opts = {});

/// Initial code inference only (exposed for tests): the value each
/// signal holds in the initial marking.
[[nodiscard]] BitVec infer_initial_code(const stg::Stg& stg, const FromStgOptions& opts = {});

} // namespace si::sg
