// Token-game reachability: builds the state graph of an STG.
//
// Section II of the paper: "the translation from different high-level
// specifications (e.g. STGs) to state graphs is straightforward". This is
// that translation — BFS over reachable markings, with initial signal
// values inferred from the first transition polarity of each signal and
// the consistent-state-assignment rules enforced along the way.
#pragma once

#include "si/sg/state_graph.hpp"
#include "si/stg/stg.hpp"
#include "si/util/budget.hpp"

namespace si::sg {

struct FromStgOptions {
    /// Cap on reachable markings (charged as util::Resource::States on a
    /// module-local budget; see build_state_graph_outcome).
    std::size_t max_states = 1u << 20;
    /// Optional shared governance budget, charged in lockstep with the
    /// local cap (States per marking, Steps per explored edge).
    util::Budget* budget = nullptr;
};

/// Builds the reachable state graph under governance, in stage
/// "sg.explore". Returns Exhausted (never throws, no partial graph) when
/// the marking exploration runs out of budget; still throws SpecError
/// for genuinely malformed inputs (inconsistent state assignments,
/// unbounded places) — those are definitive verdicts, not exhaustion.
[[nodiscard]] util::Outcome<StateGraph> build_state_graph_outcome(const stg::Stg& stg,
                                                                  const FromStgOptions& opts = {});

/// Legacy throwing wrapper: as build_state_graph_outcome, but budget
/// exhaustion (state explosion past the cap) surfaces as SpecError.
[[nodiscard]] StateGraph build_state_graph(const stg::Stg& stg, const FromStgOptions& opts = {});

/// Initial code inference only (exposed for tests): the value each
/// signal holds in the initial marking.
[[nodiscard]] BitVec infer_initial_code(const stg::Stg& stg, const FromStgOptions& opts = {});

} // namespace si::sg
