// Excitation / quiescent / constant-function regions (Defs 5-11 of the
// paper) and the per-region structural facts the MC theory consumes:
// minimal states, unique-entry, trigger transitions, ordered signals and
// persistency.
#pragma once

#include <string>
#include <vector>

#include "si/sg/state_graph.hpp"
#include "si/util/bitvec.hpp"

namespace si::sg {

/// One excitation region ER(*a_i) together with its derived objects.
struct Region {
    SignalId signal;
    bool rising = true; ///< true for ER(+a), false for ER(-a)
    int instance = 1;   ///< i in ER(*a_i), numbered in BFS discovery order

    BitVec states;    ///< member states (over all states of the graph)
    BitVec quiescent; ///< QR(*a_i): stable states between this ER and the next
    BitVec cfr;       ///< CFR(*a_i) = states | quiescent

    std::vector<StateId> minimal_states; ///< states without predecessors in the ER
    std::vector<SignalEdge> triggers;    ///< labels of arcs entering the ER (Def 10)
    BitVec ordered_signals;              ///< bit v: signal v is ordered w.r.t. this ER (Def 11)

    [[nodiscard]] bool unique_entry() const { return minimal_states.size() == 1; }
    /// Def 12: every trigger signal is ordered with this region.
    [[nodiscard]] bool persistent() const;

    /// "ER(+a,2)"-style name.
    [[nodiscard]] std::string label(const StateGraph& sg) const;
};

/// Region decomposition of a state graph (reachable part only).
class RegionAnalysis {
public:
    explicit RegionAnalysis(const StateGraph& sg);

    [[nodiscard]] const StateGraph& graph() const { return *sg_; }
    [[nodiscard]] const std::vector<Region>& regions() const { return regions_; }
    [[nodiscard]] const Region& region(RegionId r) const { return regions_[r.index()]; }

    /// Regions of one signal, in instance order (up and down interleaved
    /// by discovery).
    [[nodiscard]] std::vector<RegionId> regions_of(SignalId v) const;

    /// The ER containing `s` for signal `v`, or invalid if v not excited
    /// in s.
    [[nodiscard]] RegionId region_containing(StateId s, SignalId v) const;

    /// Paper notation: 0-set(a) = union of QR(-a_i)  (a stable at 0),
    /// 0*-set(a) = union of ER(+a_i), 1-set, 1*-set analogously.
    [[nodiscard]] const BitVec& set_stable0(SignalId v) const { return per_signal_[v.index()].stable0; }
    [[nodiscard]] const BitVec& set_stable1(SignalId v) const { return per_signal_[v.index()].stable1; }
    [[nodiscard]] const BitVec& set_excited0(SignalId v) const { return per_signal_[v.index()].excited0; }
    [[nodiscard]] const BitVec& set_excited1(SignalId v) const { return per_signal_[v.index()].excited1; }

    /// Reachable-state mask the analysis ran over.
    [[nodiscard]] const BitVec& reachable() const { return reachable_; }

    /// True when every ER of every non-input signal has a unique entry
    /// state (Def 9).
    [[nodiscard]] bool all_unique_entry() const;
    /// True when every ER of every non-input signal is persistent.
    [[nodiscard]] bool all_persistent() const;

    /// Multi-line report of all regions (for the example binaries).
    [[nodiscard]] std::string report() const;

private:
    struct PerSignal {
        BitVec stable0, stable1, excited0, excited1;
    };

    const StateGraph* sg_;
    BitVec reachable_;
    std::vector<Region> regions_;
    std::vector<PerSignal> per_signal_;
    // region index per (state, signal), UINT32_MAX when not excited.
    std::vector<std::uint32_t> region_at_;
};

} // namespace si::sg
