// A small textual format for state graphs, used to transcribe the
// paper's figures exactly and to write compact test fixtures.
//
//   .model fig1
//   .inputs a b
//   .outputs c d
//   .arcs
//   0000 a+ 1000     # source code, signal edge, target code
//   1000 c+ 1010
//   .initial 0000
//   .end
//
// Codes list signals in declaration order. States are created on first
// mention; codes must be unique within the file (the paper's figures
// satisfy CSC at the code level or are small enough to relabel).
#pragma once

#include <string_view>

#include "si/sg/state_graph.hpp"

namespace si::sg {

[[nodiscard]] StateGraph read_sg(std::string_view text);

/// Renders in the same format (round-trips when codes are unique).
[[nodiscard]] std::string write_sg(const StateGraph& sg);

} // namespace si::sg
