// Petri-net synthesis from state graphs (region theory).
//
// The synthesis flow inserts state signals at the *state graph* level;
// to hand the transformed specification back to STG-based tools it must
// be folded into a Petri net again. This is the classic region-theory
// construction (Cortadella, Kishinevsky, Kondratyev, Lavagno, Yakovlev —
// the direct successors of this paper): a *region* is a set of states
// every event crosses uniformly (all its arcs enter, all exit, or none
// crosses); regions become places, events become transitions, and a
// pre-region of an event is a region all of its arcs exit.
//
// Events here are the excitation-region instances of each signal (the
// label splitting the paper's multi-transition notation +a_i already
// provides). For each event the minimal pre-regions are found by the
// standard grow-and-branch expansion from the excitation set; if the
// intersection of the pre-regions does not pin down the excitation set
// exactly (excitation closure fails), the synthesizer falls back to the
// state-machine construction (one place per state), which is always
// correct but not compact.
#pragma once

#include "si/sg/state_graph.hpp"
#include "si/stg/stg.hpp"

namespace si::sg {

struct NetSynthesisOptions {
    /// Branch-and-grow budget across all events.
    std::size_t max_candidates = 65536;
    /// Drop places whose removal provably keeps the behaviour (checked
    /// by re-unfolding and bisimulation; quadratic but exact).
    bool remove_redundant_places = true;
    /// Never fall back to the one-place-per-state net; throw instead.
    bool forbid_state_machine_fallback = false;
};

struct NetSynthesisResult {
    stg::Stg net;
    bool used_regions = false;    ///< false: state-machine fallback
    std::size_t regions_found = 0;
    std::size_t places_removed = 0;
};

/// Synthesizes an STG whose reachable behaviour is (strongly) bisimilar
/// to `sg`. Throws SynthesisError when the fallback is forbidden and
/// excitation closure cannot be established.
[[nodiscard]] NetSynthesisResult synthesize_stg(const StateGraph& sg,
                                                const NetSynthesisOptions& opts = {});

} // namespace si::sg
