// Behavioural properties of state graphs (Defs 1-4, 12, 14 of the paper):
// conflict and detonant states, (output) semi-modularity, distributivity,
// persistency and Complete State Coding.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "si/sg/state_graph.hpp"

namespace si::sg {

/// Witness of Def 1: `signal` is excited in `state` but becomes stable
/// after firing `by` into `successor`.
struct ConflictWitness {
    StateId state;
    SignalId signal;   ///< the disabled signal
    SignalId by;       ///< the disabling transition's signal
    StateId successor;
    bool internal = false; ///< true when `signal` is a non-input (Def 1)

    [[nodiscard]] std::string describe(const StateGraph& sg) const;
};

/// Witness of Def 3: `signal` is stable in `state` but excited in two
/// distinct direct successors.
struct DetonantWitness {
    StateId state;
    SignalId signal;
    StateId successor_a;
    StateId successor_b;

    [[nodiscard]] std::string describe(const StateGraph& sg) const;
};

/// Witness of a CSC violation (Def 14): two states with identical codes
/// whose sets of excited non-input signals differ.
struct CscWitness {
    StateId a;
    StateId b;
    SignalId differs_on; ///< a non-input excited in exactly one of them

    [[nodiscard]] std::string describe(const StateGraph& sg) const;
};

/// All conflict states among the reachable part of the graph.
[[nodiscard]] std::vector<ConflictWitness> find_conflicts(const StateGraph& sg);

/// All detonant states (w.r.t. non-input signals) among reachable states.
[[nodiscard]] std::vector<DetonantWitness> find_detonants(const StateGraph& sg);

/// Def 2: no conflict state reachable.
[[nodiscard]] bool is_semimodular(const StateGraph& sg);
/// Def 2: no internally conflict state reachable.
[[nodiscard]] bool is_output_semimodular(const StateGraph& sg);
/// Def 4: output semi-modular and no detonant state reachable.
[[nodiscard]] bool is_output_distributive(const StateGraph& sg);

/// Def 14. Empty result means CSC holds.
[[nodiscard]] std::vector<CscWitness> find_csc_violations(const StateGraph& sg);

/// Unique State Coding: all reachable codes distinct (strictly stronger
/// than CSC; reported for the benchmark tables).
[[nodiscard]] bool has_unique_state_coding(const StateGraph& sg);

/// Checks the consistent-state-assignment invariant globally (it is
/// enforced per-arc on construction; this re-validates e.g. after
/// surgery) and that the initial state is valid.
[[nodiscard]] std::optional<std::string> check_well_formed(const StateGraph& sg);

} // namespace si::sg
