// State graphs (Section II of the paper).
//
// A state graph is a finite automaton whose states carry binary codes
// over the signal set and whose arcs are single-signal transitions. This
// class stores the structure and the consistent-state-assignment
// invariant: an arc u->v on signal s flips exactly bit s of the code.
// Enabledness ("excitation") of a signal in a state is represented by the
// presence of an outgoing arc on that signal.
//
// Excitation index: alongside the arc lists the graph maintains, per
// signal, a dense bitset row over states of where that signal is excited
// (and one of the state-code column), plus a (state, signal) -> arc
// lookup table. add_arc keeps them current, so excited()/arc_on() are
// O(1) and the region/MC layers can compute ER/QR/CFR membership and
// cube covers as word-wide BitVec operations. util::set_fast_path(false)
// drops back to the seed's linear arc scans (benchmark baseline; results
// are identical either way).
#pragma once

#include <string>
#include <vector>

#include "si/stg/signals.hpp"
#include "si/util/bitvec.hpp"
#include "si/util/ids.hpp"

namespace si::sg {

struct Arc {
    StateId from;
    StateId to;
    SignalId signal;
};

struct State {
    BitVec code; ///< one bit per signal, signal order
};

class StateGraph {
public:
    std::string name = "sg";

    /// Forward range over the arc indices leaving/entering one state, in
    /// add_arc order. Adjacency is stored as intrusive chains through two
    /// flat per-arc `next` arrays instead of a vector-of-vectors: adding
    /// an arc never allocates, and arcs added in from-state order (the
    /// from_stg builder) chain through consecutive slots.
    class ArcRange {
    public:
        class iterator {
        public:
            using value_type = std::uint32_t;
            std::uint32_t operator*() const { return cur_; }
            iterator& operator++() {
                cur_ = (*next_)[cur_];
                return *this;
            }
            friend bool operator==(const iterator& a, const iterator& b) {
                return a.cur_ == b.cur_;
            }

        private:
            friend class ArcRange;
            iterator(const std::vector<std::uint32_t>* next, std::uint32_t cur)
                : next_(next), cur_(cur) {}
            const std::vector<std::uint32_t>* next_;
            std::uint32_t cur_;
        };

        [[nodiscard]] iterator begin() const { return {next_, head_}; }
        [[nodiscard]] iterator end() const { return {next_, UINT32_MAX}; }
        [[nodiscard]] bool empty() const { return head_ == UINT32_MAX; }

    private:
        friend class StateGraph;
        ArcRange(const std::vector<std::uint32_t>* next, std::uint32_t head)
            : next_(next), head_(head) {}
        const std::vector<std::uint32_t>* next_;
        std::uint32_t head_;
    };

    [[nodiscard]] SignalTable& signals() { return signals_; }
    [[nodiscard]] const SignalTable& signals() const { return signals_; }
    [[nodiscard]] std::size_t num_signals() const { return signals_.size(); }

    /// Pre-sizes the state list, excitation-index rows and arc-on table
    /// for `nstates` states and `narcs` arcs. Call after the signal
    /// table is final; adding more states than reserved stays correct
    /// (rows grow on demand), fewer is an error only if nothing shrinks
    /// them — from_stg reserves the exact counts it explored.
    void reserve(std::size_t nstates, std::size_t narcs = 0);
    /// Adds a state with the given code (width must equal num_signals()).
    StateId add_state(BitVec code);
    /// Adds an arc; throws SpecError unless the codes differ exactly in
    /// `signal` (consistent state assignment).
    std::uint32_t add_arc(StateId from, StateId to, SignalId signal);

    [[nodiscard]] std::size_t num_states() const { return states_.size(); }
    [[nodiscard]] std::size_t num_arcs() const { return arcs_.size(); }
    [[nodiscard]] const State& state(StateId s) const { return states_[s.index()]; }
    [[nodiscard]] const Arc& arc(std::uint32_t i) const { return arcs_[i]; }
    [[nodiscard]] const std::vector<Arc>& arcs() const { return arcs_; }
    /// Arc indices leaving `s`, in insertion order.
    [[nodiscard]] ArcRange out_arcs(StateId s) const {
        return {&out_next_, out_head_[s.index()]};
    }
    /// Arc indices entering `s`, in insertion order.
    [[nodiscard]] ArcRange in_arcs(StateId s) const { return {&in_next_, in_head_[s.index()]}; }

    void set_initial(StateId s) { initial_ = s; }
    [[nodiscard]] StateId initial() const { return initial_; }

    /// Value of signal v in state s.
    [[nodiscard]] bool value(StateId s, SignalId v) const { return states_[s.index()].code.test(v.index()); }
    /// True if some transition of v is enabled in s.
    [[nodiscard]] bool excited(StateId s, SignalId v) const;
    /// The arc firing signal v from s (invalid index UINT32_MAX if none).
    [[nodiscard]] std::uint32_t arc_on(StateId s, SignalId v) const;

    /// Excitation index row: bit s set iff v is excited in state s.
    [[nodiscard]] const BitVec& excited_set(SignalId v) const {
        return excited_rows_[v.index()];
    }
    /// Code column: bit s set iff v is 1 in state s.
    [[nodiscard]] const BitVec& value_set(SignalId v) const { return value_rows_[v.index()]; }
    /// The signal edge an arc performs (+v when the target has v=1).
    [[nodiscard]] SignalEdge edge_of(std::uint32_t arc_index) const;

    /// States reachable from the initial state (includes it).
    [[nodiscard]] BitVec reachable() const;

    /// The unique state with this code, if codes are unique; otherwise
    /// the first match. Invalid if absent.
    [[nodiscard]] StateId find_by_code(const BitVec& code) const;

    /// Code rendered with excitation asterisks, paper style: "10*0*1".
    [[nodiscard]] std::string state_label(StateId s) const;

    /// Multi-line dump for debugging and reports.
    [[nodiscard]] std::string dump() const;

private:
    SignalTable signals_;
    std::vector<State> states_;
    std::vector<Arc> arcs_;
    // Adjacency chains (see ArcRange): head/tail per state, next per arc.
    std::vector<std::uint32_t> out_head_, out_tail_, in_head_, in_tail_;
    std::vector<std::uint32_t> out_next_, in_next_;
    StateId initial_{};

    // Excitation index (see file header). Rows are sized lazily from the
    // signal count at the first add_state; arc_on_ is row-major
    // [state * num_signals + signal] with the *first* arc on each slot
    // (matching the out-list scan order the accessors replaced).
    std::vector<BitVec> excited_rows_;
    std::vector<BitVec> value_rows_;
    std::vector<std::uint32_t> arc_on_;
};

} // namespace si::sg
