// Bisimulation minimization of state graphs.
//
// Distinct markings of an STG can induce state-graph states with the
// same code and the same future behaviour; composition multiplies such
// duplicates. Merging bisimilar states (partition refinement over the
// code + outgoing-label signature) shrinks the graph without changing
// any property this library checks — regions, MC status, CSC, and the
// SAT insertion all get smaller inputs.
#pragma once

#include "si/sg/state_graph.hpp"

namespace si::sg {

struct MinimizeStats {
    std::size_t states_before = 0;
    std::size_t states_after = 0;
    std::size_t refinement_rounds = 0;
};

/// Returns the quotient graph: one state per bisimulation class of the
/// reachable states (initial partition: state codes; refinement: for
/// every signal, successor classes must agree). The result is reachable
/// and well-formed; arcs are deduplicated.
[[nodiscard]] StateGraph minimize_bisimulation(const StateGraph& g,
                                               MinimizeStats* stats = nullptr);

} // namespace si::sg
