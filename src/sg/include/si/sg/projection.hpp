// Interface conformance between a transformed state graph and its
// original specification.
//
// Signal insertion (Section V) must not change what the environment can
// observe: hiding the inserted internal signals, the transformed graph
// must allow exactly the specified input/output behaviour (Molnar's Foam
// Rubber Wrapper discipline). This module checks a weak bisimulation
// between the two graphs, where the hidden moves are the transitions of
// signals absent from the specification:
//   * soundness  — every implementation transition is either hidden or
//     matches a specification transition from the related state;
//   * completeness — every specification transition stays available:
//     inputs immediately (the environment never waits for hidden
//     signals), outputs after finitely many hidden moves.
#pragma once

#include <string>

#include "si/sg/state_graph.hpp"

namespace si::sg {

struct ProjectionResult {
    bool ok = false;
    std::string reason; ///< human-readable witness when !ok

    explicit operator bool() const { return ok; }
};

/// Checks that `impl` projects onto `spec` when all signals of `impl`
/// that do not exist (by name) in `spec` are hidden. Signals present in
/// `spec` must all exist in `impl` with the same kind.
[[nodiscard]] ProjectionResult check_projection(const StateGraph& impl, const StateGraph& spec);

} // namespace si::sg
