#include "si/sg/projection.hpp"

#include <deque>
#include <unordered_set>
#include <vector>

#include "si/util/parallel.hpp"
#include "si/util/state_store.hpp"

namespace si::sg {

namespace {

struct Pair {
    StateId impl;
    StateId spec;
    friend bool operator==(const Pair&, const Pair&) = default;
};

struct PairHash {
    std::size_t operator()(const Pair& p) const noexcept {
        std::uint64_t h = (std::uint64_t(p.impl.raw()) << 32) | p.spec.raw();
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 33;
        return static_cast<std::size_t>(h);
    }
};

} // namespace

ProjectionResult check_projection(const StateGraph& impl, const StateGraph& spec) {
    // Map implementation signals onto specification signals (invalid =
    // hidden internal signal).
    std::vector<SignalId> to_spec(impl.num_signals(), SignalId::invalid());
    for (std::size_t vi = 0; vi < impl.num_signals(); ++vi) {
        const SignalId s = spec.signals().find(impl.signals()[SignalId(vi)].name);
        if (!s.is_valid()) continue;
        if (spec.signals()[s].kind != impl.signals()[SignalId(vi)].kind)
            return {false, "signal '" + impl.signals()[SignalId(vi)].name +
                               "' changed kind between spec and implementation"};
        to_spec[vi] = s;
    }
    for (std::size_t vi = 0; vi < spec.num_signals(); ++vi) {
        if (!impl.signals().find(spec.signals()[SignalId(vi)].name).is_valid())
            return {false, "specification signal '" + spec.signals()[SignalId(vi)].name +
                               "' missing from the implementation"};
    }

    // Hidden-closure: implementation states reachable from s via hidden
    // transitions only (including s).
    auto hidden_closure = [&](StateId s) {
        std::vector<StateId> closure{s};
        BitVec seen(impl.num_states());
        seen.set(s.index());
        for (std::size_t i = 0; i < closure.size(); ++i) {
            for (const auto ai : impl.out_arcs(closure[i])) {
                const auto& arc = impl.arc(ai);
                if (to_spec[arc.signal.index()].is_valid()) continue;
                if (!seen.test(arc.to.index())) {
                    seen.set(arc.to.index());
                    closure.push_back(arc.to);
                }
            }
        }
        return closure;
    };

    // Visited product states. The fast path packs (impl, spec) into one
    // word in a flat open-addressing set, and memoizes per impl state
    // which signals fire somewhere in its hidden closure — the closure
    // walk is the hot inner loop and repeats for every spec state paired
    // with the same implementation state.
    const bool fast = util::fast_path();
    util::U64Set related_fast;
    std::unordered_set<Pair, PairHash> related;
    auto remember = [&](const Pair& q) {
        if (fast) return related_fast.insert((std::uint64_t(q.impl.raw()) << 32) | q.spec.raw());
        return related.insert(q).second;
    };
    std::vector<BitVec> avail(fast ? impl.num_states() : 0);
    std::vector<std::uint8_t> have_avail(fast ? impl.num_states() : 0, 0);
    auto hidden_avail = [&](StateId s) -> const BitVec& {
        if (!have_avail[s.index()]) {
            BitVec m(impl.num_signals());
            for (const StateId c : hidden_closure(s))
                for (const auto ai : impl.out_arcs(c)) m.set(impl.arc(ai).signal.index());
            avail[s.index()] = std::move(m);
            have_avail[s.index()] = 1;
        }
        return avail[s.index()];
    };

    remember({impl.initial(), spec.initial()});
    std::deque<Pair> queue{{impl.initial(), spec.initial()}};
    while (!queue.empty()) {
        const Pair p = queue.front();
        queue.pop_front();

        // Soundness: every impl transition is hidden or spec-matched.
        for (const auto ai : impl.out_arcs(p.impl)) {
            const auto& arc = impl.arc(ai);
            const SignalId vis = to_spec[arc.signal.index()];
            Pair next{arc.to, p.spec};
            if (vis.is_valid()) {
                const auto sa = spec.arc_on(p.spec, vis);
                const bool rising = impl.value(arc.to, arc.signal);
                if (sa == UINT32_MAX || spec.value(spec.arc(sa).to, vis) != rising)
                    return {false, "implementation fires " +
                                       to_string({arc.signal, rising}, impl.signals()) +
                                       " at " + impl.state_label(p.impl) +
                                       " which the spec forbids at " + spec.state_label(p.spec)};
                next.spec = spec.arc(sa).to;
            }
            if (remember(next)) queue.push_back(next);
        }

        // Completeness: every spec transition stays available — inputs
        // immediately, outputs within the hidden closure.
        for (const auto ai : spec.out_arcs(p.spec)) {
            const auto& arc = spec.arc(ai);
            const SignalId iv = impl.signals().find(spec.signals()[arc.signal].name);
            const bool is_input = spec.signals()[arc.signal].kind == SignalKind::Input;
            bool found = is_input ? impl.arc_on(p.impl, iv) != UINT32_MAX : false;
            if (!is_input) {
                if (fast) {
                    found = hidden_avail(p.impl).test(iv.index());
                } else {
                    for (const StateId c : hidden_closure(p.impl))
                        if (impl.arc_on(c, iv) != UINT32_MAX) found = true;
                }
            }
            if (!found)
                return {false, "specification transition " +
                                   to_string({arc.signal, spec.value(arc.to, arc.signal)},
                                             spec.signals()) +
                                   " enabled at " + spec.state_label(p.spec) +
                                   " is unavailable at implementation state " +
                                   impl.state_label(p.impl) +
                                   (is_input ? " (inputs must not wait for hidden signals)"
                                             : " (lost output option)")};
        }
    }
    return {true, {}};
}

} // namespace si::sg
