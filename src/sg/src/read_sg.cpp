#include "si/sg/read_sg.hpp"

#include <unordered_map>

#include "si/util/error.hpp"
#include "si/util/text.hpp"

namespace si::sg {

namespace {

BitVec parse_code(const std::string& tok, std::size_t width, std::size_t line_no) {
    if (tok.size() != width)
        throw ParseError(".sg line " + std::to_string(line_no + 1) + ": code '" + tok +
                         "' has wrong width");
    BitVec code(width);
    for (std::size_t i = 0; i < width; ++i) {
        if (tok[i] == '1')
            code.set(i);
        else if (tok[i] != '0')
            throw ParseError(".sg line " + std::to_string(line_no + 1) + ": bad code '" + tok + "'");
    }
    return code;
}

} // namespace

StateGraph read_sg(std::string_view text) {
    StateGraph sg;
    std::unordered_map<BitVec, StateId> by_code;
    bool in_arcs = false;
    bool saw_end = false;
    bool have_initial = false;

    auto state_of = [&](const BitVec& code) {
        if (const auto it = by_code.find(code); it != by_code.end()) return it->second;
        const StateId s = sg.add_state(code);
        by_code.emplace(code, s);
        return s;
    };

    const auto all_lines = lines_of(text);
    for (std::size_t ln = 0; ln < all_lines.size(); ++ln) {
        std::string_view raw = all_lines[ln];
        if (const auto hash = raw.find('#'); hash != std::string_view::npos)
            raw = raw.substr(0, hash);
        const auto toks = split(trim(raw));
        if (toks.empty()) continue;
        const std::string& head = toks[0];
        if (head == ".model") {
            if (toks.size() >= 2) sg.name = toks[1];
        } else if (head == ".inputs" || head == ".outputs" || head == ".internal") {
            const SignalKind kind = head == ".inputs"    ? SignalKind::Input
                                    : head == ".outputs" ? SignalKind::Output
                                                         : SignalKind::Internal;
            for (std::size_t i = 1; i < toks.size(); ++i) sg.signals().add(toks[i], kind);
        } else if (head == ".arcs") {
            in_arcs = true;
        } else if (head == ".initial") {
            if (toks.size() != 2) throw ParseError(".initial needs one code");
            sg.set_initial(state_of(parse_code(toks[1], sg.num_signals(), ln)));
            have_initial = true;
        } else if (head == ".end") {
            saw_end = true;
        } else if (in_arcs && toks.size() == 3) {
            const StateId from = state_of(parse_code(toks[0], sg.num_signals(), ln));
            const StateId to = state_of(parse_code(toks[2], sg.num_signals(), ln));
            const std::string& label = toks[1];
            if (label.size() < 2 || (label.back() != '+' && label.back() != '-'))
                throw ParseError(".sg line " + std::to_string(ln + 1) + ": bad edge '" + label + "'");
            const SignalId sig = sg.signals().find(label.substr(0, label.size() - 1));
            if (!sig.is_valid())
                throw ParseError(".sg line " + std::to_string(ln + 1) + ": unknown signal in '" +
                                 label + "'");
            const bool rising = label.back() == '+';
            if (sg.value(to, sig) != rising || sg.value(from, sig) == rising)
                throw ParseError(".sg line " + std::to_string(ln + 1) + ": edge '" + label +
                                 "' disagrees with codes");
            sg.add_arc(from, to, sig);
        } else {
            throw ParseError(".sg line " + std::to_string(ln + 1) + ": unexpected line");
        }
    }
    if (!saw_end) throw ParseError(".sg: missing .end");
    if (!have_initial) throw ParseError(".sg: missing .initial");
    return sg;
}

std::string write_sg(const StateGraph& sg) {
    std::string out = ".model " + sg.name + "\n";
    for (const auto kind : {SignalKind::Input, SignalKind::Output, SignalKind::Internal}) {
        std::string line;
        for (const auto& s : sg.signals().all())
            if (s.kind == kind) line += " " + s.name;
        if (line.empty()) continue;
        out += kind == SignalKind::Input ? ".inputs" : kind == SignalKind::Output ? ".outputs" : ".internal";
        out += line + "\n";
    }
    out += ".arcs\n";
    for (const auto& a : sg.arcs()) {
        out += sg.state(a.from).code.to_string() + " " + sg.signals()[a.signal].name +
               (sg.value(a.to, a.signal) ? "+" : "-") + " " + sg.state(a.to).code.to_string() + "\n";
    }
    out += ".initial " + sg.state(sg.initial()).code.to_string() + "\n.end\n";
    return out;
}

} // namespace si::sg
