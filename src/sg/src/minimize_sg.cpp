#include "si/sg/minimize_sg.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "si/util/error.hpp"

namespace si::sg {

namespace {

// Refinement signature: old class + sorted (signal -> successor class).
using Signature = std::pair<std::uint32_t, std::vector<std::pair<std::uint32_t, std::uint32_t>>>;

struct SignatureHash {
    std::size_t operator()(const Signature& s) const noexcept {
        std::uint64_t h = 0x9e3779b97f4a7c15ull ^ s.first;
        for (const auto& [signal, cls] : s.second)
            h ^= ((std::uint64_t(signal) << 32) | cls) + 0x9e3779b97f4a7c15ull + (h << 6) +
                 (h >> 2);
        return static_cast<std::size_t>(h);
    }
};

} // namespace

StateGraph minimize_bisimulation(const StateGraph& g, MinimizeStats* stats) {
    const BitVec reach = g.reachable();
    const std::size_t n = g.num_states();

    // class_of[s]: current partition block of state s (reachable only).
    std::vector<std::uint32_t> class_of(n, UINT32_MAX);
    {
        std::unordered_map<BitVec, std::uint32_t> by_code;
        reach.for_each_set([&](std::size_t si) {
            const auto [it, inserted] =
                by_code.emplace(g.state(StateId(si)).code,
                                static_cast<std::uint32_t>(by_code.size()));
            class_of[si] = it->second;
        });
    }

    std::size_t rounds = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        ++rounds;
        // Class ids are assigned in state-encounter order (not key
        // order), so the hashed container yields the same partition ids
        // as an ordered one.
        std::unordered_map<Signature, std::uint32_t, SignatureHash> sig_to_class;
        std::vector<std::uint32_t> next_class(n, UINT32_MAX);
        reach.for_each_set([&](std::size_t si) {
            std::vector<std::pair<std::uint32_t, std::uint32_t>> moves;
            for (const auto ai : g.state(StateId(si)).out) {
                const auto& arc = g.arc(ai);
                moves.emplace_back(static_cast<std::uint32_t>(arc.signal.index()),
                                   class_of[arc.to.index()]);
            }
            std::sort(moves.begin(), moves.end());
            const auto key = std::make_pair(class_of[si], std::move(moves));
            const auto [it, inserted] =
                sig_to_class.emplace(key, static_cast<std::uint32_t>(sig_to_class.size()));
            next_class[si] = it->second;
        });
        reach.for_each_set([&](std::size_t si) {
            if (next_class[si] != class_of[si]) changed = true;
        });
        class_of = std::move(next_class);
    }

    // Build the quotient.
    StateGraph out;
    out.name = g.name;
    for (const auto& s : g.signals().all()) out.signals().add(s.name, s.kind);
    std::unordered_map<std::uint32_t, StateId> rep;
    reach.for_each_set([&](std::size_t si) {
        if (!rep.count(class_of[si]))
            rep.emplace(class_of[si], out.add_state(g.state(StateId(si)).code));
    });
    std::unordered_set<std::uint64_t> arc_seen;
    reach.for_each_set([&](std::size_t si) {
        for (const auto ai : g.state(StateId(si)).out) {
            const auto& arc = g.arc(ai);
            const StateId from = rep.at(class_of[si]);
            const StateId to = rep.at(class_of[arc.to.index()]);
            if (arc_seen.insert((std::uint64_t(from.raw()) << 32) | to.raw()).second)
                out.add_arc(from, to, arc.signal);
        }
    });
    out.set_initial(rep.at(class_of[g.initial().index()]));

    if (stats) {
        stats->states_before = reach.count();
        stats->states_after = out.num_states();
        stats->refinement_rounds = rounds;
    }
    return out;
}

} // namespace si::sg
