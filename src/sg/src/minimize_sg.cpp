#include "si/sg/minimize_sg.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "si/util/error.hpp"
#include "si/util/parallel.hpp"
#include "si/util/state_store.hpp"

namespace si::sg {

namespace {

// Refinement signature: old class + sorted (signal -> successor class).
using Signature = std::pair<std::uint32_t, std::vector<std::pair<std::uint32_t, std::uint32_t>>>;

struct SignatureHash {
    std::size_t operator()(const Signature& s) const noexcept {
        std::uint64_t h = 0x9e3779b97f4a7c15ull ^ s.first;
        for (const auto& [signal, cls] : s.second)
            h ^= ((std::uint64_t(signal) << 32) | cls) + 0x9e3779b97f4a7c15ull + (h << 6) +
                 (h >> 2);
        return static_cast<std::size_t>(h);
    }
};

} // namespace

StateGraph minimize_bisimulation(const StateGraph& g, MinimizeStats* stats) {
    const BitVec reach = g.reachable();
    const std::size_t n = g.num_states();
    const bool fast = util::fast_path();

    // class_of[s]: current partition block of state s (reachable only).
    // Class ids are assigned in state-encounter order in both paths, so
    // the partitions (and the quotient) are identical; the fast path
    // interns packed code words in a StateStore instead of hashing BitVec
    // keys into per-node map entries.
    std::vector<std::uint32_t> class_of(n, UINT32_MAX);
    if (fast) {
        const std::size_t cw = (g.num_signals() + 63) / 64;
        util::StateStore by_code(cw);
        const std::uint64_t zero = 0; // signal-free graphs have empty codes
        reach.for_each_set([&](std::size_t si) {
            const std::uint64_t* w = cw ? g.state(StateId(si)).code.word_data() : &zero;
            class_of[si] = by_code.intern(w).first;
        });
    } else {
        std::unordered_map<BitVec, std::uint32_t> by_code;
        reach.for_each_set([&](std::size_t si) {
            const auto [it, inserted] =
                by_code.emplace(g.state(StateId(si)).code,
                                static_cast<std::uint32_t>(by_code.size()));
            class_of[si] = it->second;
        });
    }

    std::size_t rounds = 0;
    bool changed = true;
    std::vector<std::uint64_t> packed; // fast path: [old class, moves...]
    while (changed) {
        changed = false;
        ++rounds;
        // Class ids are assigned in state-encounter order (not key
        // order), so the hashed containers yield the same partition ids
        // as an ordered one.
        std::unordered_map<Signature, std::uint32_t, SignatureHash> sig_to_class;
        util::SeqStore sig_store;
        std::vector<std::uint32_t> next_class(n, UINT32_MAX);
        reach.for_each_set([&](std::size_t si) {
            if (fast) {
                packed.clear();
                packed.push_back(class_of[si]);
                for (const auto ai : g.out_arcs(StateId(si))) {
                    const auto& arc = g.arc(ai);
                    packed.push_back((std::uint64_t(arc.signal.index()) << 32) |
                                     class_of[arc.to.index()]);
                }
                std::sort(packed.begin() + 1, packed.end());
                next_class[si] = sig_store.intern(packed.data(), packed.size()).first;
                return;
            }
            std::vector<std::pair<std::uint32_t, std::uint32_t>> moves;
            for (const auto ai : g.out_arcs(StateId(si))) {
                const auto& arc = g.arc(ai);
                moves.emplace_back(static_cast<std::uint32_t>(arc.signal.index()),
                                   class_of[arc.to.index()]);
            }
            std::sort(moves.begin(), moves.end());
            const auto key = std::make_pair(class_of[si], std::move(moves));
            const auto [it, inserted] =
                sig_to_class.emplace(key, static_cast<std::uint32_t>(sig_to_class.size()));
            next_class[si] = it->second;
        });
        reach.for_each_set([&](std::size_t si) {
            if (next_class[si] != class_of[si]) changed = true;
        });
        class_of = std::move(next_class);
    }

    // Build the quotient. Class ids are dense (0..num classes), so the
    // fast path replaces the representative map with a flat vector and
    // the quotient-arc dedup set with packed keys. The signal is implied
    // by (from, to): consistent codes differ in exactly the fired bit.
    StateGraph out;
    out.name = g.name;
    for (const auto& s : g.signals().all()) out.signals().add(s.name, s.kind);
    if (fast) {
        std::uint32_t nclasses = 0;
        reach.for_each_set(
            [&](std::size_t si) { nclasses = std::max(nclasses, class_of[si] + 1); });
        std::vector<StateId> rep(nclasses, StateId::invalid());
        reach.for_each_set([&](std::size_t si) {
            if (!rep[class_of[si]].is_valid())
                rep[class_of[si]] = out.add_state(g.state(StateId(si)).code);
        });
        util::U64Set arc_seen;
        reach.for_each_set([&](std::size_t si) {
            for (const auto ai : g.out_arcs(StateId(si))) {
                const auto& arc = g.arc(ai);
                const StateId from = rep[class_of[si]];
                const StateId to = rep[class_of[arc.to.index()]];
                if (arc_seen.insert((std::uint64_t(from.raw()) << 32) | to.raw()))
                    out.add_arc(from, to, arc.signal);
            }
        });
        out.set_initial(rep[class_of[g.initial().index()]]);
    } else {
        std::unordered_map<std::uint32_t, StateId> rep;
        reach.for_each_set([&](std::size_t si) {
            if (!rep.count(class_of[si]))
                rep.emplace(class_of[si], out.add_state(g.state(StateId(si)).code));
        });
        std::unordered_set<std::uint64_t> arc_seen;
        reach.for_each_set([&](std::size_t si) {
            for (const auto ai : g.out_arcs(StateId(si))) {
                const auto& arc = g.arc(ai);
                const StateId from = rep.at(class_of[si]);
                const StateId to = rep.at(class_of[arc.to.index()]);
                if (arc_seen.insert((std::uint64_t(from.raw()) << 32) | to.raw()).second)
                    out.add_arc(from, to, arc.signal);
            }
        });
        out.set_initial(rep.at(class_of[g.initial().index()]));
    }

    if (stats) {
        stats->states_before = reach.count();
        stats->states_after = out.num_states();
        stats->refinement_rounds = rounds;
    }
    return out;
}

} // namespace si::sg
