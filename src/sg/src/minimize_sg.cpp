#include "si/sg/minimize_sg.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "si/util/error.hpp"

namespace si::sg {

StateGraph minimize_bisimulation(const StateGraph& g, MinimizeStats* stats) {
    const BitVec reach = g.reachable();
    const std::size_t n = g.num_states();

    // class_of[s]: current partition block of state s (reachable only).
    std::vector<std::uint32_t> class_of(n, UINT32_MAX);
    {
        std::unordered_map<BitVec, std::uint32_t> by_code;
        reach.for_each_set([&](std::size_t si) {
            const auto [it, inserted] =
                by_code.emplace(g.state(StateId(si)).code,
                                static_cast<std::uint32_t>(by_code.size()));
            class_of[si] = it->second;
        });
    }

    std::size_t rounds = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        ++rounds;
        // Signature: old class + sorted (signal -> successor class).
        std::map<std::pair<std::uint32_t, std::vector<std::pair<std::uint32_t, std::uint32_t>>>,
                 std::uint32_t>
            sig_to_class;
        std::vector<std::uint32_t> next_class(n, UINT32_MAX);
        reach.for_each_set([&](std::size_t si) {
            std::vector<std::pair<std::uint32_t, std::uint32_t>> moves;
            for (const auto ai : g.state(StateId(si)).out) {
                const auto& arc = g.arc(ai);
                moves.emplace_back(static_cast<std::uint32_t>(arc.signal.index()),
                                   class_of[arc.to.index()]);
            }
            std::sort(moves.begin(), moves.end());
            const auto key = std::make_pair(class_of[si], std::move(moves));
            const auto [it, inserted] =
                sig_to_class.emplace(key, static_cast<std::uint32_t>(sig_to_class.size()));
            next_class[si] = it->second;
        });
        reach.for_each_set([&](std::size_t si) {
            if (next_class[si] != class_of[si]) changed = true;
        });
        class_of = std::move(next_class);
    }

    // Build the quotient.
    StateGraph out;
    out.name = g.name;
    for (const auto& s : g.signals().all()) out.signals().add(s.name, s.kind);
    std::map<std::uint32_t, StateId> rep;
    reach.for_each_set([&](std::size_t si) {
        if (!rep.count(class_of[si]))
            rep.emplace(class_of[si], out.add_state(g.state(StateId(si)).code));
    });
    std::map<std::pair<std::uint32_t, std::uint32_t>, bool> arc_seen;
    reach.for_each_set([&](std::size_t si) {
        for (const auto ai : g.state(StateId(si)).out) {
            const auto& arc = g.arc(ai);
            const StateId from = rep.at(class_of[si]);
            const StateId to = rep.at(class_of[arc.to.index()]);
            if (arc_seen.emplace(std::make_pair(from.raw(), to.raw()), true).second)
                out.add_arc(from, to, arc.signal);
        }
    });
    out.set_initial(rep.at(class_of[g.initial().index()]));

    if (stats) {
        stats->states_before = reach.count();
        stats->states_after = out.num_states();
        stats->refinement_rounds = rounds;
    }
    return out;
}

} // namespace si::sg
