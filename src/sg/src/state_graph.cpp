#include "si/sg/state_graph.hpp"

#include <deque>

#include "si/obs/obs.hpp"
#include "si/util/error.hpp"
#include "si/util/parallel.hpp"

namespace si::sg {

void StateGraph::reserve(std::size_t nstates, std::size_t narcs) {
    states_.reserve(nstates);
    arcs_.reserve(narcs);
    out_head_.reserve(nstates);
    out_tail_.reserve(nstates);
    in_head_.reserve(nstates);
    in_tail_.reserve(nstates);
    out_next_.reserve(narcs);
    in_next_.reserve(narcs);
    const std::size_t ns = signals_.size();
    if (ns == 0) return;
    if (excited_rows_.size() != ns) { // pins the signal count, as add_state does
        require(states_.empty(), "signal table changed after states were added");
        excited_rows_.assign(ns, BitVec());
        value_rows_.assign(ns, BitVec());
    }
    for (std::size_t v = 0; v < ns; ++v) {
        if (excited_rows_[v].size() < nstates) excited_rows_[v].resize(nstates);
        if (value_rows_[v].size() < nstates) value_rows_[v].resize(nstates);
    }
    if (arc_on_.size() < nstates * ns) arc_on_.resize(nstates * ns, UINT32_MAX);
}

StateId StateGraph::add_state(BitVec code) {
    require(code.size() == signals_.size(), "state code width mismatch");
    const std::size_t ns = signals_.size();
    if (excited_rows_.size() != ns) { // first state pins the signal count
        require(states_.empty(), "signal table changed after states were added");
        excited_rows_.assign(ns, BitVec());
        value_rows_.assign(ns, BitVec());
    }
    const std::size_t si = states_.size();
    for (std::size_t v = 0; v < ns; ++v) {
        if (excited_rows_[v].size() < si + 1) excited_rows_[v].resize(si + 1);
        if (value_rows_[v].size() < si + 1) value_rows_[v].resize(si + 1);
        if (code.test(v)) value_rows_[v].set(si);
    }
    if (arc_on_.size() < (si + 1) * ns) arc_on_.resize((si + 1) * ns, UINT32_MAX);
    states_.push_back(State{std::move(code)});
    out_head_.push_back(UINT32_MAX);
    out_tail_.push_back(UINT32_MAX);
    in_head_.push_back(UINT32_MAX);
    in_tail_.push_back(UINT32_MAX);
    return StateId(si);
}

std::uint32_t StateGraph::add_arc(StateId from, StateId to, SignalId signal) {
    const BitVec& cf = states_[from.index()].code;
    const BitVec& ct = states_[to.index()].code;
    // Consistency: the codes differ in exactly bit `signal` — checked
    // word-wise without materializing the xor.
    const std::uint64_t* wf = cf.word_data();
    const std::uint64_t* wt = ct.word_data();
    const std::size_t sig_word = signal.index() / 64;
    const std::uint64_t sig_bit = std::uint64_t(1) << (signal.index() % 64);
    bool consistent = sig_word < cf.num_words() && (wf[sig_word] ^ wt[sig_word]) == sig_bit;
    for (std::size_t w = 0; consistent && w < cf.num_words(); ++w)
        if (w != sig_word && wf[w] != wt[w]) consistent = false;
    if (!consistent)
        throw SpecError("inconsistent arc " + state_label(from) + " -> " + state_label(to) +
                        " on signal " + signals_[signal].name);
    const auto idx = static_cast<std::uint32_t>(arcs_.size());
    arcs_.push_back(Arc{from, to, signal});
    out_next_.push_back(UINT32_MAX);
    in_next_.push_back(UINT32_MAX);
    if (out_head_[from.index()] == UINT32_MAX)
        out_head_[from.index()] = idx;
    else
        out_next_[out_tail_[from.index()]] = idx;
    out_tail_[from.index()] = idx;
    if (in_head_[to.index()] == UINT32_MAX)
        in_head_[to.index()] = idx;
    else
        in_next_[in_tail_[to.index()]] = idx;
    in_tail_[to.index()] = idx;
    excited_rows_[signal.index()].set(from.index());
    auto& slot = arc_on_[from.index() * signals_.size() + signal.index()];
    if (slot == UINT32_MAX) slot = idx;
    return idx;
}

bool StateGraph::excited(StateId s, SignalId v) const {
    if (util::fast_path()) {
        obs::hot(obs::Hot::ExcitedIndexHit);
        return excited_rows_[v.index()].test(s.index());
    }
    for (const auto a : out_arcs(s))
        if (arcs_[a].signal == v) return true;
    return false;
}

std::uint32_t StateGraph::arc_on(StateId s, SignalId v) const {
    if (util::fast_path()) {
        obs::hot(obs::Hot::ArcOnIndexHit);
        return arc_on_[s.index() * signals_.size() + v.index()];
    }
    for (const auto a : out_arcs(s))
        if (arcs_[a].signal == v) return a;
    return UINT32_MAX;
}

SignalEdge StateGraph::edge_of(std::uint32_t arc_index) const {
    const Arc& a = arcs_[arc_index];
    return SignalEdge{a.signal, states_[a.to.index()].code.test(a.signal.index())};
}

BitVec StateGraph::reachable() const {
    BitVec seen(states_.size());
    if (states_.empty()) return seen;
    std::deque<StateId> queue{initial_};
    seen.set(initial_.index());
    while (!queue.empty()) {
        const StateId s = queue.front();
        queue.pop_front();
        for (const auto a : out_arcs(s)) {
            const StateId t = arcs_[a].to;
            if (!seen.test(t.index())) {
                seen.set(t.index());
                queue.push_back(t);
            }
        }
    }
    return seen;
}

StateId StateGraph::find_by_code(const BitVec& code) const {
    for (std::size_t i = 0; i < states_.size(); ++i)
        if (states_[i].code == code) return StateId(i);
    return StateId::invalid();
}

std::string StateGraph::state_label(StateId s) const {
    std::string out;
    for (std::size_t v = 0; v < signals_.size(); ++v) {
        out += value(s, SignalId(v)) ? '1' : '0';
        if (excited(s, SignalId(v))) out += '*';
    }
    return out;
}

std::string StateGraph::dump() const {
    std::string out = name + ": " + std::to_string(states_.size()) + " states, " +
                      std::to_string(arcs_.size()) + " arcs, signals";
    for (const auto& sig : signals_.all()) out += " " + sig.name;
    out += "\n";
    for (std::size_t i = 0; i < states_.size(); ++i) {
        const StateId s{i};
        out += "  " + state_label(s);
        if (s == initial_) out += " (initial)";
        for (const auto a : out_arcs(s)) {
            out += "  " + to_string(edge_of(a), signals_) + "->" + state_label(arcs_[a].to);
        }
        out += "\n";
    }
    return out;
}

} // namespace si::sg
