#include "si/sg/state_graph.hpp"

#include <deque>

#include "si/obs/obs.hpp"
#include "si/util/error.hpp"
#include "si/util/parallel.hpp"

namespace si::sg {

StateId StateGraph::add_state(BitVec code) {
    require(code.size() == signals_.size(), "state code width mismatch");
    const std::size_t ns = signals_.size();
    if (excited_rows_.size() != ns) { // first state pins the signal count
        require(states_.empty(), "signal table changed after states were added");
        excited_rows_.assign(ns, BitVec());
        value_rows_.assign(ns, BitVec());
    }
    const std::size_t si = states_.size();
    for (std::size_t v = 0; v < ns; ++v) {
        excited_rows_[v].resize(si + 1);
        value_rows_[v].resize(si + 1);
        if (code.test(v)) value_rows_[v].set(si);
    }
    arc_on_.resize(arc_on_.size() + ns, UINT32_MAX);
    states_.push_back(State{std::move(code), {}, {}});
    return StateId(si);
}

std::uint32_t StateGraph::add_arc(StateId from, StateId to, SignalId signal) {
    const BitVec& cf = states_[from.index()].code;
    const BitVec& ct = states_[to.index()].code;
    BitVec diff = cf;
    diff ^= ct;
    if (diff.count() != 1 || !diff.test(signal.index()))
        throw SpecError("inconsistent arc " + state_label(from) + " -> " + state_label(to) +
                        " on signal " + signals_[signal].name);
    const auto idx = static_cast<std::uint32_t>(arcs_.size());
    arcs_.push_back(Arc{from, to, signal});
    states_[from.index()].out.push_back(idx);
    states_[to.index()].in.push_back(idx);
    excited_rows_[signal.index()].set(from.index());
    auto& slot = arc_on_[from.index() * signals_.size() + signal.index()];
    if (slot == UINT32_MAX) slot = idx;
    return idx;
}

bool StateGraph::excited(StateId s, SignalId v) const {
    if (util::fast_path()) {
        obs::hot(obs::Hot::ExcitedIndexHit);
        return excited_rows_[v.index()].test(s.index());
    }
    for (const auto a : states_[s.index()].out)
        if (arcs_[a].signal == v) return true;
    return false;
}

std::uint32_t StateGraph::arc_on(StateId s, SignalId v) const {
    if (util::fast_path()) {
        obs::hot(obs::Hot::ArcOnIndexHit);
        return arc_on_[s.index() * signals_.size() + v.index()];
    }
    for (const auto a : states_[s.index()].out)
        if (arcs_[a].signal == v) return a;
    return UINT32_MAX;
}

SignalEdge StateGraph::edge_of(std::uint32_t arc_index) const {
    const Arc& a = arcs_[arc_index];
    return SignalEdge{a.signal, states_[a.to.index()].code.test(a.signal.index())};
}

BitVec StateGraph::reachable() const {
    BitVec seen(states_.size());
    if (states_.empty()) return seen;
    std::deque<StateId> queue{initial_};
    seen.set(initial_.index());
    while (!queue.empty()) {
        const StateId s = queue.front();
        queue.pop_front();
        for (const auto a : states_[s.index()].out) {
            const StateId t = arcs_[a].to;
            if (!seen.test(t.index())) {
                seen.set(t.index());
                queue.push_back(t);
            }
        }
    }
    return seen;
}

StateId StateGraph::find_by_code(const BitVec& code) const {
    for (std::size_t i = 0; i < states_.size(); ++i)
        if (states_[i].code == code) return StateId(i);
    return StateId::invalid();
}

std::string StateGraph::state_label(StateId s) const {
    std::string out;
    for (std::size_t v = 0; v < signals_.size(); ++v) {
        out += value(s, SignalId(v)) ? '1' : '0';
        if (excited(s, SignalId(v))) out += '*';
    }
    return out;
}

std::string StateGraph::dump() const {
    std::string out = name + ": " + std::to_string(states_.size()) + " states, " +
                      std::to_string(arcs_.size()) + " arcs, signals";
    for (const auto& sig : signals_.all()) out += " " + sig.name;
    out += "\n";
    for (std::size_t i = 0; i < states_.size(); ++i) {
        const StateId s{i};
        out += "  " + state_label(s);
        if (s == initial_) out += " (initial)";
        for (const auto a : states_[i].out) {
            out += "  " + to_string(edge_of(a), signals_) + "->" + state_label(arcs_[a].to);
        }
        out += "\n";
    }
    return out;
}

} // namespace si::sg
