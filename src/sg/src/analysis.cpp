#include "si/sg/analysis.hpp"

#include <unordered_map>

#include "si/util/error.hpp"
#include "si/util/parallel.hpp"
#include "si/util/state_store.hpp"

namespace si::sg {

std::string ConflictWitness::describe(const StateGraph& sg) const {
    return std::string(internal ? "internal" : "input") + " conflict at " + sg.state_label(state) +
           ": firing " + sg.signals()[by].name + " -> " + sg.state_label(successor) + " disables " +
           sg.signals()[signal].name;
}

std::string DetonantWitness::describe(const StateGraph& sg) const {
    return "detonant state " + sg.state_label(state) + " w.r.t. " + sg.signals()[signal].name +
           ": excited in both " + sg.state_label(successor_a) + " and " + sg.state_label(successor_b);
}

std::string CscWitness::describe(const StateGraph& sg) const {
    return "CSC violation: states " + sg.state_label(a) + " and " + sg.state_label(b) +
           " share code " + sg.state(a).code.to_string() + " but differ in excitation of " +
           sg.signals()[differs_on].name;
}

std::vector<ConflictWitness> find_conflicts(const StateGraph& sg) {
    std::vector<ConflictWitness> out;
    const BitVec reach = sg.reachable();
    for (std::size_t si = 0; si < sg.num_states(); ++si) {
        const StateId s{si};
        if (!reach.test(si)) continue;
        for (std::size_t vi = 0; vi < sg.num_signals(); ++vi) {
            const SignalId v{vi};
            if (!sg.excited(s, v)) continue;
            for (const auto a : sg.out_arcs(s)) {
                const Arc& arc = sg.arc(a);
                if (arc.signal == v) continue;
                // v is "disabled" if stable (same value, not excited) in
                // the successor.
                if (!sg.excited(arc.to, v)) {
                    out.push_back(ConflictWitness{s, v, arc.signal, arc.to,
                                                  is_non_input(sg.signals()[v].kind)});
                }
            }
        }
    }
    return out;
}

std::vector<DetonantWitness> find_detonants(const StateGraph& sg) {
    std::vector<DetonantWitness> out;
    const BitVec reach = sg.reachable();
    for (std::size_t si = 0; si < sg.num_states(); ++si) {
        const StateId s{si};
        if (!reach.test(si)) continue;
        for (std::size_t vi = 0; vi < sg.num_signals(); ++vi) {
            const SignalId v{vi};
            if (!is_non_input(sg.signals()[v].kind)) continue;
            if (sg.excited(s, v)) continue;
            // Collect pairs of *concurrent* successors in which v is
            // excited. Successors reached by conflicting transitions
            // (choices — e.g. an input deciding between behaviours) are
            // alternatives, not OR-causality, and do not detonate.
            std::vector<std::uint32_t> outs;
            for (const auto a : sg.out_arcs(s)) outs.push_back(a);
            for (std::size_t i = 0; i < outs.size(); ++i) {
                for (std::size_t j = i + 1; j < outs.size(); ++j) {
                    const Arc& a1 = sg.arc(outs[i]);
                    const Arc& a2 = sg.arc(outs[j]);
                    if (!sg.excited(a1.to, v) || !sg.excited(a2.to, v)) continue;
                    // Concurrent = neither firing disables the other.
                    if (!sg.excited(a1.to, a2.signal) || !sg.excited(a2.to, a1.signal))
                        continue;
                    out.push_back(DetonantWitness{s, v, a1.to, a2.to});
                }
            }
        }
    }
    return out;
}

bool is_semimodular(const StateGraph& sg) { return find_conflicts(sg).empty(); }

bool is_output_semimodular(const StateGraph& sg) {
    for (const auto& c : find_conflicts(sg))
        if (c.internal) return false;
    return true;
}

bool is_output_distributive(const StateGraph& sg) {
    return is_output_semimodular(sg) && find_detonants(sg).empty();
}

namespace {

template <class BucketsFn>
std::vector<CscWitness> csc_from_buckets(const StateGraph& sg, const BucketsFn& for_each_bucket) {
    std::vector<CscWitness> out;
    for_each_bucket([&](const std::vector<StateId>& states) {
        for (std::size_t i = 0; i < states.size(); ++i) {
            for (std::size_t j = i + 1; j < states.size(); ++j) {
                for (std::size_t vi = 0; vi < sg.num_signals(); ++vi) {
                    const SignalId v{vi};
                    if (!is_non_input(sg.signals()[v].kind)) continue;
                    if (sg.excited(states[i], v) != sg.excited(states[j], v)) {
                        out.push_back(CscWitness{states[i], states[j], v});
                        break; // one witness per pair suffices
                    }
                }
            }
        }
    });
    return out;
}

} // namespace

std::vector<CscWitness> find_csc_violations(const StateGraph& sg) {
    const BitVec reach = sg.reachable();
    if (util::fast_path()) {
        // Bucket by interned code id; buckets come out in state-encounter
        // order, so the witness list is deterministic.
        const std::size_t cw = (sg.num_signals() + 63) / 64;
        util::StateStore store(cw);
        const std::uint64_t zero = 0;
        std::vector<std::vector<StateId>> buckets;
        for (std::size_t si = 0; si < sg.num_states(); ++si) {
            if (!reach.test(si)) continue;
            const std::uint64_t* w = cw ? sg.state(StateId(si)).code.word_data() : &zero;
            const auto [id, inserted] = store.intern(w);
            if (inserted) buckets.emplace_back();
            buckets[id].emplace_back(si);
        }
        return csc_from_buckets(sg, [&](auto&& fn) {
            for (const auto& states : buckets) fn(states);
        });
    }
    std::unordered_map<BitVec, std::vector<StateId>> buckets;
    for (std::size_t si = 0; si < sg.num_states(); ++si)
        if (reach.test(si)) buckets[sg.state(StateId(si)).code].push_back(StateId(si));
    return csc_from_buckets(sg, [&](auto&& fn) {
        for (const auto& [code, states] : buckets) fn(states);
    });
}

bool has_unique_state_coding(const StateGraph& sg) {
    const BitVec reach = sg.reachable();
    if (util::fast_path()) {
        const std::size_t cw = (sg.num_signals() + 63) / 64;
        util::StateStore seen(cw);
        const std::uint64_t zero = 0;
        for (std::size_t si = 0; si < sg.num_states(); ++si) {
            if (!reach.test(si)) continue;
            const std::uint64_t* w = cw ? sg.state(StateId(si)).code.word_data() : &zero;
            if (!seen.intern(w).second) return false;
        }
        return true;
    }
    std::unordered_map<BitVec, StateId> seen;
    for (std::size_t si = 0; si < sg.num_states(); ++si) {
        if (!reach.test(si)) continue;
        const auto [it, inserted] = seen.emplace(sg.state(StateId(si)).code, StateId(si));
        if (!inserted) return false;
    }
    return true;
}

std::optional<std::string> check_well_formed(const StateGraph& sg) {
    if (sg.num_states() == 0) return "state graph has no states";
    if (!sg.initial().is_valid() || sg.initial().index() >= sg.num_states())
        return "invalid initial state";
    for (const auto& a : sg.arcs()) {
        BitVec diff = sg.state(a.from).code;
        diff ^= sg.state(a.to).code;
        if (diff.count() != 1 || !diff.test(a.signal.index()))
            return "arc " + sg.state_label(a.from) + "->" + sg.state_label(a.to) +
                   " violates the state assignment rule";
    }
    // Interleaving semantics: at most one arc per (state, signal).
    for (std::size_t si = 0; si < sg.num_states(); ++si) {
        std::vector<bool> seen(sg.num_signals(), false);
        for (const auto ai : sg.out_arcs(StateId(si))) {
            const auto v = sg.arc(ai).signal.index();
            if (seen[v])
                return "state " + sg.state_label(StateId(si)) + " fires signal " +
                       sg.signals()[SignalId(v)].name + " twice";
            seen[v] = true;
        }
    }
    return std::nullopt;
}

} // namespace si::sg
