#include "si/sg/dot.hpp"

#include <algorithm>
#include <deque>
#include <optional>

namespace si::sg {

std::string to_dot(const StateGraph& sg, const DotOptions& opts) {
    std::string out = "digraph \"" + sg.name + "\" {\n  rankdir=TB;\n  node [shape=ellipse, fontname=monospace];\n";
    for (std::size_t si = 0; si < sg.num_states(); ++si) {
        const StateId s{si};
        out += "  s" + std::to_string(si) + " [label=\"" + sg.state_label(s) + "\"";
        if (s == sg.initial()) out += ", peripheries=2";
        if (opts.highlight && opts.highlight->test(si))
            out += ", style=filled, fillcolor=" + opts.highlight_color;
        out += "];\n";
    }
    for (const auto& a : sg.arcs()) {
        out += "  s" + std::to_string(a.from.index()) + " -> s" + std::to_string(a.to.index()) +
               " [label=\"" + to_string(sg.edge_of(static_cast<std::uint32_t>(&a - sg.arcs().data())),
                                       sg.signals()) +
               "\"];\n";
    }
    out += "}\n";
    return out;
}

std::optional<std::vector<std::string>> shortest_path(const StateGraph& sg, StateId from,
                                                      StateId to) {
    std::vector<std::uint32_t> via(sg.num_states(), UINT32_MAX);
    std::vector<bool> seen(sg.num_states(), false);
    std::deque<StateId> queue{from};
    seen[from.index()] = true;
    while (!queue.empty()) {
        const StateId s = queue.front();
        queue.pop_front();
        if (s == to) break;
        for (const auto ai : sg.out_arcs(s)) {
            const StateId t = sg.arc(ai).to;
            if (seen[t.index()]) continue;
            seen[t.index()] = true;
            via[t.index()] = ai;
            queue.push_back(t);
        }
    }
    if (!seen[to.index()]) return std::nullopt;
    std::vector<std::string> labels;
    for (StateId s = to; s != from;) {
        const auto ai = via[s.index()];
        labels.push_back(to_string(sg.edge_of(ai), sg.signals()));
        s = sg.arc(ai).from;
    }
    std::reverse(labels.begin(), labels.end());
    return labels;
}

} // namespace si::sg
