#include "si/sg/regions.hpp"

#include <algorithm>
#include <deque>

#include "si/obs/obs.hpp"
#include "si/util/error.hpp"
#include "si/util/parallel.hpp"

namespace si::sg {

bool Region::persistent() const {
    for (const auto& t : triggers)
        if (!ordered_signals.test(t.signal.index())) return false;
    return true;
}

std::string Region::label(const StateGraph& sg) const {
    return std::string("ER(") + (rising ? "+" : "-") + sg.signals()[signal].name + "," +
           std::to_string(instance) + ")";
}

namespace {

// Connected components (undirected) of `members` within the graph;
// returns one BitVec per component, ordered by smallest contained
// BFS-order rank so instance numbering is deterministic and follows the
// behaviour from the initial state.
std::vector<BitVec> components(const StateGraph& sg, const BitVec& members,
                               const std::vector<std::uint32_t>& bfs_rank) {
    std::vector<BitVec> comps;
    BitVec seen(sg.num_states());
    members.for_each_set([&](std::size_t start) {
        if (seen.test(start)) return;
        BitVec comp(sg.num_states());
        std::deque<std::size_t> queue{start};
        seen.set(start);
        comp.set(start);
        while (!queue.empty()) {
            const std::size_t s = queue.front();
            queue.pop_front();
            auto visit = [&](StateId t) {
                if (members.test(t.index()) && !seen.test(t.index())) {
                    seen.set(t.index());
                    comp.set(t.index());
                    queue.push_back(t.index());
                }
            };
            for (const auto a : sg.out_arcs(StateId(s))) visit(sg.arc(a).to);
            for (const auto a : sg.in_arcs(StateId(s))) visit(sg.arc(a).from);
        }
        comps.push_back(std::move(comp));
    });
    std::sort(comps.begin(), comps.end(), [&](const BitVec& x, const BitVec& y) {
        std::uint32_t rx = UINT32_MAX, ry = UINT32_MAX;
        x.for_each_set([&](std::size_t i) { rx = std::min(rx, bfs_rank[i]); });
        y.for_each_set([&](std::size_t i) { ry = std::min(ry, bfs_rank[i]); });
        return rx < ry;
    });
    return comps;
}

} // namespace

RegionAnalysis::RegionAnalysis(const StateGraph& sg) : sg_(&sg), reachable_(sg.reachable()) {
    obs::Span span("sg.regions");
    span.attr("sg", sg.name);
    const std::size_t n = sg.num_states();
    region_at_.assign(n * sg.num_signals(), UINT32_MAX);

    // BFS ranks for deterministic instance numbering.
    std::vector<std::uint32_t> bfs_rank(n, UINT32_MAX);
    {
        std::deque<StateId> queue{sg.initial()};
        std::uint32_t next = 0;
        bfs_rank[sg.initial().index()] = next++;
        while (!queue.empty()) {
            const StateId s = queue.front();
            queue.pop_front();
            for (const auto a : sg.out_arcs(s)) {
                const StateId t = sg.arc(a).to;
                if (bfs_rank[t.index()] == UINT32_MAX) {
                    bfs_rank[t.index()] = next++;
                    queue.push_back(t);
                }
            }
        }
    }

    per_signal_.resize(sg.num_signals());
    for (std::size_t vi = 0; vi < sg.num_signals(); ++vi) {
        const SignalId v{vi};
        auto& ps = per_signal_[vi];
        if (util::fast_path()) {
            // Word-wide from the excitation index: the 0*/1*/0/1-sets are
            // intersections of {excited, ~excited} x {value, ~value}
            // restricted to the reachable mask.
            const BitVec excited = sg.excited_set(v) & reachable_;
            const BitVec& value = sg.value_set(v);
            ps.excited1 = excited & value;
            ps.excited0 = excited;
            ps.excited0.and_not(value);
            BitVec stable = reachable_;
            stable.and_not(excited);
            ps.stable1 = stable & value;
            ps.stable0 = std::move(stable);
            ps.stable0.and_not(value);
        } else {
            ps.stable0 = BitVec(n);
            ps.stable1 = BitVec(n);
            ps.excited0 = BitVec(n);
            ps.excited1 = BitVec(n);
            reachable_.for_each_set([&](std::size_t si) {
                const StateId s{si};
                const bool val = sg.value(s, v);
                const bool exc = sg.excited(s, v);
                (exc ? (val ? ps.excited1 : ps.excited0) : (val ? ps.stable1 : ps.stable0))
                    .set(si);
            });
        }

        // Excitation regions: components of excited0 (ERs of +v) and of
        // excited1 (ERs of -v), interleaved by discovery order for
        // instance numbering within each polarity.
        int next_up = 1;
        int next_down = 1;
        for (const bool rising : {true, false}) {
            for (auto& comp : components(sg, rising ? ps.excited0 : ps.excited1, bfs_rank)) {
                Region r;
                r.signal = v;
                r.rising = rising;
                r.instance = rising ? next_up++ : next_down++;
                r.states = std::move(comp);
                regions_.push_back(std::move(r));
            }
        }
    }

    // Derived facts per region.
    for (std::size_t ri = 0; ri < regions_.size(); ++ri) {
        Region& r = regions_[ri];
        r.states.for_each_set([&](std::size_t si) {
            region_at_[si * sg.num_signals() + r.signal.index()] = static_cast<std::uint32_t>(ri);
        });

        // Minimal states: no predecessor inside the region.
        r.states.for_each_set([&](std::size_t si) {
            const StateId s{si};
            for (const auto a : sg.in_arcs(s))
                if (r.states.test(sg.arc(a).from.index())) return;
            r.minimal_states.push_back(s);
        });

        // Triggers: labels of arcs entering from outside.
        r.states.for_each_set([&](std::size_t si) {
            const StateId s{si};
            for (const auto a : sg.in_arcs(s)) {
                if (r.states.test(sg.arc(a).from.index())) continue;
                if (!reachable_.test(sg.arc(a).from.index())) continue;
                const SignalEdge e = sg.edge_of(a);
                if (std::find(r.triggers.begin(), r.triggers.end(), e) == r.triggers.end())
                    r.triggers.push_back(e);
            }
        });

        // Ordered signals: no transition of b excited within the ER.
        r.ordered_signals = BitVec(sg.num_signals());
        if (util::fast_path()) {
            for (std::size_t bi = 0; bi < sg.num_signals(); ++bi)
                if (!r.states.intersects(sg.excited_set(SignalId(bi))))
                    r.ordered_signals.set(bi);
        } else {
            for (std::size_t bi = 0; bi < sg.num_signals(); ++bi) {
                bool ordered = true;
                r.states.for_each_set([&](std::size_t si) {
                    if (sg.excited(StateId(si), SignalId(bi))) ordered = false;
                });
                if (ordered) r.ordered_signals.set(bi);
            }
        }

        // Quiescent region: stable components entered by firing this
        // region's transition.
        r.quiescent = BitVec(n);
        const auto& stable_after =
            r.rising ? per_signal_[r.signal.index()].stable1 : per_signal_[r.signal.index()].stable0;
        r.states.for_each_set([&](std::size_t si) {
            const StateId s{si};
            const auto a = sg.arc_on(s, r.signal);
            if (a == UINT32_MAX) return;
            const StateId t = sg.arc(a).to;
            if (!stable_after.test(t.index())) return; // lands straight in the next ER
            if (r.quiescent.test(t.index())) return;
            // Flood the stable component containing t.
            std::deque<StateId> queue{t};
            r.quiescent.set(t.index());
            while (!queue.empty()) {
                const StateId u = queue.front();
                queue.pop_front();
                auto visit = [&](StateId w) {
                    if (stable_after.test(w.index()) && !r.quiescent.test(w.index())) {
                        r.quiescent.set(w.index());
                        queue.push_back(w);
                    }
                };
                for (const auto ai : sg.out_arcs(u)) visit(sg.arc(ai).to);
                for (const auto ai : sg.in_arcs(u)) visit(sg.arc(ai).from);
            }
        });

        r.cfr = r.states | r.quiescent;
    }
    span.attr("regions", static_cast<std::uint64_t>(regions_.size()));
    if (obs::enabled()) obs::count("sg.regions", regions_.size());
}

std::vector<RegionId> RegionAnalysis::regions_of(SignalId v) const {
    std::vector<RegionId> out;
    for (std::size_t i = 0; i < regions_.size(); ++i)
        if (regions_[i].signal == v) out.push_back(RegionId(i));
    return out;
}

RegionId RegionAnalysis::region_containing(StateId s, SignalId v) const {
    const auto idx = region_at_[s.index() * sg_->num_signals() + v.index()];
    return idx == UINT32_MAX ? RegionId::invalid() : RegionId(idx);
}

bool RegionAnalysis::all_unique_entry() const {
    for (const auto& r : regions_)
        if (is_non_input(sg_->signals()[r.signal].kind) && !r.unique_entry()) return false;
    return true;
}

bool RegionAnalysis::all_persistent() const {
    for (const auto& r : regions_)
        if (is_non_input(sg_->signals()[r.signal].kind) && !r.persistent()) return false;
    return true;
}

std::string RegionAnalysis::report() const {
    std::string out;
    for (const auto& r : regions_) {
        out += r.label(*sg_) + ": {";
        bool first = true;
        r.states.for_each_set([&](std::size_t si) {
            if (!first) out += ", ";
            out += sg_->state_label(StateId(si));
            first = false;
        });
        out += "}";
        out += r.unique_entry() ? " unique-entry" : " MULTIPLE-ENTRY";
        out += r.persistent() ? " persistent" : " NON-PERSISTENT";
        out += " triggers:";
        for (const auto& t : r.triggers) out += " " + to_string(t, sg_->signals());
        out += "\n";
    }
    return out;
}

} // namespace si::sg
