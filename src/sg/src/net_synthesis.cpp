#include "si/sg/net_synthesis.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <deque>
#include <map>
#include <set>

#include "si/sg/analysis.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/projection.hpp"
#include "si/sg/regions.hpp"
#include "si/util/error.hpp"

namespace si::sg {

namespace {

// One transition of the synthesized net: an excitation-region instance
// of a signal, with all its state-graph arcs.
struct Event {
    SignalId signal;
    bool rising;
    int instance;
    std::vector<std::uint32_t> arcs;
    BitVec sources; // = the excitation set ES(e)
};

std::vector<Event> collect_events(const StateGraph& g) {
    const RegionAnalysis ra(g);
    std::vector<Event> events;
    for (const auto& r : ra.regions()) {
        Event e;
        e.signal = r.signal;
        e.rising = r.rising;
        e.instance = r.instance;
        e.sources = BitVec(g.num_states());
        r.states.for_each_set([&](std::size_t si) {
            const auto a = g.arc_on(StateId(si), r.signal);
            if (a != UINT32_MAX) {
                e.arcs.push_back(a);
                e.sources.set(si);
            }
        });
        if (!e.arcs.empty()) events.push_back(std::move(e));
    }
    return events;
}

// Crossing census of event f w.r.t. candidate set R.
struct Crossing {
    std::size_t enter = 0;
    std::size_t exit = 0;
    std::size_t total = 0;
};

Crossing census(const StateGraph& g, const Event& f, const BitVec& r) {
    Crossing c;
    c.total = f.arcs.size();
    for (const auto ai : f.arcs) {
        const bool src_in = r.test(g.arc(ai).from.index());
        const bool dst_in = r.test(g.arc(ai).to.index());
        if (!src_in && dst_in) ++c.enter;
        if (src_in && !dst_in) ++c.exit;
    }
    return c;
}

bool legal_for(const Crossing& c) {
    return (c.enter == 0 && c.exit == 0) || c.enter == c.total || c.exit == c.total;
}

// Grows ES(e) into the minimal legal regions all e-arcs exit.
std::vector<BitVec> minimal_preregions(const StateGraph& g, const std::vector<Event>& events,
                                       const Event& e, std::size_t* budget) {
    std::vector<BitVec> found;
    std::set<std::string> seen;
    std::deque<BitVec> work{e.sources};

    auto push = [&](BitVec grown, const BitVec& r) {
        if (grown == r) return; // no growth: dead end
        if (seen.insert(grown.to_string()).second) work.push_back(std::move(grown));
    };
    // Legalization options for a violating event f (the classic region
    // expansion): an entering arc is repaired by making f all-enter (add
    // every target) or by pulling that arc inside (add the sources of
    // the entering arcs); an exiting arc dually.
    auto expand = [&](const BitVec& r, const Event& f) {
        bool has_enter = false;
        bool has_exit = false;
        BitVec all_src = r, all_dst = r, enter_src = r, exit_dst = r;
        for (const auto ai : f.arcs) {
            const std::size_t src = g.arc(ai).from.index();
            const std::size_t dst = g.arc(ai).to.index();
            all_src.set(src);
            all_dst.set(dst);
            if (!r.test(src) && r.test(dst)) {
                has_enter = true;
                enter_src.set(src);
            }
            if (r.test(src) && !r.test(dst)) {
                has_exit = true;
                exit_dst.set(dst);
            }
        }
        if (has_enter) {
            push(all_dst, r);   // make f all-enter
            push(enter_src, r); // pull entering arcs inside (no-cross)
        }
        if (has_exit) {
            push(all_src, r);  // make f all-exit
            push(exit_dst, r); // pull exiting arcs inside (no-cross)
        }
    };

    while (!work.empty() && *budget > 0) {
        --*budget;
        const BitVec r = work.front();
        work.pop_front();

        // A pre-region of e must keep every e-target outside.
        bool target_inside = false;
        for (const auto ai : e.arcs) target_inside = target_inside || r.test(g.arc(ai).to.index());
        if (target_inside) continue;

        // Find the first event crossing non-uniformly.
        const Event* violator = nullptr;
        for (const auto& f : events) {
            if (!legal_for(census(g, f, r))) {
                violator = &f;
                break;
            }
        }
        if (violator == nullptr) {
            // Legal region; keep if not a superset of one already found.
            bool dominated = false;
            for (const auto& m : found) dominated = dominated || m.is_subset_of(r);
            if (!dominated) found.push_back(r);
            continue;
        }
        expand(r, *violator);
    }

    // Keep the minimal ones (branches may have found comparable sets in
    // either order).
    std::vector<BitVec> minimal;
    for (const auto& r : found) {
        bool has_smaller = false;
        for (const auto& o : found)
            if (!(o == r) && o.is_subset_of(r)) has_smaller = true;
        if (!has_smaller) minimal.push_back(r);
    }
    return minimal;
}

stg::Stg state_machine_net(const StateGraph& g) {
    stg::Stg net;
    net.name = g.name;
    for (const auto& s : g.signals().all()) net.signals().add(s.name, s.kind);
    std::vector<PlaceId> place_of(g.num_states());
    for (std::size_t si = 0; si < g.num_states(); ++si)
        place_of[si] = net.add_place("s" + std::to_string(si));
    // One transition per arc; instances numbered per signal edge.
    std::map<std::pair<std::size_t, bool>, int> instance_counter;
    for (std::uint32_t ai = 0; ai < g.num_arcs(); ++ai) {
        const auto& arc = g.arc(ai);
        const SignalEdge edge = g.edge_of(ai);
        const int inst = ++instance_counter[{edge.signal.index(), edge.rising}];
        const TransitionId t = net.add_transition(edge, inst);
        net.connect_pt(place_of[arc.from.index()], t);
        net.connect_tp(t, place_of[arc.to.index()]);
    }
    net.mark(place_of[g.initial().index()]);
    return net;
}

// True if rebuilding the net's state graph gives back `g`'s behaviour.
bool behaviour_matches(const stg::Stg& net, const StateGraph& g) {
    try {
        const StateGraph rebuilt = build_state_graph(net);
        return check_projection(rebuilt, g).ok && check_projection(g, rebuilt).ok;
    } catch (const Error&) {
        return false;
    }
}

} // namespace

NetSynthesisResult synthesize_stg(const StateGraph& g, const NetSynthesisOptions& opts) {
    if (const auto err = check_well_formed(g))
        throw SpecError("net synthesis: malformed state graph: " + *err);
    NetSynthesisResult result;

    const auto events = collect_events(g);
    std::size_t budget = opts.max_candidates;

    // Minimal pre-regions per event + excitation closure check.
    std::vector<std::vector<BitVec>> preregions(events.size());
    bool closure = true;
    for (std::size_t ei = 0; ei < events.size() && closure; ++ei) {
        preregions[ei] = minimal_preregions(g, events, events[ei], &budget);
        if (preregions[ei].empty()) {
            closure = false;
            if (std::getenv("SI_NETSYN_DEBUG"))
                std::fprintf(stderr, "netsyn: no pre-region for event %zu\n", ei);
            break;
        }
        BitVec inter = preregions[ei].front();
        for (const auto& r : preregions[ei]) inter &= r;
        closure = inter == events[ei].sources;
        if (!closure && std::getenv("SI_NETSYN_DEBUG"))
            std::fprintf(stderr, "netsyn: closure fails for event %zu (%zu preregions)\n", ei,
                         preregions[ei].size());
    }

    if (closure) {
        // Build the region net: distinct regions become places.
        stg::Stg net;
        net.name = g.name;
        for (const auto& s : g.signals().all()) net.signals().add(s.name, s.kind);

        std::vector<BitVec> regions;
        for (const auto& list : preregions) {
            for (const auto& r : list) {
                if (std::find(regions.begin(), regions.end(), r) == regions.end())
                    regions.push_back(r);
            }
        }
        result.regions_found = regions.size();

        std::vector<TransitionId> trans(events.size());
        for (std::size_t ei = 0; ei < events.size(); ++ei)
            trans[ei] = net.add_transition({events[ei].signal, events[ei].rising},
                                           events[ei].instance);
        std::vector<PlaceId> places;
        for (std::size_t ri = 0; ri < regions.size(); ++ri)
            places.push_back(net.add_place("r" + std::to_string(ri)));

        for (std::size_t ri = 0; ri < regions.size(); ++ri) {
            for (std::size_t ei = 0; ei < events.size(); ++ei) {
                const Crossing c = census(g, events[ei], regions[ri]);
                if (c.total != 0 && c.exit == c.total) net.connect_pt(places[ri], trans[ei]);
                if (c.total != 0 && c.enter == c.total) net.connect_tp(trans[ei], places[ri]);
            }
            if (regions[ri].test(g.initial().index())) net.mark(places[ri]);
        }

        if (std::getenv("SI_NETSYN_DEBUG") && !behaviour_matches(net, g)) {
            const StateGraph rebuilt = build_state_graph(net);
            std::fprintf(stderr, "netsyn: behaviour mismatch: fwd=%s bwd=%s\n",
                         check_projection(rebuilt, g).reason.c_str(),
                         check_projection(g, rebuilt).reason.c_str());
        }
        if (behaviour_matches(net, g)) {
            // Optional redundancy sweep: drop places whose removal keeps
            // the behaviour (exact check by re-unfolding).
            if (opts.remove_redundant_places) {
                auto without_place = [&](const stg::Stg& base,
                                         std::size_t drop) -> std::optional<stg::Stg> {
                    stg::Stg trimmed;
                    trimmed.name = base.name;
                    for (const auto& s : base.signals().all())
                        trimmed.signals().add(s.name, s.kind);
                    std::vector<TransitionId> tmap;
                    for (std::size_t ti = 0; ti < base.num_transitions(); ++ti) {
                        const auto& t = base.transition(TransitionId(ti));
                        tmap.push_back(trimmed.add_transition(t.edge, t.instance));
                    }
                    std::vector<PlaceId> pmap(base.num_places(), PlaceId::invalid());
                    for (std::size_t pi = 0; pi < base.num_places(); ++pi) {
                        if (pi == drop) continue;
                        pmap[pi] = trimmed.add_place(base.place(PlaceId(pi)).name);
                        trimmed.mark(pmap[pi], base.initial_marking()[pi]);
                    }
                    for (std::size_t ti = 0; ti < base.num_transitions(); ++ti) {
                        const auto& t = base.transition(TransitionId(ti));
                        std::size_t presets = 0;
                        for (const PlaceId p : t.preset) {
                            if (!pmap[p.index()].is_valid()) continue;
                            trimmed.connect_pt(pmap[p.index()], tmap[ti]);
                            ++presets;
                        }
                        for (const PlaceId p : t.postset)
                            if (pmap[p.index()].is_valid())
                                trimmed.connect_tp(tmap[ti], pmap[p.index()]);
                        if (presets == 0) return std::nullopt; // transition unconstrained
                    }
                    return trimmed;
                };
                bool changed = true;
                while (changed) {
                    changed = false;
                    for (std::size_t pi = net.num_places(); pi-- > 0;) {
                        const auto trimmed = without_place(net, pi);
                        if (trimmed && behaviour_matches(*trimmed, g)) {
                            net = *trimmed;
                            ++result.places_removed;
                            changed = true;
                            break;
                        }
                    }
                }
            }
            result.net = std::move(net);
            result.used_regions = true;
            return result;
        }
    }

    if (opts.forbid_state_machine_fallback)
        throw SynthesisError("net synthesis: excitation closure fails for '" + g.name +
                             "' and the state-machine fallback is forbidden");
    result.net = state_machine_net(g);
    result.used_regions = false;
    require(behaviour_matches(result.net, g), "state-machine net must reproduce the graph");
    return result;
}

} // namespace si::sg
