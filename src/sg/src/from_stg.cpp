#include "si/sg/from_stg.hpp"

#include <cstring>
#include <optional>
#include <vector>

#include "si/obs/live.hpp"
#include "si/obs/obs.hpp"
#include "si/util/error.hpp"
#include "si/util/state_store.hpp"

namespace si::sg {

namespace {

// Reachable markings live as byte-packed rows (8 token counts per 64-bit
// word, zero-padded tail) in a StateStore arena: the BFS below touches
// only dense ids and contiguous rows, never a per-marking heap node. Ids
// are assigned in discovery order, so the graph — and every budget or
// counter stream derived from it — is identical for any shard count.
struct MarkingGraph {
    struct Edge {
        std::uint32_t from;
        std::uint32_t to;
        TransitionId transition;
    };

    explicit MarkingGraph(std::size_t nplaces)
        : words_per_marking((nplaces + 7) / 8), store(words_per_marking) {}

    [[nodiscard]] std::size_t num_nodes() const { return store.size(); }
    [[nodiscard]] const std::uint8_t* marking(std::uint32_t id) const {
        return reinterpret_cast<const std::uint8_t*>(store.code(id));
    }

    std::size_t words_per_marking;
    util::StateStore store;
    std::vector<Edge> edges;
    // CSR out-edge offsets: edges of node i are [out_begin[i], out_begin[i+1]).
    std::vector<std::uint32_t> out_begin;
};

// BFS over reachable markings; nullopt when the meter runs out (why()
// names the stage and resource), charging States per new marking and
// Steps per explored edge.
std::optional<MarkingGraph> explore(const stg::Stg& net, util::Meter& meter) {
    obs::Span span("sg.explore");
    span.attr("net", net.name);
    const std::size_t P = net.num_places();
    MarkingGraph g(P);

    // Scratch marking as bytes inside zero-padded words.
    std::vector<std::uint64_t> scratch(g.words_per_marking, 0);
    auto* const scratch_bytes = reinterpret_cast<std::uint8_t*>(scratch.data());

    const stg::Marking& init = net.initial_marking();
    std::memcpy(scratch_bytes, init.data(), P);
    (void)g.store.intern(scratch.data());
    if (!meter.charge(util::Resource::States)) return std::nullopt;

    // Flatten every transition's preset/postset place indices into one
    // contiguous array (CSR over transitions): the enabledness test is
    // the inner loop of the whole exploration and should chase no
    // vector-of-vectors pointers.
    const std::size_t T = net.num_transitions();
    std::vector<std::uint32_t> pre_begin(T + 1, 0), post_begin(T + 1, 0);
    for (std::size_t ti = 0; ti < T; ++ti) {
        const auto& tr = net.transition(TransitionId{ti});
        pre_begin[ti + 1] = pre_begin[ti] + static_cast<std::uint32_t>(tr.preset.size());
        post_begin[ti + 1] = post_begin[ti] + static_cast<std::uint32_t>(tr.postset.size());
    }
    std::vector<std::uint32_t> pre(pre_begin[T]), post(post_begin[T]);
    for (std::size_t ti = 0; ti < T; ++ti) {
        const auto& tr = net.transition(TransitionId{ti});
        std::uint32_t* pp = pre.data() + pre_begin[ti];
        for (const PlaceId p : tr.preset) *pp++ = static_cast<std::uint32_t>(p.index());
        std::uint32_t* qp = post.data() + post_begin[ti];
        for (const PlaceId p : tr.postset) *qp++ = static_cast<std::uint32_t>(p.index());
    }

    // Node ids are assigned in discovery order and expanded in id order,
    // so `edges` comes out grouped by ascending `from` — the CSR offsets
    // below need no sort.
    // Heartbeat gauge: done = markings expanded, total = markings
    // discovered so far; the two converge exactly when the BFS is done.
    obs::Progress progress("sg.explore");
    std::vector<std::uint8_t> cur_marking(P);
    for (std::uint32_t cur = 0; cur < g.num_nodes(); ++cur) {
        progress.set_done(cur);
        progress.set_total(g.num_nodes());
        progress.set_budget(meter.local().consumed(util::Resource::States),
                            meter.local().limit(util::Resource::States));
        // Local copy: the arena row may move when intern grows it.
        std::memcpy(cur_marking.data(), g.marking(cur), P);
        const std::uint8_t* m = cur_marking.data();
        for (std::size_t ti = 0; ti < T; ++ti) {
            bool enabled = true;
            for (std::uint32_t pi = pre_begin[ti]; pi < pre_begin[ti + 1]; ++pi)
                enabled = enabled && m[pre[pi]] > 0;
            if (!enabled) continue;
            if (!meter.charge(util::Resource::Steps)) return std::nullopt;
            std::memcpy(scratch_bytes, m, P);
            for (std::uint32_t pi = pre_begin[ti]; pi < pre_begin[ti + 1]; ++pi)
                --scratch_bytes[pre[pi]];
            for (std::uint32_t pi = post_begin[ti]; pi < post_begin[ti + 1]; ++pi) {
                if (scratch_bytes[post[pi]] == 255)
                    throw SpecError("unbounded place '" + net.place(PlaceId{post[pi]}).name + "'");
                ++scratch_bytes[post[pi]];
            }
            const auto [to, inserted] = g.store.intern(scratch.data());
            if (inserted && !meter.charge(util::Resource::States)) return std::nullopt;
            g.edges.push_back(MarkingGraph::Edge{cur, to, TransitionId{ti}});
        }
    }

    progress.set_done(g.num_nodes());
    progress.set_total(g.num_nodes());

    g.out_begin.assign(g.num_nodes() + 1, 0);
    for (const auto& e : g.edges) ++g.out_begin[e.from + 1];
    for (std::size_t i = 1; i < g.out_begin.size(); ++i) g.out_begin[i] += g.out_begin[i - 1];

    span.attr("markings", static_cast<std::uint64_t>(g.num_nodes()));
    span.attr("edges", static_cast<std::uint64_t>(g.edges.size()));
    // The store attrs put the interning work on the span itself: before
    // this, --profile showed sg.explore time with the sg.store.* probe
    // stream visible only as global counters, unattributable to a stage.
    span.attr("interned", static_cast<std::uint64_t>(g.store.size()));
    span.attr("probes", static_cast<std::uint64_t>(g.store.probes()));
    span.attr("resizes", static_cast<std::uint64_t>(g.store.resizes()));
    if (obs::enabled()) {
        obs::count("sg.markings", g.num_nodes());
        obs::count("sg.edges", g.edges.size());
        obs::count("sg.store.interned", g.store.size());
        obs::count("sg.store.probes", g.store.probes());
        obs::count("sg.store.resizes", g.store.resizes());
    }
    return g;
}

// Consistent state assignment in one pass. A BFS over the marking graph
// computes each node's code *relative to the initial code* (edge on
// signal s flips bit s; two BFS paths reaching a node with different
// deltas means no consistent assignment exists). The initial code itself
// then falls out of the firing rule: a +s edge fires only where s is 0,
// so every edge of s pins initial(s) = !rising xor delta(source, s) —
// conflicting pins mean the signal would have to both rise and fall
// first. Signals that never fire default to 0, matching the seed's
// per-signal reachability inference (which this replaces: one walk over
// the edges instead of one whole-graph BFS per signal).
struct Assignment {
    BitVec initial;                   ///< inferred initial code
    std::vector<std::uint64_t> delta; ///< per node: code ^ initial, packed words
    std::size_t code_words = 0;
    std::vector<std::uint32_t> esig;  ///< per edge: (signal << 1) | rising
};

Assignment assign_codes(const stg::Stg& net, const MarkingGraph& g) {
    obs::Span span("sg.assign");
    const std::size_t nsig = net.signals().size();
    const std::size_t n = g.num_nodes();
    Assignment out;
    out.code_words = (nsig + 63) / 64;
    const std::size_t cw = out.code_words;

    out.esig.resize(g.edges.size());
    for (std::size_t ei = 0; ei < g.edges.size(); ++ei) {
        const auto& edge = net.transition(g.edges[ei].transition).edge;
        out.esig[ei] = (static_cast<std::uint32_t>(edge.signal.index()) << 1) |
                       (edge.rising ? 1u : 0u);
    }

    out.delta.assign(n * cw, 0);
    std::vector<std::uint8_t> have(n, 0);
    have[0] = 1;
    std::vector<std::uint32_t> queue;
    queue.reserve(n);
    queue.push_back(0);
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
        const std::uint32_t cur = queue[qi];
        const std::uint64_t* cur_delta = out.delta.data() + std::size_t(cur) * cw;
        for (std::uint32_t ei = g.out_begin[cur]; ei < g.out_begin[cur + 1]; ++ei) {
            const std::uint32_t to = g.edges[ei].to;
            const std::size_t bit = out.esig[ei] >> 1;
            const std::size_t bw = bit / 64;
            const std::uint64_t bm = std::uint64_t(1) << (bit % 64);
            std::uint64_t* to_delta = out.delta.data() + std::size_t(to) * cw;
            if (have[to]) {
                bool same = (cur_delta[bw] ^ bm) == to_delta[bw];
                for (std::size_t w = 0; same && w < cw; ++w)
                    if (w != bw && cur_delta[w] != to_delta[w]) same = false;
                if (!same)
                    throw SpecError(
                        "inconsistent state assignment in '" + net.name +
                        "': marking reached with two different codes (relative to initial) " +
                        BitVec::from_words(to_delta, nsig).to_string() + " and " +
                        (BitVec::from_words(cur_delta, nsig).to_string() + " flipped at " +
                         net.signals()[SignalId(bit)].name));
            } else {
                for (std::size_t w = 0; w < cw; ++w) to_delta[w] = cur_delta[w];
                to_delta[bw] ^= bm;
                have[to] = 1;
                queue.push_back(to);
            }
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        require(have[i] != 0, "unreached marking in explored graph");

    // Pin the initial value of every firing signal.
    std::vector<std::uint8_t> want(nsig, 2); // 2 = unconstrained
    for (std::size_t ei = 0; ei < g.edges.size(); ++ei) {
        const std::size_t bit = out.esig[ei] >> 1;
        const bool rising = (out.esig[ei] & 1) != 0;
        const std::uint64_t* d = out.delta.data() + std::size_t(g.edges[ei].from) * cw;
        const bool dbit = ((d[bit / 64] >> (bit % 64)) & 1) != 0;
        const std::uint8_t req = static_cast<std::uint8_t>(!rising != dbit ? 1 : 0);
        if (want[bit] == 2) {
            want[bit] = req;
        } else if (want[bit] != req) {
            throw SpecError("signal '" + net.signals()[SignalId(bit)].name +
                            "' can both rise and fall first: no consistent initial value");
        }
    }
    out.initial = BitVec(nsig);
    for (std::size_t v = 0; v < nsig; ++v)
        if (want[v] == 1) out.initial.set(v);
    span.attr("signals", static_cast<std::uint64_t>(nsig));
    if (obs::enabled()) obs::count("sg.assign.codes", n);
    return out;
}

} // namespace

BitVec infer_initial_code(const stg::Stg& net, const FromStgOptions& opts) {
    util::Meter meter("sg.explore", opts.budget);
    meter.local().cap(util::Resource::States, opts.max_states);
    const auto g = explore(net, meter);
    if (!g)
        throw SpecError("state explosion in '" + net.name + "': " + meter.why().describe());
    return assign_codes(net, *g).initial;
}

util::Outcome<StateGraph> build_state_graph_outcome(const stg::Stg& net,
                                                    const FromStgOptions& opts) {
    net.validate();
    util::Meter meter("sg.explore", opts.budget);
    meter.local().cap(util::Resource::States, opts.max_states);
    const auto explored = explore(net, meter);
    if (!explored) return util::Outcome<StateGraph>::exhausted(meter.why());
    const MarkingGraph& g = *explored;
    Assignment assigned = assign_codes(net, g);
    const std::size_t nsig = net.signals().size();
    const std::size_t n = g.num_nodes();
    const std::size_t cw = assigned.code_words;

    // Materialization was the last unattributed stage of the unfolding:
    // code XOR-ing plus arc deduplication over the whole edge list.
    obs::Span span("sg.materialize");
    span.attr("states", static_cast<std::uint64_t>(n));
    StateGraph sg;
    sg.name = net.name;
    for (const auto& s : net.signals().all()) sg.signals().add(s.name, s.kind);

    // Materialize codes in place: code(i) = initial ^ delta(i).
    const std::uint64_t* init_words = assigned.initial.word_data();
    sg.reserve(n, g.edges.size());
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t* d = assigned.delta.data() + i * cw;
        for (std::size_t w = 0; w < cw; ++w) d[w] ^= init_words[w];
        sg.add_state(BitVec::from_words(d, nsig));
    }
    sg.set_initial(StateId(0));
    for (std::size_t ei = 0; ei < g.edges.size(); ++ei) {
        // Interleaving semantics: several transitions of the same signal
        // enabled in one marking would create parallel same-signal arcs;
        // collapse them (they reach the same code by construction).
        const auto& e = g.edges[ei];
        const StateId from{e.from};
        const SignalId sig{assigned.esig[ei] >> 1};
        if (sg.arc_on(from, sig) != UINT32_MAX) {
            if (sg.arc(sg.arc_on(from, sig)).to != StateId(e.to))
                throw SpecError("auto-concurrency in '" + net.name + "': two transitions of " +
                                net.signals()[sig].name + " enabled in one marking");
            continue;
        }
        sg.add_arc(StateId(e.from), StateId(e.to), sig);
    }
    return util::Outcome<StateGraph>::complete(std::move(sg));
}

StateGraph build_state_graph(const stg::Stg& net, const FromStgOptions& opts) {
    auto outcome = build_state_graph_outcome(net, opts);
    if (!outcome.is_complete())
        throw SpecError("state explosion in '" + net.name + "': " + outcome.why().describe());
    return std::move(outcome.value());
}

} // namespace si::sg
