#include "si/sg/from_stg.hpp"

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "si/obs/obs.hpp"
#include "si/util/error.hpp"

namespace si::sg {

namespace {

struct MarkingHash {
    std::size_t operator()(const stg::Marking& m) const noexcept {
        std::size_t h = 1469598103934665603ull;
        for (const auto b : m) {
            h ^= b;
            h *= 1099511628211ull;
        }
        return h;
    }
};

struct MarkingGraph {
    struct Edge {
        std::uint32_t from;
        std::uint32_t to;
        TransitionId transition;
    };
    std::vector<stg::Marking> nodes;
    std::vector<Edge> edges;
    std::vector<std::vector<std::uint32_t>> out; // edge indices per node
};

// BFS over reachable markings; nullopt when the meter runs out (why()
// names the stage and resource), charging States per new marking and
// Steps per explored edge.
std::optional<MarkingGraph> explore(const stg::Stg& net, util::Meter& meter) {
    obs::Span span("sg.explore");
    span.attr("net", net.name);
    MarkingGraph g;
    std::unordered_map<stg::Marking, std::uint32_t, MarkingHash> index;
    g.nodes.push_back(net.initial_marking());
    g.out.emplace_back();
    index.emplace(net.initial_marking(), 0);
    if (!meter.charge(util::Resource::States)) return std::nullopt;
    std::deque<std::uint32_t> queue{0};
    while (!queue.empty()) {
        const std::uint32_t cur = queue.front();
        queue.pop_front();
        for (std::size_t ti = 0; ti < net.num_transitions(); ++ti) {
            const TransitionId t{ti};
            // Copy the marking: fire() may be reached after nodes grows.
            const stg::Marking m = g.nodes[cur];
            if (!net.enabled(m, t)) continue;
            if (!meter.charge(util::Resource::Steps)) return std::nullopt;
            stg::Marking next = net.fire(m, t);
            auto [it, inserted] = index.emplace(std::move(next), static_cast<std::uint32_t>(g.nodes.size()));
            if (inserted) {
                if (!meter.charge(util::Resource::States)) return std::nullopt;
                g.nodes.push_back(it->first);
                g.out.emplace_back();
                queue.push_back(it->second);
            }
            g.out[cur].push_back(static_cast<std::uint32_t>(g.edges.size()));
            g.edges.push_back(MarkingGraph::Edge{cur, it->second, t});
        }
    }
    span.attr("markings", static_cast<std::uint64_t>(g.nodes.size()));
    span.attr("edges", static_cast<std::uint64_t>(g.edges.size()));
    if (obs::enabled()) {
        obs::count("sg.markings", g.nodes.size());
        obs::count("sg.edges", g.edges.size());
    }
    return g;
}


BitVec infer_code(const stg::Stg& net, const MarkingGraph& g) {
    const std::size_t nsig = net.signals().size();
    BitVec code(nsig);
    for (std::size_t vi = 0; vi < nsig; ++vi) {
        const SignalId v{vi};
        // Reachability without firing any transition of v.
        std::vector<bool> seen(g.nodes.size(), false);
        std::deque<std::uint32_t> queue{0};
        seen[0] = true;
        bool saw_plus = false;
        bool saw_minus = false;
        while (!queue.empty()) {
            const std::uint32_t cur = queue.front();
            queue.pop_front();
            for (const auto ei : g.out[cur]) {
                const auto& e = g.edges[ei];
                const auto& tr = net.transition(e.transition);
                if (tr.edge.signal == v) {
                    (tr.edge.rising ? saw_plus : saw_minus) = true;
                    continue;
                }
                if (!seen[e.to]) {
                    seen[e.to] = true;
                    queue.push_back(e.to);
                }
            }
        }
        if (saw_plus && saw_minus)
            throw SpecError("signal '" + net.signals()[v].name +
                            "' can both rise and fall first: no consistent initial value");
        // A signal whose first visible edge falls starts at 1; one that
        // rises first (or never fires) starts at 0.
        if (saw_minus) code.set(vi);
    }
    return code;
}

} // namespace

BitVec infer_initial_code(const stg::Stg& net, const FromStgOptions& opts) {
    util::Meter meter("sg.explore", opts.budget);
    meter.local().cap(util::Resource::States, opts.max_states);
    const auto g = explore(net, meter);
    if (!g)
        throw SpecError("state explosion in '" + net.name + "': " + meter.why().describe());
    return infer_code(net, *g);
}

util::Outcome<StateGraph> build_state_graph_outcome(const stg::Stg& net,
                                                    const FromStgOptions& opts) {
    net.validate();
    util::Meter meter("sg.explore", opts.budget);
    meter.local().cap(util::Resource::States, opts.max_states);
    const auto explored = explore(net, meter);
    if (!explored) return util::Outcome<StateGraph>::exhausted(meter.why());
    const MarkingGraph& g = *explored;
    const BitVec initial_code = infer_code(net, g);
    const std::size_t nsig = net.signals().size();

    StateGraph sg;
    sg.name = net.name;
    for (const auto& s : net.signals().all()) sg.signals().add(s.name, s.kind);

    // Assign codes by BFS with the state-assignment rule.
    std::vector<BitVec> codes(g.nodes.size());
    std::vector<bool> have(g.nodes.size(), false);
    codes[0] = initial_code;
    have[0] = true;
    std::deque<std::uint32_t> queue{0};
    while (!queue.empty()) {
        const std::uint32_t cur = queue.front();
        queue.pop_front();
        for (const auto ei : g.out[cur]) {
            const auto& e = g.edges[ei];
            const auto& tr = net.transition(e.transition);
            const std::size_t bit = tr.edge.signal.index();
            if (codes[cur].test(bit) == tr.edge.rising)
                throw SpecError("inconsistent state assignment in '" + net.name + "': " +
                                net.transition_label(e.transition) + " fires while " +
                                net.signals()[tr.edge.signal].name + " is already " +
                                (tr.edge.rising ? "1" : "0"));
            BitVec next = codes[cur];
            next.flip(bit);
            if (have[e.to]) {
                if (codes[e.to] != next)
                    throw SpecError("inconsistent state assignment in '" + net.name +
                                    "': marking reached with two different codes " +
                                    codes[e.to].to_string() + " and " + next.to_string());
            } else {
                codes[e.to] = std::move(next);
                have[e.to] = true;
                queue.push_back(e.to);
            }
        }
    }

    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
        require(have[i], "unreached marking in explored graph");
        require(codes[i].size() == nsig, "code width mismatch");
        sg.add_state(codes[i]);
    }
    sg.set_initial(StateId(0));
    for (const auto& e : g.edges) {
        // Interleaving semantics: several transitions of the same signal
        // enabled in one marking would create parallel same-signal arcs;
        // collapse them (they reach the same code by construction).
        const StateId from{e.from};
        const SignalId sig = net.transition(e.transition).edge.signal;
        if (sg.arc_on(from, sig) != UINT32_MAX) {
            if (sg.arc(sg.arc_on(from, sig)).to != StateId(e.to))
                throw SpecError("auto-concurrency in '" + net.name + "': two transitions of " +
                                net.signals()[sig].name + " enabled in one marking");
            continue;
        }
        sg.add_arc(StateId(e.from), StateId(e.to), sig);
    }
    return util::Outcome<StateGraph>::complete(std::move(sg));
}

StateGraph build_state_graph(const stg::Stg& net, const FromStgOptions& opts) {
    auto outcome = build_state_graph_outcome(net, opts);
    if (!outcome.is_complete())
        throw SpecError("state explosion in '" + net.name + "': " + outcome.why().describe());
    return std::move(outcome.value());
}

} // namespace si::sg
