#include "si/stg/compose.hpp"

#include "si/util/error.hpp"

namespace si::stg {

Stg compose(const Stg& a, const Stg& b, const ComposeOptions& opts) {
    Stg out;
    out.name = a.name + "+" + b.name;

    // Signal union with kind resolution.
    auto join_kind = [&](SignalKind ka, SignalKind kb, const std::string& name) {
        if (ka == SignalKind::Output && kb == SignalKind::Output)
            throw SpecError("composition: signal '" + name + "' is driven by both sides");
        if (ka == SignalKind::Internal || kb == SignalKind::Internal)
            throw SpecError("composition: internal signal '" + name +
                            "' cannot be shared across components");
        // Output + Input: the component that drives it wins; the pair is
        // now closed, so it may be internalized.
        if (opts.internalize_shared) return SignalKind::Internal;
        return SignalKind::Output;
    };
    for (const auto& s : a.signals().all()) out.signals().add(s.name, s.kind);
    for (const auto& s : b.signals().all()) {
        const SignalId existing = out.signals().find(s.name);
        if (!existing.is_valid()) {
            out.signals().add(s.name, s.kind);
            continue;
        }
        // Re-resolve the kind of the shared signal. SignalTable has no
        // mutator; rebuild below once kinds are known.
    }
    // Rebuild the table with resolved kinds (simpler than mutating).
    {
        SignalTable resolved;
        for (const auto& s : a.signals().all()) {
            const SignalId in_b = b.signals().find(s.name);
            resolved.add(s.name,
                         in_b.is_valid() ? join_kind(s.kind, b.signals()[in_b].kind, s.name)
                                         : s.kind);
        }
        for (const auto& s : b.signals().all())
            if (!a.signals().find(s.name).is_valid()) resolved.add(s.name, s.kind);
        out = Stg();
        out.name = a.name + "+" + b.name;
        for (const auto& s : resolved.all()) out.signals().add(s.name, s.kind);
    }

    // Places: disjoint union.
    std::vector<PlaceId> pa(a.num_places()), pb(b.num_places());
    for (std::size_t i = 0; i < a.num_places(); ++i) {
        pa[i] = out.add_place("L:" + (a.place(PlaceId(i)).name.empty()
                                          ? "p" + std::to_string(i)
                                          : a.place(PlaceId(i)).name),
                              a.place(PlaceId(i)).implicit);
        out.mark(pa[i], a.initial_marking()[i]);
    }
    for (std::size_t i = 0; i < b.num_places(); ++i) {
        pb[i] = out.add_place("R:" + (b.place(PlaceId(i)).name.empty()
                                          ? "p" + std::to_string(i)
                                          : b.place(PlaceId(i)).name),
                              b.place(PlaceId(i)).implicit);
        out.mark(pb[i], b.initial_marking()[i]);
    }

    // Transitions: merge by (signal name, polarity, instance).
    auto add_side = [&](const Stg& side, const std::vector<PlaceId>& pmap) {
        for (std::size_t ti = 0; ti < side.num_transitions(); ++ti) {
            const auto& t = side.transition(TransitionId(ti));
            const SignalId sig = out.signals().find(side.signals()[t.edge.signal].name);
            const SignalEdge edge{sig, t.edge.rising};
            TransitionId merged = out.find_transition(edge, t.instance);
            if (!merged.is_valid()) merged = out.add_transition(edge, t.instance);
            for (const PlaceId p : t.preset) out.connect_pt(pmap[p.index()], merged);
            for (const PlaceId p : t.postset) out.connect_tp(merged, pmap[p.index()]);
        }
    };
    add_side(a, pa);
    add_side(b, pb);

    // Shared signals must synchronize completely: a transition of a
    // shared signal present on one side only would let that side move
    // without the other noticing the event.
    for (std::size_t ti = 0; ti < out.num_transitions(); ++ti) {
        const auto& t = out.transition(TransitionId(ti));
        const std::string& name = out.signals()[t.edge.signal].name;
        const SignalId in_a = a.signals().find(name);
        const SignalId in_b = b.signals().find(name);
        if (!in_a.is_valid() || !in_b.is_valid()) continue;
        const bool has_a =
            a.find_transition({in_a, t.edge.rising}, t.instance).is_valid();
        const bool has_b =
            b.find_transition({in_b, t.edge.rising}, t.instance).is_valid();
        if (!has_a || !has_b)
            throw SpecError("composition: transition " + out.transition_label(TransitionId(ti)) +
                            " of shared signal '" + name + "' exists on one side only");
    }

    out.validate();
    return out;
}

} // namespace si::stg
