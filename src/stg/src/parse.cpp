#include "si/stg/parse.hpp"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "si/util/error.hpp"
#include "si/util/text.hpp"

namespace si::stg {

namespace {

struct EdgeToken {
    std::string signal;
    bool rising = true;
    int instance = 1;
};

/// Largest /k instance suffix accepted. Anything past this is a
/// malformed label, not a place name — unbounded digit strings must not
/// overflow the accumulator (signed overflow is UB under -fsanitize).
constexpr int kMaxInstance = 1 << 20;

// Parses "a+", "b-", "c+/2"; nullopt when the token is not a transition
// label (then it names a place).
std::optional<EdgeToken> parse_edge_token(std::string_view tok) {
    std::string_view head = tok;
    int instance = 1;
    if (const auto slash = tok.rfind('/'); slash != std::string_view::npos) {
        head = tok.substr(0, slash);
        const std::string_view inst = tok.substr(slash + 1);
        if (inst.empty()) return std::nullopt;
        instance = 0;
        for (const char c : inst) {
            if (c < '0' || c > '9') return std::nullopt;
            if (instance > kMaxInstance) return std::nullopt;
            instance = instance * 10 + (c - '0');
        }
        if (instance > kMaxInstance) return std::nullopt;
    }
    if (head.size() < 2) return std::nullopt;
    const char dir = head.back();
    if (dir != '+' && dir != '-') return std::nullopt;
    return EdgeToken{std::string(head.substr(0, head.size() - 1)), dir == '+', instance};
}

class GReader {
public:
    explicit GReader(std::string_view text) : lines_(lines_of(text)) {}

    Stg run() {
        for (line_ = 0; line_ < lines_.size(); ++line_) {
            std::string_view raw = lines_[line_];
            if (const auto hash = raw.find('#'); hash != std::string_view::npos)
                raw = raw.substr(0, hash);
            const std::string_view line = trim(raw);
            if (line.empty()) continue;
            dispatch(line);
        }
        line_ = lines_.empty() ? 0 : lines_.size() - 1;
        if (!saw_end_) fail("missing .end");
        stg_.validate();
        return std::move(stg_);
    }

private:
    /// Raises a structured ParseError at the current line. When `tok` is
    /// given and occurs in the line's source text, the error points at
    /// its 1-based column; otherwise at column 1.
    [[noreturn]] void fail(const std::string& msg, std::string_view tok = {}) const {
        std::size_t column = 1;
        if (!tok.empty() && line_ < lines_.size()) {
            const auto pos = lines_[line_].find(tok);
            if (pos != std::string::npos) column = pos + 1;
        }
        throw ParseError(line_ + 1, column, msg);
    }
    void dispatch(std::string_view line) {
        const auto toks = split(line);
        const std::string& head = toks[0];
        if (head == ".model" || head == ".name") {
            if (toks.size() >= 2) stg_.name = toks[1];
        } else if (head == ".inputs") {
            declare(toks, SignalKind::Input);
        } else if (head == ".outputs") {
            declare(toks, SignalKind::Output);
        } else if (head == ".internal") {
            declare(toks, SignalKind::Internal);
        } else if (head == ".dummy") {
            fail("dummy transitions are not supported", head);
        } else if (head == ".graph") {
            in_graph_ = true;
        } else if (head == ".marking") {
            in_graph_ = false;
            parse_marking(line);
        } else if (head == ".end") {
            saw_end_ = true;
        } else if (head == ".capacity" || head == ".slowenv" || head == ".coords") {
            // Harmless extensions produced by other tools; ignored.
        } else if (head[0] == '.') {
            fail("unknown directive '" + head + "'", head);
        } else if (in_graph_) {
            parse_arc_line(toks);
        } else {
            fail("unexpected line outside .graph", head);
        }
    }

    void declare(const std::vector<std::string>& toks, SignalKind kind) {
        for (std::size_t i = 1; i < toks.size(); ++i) stg_.signals().add(toks[i], kind);
    }

    // A node token is either a transition label or a place name.
    struct Node {
        bool is_transition;
        TransitionId t;
        PlaceId p;
    };

    Node resolve(const std::string& tok) {
        if (const auto e = parse_edge_token(tok)) {
            const SignalId sig = stg_.signals().find(e->signal);
            if (sig.is_valid()) {
                const SignalEdge edge{sig, e->rising};
                TransitionId t = stg_.find_transition(edge, e->instance);
                if (!t.is_valid()) t = stg_.add_transition(edge, e->instance);
                return Node{true, t, PlaceId::invalid()};
            }
            // A token shaped like "x+" whose head is not a declared signal
            // is a malformed label rather than a place.
            fail("transition label '" + tok + "' names undeclared signal '" + e->signal + "'", tok);
        }
        PlaceId p = stg_.find_place(tok);
        if (!p.is_valid()) p = stg_.add_place(tok);
        return Node{false, TransitionId::invalid(), p};
    }

    void parse_arc_line(const std::vector<std::string>& toks) {
        if (toks.size() < 2) fail("arc line needs a source and at least one target", toks[0]);
        const Node src = resolve(toks[0]);
        for (std::size_t i = 1; i < toks.size(); ++i) {
            const Node dst = resolve(toks[i]);
            if (src.is_transition && dst.is_transition) {
                stg_.connect_tt(src.t, dst.t);
            } else if (src.is_transition && !dst.is_transition) {
                stg_.connect_tp(src.t, dst.p);
            } else if (!src.is_transition && dst.is_transition) {
                stg_.connect_pt(src.p, dst.t);
            } else {
                fail("place-to-place arc '" + toks[0] + " " + toks[i] + "'", toks[i]);
            }
        }
    }

    void parse_marking(std::string_view line) {
        const auto open = line.find('{');
        const auto close = line.rfind('}');
        if (open == std::string_view::npos || close == std::string_view::npos || close < open)
            fail(".marking must carry a { ... } list");
        std::string_view body = line.substr(open + 1, close - open - 1);

        // Tokens: "p", "p=2", "<a+,b->". Angle groups may contain no
        // spaces in the classic format; split on whitespace.
        for (const auto& tok : split(body)) {
            std::string name = tok;
            std::uint8_t tokens = 1;
            if (const auto eq = name.find('='); eq != std::string::npos) {
                const std::string digits = name.substr(eq + 1);
                int v = 0;
                if (digits.empty()) fail("bad token count in '" + tok + "'", tok);
                for (const char c : digits) {
                    if (c < '0' || c > '9' || v > 255) fail("bad token count in '" + tok + "'", tok);
                    v = v * 10 + (c - '0');
                }
                if (v > 255) fail("bad token count in '" + tok + "'", tok);
                tokens = static_cast<std::uint8_t>(v);
                name = name.substr(0, eq);
            }
            PlaceId p = PlaceId::invalid();
            if (!name.empty() && name.front() == '<' && name.back() == '>') {
                p = resolve_implicit_place(name);
            } else {
                p = stg_.find_place(name);
            }
            if (!p.is_valid()) fail("marking names unknown place '" + name + "'", tok);
            stg_.mark(p, tokens);
        }
    }

    // "<a+,b->" denotes the implicit place created by the arc a+ -> b-.
    PlaceId resolve_implicit_place(const std::string& name) {
        const auto comma = name.find(',');
        if (comma == std::string::npos) fail("bad implicit place '" + name + "'", name);
        const std::string from = name.substr(1, comma - 1);
        const std::string to = name.substr(comma + 1, name.size() - comma - 2);
        const auto fe = parse_edge_token(from);
        const auto te = parse_edge_token(to);
        if (!fe || !te) fail("bad implicit place '" + name + "'", name);
        const TransitionId ft =
            stg_.find_transition({stg_.signals().find(fe->signal), fe->rising}, fe->instance);
        const TransitionId tt =
            stg_.find_transition({stg_.signals().find(te->signal), te->rising}, te->instance);
        if (!ft.is_valid() || !tt.is_valid())
            fail("implicit place '" + name + "' refers to unknown transitions", name);
        // Find the implicit place on the ft -> tt arc.
        for (const PlaceId p : stg_.transition(ft).postset) {
            if (!stg_.place(p).implicit) continue;
            const auto& preset = stg_.transition(tt).preset;
            for (const PlaceId q : preset)
                if (q == p) return p;
        }
        fail("no arc between transitions of implicit place '" + name + "'", name);
    }

    std::vector<std::string> lines_;
    std::size_t line_ = 0;
    Stg stg_;
    bool in_graph_ = false;
    bool saw_end_ = false;
};

} // namespace

Stg read_g(std::string_view text) { return GReader(text).run(); }

Stg read_g_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw ParseError("cannot open '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return read_g(buf.str());
}

std::string write_g(const Stg& stg) {
    std::string out;
    out += ".model " + stg.name + "\n";
    for (const auto kind : {SignalKind::Input, SignalKind::Output, SignalKind::Internal}) {
        std::string line;
        for (const auto& s : stg.signals().all())
            if (s.kind == kind) line += " " + s.name;
        if (line.empty()) continue;
        switch (kind) {
        case SignalKind::Input: out += ".inputs"; break;
        case SignalKind::Output: out += ".outputs"; break;
        case SignalKind::Internal: out += ".internal"; break;
        }
        out += line + "\n";
    }
    out += ".graph\n";
    // Emit transition->place and place->transition arcs. Implicit places
    // are flattened back to transition->transition arcs. Each source
    // (transition or explicit place) produces exactly one line carrying
    // its successors in arc order; the lines are then sorted, so the
    // rendering is independent of internal id assignment and write_g is
    // a byte-stable fixpoint under re-parsing.
    std::vector<std::string> lines;
    for (std::size_t ti = 0; ti < stg.num_transitions(); ++ti) {
        const TransitionId t{ti};
        std::string line = stg.transition_label(t);
        bool any = false;
        for (const PlaceId p : stg.transition(t).postset) {
            if (stg.place(p).implicit) {
                // Find the consumer.
                for (std::size_t tj = 0; tj < stg.num_transitions(); ++tj) {
                    for (const PlaceId q : stg.transition(TransitionId(tj)).preset) {
                        if (q == p) {
                            line += " " + stg.transition_label(TransitionId(tj));
                            any = true;
                        }
                    }
                }
            } else {
                line += " " + stg.place(p).name;
                any = true;
            }
        }
        if (any) lines.push_back(std::move(line));
    }
    for (std::size_t pi = 0; pi < stg.num_places(); ++pi) {
        const PlaceId p{pi};
        if (stg.place(p).implicit) continue;
        std::string line = stg.place(p).name;
        bool any = false;
        for (std::size_t ti = 0; ti < stg.num_transitions(); ++ti) {
            for (const PlaceId q : stg.transition(TransitionId(ti)).preset) {
                if (q == p) {
                    line += " " + stg.transition_label(TransitionId(ti));
                    any = true;
                }
            }
        }
        if (any) lines.push_back(std::move(line));
    }
    std::sort(lines.begin(), lines.end());
    for (const auto& line : lines) out += line + "\n";
    std::vector<std::string> marks;
    for (std::size_t pi = 0; pi < stg.num_places(); ++pi) {
        const auto tokens = stg.initial_marking()[pi];
        if (tokens == 0) continue;
        const Place& pl = stg.place(PlaceId(pi));
        std::string mark = pl.name;
        if (tokens != 1) mark += "=" + std::to_string(tokens);
        marks.push_back(std::move(mark));
    }
    std::sort(marks.begin(), marks.end());
    out += ".marking {";
    for (const auto& mark : marks) out += " " + mark;
    out += " }\n.end\n";
    return out;
}

} // namespace si::stg
