#include "si/stg/signals.hpp"

#include "si/util/error.hpp"

namespace si {

SignalId SignalTable::add(std::string name, SignalKind kind) {
    if (find(name).is_valid()) throw SpecError("duplicate signal name '" + name + "'");
    signals_.push_back(Signal{std::move(name), kind});
    return SignalId(signals_.size() - 1);
}

SignalId SignalTable::find(std::string_view name) const {
    for (std::size_t i = 0; i < signals_.size(); ++i)
        if (signals_[i].name == name) return SignalId(i);
    return SignalId::invalid();
}

std::vector<std::string> SignalTable::names() const {
    std::vector<std::string> out;
    out.reserve(signals_.size());
    for (const auto& s : signals_) out.push_back(s.name);
    return out;
}

std::size_t SignalTable::count(SignalKind kind) const {
    std::size_t n = 0;
    for (const auto& s : signals_)
        if (s.kind == kind) ++n;
    return n;
}

std::string to_string(const SignalEdge& e, const SignalTable& table) {
    return (e.rising ? "+" : "-") + table[e.signal].name;
}

} // namespace si
