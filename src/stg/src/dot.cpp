#include "si/stg/dot.hpp"

namespace si::stg {

std::string to_dot(const Stg& net) {
    std::string out = "digraph \"" + net.name + "\" {\n  rankdir=TB;\n";
    out += "  node [fontname=monospace];\n";
    for (std::size_t ti = 0; ti < net.num_transitions(); ++ti)
        out += "  t" + std::to_string(ti) + " [shape=box, label=\"" +
               net.transition_label(TransitionId(ti)) + "\"];\n";
    // Explicit places as circles; implicit places folded into one edge.
    for (std::size_t pi = 0; pi < net.num_places(); ++pi) {
        const Place& p = net.place(PlaceId(pi));
        if (p.implicit) continue;
        out += "  p" + std::to_string(pi) + " [shape=circle, label=\"" + p.name + "\"";
        if (net.initial_marking()[pi] != 0) out += ", style=filled, fillcolor=black, fontcolor=white";
        out += "];\n";
    }
    for (std::size_t ti = 0; ti < net.num_transitions(); ++ti) {
        const auto& t = net.transition(TransitionId(ti));
        for (const PlaceId p : t.postset) {
            if (!net.place(p).implicit) {
                out += "  t" + std::to_string(ti) + " -> p" + std::to_string(p.index()) + ";\n";
                continue;
            }
            // Implicit: find the consumer and draw a direct edge, dotted
            // when the place is marked.
            for (std::size_t tj = 0; tj < net.num_transitions(); ++tj)
                for (const PlaceId q : net.transition(TransitionId(tj)).preset)
                    if (q == p)
                        out += "  t" + std::to_string(ti) + " -> t" + std::to_string(tj) +
                               (net.initial_marking()[p.index()] != 0
                                    ? " [style=bold, label=\"*\"];\n"
                                    : ";\n");
        }
        for (const PlaceId p : t.preset)
            if (!net.place(p).implicit)
                out += "  p" + std::to_string(p.index()) + " -> t" + std::to_string(ti) + ";\n";
    }
    out += "}\n";
    return out;
}

} // namespace si::stg
