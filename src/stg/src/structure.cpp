#include "si/stg/structure.hpp"

#include <deque>
#include <unordered_map>

#include "si/util/error.hpp"

namespace si::stg {

namespace {

struct MarkingHash {
    std::size_t operator()(const Marking& m) const noexcept {
        std::size_t h = 1469598103934665603ull;
        for (const auto b : m) {
            h ^= b;
            h *= 1099511628211ull;
        }
        return h;
    }
};

} // namespace

std::string StructureReport::describe() const {
    std::string out;
    out += std::string("marked graph: ") + (marked_graph ? "yes" : "no");
    out += std::string(", free choice: ") + (free_choice ? "yes" : "no");
    out += std::string(", safe: ") + (safe ? "yes" : "no");
    out += std::string(", live: ") + (live ? "yes" : "no");
    out += ", reachable markings: " + std::to_string(reachable_markings);
    if (!offender.empty()) out += " (" + offender + ")";
    return out;
}

StructureReport analyze_structure(const Stg& net, std::size_t max_markings) {
    net.validate();
    StructureReport report;

    // Structural classes from producer/consumer counts.
    std::vector<int> producers(net.num_places(), 0);
    std::vector<int> consumers(net.num_places(), 0);
    for (const auto& t : net.transitions()) {
        for (const PlaceId p : t.postset) ++producers[p.index()];
        for (const PlaceId p : t.preset) ++consumers[p.index()];
    }
    report.marked_graph = true;
    report.free_choice = true;
    for (std::size_t pi = 0; pi < net.num_places(); ++pi) {
        if (producers[pi] > 1 || consumers[pi] > 1) {
            report.marked_graph = false;
            if (report.offender.empty())
                report.offender = "place '" + net.place(PlaceId(pi)).name + "' has " +
                                  std::to_string(producers[pi]) + " producer(s) / " +
                                  std::to_string(consumers[pi]) + " consumer(s)";
        }
        if (consumers[pi] > 1) {
            // Choice place: each consumer must have exactly this preset.
            for (std::size_t ti = 0; ti < net.num_transitions(); ++ti) {
                const auto& pre = net.transition(TransitionId(ti)).preset;
                bool consumes = false;
                for (const PlaceId q : pre) consumes = consumes || q == PlaceId(pi);
                if (consumes && pre.size() != 1) report.free_choice = false;
            }
        }
    }

    // Reachability for safeness and liveness.
    std::unordered_map<Marking, std::uint32_t, MarkingHash> index;
    std::vector<Marking> markings{net.initial_marking()};
    std::vector<std::vector<std::uint32_t>> succ(1);
    std::vector<std::vector<std::uint32_t>> pred(1);
    std::vector<bool> transition_fired(net.num_transitions(), false);
    index.emplace(net.initial_marking(), 0);
    std::deque<std::uint32_t> queue{0};
    report.safe = true;
    while (!queue.empty()) {
        const std::uint32_t cur = queue.front();
        queue.pop_front();
        for (std::size_t ti = 0; ti < net.num_transitions(); ++ti) {
            const Marking m = markings[cur];
            if (!net.enabled(m, TransitionId(ti))) continue;
            transition_fired[ti] = true;
            Marking next = net.fire(m, TransitionId(ti));
            for (std::size_t pi = 0; pi < next.size(); ++pi) {
                if (next[pi] > 1 && report.safe) {
                    report.safe = false;
                    if (report.offender.empty())
                        report.offender =
                            "place '" + net.place(PlaceId(pi)).name + "' reaches 2 tokens";
                }
            }
            auto [it, inserted] = index.emplace(std::move(next), markings.size());
            if (inserted) {
                if (markings.size() >= max_markings)
                    throw SpecError("structure analysis exceeded " +
                                    std::to_string(max_markings) + " markings");
                markings.push_back(it->first);
                succ.emplace_back();
                pred.emplace_back();
                queue.push_back(it->second);
            }
            succ[cur].push_back(it->second);
            pred[it->second].push_back(cur);
        }
    }
    report.reachable_markings = markings.size();

    // Liveness: every transition fires somewhere AND the reachability
    // graph is strongly connected (so it keeps firing forever).
    bool all_fired = true;
    for (std::size_t ti = 0; ti < net.num_transitions(); ++ti) {
        if (!transition_fired[ti]) {
            all_fired = false;
            if (report.offender.empty())
                report.offender =
                    "transition " + net.transition_label(TransitionId(ti)) + " never fires";
        }
    }
    auto full_reach = [&](const std::vector<std::vector<std::uint32_t>>& edges) {
        std::vector<bool> seen(markings.size(), false);
        std::deque<std::uint32_t> bfs{0};
        seen[0] = true;
        std::size_t count = 1;
        while (!bfs.empty()) {
            const auto cur = bfs.front();
            bfs.pop_front();
            for (const auto nxt : edges[cur]) {
                if (!seen[nxt]) {
                    seen[nxt] = true;
                    ++count;
                    bfs.push_back(nxt);
                }
            }
        }
        return count == markings.size();
    };
    report.live = all_fired && full_reach(succ) && full_reach(pred);
    if (!report.live && all_fired && report.offender.empty())
        report.offender = "reachability graph is not strongly connected";
    return report;
}

} // namespace si::stg
