#include "si/stg/stg.hpp"

#include <algorithm>

#include "si/util/error.hpp"

namespace si::stg {

PlaceId Stg::add_place(std::string name, bool implicit) {
    if (!name.empty() && find_place(name).is_valid())
        throw SpecError("duplicate place name '" + name + "'");
    places_.push_back(Place{std::move(name), implicit});
    initial_.push_back(0);
    return PlaceId(places_.size() - 1);
}

TransitionId Stg::add_transition(SignalEdge edge, int instance) {
    if (find_transition(edge, instance).is_valid())
        throw SpecError("duplicate transition " + transition_label(find_transition(edge, instance)));
    transitions_.push_back(Transition{edge, instance, {}, {}});
    return TransitionId(transitions_.size() - 1);
}

void Stg::connect_pt(PlaceId p, TransitionId t) {
    transitions_[t.index()].preset.push_back(p);
}

void Stg::connect_tp(TransitionId t, PlaceId p) {
    transitions_[t.index()].postset.push_back(p);
}

PlaceId Stg::connect_tt(TransitionId from, TransitionId to) {
    const PlaceId p = add_place("<" + transition_label(from) + "," + transition_label(to) + ">",
                                /*implicit=*/true);
    connect_tp(from, p);
    connect_pt(p, to);
    return p;
}

PlaceId Stg::find_place(std::string_view name) const {
    for (std::size_t i = 0; i < places_.size(); ++i)
        if (places_[i].name == name) return PlaceId(i);
    return PlaceId::invalid();
}

TransitionId Stg::find_transition(SignalEdge edge, int instance) const {
    for (std::size_t i = 0; i < transitions_.size(); ++i)
        if (transitions_[i].edge == edge && transitions_[i].instance == instance)
            return TransitionId(i);
    return TransitionId::invalid();
}

std::string Stg::transition_label(TransitionId t) const {
    const Transition& tr = transitions_[t.index()];
    std::string s = signals_[tr.edge.signal].name;
    s += tr.edge.rising ? '+' : '-';
    if (tr.instance != 1) s += "/" + std::to_string(tr.instance);
    return s;
}

void Stg::mark(PlaceId p, std::uint8_t tokens) { initial_[p.index()] = tokens; }

bool Stg::enabled(const Marking& m, TransitionId t) const {
    for (const PlaceId p : transitions_[t.index()].preset)
        if (m[p.index()] == 0) return false;
    return true;
}

Marking Stg::fire(const Marking& m, TransitionId t) const {
    Marking next = m;
    for (const PlaceId p : transitions_[t.index()].preset) {
        require(next[p.index()] > 0, "firing a disabled transition");
        --next[p.index()];
    }
    for (const PlaceId p : transitions_[t.index()].postset) {
        if (next[p.index()] == 255)
            throw SpecError("unbounded place '" + places_[p.index()].name + "'");
        ++next[p.index()];
    }
    return next;
}

void Stg::validate() const {
    for (std::size_t i = 0; i < transitions_.size(); ++i) {
        const auto& t = transitions_[i];
        if (t.preset.empty())
            throw SpecError("transition " + transition_label(TransitionId(i)) + " has empty preset");
        if (t.postset.empty())
            throw SpecError("transition " + transition_label(TransitionId(i)) + " has empty postset");
    }
    std::vector<bool> used(places_.size(), false);
    for (const auto& t : transitions_) {
        for (const PlaceId p : t.preset) used[p.index()] = true;
        for (const PlaceId p : t.postset) used[p.index()] = true;
    }
    for (std::size_t i = 0; i < places_.size(); ++i)
        if (!used[i])
            throw SpecError("place '" + places_[i].name + "' is disconnected");
}

} // namespace si::stg
