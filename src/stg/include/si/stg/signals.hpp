// Signal universe shared by STGs, state graphs and netlists.
//
// A specification's signals split into inputs (driven by the
// environment) and non-inputs (outputs and internal signals, which the
// synthesized circuit must produce). The paper's conditions all speak
// about non-input signals; inserted state signals are internal.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "si/util/ids.hpp"

namespace si {

enum class SignalKind : unsigned char {
    Input,    ///< driven by the environment
    Output,   ///< observable non-input signal
    Internal, ///< non-input signal invisible at the interface
};

/// True for Output and Internal signals — the ones synthesis implements.
[[nodiscard]] constexpr bool is_non_input(SignalKind k) { return k != SignalKind::Input; }

struct Signal {
    std::string name;
    SignalKind kind = SignalKind::Input;
};

/// Ordered table of signals with name lookup. Signal order defines the
/// bit positions of state codes throughout the library.
class SignalTable {
public:
    SignalId add(std::string name, SignalKind kind);

    [[nodiscard]] std::size_t size() const { return signals_.size(); }
    [[nodiscard]] const Signal& operator[](SignalId id) const { return signals_[id.index()]; }

    /// SignalId of `name`, or SignalId::invalid() when absent.
    [[nodiscard]] SignalId find(std::string_view name) const;

    [[nodiscard]] const std::vector<Signal>& all() const { return signals_; }
    [[nodiscard]] std::vector<std::string> names() const;

    [[nodiscard]] std::size_t count(SignalKind kind) const;

private:
    std::vector<Signal> signals_;
};

/// One edge of one signal: +a (rise) or -a (fall).
struct SignalEdge {
    SignalId signal;
    bool rising = true;

    friend bool operator==(const SignalEdge&, const SignalEdge&) = default;
};

/// Renders "+name" / "-name".
[[nodiscard]] std::string to_string(const SignalEdge& e, const SignalTable& table);

} // namespace si
