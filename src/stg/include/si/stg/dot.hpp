// Graphviz rendering of STG Petri nets: transitions as boxes, places as
// circles (implicit places elided to direct arcs), tokens as filled
// dots.
#pragma once

#include <string>

#include "si/stg/stg.hpp"

namespace si::stg {

[[nodiscard]] std::string to_dot(const Stg& net);

} // namespace si::stg
