// Parallel composition of STGs (synchronization on shared signals).
//
// Two controllers that talk to each other share interface signals: one
// side's output is the other side's input. Their joint behaviour is the
// composition of the nets — disjoint union of places, with transitions
// that carry the same label (signal edge + instance) merged into one
// synchronized transition. This is the classic `pcomp` operation of the
// petrify tool family; it lets separately synthesized stages be closed
// into a system and re-verified end to end.
#pragma once

#include "si/stg/stg.hpp"

namespace si::stg {

struct ComposeOptions {
    /// Shared signals become Internal in the composition (they are no
    /// longer part of the interface once both sides are present).
    bool internalize_shared = true;
};

/// Composes two nets. Shared signals must not be outputs on both sides
/// (two drivers); their joined kind is Output (or Internal when
/// internalize_shared is set). Throws SpecError on driver conflicts or
/// mismatched transition instances.
[[nodiscard]] Stg compose(const Stg& a, const Stg& b, const ComposeOptions& opts = {});

} // namespace si::stg
