// Signal Transition Graphs as labelled Petri nets.
//
// An STG is a Petri net whose transitions are labelled with signal edges
// (+a / -a). The token game over its reachable markings yields the state
// graph (Section II of the paper); translation "from different
// high-level specifications to state graphs is straightforward" — this is
// that front end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "si/stg/signals.hpp"
#include "si/util/ids.hpp"

namespace si::stg {

/// A marking: token count per place, in place order.
using Marking = std::vector<std::uint8_t>;

struct Place {
    std::string name;      ///< explicit name, or "<t1,t2>" for implicit places
    bool implicit = false; ///< created for a direct transition→transition arc
};

struct Transition {
    SignalEdge edge;                 ///< labelled signal edge
    int instance = 1;                ///< the /k suffix distinguishing multiple edges
    std::vector<PlaceId> preset;     ///< consumed places
    std::vector<PlaceId> postset;    ///< produced places
};

class Stg {
public:
    std::string name = "stg";

    [[nodiscard]] SignalTable& signals() { return signals_; }
    [[nodiscard]] const SignalTable& signals() const { return signals_; }

    PlaceId add_place(std::string name, bool implicit = false);
    TransitionId add_transition(SignalEdge edge, int instance = 1);
    /// Adds a place→transition (consuming) arc.
    void connect_pt(PlaceId p, TransitionId t);
    /// Adds a transition→place (producing) arc.
    void connect_tp(TransitionId t, PlaceId p);
    /// Adds a transition→transition arc through a fresh implicit place,
    /// returning that place.
    PlaceId connect_tt(TransitionId from, TransitionId to);

    [[nodiscard]] std::size_t num_places() const { return places_.size(); }
    [[nodiscard]] std::size_t num_transitions() const { return transitions_.size(); }
    [[nodiscard]] const Place& place(PlaceId p) const { return places_[p.index()]; }
    [[nodiscard]] const Transition& transition(TransitionId t) const { return transitions_[t.index()]; }
    [[nodiscard]] const std::vector<Transition>& transitions() const { return transitions_; }

    /// PlaceId of `name`, or invalid when absent.
    [[nodiscard]] PlaceId find_place(std::string_view name) const;
    /// Transition with the given label parts, or invalid when absent.
    [[nodiscard]] TransitionId find_transition(SignalEdge edge, int instance) const;

    /// Human-readable transition label, e.g. "a+" or "b-/2".
    [[nodiscard]] std::string transition_label(TransitionId t) const;

    [[nodiscard]] Marking& initial_marking() { return initial_; }
    [[nodiscard]] const Marking& initial_marking() const { return initial_; }
    void mark(PlaceId p, std::uint8_t tokens = 1);

    /// True if `t` is enabled in `m`.
    [[nodiscard]] bool enabled(const Marking& m, TransitionId t) const;
    /// Fires `t` from `m`; precondition: enabled(m, t).
    [[nodiscard]] Marking fire(const Marking& m, TransitionId t) const;

    /// Structural sanity: every transition has nonempty preset/postset,
    /// every place has a consumer or producer. Throws SpecError.
    void validate() const;

private:
    SignalTable signals_;
    std::vector<Place> places_;
    std::vector<Transition> transitions_;
    Marking initial_;
};

} // namespace si::stg
