// Reader and writer for the astg ".g" format used by SIS/petrify-era
// asynchronous benchmarks (the format of the paper's Table-1 examples).
//
// Supported sections: .model, .inputs, .outputs, .internal, .graph,
// .marking, .end; '#' comments; transition labels "a+", "b-", "c+/2";
// implicit places "<a+,b-/2>" in markings; "p=2" token multiplicities.
#pragma once

#include <string>
#include <string_view>

#include "si/stg/stg.hpp"

namespace si::stg {

/// Parses a .g description. Throws ParseError with a line reference on
/// malformed input and SpecError for structural problems.
[[nodiscard]] Stg read_g(std::string_view text);

/// Reads a .g file from disk.
[[nodiscard]] Stg read_g_file(const std::string& path);

/// Renders the net back to .g text (round-trips through read_g).
[[nodiscard]] std::string write_g(const Stg& stg);

} // namespace si::stg
