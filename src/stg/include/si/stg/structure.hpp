// Structural and behavioural classification of STG Petri nets — the
// sanity gate petrify-class tools run before synthesis. Several of the
// paper's cited results are class-conditional (Yu & Subrahmanyam handle
// marked graphs only; free choice separates environment nondeterminism
// from concurrency), so the classification is surfaced to users.
#pragma once

#include <string>

#include "si/stg/stg.hpp"

namespace si::stg {

struct StructureReport {
    /// Every place has at most one producer and one consumer (no choice).
    bool marked_graph = false;
    /// Every choice place is the *only* input of each of its consumers.
    bool free_choice = false;
    /// No reachable marking puts more than one token on a place.
    bool safe = false;
    /// The reachability graph is strongly connected and every transition
    /// fires somewhere — each transition stays live forever.
    bool live = false;
    std::size_t reachable_markings = 0;
    std::string offender; ///< witness for the first failed property

    [[nodiscard]] std::string describe() const;
};

/// Explores at most `max_markings` markings. Throws SpecError if the net
/// is unbounded past 255 tokens or exceeds the budget.
[[nodiscard]] StructureReport analyze_structure(const Stg& net, std::size_t max_markings = 1u << 20);

} // namespace si::stg
