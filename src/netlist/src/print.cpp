#include "si/netlist/print.hpp"

#include "si/util/error.hpp"

namespace si::net {

namespace {

std::string ref(const Netlist& nl, const Fanin& f) {
    std::string s = nl.gate(f.gate).name;
    if (f.inverted) s += "'";
    return s;
}

std::string joined(const Netlist& nl, const Gate& g, const char* sep) {
    std::string s;
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
        if (i != 0) s += sep;
        s += ref(nl, g.fanins[i]);
    }
    return s;
}

} // namespace

std::string to_equations(const Netlist& nl) {
    std::string out;
    for (std::size_t i = 0; i < nl.num_gates(); ++i) {
        const Gate& g = nl.gate(GateId(i));
        switch (g.kind) {
        case GateKind::Input:
            break; // environment signals carry no equation
        case GateKind::And:
            out += g.name + " = " + joined(nl, g, " ") + "\n";
            break;
        case GateKind::Or:
            out += g.name + " = " + joined(nl, g, " + ") + "\n";
            break;
        case GateKind::Not:
            out += g.name + " = " + ref(nl, g.fanins[0]) + "'\n";
            break;
        case GateKind::Nor:
            out += g.name + " = (" + joined(nl, g, " + ") + ")'\n";
            break;
        case GateKind::Wire:
            out += g.name + " = " + ref(nl, g.fanins[0]) + "\n";
            break;
        case GateKind::CElement: {
            const std::string a = ref(nl, g.fanins[0]);
            const std::string b = ref(nl, g.fanins[1]);
            out += g.name + " = C(" + a + ", " + b + ")   [= " + a + " " + b + " + " + g.name +
                   " (" + a + " + " + b + ")]\n";
            break;
        }
        case GateKind::RsLatch:
            out += g.name + " = RS(set: " + ref(nl, g.fanins[0]) + ", reset: " +
                   ref(nl, g.fanins[1]) + ")\n";
            break;
        case GateKind::Complex:
            out += g.name + " = [" + g.complex_fn.to_expr(nl.signals().names()) + "]\n";
            break;
        }
    }
    return out;
}

std::string to_verilog(const Netlist& nl) {
    std::string ports_in, ports_out, body;
    std::vector<std::string> wire_names(nl.num_gates());
    for (std::size_t i = 0; i < nl.num_gates(); ++i) {
        std::string w = nl.gate(GateId(i)).name;
        for (auto& ch : w) {
            if (ch == '(' || ch == ')' || ch == '~' || ch == '\'') ch = '_';
        }
        wire_names[i] = w;
    }
    auto vref = [&](const Fanin& f) {
        return (f.inverted ? "~" : "") + wire_names[f.gate.index()];
    };

    bool has_c = false;
    bool has_rs = false;
    for (std::size_t i = 0; i < nl.num_gates(); ++i) {
        const Gate& g = nl.gate(GateId(i));
        const std::string& w = wire_names[i];
        switch (g.kind) {
        case GateKind::Input:
            ports_in += ", input " + w;
            continue;
        case GateKind::CElement:
            has_c = true;
            body += "  celem u_" + w + "(.a(" + vref(g.fanins[0]) + "), .b(" + vref(g.fanins[1]) +
                    "), .q(" + w + "));\n";
            break;
        case GateKind::RsLatch:
            has_rs = true;
            body += "  rslatch u_" + w + "(.s(" + vref(g.fanins[0]) + "), .r(" +
                    vref(g.fanins[1]) + "), .q(" + w + "));\n";
            break;
        case GateKind::And: {
            body += "  assign " + w + " = ";
            for (std::size_t k = 0; k < g.fanins.size(); ++k)
                body += (k ? " & " : "") + vref(g.fanins[k]);
            body += ";\n";
            break;
        }
        case GateKind::Or: {
            body += "  assign " + w + " = ";
            for (std::size_t k = 0; k < g.fanins.size(); ++k)
                body += (k ? " | " : "") + vref(g.fanins[k]);
            body += ";\n";
            break;
        }
        case GateKind::Nor: {
            body += "  assign " + w + " = ~(";
            for (std::size_t k = 0; k < g.fanins.size(); ++k)
                body += (k ? " | " : "") + vref(g.fanins[k]);
            body += ");\n";
            break;
        }
        case GateKind::Not:
            body += "  assign " + w + " = ~" + vref(g.fanins[0]) + ";\n";
            break;
        case GateKind::Wire:
            body += "  assign " + w + " = " + vref(g.fanins[0]) + ";\n";
            break;
        case GateKind::Complex: {
            // Behavioural SOP latch over the named signals.
            std::string expr;
            const auto names = nl.signals().names();
            for (std::size_t k = 0; k < g.complex_fn.size(); ++k) {
                if (k) expr += " | ";
                expr += "(";
                bool first = true;
                const Cube& c = g.complex_fn.cube(k);
                for (std::size_t v = 0; v < c.num_vars(); ++v) {
                    const Lit l = c.lit(SignalId(v));
                    if (l == Lit::Dash) continue;
                    if (!first) expr += " & ";
                    expr += (l == Lit::Zero ? "~" : "") + names[v];
                    first = false;
                }
                if (first) expr += "1'b1";
                expr += ")";
            }
            if (g.complex_fn.empty()) expr = "1'b0";
            body += "  assign " + w + " = " + expr + ";\n";
            break;
        }
        }
        if (g.signal.is_valid() && is_non_input(nl.signals()[g.signal].kind) &&
            nl.signals()[g.signal].kind == SignalKind::Output)
            ports_out += ", output " + w;
        else if (g.kind != GateKind::Input)
            body = "  wire " + w + ";\n" + body;
    }

    std::string out;
    if (has_rs) {
        out += "module rslatch(input s, input r, output reg q);\n"
               "  initial q = 1'b0;\n"
               "  always @(s or r) begin\n"
               "    if (s & ~r) q <= 1'b1;\n"
               "    else if (r & ~s) q <= 1'b0;\n"
               "  end\nendmodule\n\n";
    }
    if (has_c) {
        out += "module celem(input a, input b, output reg q);\n"
               "  initial q = 1'b0;\n"
               "  always @(a or b) begin\n"
               "    if (a & b) q <= 1'b1;\n"
               "    else if (!a & !b) q <= 1'b0;\n"
               "  end\nendmodule\n\n";
    }
    std::string ports = ports_in + ports_out;
    if (!ports.empty()) ports = ports.substr(2); // drop leading ", "
    out += "module " + nl.name + "(" + ports + ");\n" + body + "endmodule\n";
    return out;
}

} // namespace si::net
