#include "si/netlist/builder.hpp"

#include <map>
#include <unordered_map>

#include "si/util/error.hpp"

namespace si::net {

namespace {

struct LatchGates {
    GateId q = GateId::invalid();    // C-element output or Q rail
    GateId qbar = GateId::invalid(); // Q~ rail (RS implementation only)
};

} // namespace

Netlist build_standard_implementation(const sg::StateGraph& spec,
                                      const std::vector<SignalNetwork>& networks,
                                      const BuildOptions& opts) {
    Netlist nl(spec.signals());
    nl.name = spec.name + (opts.use_rs_latches ? "-rs" : "-c");
    const auto& signals = spec.signals();
    const BitVec& init = spec.state(spec.initial()).code;

    // Pass 1: environment inputs and restoring elements, so literal
    // sources exist before any SOP logic references them.
    std::vector<LatchGates> latch(signals.size());
    for (std::size_t vi = 0; vi < signals.size(); ++vi) {
        const SignalId v{vi};
        if (signals[v].kind == SignalKind::Input) {
            latch[vi].q = nl.add_gate(GateKind::Input, signals[v].name, {}, v);
            nl.gate(latch[vi].q).initial_value = init.test(vi);
        }
    }
    for (const auto& network : networks) {
        const std::size_t vi = network.signal.index();
        require(is_non_input(signals[network.signal].kind), "network on an input signal");
        if (network.up_cubes.empty() || network.down_cubes.empty())
            throw SynthesisError("signal '" + signals[network.signal].name +
                                 "' lacks up or down excitation cubes");
        if (opts.use_rs_latches) {
            // Atomic RS flip-flop (Figure 2b): both rails come from one
            // library element, so the complemented rail is an inverted
            // reference to the q output rather than a separate gate.
            latch[vi].q = nl.add_placeholder(GateKind::RsLatch, signals[network.signal].name,
                                             network.signal);
            nl.gate(latch[vi].q).initial_value = init.test(vi);
        } else {
            latch[vi].q = nl.add_placeholder(GateKind::CElement, signals[network.signal].name,
                                             network.signal);
            nl.gate(latch[vi].q).initial_value = init.test(vi);
        }
    }

    // A literal of signal b: the Q gate (positive) or, complemented, the
    // Q~ rail in the RS architecture / an inverted fanin in the
    // C-architecture (dual-rail environment inputs are modelled as
    // inverted fanins in both).
    auto literal_source = [&](SignalId b, bool complemented) -> Fanin {
        const std::size_t bi = b.index();
        require(latch[bi].q.is_valid(),
                "literal on a signal with no realization (missing network)");
        if (complemented && latch[bi].qbar.is_valid()) return Fanin{latch[bi].qbar, false};
        return Fanin{latch[bi].q, complemented};
    };

    auto cube_fanins = [&](const Cube& c) {
        std::vector<Fanin> fanins;
        for (std::size_t b = 0; b < c.num_vars(); ++b) {
            const Lit l = c.lit(SignalId(b));
            if (l == Lit::Dash) continue;
            fanins.push_back(literal_source(SignalId(b), l == Lit::Zero));
        }
        require(!fanins.empty(), "universal cube in a region function");
        return fanins;
    };

    // Shared AND gates: one gate per distinct cube when sharing is on.
    std::unordered_map<Cube, GateId> shared;
    auto region_gate = [&](const Cube& c, const std::string& gate_name) -> Fanin {
        auto fanins = cube_fanins(c);
        if (opts.simplify_degenerate && fanins.size() == 1) return fanins[0];
        if (opts.share_gates) {
            if (const auto it = shared.find(c); it != shared.end()) return Fanin{it->second, false};
        }
        const GateId g = nl.add_gate(GateKind::And, gate_name, std::move(fanins));
        if (opts.share_gates) shared.emplace(c, g);
        return Fanin{g, false};
    };

    // Pass 2: the SOP networks.
    for (const auto& network : networks) {
        const std::string& aname = signals[network.signal].name;
        auto build_half = [&](const std::vector<Cube>& cubes, const std::string& prefix) -> Fanin {
            std::vector<Fanin> terms;
            for (std::size_t i = 0; i < cubes.size(); ++i)
                terms.push_back(region_gate(
                    cubes[i], prefix + "(" + aname + ")" + std::to_string(i + 1)));
            if (opts.simplify_degenerate && terms.size() == 1) return terms[0];
            return Fanin{nl.add_gate(GateKind::Or, prefix + aname, std::move(terms)), false};
        };
        const Fanin set = build_half(network.up_cubes, "S");
        const Fanin reset = build_half(network.down_cubes, "R");
        const std::size_t vi = network.signal.index();
        if (opts.use_rs_latches) {
            nl.set_fanins(latch[vi].q, {set, reset});
        } else {
            // C-element semantics: next = A·B + C·(A+B); the reset input
            // enters inverted (Figure 2a's bubbled input).
            nl.set_fanins(latch[vi].q, {set, Fanin{reset.gate, !reset.inverted}});
        }
    }
    return nl;
}

std::string InverterConstraintReport::describe() const {
    return "tech mapping introduces " + std::to_string(input_inversions) +
           " input inverter(s) across " + std::to_string(signal_networks) +
           " signal network(s); the standard C-implementation stays hazard-free iff every "
           "inverter is faster than a whole signal network (d_inv^max < D_sn^min, Section III)";
}

InverterConstraintReport inverter_constraint(const Netlist& nl) {
    InverterConstraintReport r;
    r.input_inversions = nl.stats().input_inversions;
    r.signal_networks = nl.stats().c_elements + nl.stats().rs_latches;
    return r;
}

} // namespace si::net
