#include "si/netlist/parse_eqn.hpp"

#include <map>
#include <vector>

#include "si/util/error.hpp"
#include "si/util/text.hpp"

namespace si::net {

namespace {

struct Equation {
    std::string name;
    GateKind kind;
    std::vector<std::string> operands; // "x" or "x'" tokens
    std::size_t line;
};

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
    throw ParseError("equations line " + std::to_string(line_no + 1) + ": " + msg);
}

// Splits an operand list like "a, b'" or "a + b" on the given separator.
std::vector<std::string> operands_of(std::string_view body, std::string_view sep,
                                     std::size_t line_no) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const auto at = body.find(sep, start);
        const std::string_view piece =
            at == std::string_view::npos ? body.substr(start) : body.substr(start, at - start);
        const std::string token{trim(piece)};
        if (token.empty()) fail(line_no, "empty operand");
        out.push_back(token);
        if (at == std::string_view::npos) break;
        start = at + sep.size();
    }
    return out;
}

Equation parse_line(std::string_view line, std::size_t line_no) {
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) fail(line_no, "missing '='");
    Equation e;
    e.line = line_no;
    e.name = std::string(trim(line.substr(0, eq)));
    if (e.name.empty()) fail(line_no, "missing gate name");
    std::string_view rhs = trim(line.substr(eq + 1));
    // Drop the decorative "[= ...]" expansion after C(...).
    if (const auto bracket = rhs.find('['); bracket != std::string_view::npos)
        rhs = trim(rhs.substr(0, bracket));
    if (rhs.empty()) fail(line_no, "missing right-hand side");

    if (starts_with(rhs, "C(") && rhs.back() == ')') {
        e.kind = GateKind::CElement;
        e.operands = operands_of(rhs.substr(2, rhs.size() - 3), ",", line_no);
        if (e.operands.size() != 2) fail(line_no, "C() needs two operands");
        return e;
    }
    if (starts_with(rhs, "RS(") && rhs.back() == ')') {
        e.kind = GateKind::RsLatch;
        auto ops = operands_of(rhs.substr(3, rhs.size() - 4), ",", line_no);
        if (ops.size() != 2) fail(line_no, "RS() needs set and reset");
        for (auto& op : ops) {
            // Accept the "set:"/"reset:" labels the printer emits.
            if (const auto colon = op.find(':'); colon != std::string::npos)
                op = std::string(trim(std::string_view(op).substr(colon + 1)));
        }
        e.operands = std::move(ops);
        return e;
    }
    if (rhs.front() == '(' && rhs.size() >= 3 && rhs.substr(rhs.size() - 2) == ")'") {
        e.kind = GateKind::Nor;
        e.operands = operands_of(rhs.substr(1, rhs.size() - 3), "+", line_no);
        return e;
    }
    if (rhs.find('+') != std::string_view::npos) {
        e.kind = GateKind::Or;
        e.operands = operands_of(rhs, "+", line_no);
        return e;
    }
    e.operands = split(rhs);
    if (e.operands.size() > 1) {
        e.kind = GateKind::And;
    } else if (e.operands.size() == 1) {
        const bool inverted = e.operands[0].back() == '\'';
        e.kind = inverted ? GateKind::Not : GateKind::Wire;
        if (inverted) e.operands[0].pop_back();
    } else {
        fail(line_no, "empty expression");
    }
    return e;
}

} // namespace

Netlist parse_equations(std::string_view text, const sg::StateGraph& spec) {
    std::vector<Equation> equations;
    const auto all_lines = lines_of(text);
    for (std::size_t ln = 0; ln < all_lines.size(); ++ln) {
        std::string_view raw = all_lines[ln];
        if (const auto hash = raw.find('#'); hash != std::string_view::npos)
            raw = raw.substr(0, hash);
        if (trim(raw).empty()) continue;
        equations.push_back(parse_line(trim(raw), ln));
    }

    Netlist nl(spec.signals());
    nl.name = spec.name + "-eqn";
    const BitVec& init = spec.state(spec.initial()).code;
    std::map<std::string, GateId> by_name;

    // Inputs exist implicitly.
    for (std::size_t vi = 0; vi < spec.num_signals(); ++vi) {
        const SignalId v{vi};
        if (spec.signals()[v].kind != SignalKind::Input) continue;
        const GateId g = nl.add_gate(GateKind::Input, spec.signals()[v].name, {}, v);
        nl.gate(g).initial_value = init.test(vi);
        by_name.emplace(spec.signals()[v].name, g);
    }
    // Defined gates as placeholders first (forward references are legal).
    for (const auto& e : equations) {
        if (by_name.count(e.name))
            fail(e.line, "gate '" + e.name + "' defined twice (or shadows an input)");
        const SignalId sig = spec.signals().find(e.name);
        if (sig.is_valid() && spec.signals()[sig].kind == SignalKind::Input)
            fail(e.line, "cannot drive input '" + e.name + "'");
        const GateId g = nl.add_placeholder(e.kind, e.name, sig);
        if (sig.is_valid()) nl.gate(g).initial_value = init.test(sig.index());
        by_name.emplace(e.name, g);
    }
    // Resolve fanins.
    for (const auto& e : equations) {
        std::vector<Fanin> fanins;
        for (std::string op : e.operands) {
            bool inverted = false;
            if (!op.empty() && op.back() == '\'') {
                inverted = true;
                op.pop_back();
            }
            const auto it = by_name.find(op);
            if (it == by_name.end()) fail(e.line, "unknown operand '" + op + "'");
            fanins.push_back(Fanin{it->second, inverted});
        }
        nl.set_fanins(by_name.at(e.name), std::move(fanins));
    }
    // Every non-input specification signal must be realized.
    for (std::size_t vi = 0; vi < spec.num_signals(); ++vi) {
        const SignalId v{vi};
        if (!is_non_input(spec.signals()[v].kind)) continue;
        if (!nl.gate_of_signal(v).is_valid())
            throw SpecError("no equation drives specification signal '" +
                            spec.signals()[v].name + "'");
    }
    return nl;
}

} // namespace si::net
