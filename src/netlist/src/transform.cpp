#include "si/netlist/transform.hpp"

#include "si/util/error.hpp"

#include <algorithm>
#include <map>

namespace si::net {

Netlist materialize_inversions(const Netlist& nl) {
    Netlist out(nl.signals());
    out.name = nl.name + "-inv";

    // First pass: copy every gate one-to-one so indices line up, then
    // append shared inverters and rewire.
    for (std::size_t gi = 0; gi < nl.num_gates(); ++gi) {
        const Gate& g = nl.gate(GateId(gi));
        const GateId copy = out.add_placeholder(g.kind, g.name, g.signal);
        out.gate(copy).initial_value = g.initial_value;
        out.gate(copy).complex_fn = g.complex_fn;
    }
    std::map<std::uint32_t, GateId> inverter_of; // source gate -> Not gate
    for (std::size_t gi = 0; gi < nl.num_gates(); ++gi) {
        const Gate& g = nl.gate(GateId(gi));
        std::vector<Fanin> fanins = g.fanins;
        if (g.kind == GateKind::And || g.kind == GateKind::Or) {
            for (auto& f : fanins) {
                if (!f.inverted) continue;
                auto [it, inserted] = inverter_of.emplace(f.gate.raw(), GateId::invalid());
                if (inserted) {
                    it->second = out.add_gate(GateKind::Not,
                                              nl.gate(f.gate).name + "_inv",
                                              {Fanin{f.gate, false}});
                }
                f = Fanin{it->second, false};
            }
        }
        if (!fanins.empty()) out.set_fanins(GateId(gi), std::move(fanins));
    }
    return out;
}

Netlist decompose_fanin(const Netlist& nl, std::size_t max_fanin) {
    require(max_fanin >= 2, "decompose_fanin needs max_fanin >= 2");
    Netlist out(nl.signals());
    out.name = nl.name + "-fanin" + std::to_string(max_fanin);

    // Copy gates one-to-one first so fanin references stay valid, then
    // splice subtree gates behind the wide gates.
    for (std::size_t gi = 0; gi < nl.num_gates(); ++gi) {
        const Gate& g = nl.gate(GateId(gi));
        const GateId copy = out.add_placeholder(g.kind, g.name, g.signal);
        out.gate(copy).initial_value = g.initial_value;
        out.gate(copy).complex_fn = g.complex_fn;
    }
    for (std::size_t gi = 0; gi < nl.num_gates(); ++gi) {
        const Gate& g = nl.gate(GateId(gi));
        if (g.fanins.empty()) continue;
        if ((g.kind != GateKind::And && g.kind != GateKind::Or) ||
            g.fanins.size() <= max_fanin) {
            out.set_fanins(GateId(gi), g.fanins);
            continue;
        }
        // Reduce the fanin list in rounds, packing max_fanin inputs into
        // a fresh subtree gate per group until few enough remain.
        std::vector<Fanin> level = g.fanins;
        int counter = 0;
        while (level.size() > max_fanin) {
            std::vector<Fanin> next;
            for (std::size_t i = 0; i < level.size(); i += max_fanin) {
                const std::size_t n = std::min(max_fanin, level.size() - i);
                if (n == 1) {
                    next.push_back(level[i]);
                    continue;
                }
                std::vector<Fanin> group(level.begin() + static_cast<std::ptrdiff_t>(i),
                                         level.begin() + static_cast<std::ptrdiff_t>(i + n));
                const GateId sub = out.add_gate(
                    g.kind, g.name + "_t" + std::to_string(counter++), std::move(group));
                next.push_back(Fanin{sub, false});
            }
            level = std::move(next);
        }
        out.set_fanins(GateId(gi), std::move(level));
    }
    return out;
}

} // namespace si::net
