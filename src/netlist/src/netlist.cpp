#include "si/netlist/netlist.hpp"

#include <algorithm>

#include "si/util/error.hpp"

namespace si::net {

Netlist::Netlist(const SignalTable& signals) {
    for (const auto& s : signals.all()) signals_.add(s.name, s.kind);
}

namespace {

void check_fanins(GateKind kind, const std::vector<Fanin>& fanins) {
    switch (kind) {
    case GateKind::Input:
        require(fanins.empty(), "Input gate with fanins");
        break;
    case GateKind::Not:
    case GateKind::Wire:
        require(fanins.size() == 1, "Not/Wire gate needs exactly one fanin");
        break;
    case GateKind::CElement:
        require(fanins.size() == 2, "C-element needs exactly two fanins");
        break;
    case GateKind::RsLatch:
        require(fanins.size() == 2, "RS latch needs exactly two fanins");
        break;
    case GateKind::And:
    case GateKind::Or:
    case GateKind::Nor:
        require(!fanins.empty(), "logic gate needs fanins");
        break;
    case GateKind::Complex:
        break; // arbitrary fanin list
    }
}

} // namespace

GateId Netlist::add_placeholder(GateKind kind, std::string gate_name, SignalId signal) {
    gates_.push_back(Gate{kind, std::move(gate_name), {}, signal, false, {}});
    return GateId(gates_.size() - 1);
}

void Netlist::set_fanins(GateId g, std::vector<Fanin> fanins) {
    check_fanins(gates_[g.index()].kind, fanins);
    gates_[g.index()].fanins = std::move(fanins);
}

GateId Netlist::add_gate(GateKind kind, std::string gate_name, std::vector<Fanin> fanins,
                         SignalId signal) {
    check_fanins(kind, fanins);
    gates_.push_back(Gate{kind, std::move(gate_name), std::move(fanins), signal, false, {}});
    return GateId(gates_.size() - 1);
}

GateId Netlist::gate_of_signal(SignalId v) const {
    for (std::size_t i = 0; i < gates_.size(); ++i)
        if (gates_[i].signal == v) return GateId(i);
    return GateId::invalid();
}

bool Netlist::target_value(GateId g, const BitVec& values) const {
    const Gate& gate = gates_[g.index()];
    auto in = [&](std::size_t i) {
        const Fanin& f = gate.fanins[i];
        return values.test(f.gate.index()) != f.inverted;
    };
    switch (gate.kind) {
    case GateKind::Input:
        return values.test(g.index());
    case GateKind::Wire:
        return in(0);
    case GateKind::Not:
        return !in(0);
    case GateKind::And: {
        for (std::size_t i = 0; i < gate.fanins.size(); ++i)
            if (!in(i)) return false;
        return true;
    }
    case GateKind::Or: {
        for (std::size_t i = 0; i < gate.fanins.size(); ++i)
            if (in(i)) return true;
        return false;
    }
    case GateKind::Nor: {
        for (std::size_t i = 0; i < gate.fanins.size(); ++i)
            if (in(i)) return false;
        return true;
    }
    case GateKind::CElement: {
        const bool a = in(0);
        const bool b = in(1);
        const bool c = values.test(g.index());
        return (a && b) || (c && (a || b));
    }
    case GateKind::RsLatch: {
        const bool set = in(0);
        const bool reset = in(1);
        const bool q = values.test(g.index());
        if (set && !reset) return true;
        if (reset && !set) return false;
        return q; // hold (set==reset==1 cannot arise under disjoint MC cubes)
    }
    case GateKind::Complex: {
        // Evaluate the SOP over the current values of the gates realizing
        // each specification signal.
        BitVec code(signals_.size());
        for (std::size_t v = 0; v < signals_.size(); ++v) {
            const GateId src = gate_of_signal(SignalId(v));
            require(src.is_valid(), "complex gate reads an unrealized signal");
            if (values.test(src.index())) code.set(v);
        }
        return gate.complex_fn.eval(code);
    }
    }
    throw InternalError("unknown gate kind");
}

BitVec Netlist::initial_values() const {
    BitVec values(gates_.size());
    // Inputs and restoring elements start at their declared values.
    for (std::size_t i = 0; i < gates_.size(); ++i)
        if (gates_[i].initial_value) values.set(i);

    // Relax purely combinational gates (everything that is not an input,
    // a C-element, or part of a latch — latch rails carry initial_value
    // presets and are treated as state-holding here).
    auto is_stateful = [&](const Gate& g) {
        return g.kind == GateKind::Input || g.kind == GateKind::CElement ||
               g.kind == GateKind::RsLatch || g.kind == GateKind::Nor ||
               g.kind == GateKind::Complex || g.signal.is_valid();
    };
    for (std::size_t pass = 0; pass <= gates_.size(); ++pass) {
        bool changed = false;
        for (std::size_t i = 0; i < gates_.size(); ++i) {
            if (is_stateful(gates_[i])) continue;
            const bool t = target_value(GateId(i), values);
            if (t != values.test(i)) {
                values.assign(i, t);
                changed = true;
            }
        }
        if (!changed) return values;
    }
    throw SpecError("netlist '" + name + "' has unstable combinational logic at reset");
}

FanoutIndex::FanoutIndex(const Netlist& nl) {
    rows_.assign(nl.num_gates(), {});
    for (std::size_t gi = 0; gi < nl.num_gates(); ++gi) {
        const Gate& g = nl.gate(GateId(gi));
        if (g.kind == GateKind::Complex) {
            // target_value rebuilds the whole signal code vector, so a
            // complex gate re-evaluates whenever any realized signal moves.
            for (std::size_t v = 0; v < nl.signals().size(); ++v) {
                const GateId src = nl.gate_of_signal(SignalId(v));
                if (src.is_valid()) rows_[src.index()].push_back(GateId(gi));
            }
        } else {
            for (const auto& f : g.fanins) rows_[f.gate.index()].push_back(GateId(gi));
        }
    }
    for (auto& row : rows_) {
        std::sort(row.begin(), row.end(),
                  [](GateId a, GateId b) { return a.index() < b.index(); });
        row.erase(std::unique(row.begin(), row.end()), row.end());
    }
}

Netlist::Stats Netlist::stats() const {
    Stats s;
    for (const auto& g : gates_) {
        switch (g.kind) {
        case GateKind::And:
            ++s.and_gates;
            s.literals += g.fanins.size();
            break;
        case GateKind::Or:
            ++s.or_gates;
            s.literals += g.fanins.size();
            break;
        case GateKind::Nor: ++s.nor_gates; break;
        case GateKind::CElement: ++s.c_elements; break;
        case GateKind::RsLatch: ++s.rs_latches; break;
        case GateKind::Complex:
            ++s.complex_gates;
            s.literals += g.complex_fn.literal_count();
            break;
        case GateKind::Not: ++s.inverters; break;
        case GateKind::Wire: ++s.wires; break;
        case GateKind::Input: ++s.inputs; break;
        }
        for (const auto& f : g.fanins)
            if (f.inverted) ++s.input_inversions;
    }
    return s;
}

} // namespace si::net
