// Rendering netlists as paper-style equation systems and as structural
// Verilog.
#pragma once

#include <string>

#include "si/netlist/netlist.hpp"

namespace si::net {

/// Equation-per-gate rendering in the style of the paper's eq (1)/(2):
///   S(d)1 = a b'
///   Sd = S(d)1 + S(d)2
///   d = C(Sd, Rd)  [ = Sd Rd' + d (Sd + Rd') ]
[[nodiscard]] std::string to_equations(const Netlist& nl);

/// Structural Verilog with behavioural C-element modules, suitable for
/// simulation elsewhere.
[[nodiscard]] std::string to_verilog(const Netlist& nl);

} // namespace si::net
