// Gate-level netlists over the basic-gate library of the paper:
// AND / OR gates (with input inversions), inverters, NOR gates (for the
// structural RS latch), Muller C-elements and wires.
//
// Gates have pure unbounded delays (Section III): a gate whose function
// value differs from its current output is *excited* and may fire at any
// time. The verifier drives netlists exactly through that semantics.
#pragma once

#include <string>
#include <vector>

#include "si/boolean/cover.hpp"
#include "si/stg/signals.hpp"
#include "si/util/bitvec.hpp"
#include "si/util/ids.hpp"

namespace si::net {

enum class GateKind : unsigned char {
    Input,    ///< environment-driven; no fanins
    And,      ///< conjunction of (possibly inverted) fanins
    Or,       ///< disjunction of (possibly inverted) fanins
    Not,      ///< single-fanin inverter
    Nor,      ///< negated disjunction (structural RS latches)
    CElement, ///< Muller C: next = A·B + C·(A+B) over two fanins
    RsLatch,  ///< atomic set/reset latch over fanins [S, R]; its q~ pin is
              ///< modelled as an inverted fanin reference (dual-rail output)
    Complex,  ///< one atomic complex gate computing an arbitrary SOP of the
              ///< specification signals (the complex-gate methodology the
              ///< paper contrasts with); hazard-free by fiat, like a library
              ///< cell with no internal structure
    Wire,     ///< buffer; forwards its single fanin
};

struct Fanin {
    GateId gate;
    bool inverted = false; ///< reads the complement of the fanin's output
};

struct Gate {
    GateKind kind = GateKind::Wire;
    std::string name;          ///< net name of the gate output
    std::vector<Fanin> fanins;
    /// Specification signal this gate realizes (inputs and the restoring
    /// latch/wire of each non-input); invalid for internal logic.
    SignalId signal = SignalId::invalid();
    bool initial_value = false;
    /// Next-state function of a Complex gate, over the specification
    /// signal space (fanins list the signal-realizing gates it reads, in
    /// signal order, for fanout bookkeeping).
    Cover complex_fn;
};

class Netlist {
public:
    std::string name = "netlist";

    explicit Netlist(const SignalTable& signals);

    [[nodiscard]] const SignalTable& signals() const { return signals_; }

    GateId add_gate(GateKind kind, std::string name, std::vector<Fanin> fanins,
                    SignalId signal = SignalId::invalid());

    /// Creates a gate whose fanins will be patched in later with
    /// set_fanins — needed for the cyclic structures (latch rails,
    /// cross-coupled signal networks).
    GateId add_placeholder(GateKind kind, std::string name, SignalId signal = SignalId::invalid());
    void set_fanins(GateId g, std::vector<Fanin> fanins);

    [[nodiscard]] std::size_t num_gates() const { return gates_.size(); }
    [[nodiscard]] const Gate& gate(GateId g) const { return gates_[g.index()]; }
    [[nodiscard]] Gate& gate(GateId g) { return gates_[g.index()]; }
    [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }

    /// Gate realizing specification signal v (its Input gate or restoring
    /// element output). Invalid when the signal is not realized yet.
    [[nodiscard]] GateId gate_of_signal(SignalId v) const;

    /// The value gate g's function produces from the given output vector
    /// (one bit per gate). For Input gates this returns the current value
    /// (inputs change only by environment action).
    [[nodiscard]] bool target_value(GateId g, const BitVec& values) const;

    /// True if g's function value differs from its current output.
    [[nodiscard]] bool gate_excited(GateId g, const BitVec& values) const {
        return target_value(g, values) != values.test(g.index());
    }

    /// Initial output vector: inputs and signal gates at their declared
    /// initial values, combinational gates relaxed to a fixpoint.
    /// Throws SpecError if the logic cannot stabilize.
    [[nodiscard]] BitVec initial_values() const;

    /// Gate counts per kind and literal totals (for the result tables).
    struct Stats {
        std::size_t and_gates = 0, or_gates = 0, c_elements = 0, nor_gates = 0;
        std::size_t rs_latches = 0;
        std::size_t complex_gates = 0;
        std::size_t inverters = 0, wires = 0, inputs = 0;
        std::size_t literals = 0; ///< total AND/OR fanin count
        std::size_t input_inversions = 0;
    };
    [[nodiscard]] Stats stats() const;

private:
    SignalTable signals_;
    std::vector<Gate> gates_;
};

/// Fanout adjacency of a netlist snapshot: for each gate, the ascending,
/// duplicate-free list of gates whose next-state function reads its
/// output. Complex gates evaluate their SOP over every signal-realizing
/// gate, so they appear in each such gate's row. The index is immutable
/// after construction (safe to share across verifier threads) and is NOT
/// updated by later netlist mutations — rebuild it per mutant.
class FanoutIndex {
public:
    FanoutIndex() = default;
    explicit FanoutIndex(const Netlist& nl);

    [[nodiscard]] const std::vector<GateId>& of(GateId g) const { return rows_[g.index()]; }

private:
    std::vector<std::vector<GateId>> rows_;
};

} // namespace si::net
