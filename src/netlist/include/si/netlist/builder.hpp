// Construction of the paper's two implementation architectures
// (Section III, Figure 2): per non-input signal, a two-level SOP network
// for the up-excitation function S(a) and the down-excitation function
// R(a), restored by a Muller C-element (standard C-implementation) or a
// structural RS latch built from cross-coupled NOR gates (standard
// RS-implementation, dual-rail literals).
#pragma once

#include <vector>

#include "si/boolean/cube.hpp"
#include "si/netlist/netlist.hpp"
#include "si/sg/state_graph.hpp"

namespace si::net {

/// Region functions of one non-input signal: one cube per excitation
/// region (up-excitation regions feed S(a), down-excitation R(a)).
struct SignalNetwork {
    SignalId signal;
    std::vector<Cube> up_cubes;
    std::vector<Cube> down_cubes;
};

struct BuildOptions {
    /// Build RS latches (cross-coupled NORs, dual-rail literals) instead
    /// of C-elements.
    bool use_rs_latches = false;
    /// Apply the paper's degenerative simplifications: a single-literal
    /// region function needs no AND gate; a single-cube excitation
    /// function needs no OR gate.
    bool simplify_degenerate = true;
    /// Reuse one AND gate for identical cubes across signal networks
    /// (Section VI; caller must have validated the generalized MC
    /// requirement for shared cubes).
    bool share_gates = false;
};

/// Builds the standard implementation. `spec` provides the signal table
/// and the initial code (reset values of inputs and latches). Throws
/// SynthesisError when a network has no up or no down cubes.
[[nodiscard]] Netlist build_standard_implementation(const sg::StateGraph& spec,
                                                    const std::vector<SignalNetwork>& networks,
                                                    const BuildOptions& opts = {});

/// Section III's justification of input inversions: the standard
/// C-implementation stays hazard-free when every tech-mapped input
/// inverter is faster than a whole signal network (d_inv^max < D_sn^min).
/// This report counts the inverters the mapping would create and states
/// the constraint; it is what a timing sign-off would check.
struct InverterConstraintReport {
    std::size_t input_inversions = 0;
    std::size_t signal_networks = 0;
    [[nodiscard]] std::string describe() const;
};
[[nodiscard]] InverterConstraintReport inverter_constraint(const Netlist& nl);

} // namespace si::net
