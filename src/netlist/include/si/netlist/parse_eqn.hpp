// Parser for the equation format emitted by to_equations(), so that
// hand-written or externally produced basic-gate netlists can be fed to
// the verifier:
//
//   S(c)1 = b d'            AND gate (space-separated literals)
//   Sc = S(c)1 + S(c)2      OR gate (" + "-separated literals)
//   n = (a + b)'            NOR gate
//   w = a                   wire        i = a'   inverter
//   c = C(Sc, Rc')          Muller C-element
//   q = RS(set: s, reset: r)  RS latch
//
// '#' starts a comment; the "[= ...]" expansion to_equations appends to
// C-elements is ignored. Every specification input is available as a
// source; every non-input specification signal must be defined by some
// equation (that gate becomes the signal's realization). Round-trips
// with to_equations for netlists made of the forms above.
#pragma once

#include <string_view>

#include "si/netlist/netlist.hpp"
#include "si/sg/state_graph.hpp"

namespace si::net {

/// Parses equations against the specification's signal set; initial
/// values of inputs and signal gates come from the spec's initial state.
/// Throws ParseError on malformed text and SpecError when a non-input
/// signal lacks a defining equation.
[[nodiscard]] Netlist parse_equations(std::string_view text, const sg::StateGraph& spec);

} // namespace si::net
