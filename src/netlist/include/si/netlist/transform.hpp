// Netlist transformations used by the ablation studies.
#pragma once

#include "si/netlist/netlist.hpp"

namespace si::net {

/// Section III's C2: replaces every inverted fanin of an AND/OR gate by
/// an explicit inverter gate (one per inverted source, shared). The
/// result is what tech mapping produces; under the *unbounded* delay
/// model it is generally NOT speed-independent — the paper's point is
/// that it stays hazard-free exactly under the relative timing bound
/// d_inv^max < D_sn^min, which a pure SI verifier cannot assume.
/// C-element/RS-latch input bubbles are left intact (they are part of
/// the library element).
[[nodiscard]] Netlist materialize_inversions(const Netlist& nl);

/// Tech-mapping step two: splits every AND/OR gate with more than
/// `max_fanin` inputs into a balanced tree of gates of the same kind
/// with at most `max_fanin` inputs each. Associative decomposition of
/// the monotone region functions — whether it preserves speed
/// independence is exactly what the ablation bench asks the verifier.
[[nodiscard]] Netlist decompose_fanin(const Netlist& nl, std::size_t max_fanin);

} // namespace si::net
