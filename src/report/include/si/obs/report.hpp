// si::obs::report — structured diagnosis reports over the analysis
// results, and the stable-metrics snapshot diff that backs the
// bench/obs_diff regression guard.
//
// The explain renderers turn a failed (or successful) analysis into a
// deterministic artifact a designer can read or a tool can parse:
//
//   * MC explain — per-signal Monotonous Cover status: ER/QR/CFR sizes
//     for every excitation region, the cube (or elementary sum) that
//     implements it, and — when McCubeSearch::record_trail was set —
//     every candidate cube the search examined with the specific MC
//     condition that killed it (covers-ER / single-change-in-CFR /
//     no-state-outside-CFR, in the Def 17 numbering).
//   * Verify explain — every hazard Violation replayed as an annotated
//     witness: the firing sequence from reset with the excited gate set
//     after each action, the disabling step marked HAZARD, plus the span
//     path the violation was found under.
//
// Both come in text and JSON. Determinism contract: the reports are
// pure functions of the analysis results, and those results are
// byte-identical across thread counts (parallel_map splices in task
// order), so the reports are too.
//
// The snapshot half parses the three stable-metric serializations the
// repo produces — obs::metrics_text, obs::metrics_json, and the
// "metrics" block of bench/BENCH_perf.json — into one flat counter map
// and diffs two of them with per-counter relative thresholds. Stable
// counters are deterministic whenever the work is, which is what makes
// a checked-in baseline meaningful.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "si/mc/requirement.hpp"
#include "si/netlist/netlist.hpp"
#include "si/obs/trace.hpp"
#include "si/verify/verifier.hpp"

namespace si::obs::report {

/// Optional per-stage latency block for the explain renderers: span name
/// → tick-lane percentiles, typically trace::latency_percentiles() taken
/// over the run that produced the analysis being explained. Rendered as
/// a "stage latency" section when non-null and non-empty.
using StageLatency = std::map<std::string, trace::Percentiles>;

// ---------------------------------------------------------------------------
// MC explain

/// The Def 17 condition (or definition) a violation kind falls under,
/// e.g. "covers-ER (condition 1)". Stable strings — tests and tools
/// match on them.
[[nodiscard]] const char* condition_name(mc::McFailure kind);

/// Multi-line per-signal report of an McReport. Regions are grouped by
/// signal in signal order; each carries |ER|/|QR|/|CFR| and its
/// implementation or the violations of the smallest cover cube (with a
/// replayed firing sequence to the first witness state). Candidate
/// trails are rendered when present.
[[nodiscard]] std::string mc_explain_text(const sg::RegionAnalysis& ra,
                                          const mc::McReport& report,
                                          const StageLatency* latency = nullptr);

/// The same report as JSON:
/// {"mc_explain": 1, "satisfied": ..., "signals": [{"name": ..,
///  "regions": [{"label", "er", "qr", "cfr", "status", "cube"?,
///  "shared_with"?, "sum"?, "violations": [..], "trail": [..]}]}]}
[[nodiscard]] std::string mc_explain_json(const sg::RegionAnalysis& ra,
                                          const mc::McReport& report,
                                          const StageLatency* latency = nullptr);

// ---------------------------------------------------------------------------
// Verify explain

/// Multi-line report of a VerifyResult against the netlist it was run
/// on. Each violation's trace is re-simulated from the netlist's initial
/// values: every step lists the action and the excited non-input gates
/// after it, and a step that disables an excited gate without firing it
/// is annotated HAZARD. Ends with the violation's span-path provenance.
[[nodiscard]] std::string verify_explain_text(const net::Netlist& nl,
                                              const verify::VerifyResult& result,
                                              const StageLatency* latency = nullptr);

/// The same report as JSON:
/// {"verify_explain": 1, "ok": .., "states": N, "violations":
///  [{"kind", "message", "span_path", "steps": [{"action", "excited":
///  [..], "hazard"?: ".."}]}]}
[[nodiscard]] std::string verify_explain_json(const net::Netlist& nl,
                                              const verify::VerifyResult& result,
                                              const StageLatency* latency = nullptr);

// ---------------------------------------------------------------------------
// Stable-metric snapshots and the regression diff

/// A flat stable-counter map parsed from any snapshot serialization.
/// Gauges keep their name; histograms contribute NAME.count and
/// NAME.sum. Diagnostic metrics (the "# diagnostic" section) are
/// skipped — they are scheduling-dependent by definition.
struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
};

/// Parses obs::metrics_text output, an obs::metrics_json flat object, or
/// any JSON document with a "metrics" object member (BENCH_perf.json).
/// Format is auto-detected from the first non-space character.
[[nodiscard]] Snapshot parse_snapshot(std::string_view text);

struct DiffOptions {
    /// A counter regresses when cur > base * threshold AND
    /// cur > base + slack; the slack keeps tiny counters (0 → 3) from
    /// tripping a ratio test that is meaningless at that scale.
    double threshold = 1.5;
    std::uint64_t slack = 16;
    /// Per-counter threshold overrides (exact names), e.g. allow
    /// "verify.states" to grow 3x while everything else holds 1.5x.
    std::map<std::string, double> per_counter;
    /// Treat counters present in the baseline but absent from the
    /// current snapshot as regressions (default: report only).
    bool fail_on_missing = false;
};

struct CounterDiff {
    std::string name;
    std::uint64_t base = 0;
    std::uint64_t cur = 0;
    double threshold = 0; ///< the threshold applied to this counter
    bool regressed = false;
};

struct DiffResult {
    std::vector<CounterDiff> rows;       ///< name-sorted, one per common counter
    std::vector<std::string> missing;    ///< in base, absent from cur
    std::vector<std::string> added;      ///< in cur, absent from base
    bool missing_regress = false;        ///< DiffOptions::fail_on_missing
    [[nodiscard]] bool regressed() const;
    /// Human-readable table: every regressed counter, then a summary
    /// line ("obs_diff: OK, 42 counters within thresholds" or
    /// "obs_diff: REGRESSION in 2 of 42 counters").
    [[nodiscard]] std::string describe() const;
    /// Machine-readable form: {"obs_diff": 1, "regressed": bool,
    /// "counters": [{"name", "base", "cur", "threshold", "regressed"}],
    /// "missing": [..], "added": [..]}. Counters appear in row order
    /// (name-sorted), so the output is deterministic.
    [[nodiscard]] std::string to_json() const;
};

[[nodiscard]] DiffResult diff_snapshots(const Snapshot& base, const Snapshot& cur,
                                        const DiffOptions& opts = {});

// ---------------------------------------------------------------------------
// Report files

/// Writes `content` to `path`, refusing to overwrite an existing file
/// unless `force` (the export_to_file contract). Empty string on
/// success, else the error message.
[[nodiscard]] std::string write(const std::string& path, std::string_view content, bool force);

} // namespace si::obs::report
