#include "si/obs/report.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>

#include "si/obs/obs.hpp"

namespace si::obs::report {

namespace {

void esc(std::string& out, std::string_view s) { obs::detail::json_escape(out, s); }

std::string jstr(std::string_view s) {
    std::string out = "\"";
    esc(out, s);
    return out + "\"";
}

/// "stage latency [ticks]:" block shared by the text explain renderers.
/// Map order (name-sorted) keeps the section deterministic.
std::string latency_text(const StageLatency* latency) {
    if (latency == nullptr || latency->empty()) return {};
    std::string out = "stage latency [ticks]:\n";
    for (const auto& [name, p] : *latency)
        out += "  " + name + ": p50=" + std::to_string(p.p50) + " p95=" + std::to_string(p.p95) +
               " p99=" + std::to_string(p.p99) + " (n=" + std::to_string(p.count) + ")\n";
    return out;
}

/// ",\n  \"stage_latency\": {...}" member for the JSON explain
/// renderers; empty string when there is nothing to report.
std::string latency_json(const StageLatency* latency) {
    if (latency == nullptr || latency->empty()) return {};
    std::string out = ",\n  \"stage_latency\": {";
    bool first = true;
    for (const auto& [name, p] : *latency) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + jstr(name) + ": {\"p50\": " + std::to_string(p.p50) +
               ", \"p95\": " + std::to_string(p.p95) + ", \"p99\": " + std::to_string(p.p99) +
               ", \"count\": " + std::to_string(p.count) + "}";
    }
    out += "\n  }";
    return out;
}

} // namespace

// ---------------------------------------------------------------------------
// MC explain

const char* condition_name(mc::McFailure kind) {
    switch (kind) {
    case mc::McFailure::NotACoverCube: return "cover-cube (Def 15)";
    case mc::McFailure::UncoveredEr: return "covers-ER (condition 1)";
    case mc::McFailure::NonMonotonic: return "single-change-in-CFR (condition 2)";
    case mc::McFailure::CoversOutsideCfr: return "no-state-outside-CFR (condition 3)";
    case mc::McFailure::IncorrectCover: return "correct-cover (Def 16)";
    }
    return "?";
}

namespace {

/// Report slots grouped by signal, in signal order; region order inside
/// each group follows the McReport (= region discovery order), so the
/// report layout is independent of how the search was scheduled.
std::vector<std::vector<const mc::RegionMc*>> group_by_signal(const sg::RegionAnalysis& ra,
                                                              const mc::McReport& report) {
    std::vector<std::vector<const mc::RegionMc*>> groups(ra.graph().num_signals());
    for (const auto& rmc : report.regions)
        groups[ra.region(rmc.region).signal.index()].push_back(&rmc);
    return groups;
}

std::string region_status(const mc::RegionMc& rmc) {
    if (!rmc.ok()) return "no-monotonous-cover";
    if (!rmc.cube) return "elementary-sum";
    return rmc.shared_with.empty() ? "mc-cube" : "shared-mc-cube";
}

/// "x y' (rejected: single-change-in-CFR (condition 2))" or
/// "x y' (accepted)".
std::string trail_line(const mc::McCandidate& cand, const std::vector<std::string>& names) {
    std::string out = cand.cube.to_expr(names);
    if (cand.accepted()) return out + " (accepted)";
    out += " (rejected: ";
    out += condition_name(cand.violations.front().kind);
    if (cand.violations.size() > 1)
        out += " +" + std::to_string(cand.violations.size() - 1) + " more";
    return out + ")";
}

} // namespace

std::string mc_explain_text(const sg::RegionAnalysis& ra, const mc::McReport& report,
                            const StageLatency* latency) {
    const auto& sg = ra.graph();
    const auto names = sg.signals().names();
    std::string out = "Monotonous Cover diagnosis for '" + sg.name + "'\n";
    out += report.satisfied()
               ? "requirement satisfied (Def 18)\n"
               : std::to_string(report.violation_count()) +
                     " excitation region(s) without a monotonous cover\n";
    out += latency_text(latency);

    const auto groups = group_by_signal(ra, report);
    for (std::size_t v = 0; v < groups.size(); ++v) {
        if (groups[v].empty()) continue;
        out += "\nsignal " + names[v] + "\n";
        for (const auto* rmc : groups[v]) {
            const auto& region = ra.region(rmc->region);
            out += "  " + region.label(sg) + ": |ER|=" + std::to_string(region.states.count()) +
                   " |QR|=" + std::to_string(region.quiescent.count()) +
                   " |CFR|=" + std::to_string(region.cfr.count()) + "\n";
            if (rmc->ok() && rmc->cube) {
                out += "    MC cube: " + rmc->cube->to_expr(names);
                if (!rmc->shared_with.empty()) {
                    out += " (generalized, shared with";
                    for (const auto g : rmc->shared_with)
                        if (g != rmc->region) out += " " + ra.region(g).label(sg);
                    out += ")";
                }
                out += "\n";
            } else if (rmc->ok()) {
                out += "    elementary sum (OR-causality form):";
                for (const auto& lit : rmc->sum_literals) out += " " + lit.to_expr(names);
                out += "\n";
            } else {
                out += "    NO monotonous cover; smallest cover cube fails:\n";
                for (const auto& vio : rmc->violations) {
                    out += "      [" + std::string(condition_name(vio.kind)) + "] ";
                    // describe_with_trace is multi-line (the replayed
                    // firing sequence); re-indent its continuation lines.
                    const std::string desc = vio.describe_with_trace(ra);
                    for (const char c : desc) {
                        out += c;
                        if (c == '\n') out += "      ";
                    }
                    out += "\n";
                }
            }
            if (!rmc->trail.empty()) {
                out += "    search trail (" + std::to_string(rmc->trail.size()) +
                       " candidates examined):\n";
                for (std::size_t i = 0; i < rmc->trail.size(); ++i)
                    out += "      [" + std::to_string(i) + "] " +
                           trail_line(rmc->trail[i], names) + "\n";
            }
        }
    }
    return out;
}

std::string mc_explain_json(const sg::RegionAnalysis& ra, const mc::McReport& report,
                            const StageLatency* latency) {
    const auto& sg = ra.graph();
    const auto names = sg.signals().names();
    std::string out = "{\n  \"mc_explain\": 1,\n  \"graph\": " + jstr(sg.name) +
                      ",\n  \"satisfied\": " + (report.satisfied() ? "true" : "false") +
                      latency_json(latency) + ",\n  \"signals\": [";

    const auto groups = group_by_signal(ra, report);
    bool first_signal = true;
    for (std::size_t v = 0; v < groups.size(); ++v) {
        if (groups[v].empty()) continue;
        out += first_signal ? "\n" : ",\n";
        first_signal = false;
        out += "    {\"name\": " + jstr(names[v]) + ", \"regions\": [";
        bool first_region = true;
        for (const auto* rmc : groups[v]) {
            const auto& region = ra.region(rmc->region);
            out += first_region ? "\n" : ",\n";
            first_region = false;
            out += "      {\"label\": " + jstr(region.label(sg)) +
                   ", \"er\": " + std::to_string(region.states.count()) +
                   ", \"qr\": " + std::to_string(region.quiescent.count()) +
                   ", \"cfr\": " + std::to_string(region.cfr.count()) +
                   ", \"status\": " + jstr(region_status(*rmc));
            if (rmc->cube) out += ", \"cube\": " + jstr(rmc->cube->to_expr(names));
            if (!rmc->shared_with.empty()) {
                out += ", \"shared_with\": [";
                bool first = true;
                for (const auto g : rmc->shared_with) {
                    if (g == rmc->region) continue;
                    if (!first) out += ", ";
                    first = false;
                    out += jstr(ra.region(g).label(sg));
                }
                out += "]";
            }
            if (!rmc->sum_literals.empty()) {
                out += ", \"sum\": [";
                for (std::size_t i = 0; i < rmc->sum_literals.size(); ++i) {
                    if (i != 0) out += ", ";
                    out += jstr(rmc->sum_literals[i].to_expr(names));
                }
                out += "]";
            }
            if (!rmc->violations.empty()) {
                out += ", \"violations\": [";
                for (std::size_t i = 0; i < rmc->violations.size(); ++i) {
                    const auto& vio = rmc->violations[i];
                    if (i != 0) out += ", ";
                    out += "{\"condition\": " + jstr(condition_name(vio.kind)) +
                           ", \"witness\": " + jstr(vio.describe_with_trace(ra)) + "}";
                }
                out += "]";
            }
            if (!rmc->trail.empty()) {
                out += ", \"trail\": [";
                for (std::size_t i = 0; i < rmc->trail.size(); ++i) {
                    const auto& cand = rmc->trail[i];
                    if (i != 0) out += ", ";
                    out += "{\"cube\": " + jstr(cand.cube.to_expr(names)) + ", \"killed_by\": " +
                           (cand.accepted() ? std::string("null")
                                            : jstr(condition_name(cand.violations.front().kind))) +
                           "}";
                }
                out += "]";
            }
            out += "}";
        }
        out += "]}";
    }
    out += "\n  ]\n}\n";
    return out;
}

// ---------------------------------------------------------------------------
// Verify explain

namespace {

struct ReplayStep {
    std::string action;
    std::vector<std::string> excited; ///< excited non-input gates after it
    std::vector<std::string> hazard;  ///< gates this step disabled without firing
    bool diverged = false;            ///< action named no known gate
};

std::vector<std::string> excited_gates(const net::Netlist& nl, const BitVec& values) {
    std::vector<std::string> out;
    for (std::size_t g = 0; g < nl.num_gates(); ++g) {
        const GateId gid{g};
        if (nl.gate(gid).kind == net::GateKind::Input) continue;
        if (nl.gate_excited(gid, values)) out.push_back(nl.gate(gid).name);
    }
    return out;
}

/// Re-simulates a violation trace from the netlist's initial values.
/// The verifier only records gate/input names with polarity, so the
/// replay recomputes what a designer wants to see: which gates were
/// excited after every action and which step disabled one (the hazard).
std::vector<ReplayStep> replay(const net::Netlist& nl, const std::vector<std::string>& trace) {
    std::vector<ReplayStep> steps;
    BitVec values = nl.initial_values();
    for (const auto& action : trace) {
        ReplayStep step;
        step.action = action;
        GateId fired = GateId::invalid();
        if (action.size() > 1 && (action[0] == '+' || action[0] == '-')) {
            for (std::size_t g = 0; g < nl.num_gates(); ++g)
                if (nl.gate(GateId{g}).name == action.substr(1)) {
                    fired = GateId{g};
                    break;
                }
        }
        if (!fired.is_valid()) {
            // A trace from a perturbed start state (fault injection) or a
            // renamed netlist cannot be replayed from reset; say so
            // instead of guessing.
            step.diverged = true;
            steps.push_back(std::move(step));
            break;
        }
        const auto before = excited_gates(nl, values);
        values.flip(fired.index());
        step.excited = excited_gates(nl, values);
        for (const auto& name : before) {
            if (name == nl.gate(fired).name) continue; // it fired, not disabled
            if (std::find(step.excited.begin(), step.excited.end(), name) == step.excited.end())
                step.hazard.push_back(name);
        }
        steps.push_back(std::move(step));
    }
    return steps;
}

/// The witness trace of a gate-disabled violation stops at the state
/// *before* the disabling transition — the action itself only appears in
/// the message ("... disabled while excited by -d ..."). Recover it so
/// the replay can show the hazard step instead of ending one action
/// short of the point.
std::vector<std::string> replay_trace(const verify::Violation& v) {
    auto trace = v.trace;
    if (v.kind == verify::ViolationKind::GateDisabled) {
        static constexpr std::string_view kBy = "excited by ";
        const auto pos = v.message.find(kBy);
        if (pos != std::string::npos) {
            const auto start = pos + kBy.size();
            const auto end = v.message.find(' ', start);
            std::string action = v.message.substr(
                start, end == std::string::npos ? std::string::npos : end - start);
            if (!action.empty()) trace.push_back(std::move(action));
        }
    }
    return trace;
}

const char* kind_name(verify::ViolationKind k) {
    switch (k) {
    case verify::ViolationKind::GateDisabled: return "gate-disabled";
    case verify::ViolationKind::NonConformant: return "non-conformant";
    case verify::ViolationKind::Deadlock: return "deadlock";
    case verify::ViolationKind::StateExplosion: return "state-explosion";
    }
    return "?";
}

} // namespace

std::string verify_explain_text(const net::Netlist& nl, const verify::VerifyResult& result,
                                const StageLatency* latency) {
    std::string out = "Speed-independence diagnosis for '" + nl.name + "'\n";
    out += result.ok ? "no violations" : std::to_string(result.violations.size()) + " violation(s)";
    out += " in " + std::to_string(result.states_explored) + " states / " +
           std::to_string(result.transitions_explored) + " transitions";
    if (!result.complete()) out += " (INCOMPLETE: " + result.exhaustion->describe() + ")";
    out += "\n";
    out += latency_text(latency);

    for (std::size_t i = 0; i < result.violations.size(); ++i) {
        const auto& v = result.violations[i];
        out += "\nviolation " + std::to_string(i + 1) + " [" + kind_name(v.kind) + "]: " +
               v.message + "\n";
        if (!v.span_path.empty()) out += "  found in: " + v.span_path + "\n";
        const auto trace = replay_trace(v);
        if (trace.empty()) {
            out += "  witness: (initial state)\n";
            continue;
        }
        out += "  witness replay from reset:\n";
        for (const auto& step : replay(nl, trace)) {
            out += "    " + step.action;
            if (step.diverged) {
                out += " (replay unavailable: action names no gate; "
                       "trace starts from a perturbed state)\n";
                break;
            }
            out += "  excited after: {";
            for (std::size_t e = 0; e < step.excited.size(); ++e)
                out += (e != 0 ? " " : "") + step.excited[e];
            out += "}";
            if (!step.hazard.empty()) {
                out += "  HAZARD: disabled";
                for (const auto& g : step.hazard) out += " " + g;
                out += " without firing";
            }
            out += "\n";
        }
    }
    return out;
}

std::string verify_explain_json(const net::Netlist& nl, const verify::VerifyResult& result,
                                const StageLatency* latency) {
    std::string out = "{\n  \"verify_explain\": 1,\n  \"netlist\": " + jstr(nl.name) +
                      ",\n  \"ok\": " + (result.ok ? "true" : "false") +
                      ",\n  \"complete\": " + (result.complete() ? "true" : "false") +
                      ",\n  \"states\": " + std::to_string(result.states_explored) +
                      ",\n  \"transitions\": " + std::to_string(result.transitions_explored) +
                      latency_json(latency) + ",\n  \"violations\": [";
    for (std::size_t i = 0; i < result.violations.size(); ++i) {
        const auto& v = result.violations[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"kind\": " + jstr(kind_name(v.kind)) + ",\n     \"message\": " +
               jstr(v.message) + ",\n     \"span_path\": " + jstr(v.span_path) +
               ",\n     \"steps\": [";
        const auto steps = replay(nl, replay_trace(v));
        for (std::size_t s = 0; s < steps.size(); ++s) {
            const auto& step = steps[s];
            out += s == 0 ? "\n" : ",\n";
            out += "       {\"action\": " + jstr(step.action);
            if (step.diverged) {
                out += ", \"replay\": \"unavailable\"}";
                continue;
            }
            out += ", \"excited\": [";
            for (std::size_t e = 0; e < step.excited.size(); ++e) {
                if (e != 0) out += ", ";
                out += jstr(step.excited[e]);
            }
            out += "]";
            if (!step.hazard.empty()) {
                out += ", \"hazard\": [";
                for (std::size_t h = 0; h < step.hazard.size(); ++h) {
                    if (h != 0) out += ", ";
                    out += jstr(step.hazard[h]);
                }
                out += "]";
            }
            out += "}";
        }
        out += steps.empty() ? "]}" : "\n     ]}";
    }
    out += result.violations.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

// ---------------------------------------------------------------------------
// Snapshots

namespace {

void skip_ws(std::string_view s, std::size_t& i) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) ++i;
}

/// Scans a JSON string starting at the opening quote; returns the
/// unescaped content (escapes beyond \" \\ are kept verbatim — metric
/// names never use them).
std::string scan_string(std::string_view s, std::size_t& i) {
    std::string out;
    ++i; // opening quote
    while (i < s.size() && s[i] != '"') {
        if (s[i] == '\\' && i + 1 < s.size()) {
            ++i;
            if (s[i] == '"' || s[i] == '\\') out += s[i];
            else {
                out += '\\';
                out += s[i];
            }
        } else {
            out += s[i];
        }
        ++i;
    }
    if (i < s.size()) ++i; // closing quote
    return out;
}

/// Skips any JSON value (for members we do not collect).
void skip_value(std::string_view s, std::size_t& i) {
    skip_ws(s, i);
    if (i >= s.size()) return;
    if (s[i] == '"') {
        scan_string(s, i);
        return;
    }
    if (s[i] == '{' || s[i] == '[') {
        int depth = 0;
        bool in_string = false;
        for (; i < s.size(); ++i) {
            const char c = s[i];
            if (in_string) {
                if (c == '\\') ++i;
                else if (c == '"') in_string = false;
            } else if (c == '"') {
                in_string = true;
            } else if (c == '{' || c == '[') {
                ++depth;
            } else if (c == '}' || c == ']') {
                if (--depth == 0) {
                    ++i;
                    return;
                }
            }
        }
        return;
    }
    while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']') ++i;
}

/// Collects the integer-valued members of the object starting at `i`
/// (which must point at '{'). Non-integer members are skipped.
void collect_object(std::string_view s, std::size_t i, Snapshot& out) {
    if (i >= s.size() || s[i] != '{') return;
    ++i;
    while (i < s.size()) {
        skip_ws(s, i);
        if (i >= s.size() || s[i] == '}') return;
        if (s[i] == ',') {
            ++i;
            continue;
        }
        if (s[i] != '"') return; // malformed; stop collecting
        const std::string key = scan_string(s, i);
        skip_ws(s, i);
        if (i >= s.size() || s[i] != ':') return;
        ++i;
        skip_ws(s, i);
        if (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])) != 0) {
            std::uint64_t v = 0;
            while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])) != 0)
                v = v * 10 + static_cast<std::uint64_t>(s[i++] - '0');
            // A fractional value is not a stable counter; skip it.
            if (i < s.size() && (s[i] == '.' || s[i] == 'e' || s[i] == 'E')) skip_value(s, i);
            else out.counters[key] = v;
        } else {
            skip_value(s, i);
        }
    }
}

/// Locates `"metrics"` used as an object key (not inside a string value)
/// and returns the position of its '{', or npos.
std::size_t find_metrics_object(std::string_view s) {
    bool in_string = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (in_string) {
            if (c == '\\') ++i;
            else if (c == '"') in_string = false;
            continue;
        }
        if (c != '"') continue;
        if (s.substr(i, 9) == "\"metrics\"") {
            std::size_t j = i + 9;
            skip_ws(s, j);
            if (j < s.size() && s[j] == ':') {
                ++j;
                skip_ws(s, j);
                if (j < s.size() && s[j] == '{') return j;
            }
        }
        in_string = true;
    }
    return std::string_view::npos;
}

std::uint64_t parse_u64(std::string_view s) {
    std::uint64_t v = 0;
    for (const char c : s) {
        if (std::isdigit(static_cast<unsigned char>(c)) == 0) break;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
}

/// Parses one obs::metrics_text line into counter entries.
void parse_metric_line(std::string_view line, Snapshot& out) {
    auto word = [&](std::size_t& i) {
        skip_ws(line, i);
        const std::size_t start = i;
        while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])) == 0) ++i;
        return line.substr(start, i - start);
    };
    std::size_t i = 0;
    const auto kind = word(i);
    const auto name = word(i);
    if (name.empty()) return;
    if (kind == "counter" || kind == "gauge") {
        // "counter NAME = V" / "gauge NAME max = V"
        std::string_view tok = word(i);
        if (tok == "max") tok = word(i);
        if (tok != "=") return;
        out.counters[std::string(name)] = parse_u64(word(i));
    } else if (kind == "hist") {
        // "hist NAME count=C sum=S buckets=[...]"
        for (std::string_view tok = word(i); !tok.empty(); tok = word(i)) {
            if (tok.substr(0, 6) == "count=")
                out.counters[std::string(name) + ".count"] = parse_u64(tok.substr(6));
            else if (tok.substr(0, 4) == "sum=")
                out.counters[std::string(name) + ".sum"] = parse_u64(tok.substr(4));
        }
    }
}

} // namespace

Snapshot parse_snapshot(std::string_view text) {
    Snapshot out;
    std::size_t i = 0;
    skip_ws(text, i);
    if (i < text.size() && text[i] == '{') {
        const std::size_t metrics = find_metrics_object(text);
        collect_object(text, metrics == std::string_view::npos ? i : metrics, out);
        return out;
    }
    // metrics_text format: one metric per line, diagnostics after the
    // "# diagnostic" marker (excluded — they are scheduling-dependent).
    while (i < text.size()) {
        std::size_t eol = text.find('\n', i);
        if (eol == std::string_view::npos) eol = text.size();
        const std::string_view line = text.substr(i, eol - i);
        i = eol + 1;
        if (!line.empty() && line[0] == '#') {
            if (line.find("diagnostic") != std::string_view::npos) break;
            continue;
        }
        parse_metric_line(line, out);
    }
    return out;
}

// ---------------------------------------------------------------------------
// Diff

bool DiffResult::regressed() const {
    if (missing_regress && !missing.empty()) return true;
    for (const auto& row : rows)
        if (row.regressed) return true;
    return false;
}

std::string DiffResult::describe() const {
    std::string out;
    std::size_t bad = 0;
    for (const auto& row : rows) {
        if (!row.regressed) continue;
        ++bad;
        const double ratio =
            row.base == 0 ? 0.0 : static_cast<double>(row.cur) / static_cast<double>(row.base);
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.2fx > %.2fx", ratio, row.threshold);
        out += "REGRESSION " + row.name + ": " + std::to_string(row.base) + " -> " +
               std::to_string(row.cur) + " (" + buf + ")\n";
    }
    for (const auto& name : missing)
        out += std::string(missing_regress ? "REGRESSION " : "note ") + name +
               ": present in baseline, missing from current\n";
    for (const auto& name : added) out += "note " + name + ": new counter, no baseline\n";
    out += "obs_diff: ";
    out += regressed() ? "REGRESSION in " + std::to_string(bad + (missing_regress ? missing.size() : 0)) +
                             " of " + std::to_string(rows.size()) + " counters"
                       : "OK, " + std::to_string(rows.size()) + " counters within thresholds";
    out += "\n";
    return out;
}

std::string DiffResult::to_json() const {
    std::string out = "{\n  \"obs_diff\": 1,\n  \"regressed\": ";
    out += regressed() ? "true" : "false";
    out += ",\n  \"counters\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& row = rows[i];
        char thr[32];
        std::snprintf(thr, sizeof thr, "%.4f", row.threshold);
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"name\": " + jstr(row.name) + ", \"base\": " + std::to_string(row.base) +
               ", \"cur\": " + std::to_string(row.cur) + ", \"threshold\": " + thr +
               ", \"regressed\": " + (row.regressed ? "true" : "false") + "}";
    }
    out += rows.empty() ? "]" : "\n  ]";
    auto list = [&](const char* key, const std::vector<std::string>& names) {
        out += ",\n  \"";
        out += key;
        out += "\": [";
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (i != 0) out += ", ";
            out += jstr(names[i]);
        }
        out += "]";
    };
    list("missing", missing);
    list("added", added);
    out += "\n}\n";
    return out;
}

DiffResult diff_snapshots(const Snapshot& base, const Snapshot& cur, const DiffOptions& opts) {
    DiffResult out;
    out.missing_regress = opts.fail_on_missing;
    for (const auto& [name, bval] : base.counters) {
        const auto it = cur.counters.find(name);
        if (it == cur.counters.end()) {
            out.missing.push_back(name);
            continue;
        }
        CounterDiff row;
        row.name = name;
        row.base = bval;
        row.cur = it->second;
        const auto t = opts.per_counter.find(name);
        row.threshold = t == opts.per_counter.end() ? opts.threshold : t->second;
        row.regressed = static_cast<double>(row.cur) >
                            static_cast<double>(row.base) * row.threshold &&
                        row.cur > row.base + opts.slack;
        out.rows.push_back(std::move(row));
    }
    for (const auto& [name, cval] : cur.counters)
        if (base.counters.find(name) == base.counters.end()) out.added.push_back(name);
    return out;
}

// ---------------------------------------------------------------------------
// Report files

std::string write(const std::string& path, std::string_view content, bool force) {
    // One overwrite-refusal contract library-wide: obs exports, report
    // files and the live heartbeat sink all share obs::write_text_file.
    return obs::write_text_file(path, content, force);
}

} // namespace si::obs::report
