#include "si/verify/verifier.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "si/obs/flight.hpp"
#include "si/obs/live.hpp"
#include "si/obs/obs.hpp"
#include "si/sg/analysis.hpp"
#include "si/util/error.hpp"
#include "si/util/parallel.hpp"
#include "si/util/state_store.hpp"
#include "si/verify/performance.hpp"

namespace si::verify {

const char* to_string(HazardVerdict v) {
    switch (v) {
    case HazardVerdict::Clean: return "clean";
    case HazardVerdict::Hazard: return "hazard";
    case HazardVerdict::Unknown: return "unknown";
    }
    return "?";
}

std::string Violation::describe() const {
    std::string out = message;
    if (!trace.empty()) {
        out += "\n  trace:";
        for (const auto& a : trace) out += " " + a;
    }
    if (!span_path.empty()) out += "\n  found in: " + span_path;
    return out;
}

std::string VerifyResult::describe() const {
    // A concrete violation refutes SI even on a partial exploration; an
    // exhausted exploration with no violation proves nothing either way.
    bool refuted = false;
    for (const auto& v : violations) refuted = refuted || v.kind != ViolationKind::StateExplosion;
    std::string out = ok        ? "speed-independent"
                      : refuted ? "NOT speed-independent"
                                : "UNKNOWN (budget exhausted)";
    out += " (" + std::to_string(states_explored) + " composite states, " +
           std::to_string(transitions_explored) + " transitions)";
    if (exhaustion) out += "\n" + exhaustion->describe();
    for (const auto& v : violations) out += "\n" + v.describe();
    return out;
}

namespace {

struct Composite {
    BitVec values;
    StateId spec;

    friend bool operator==(const Composite&, const Composite&) = default;
};

struct CompositeHash {
    std::size_t operator()(const Composite& c) const noexcept {
        return c.values.hash() * 1000003u ^ c.spec.raw();
    }
};

class Verifier {
public:
    Verifier(const net::Netlist& nl, const sg::StateGraph& spec, const VerifyOptions& opts)
        : nl_(nl), spec_(spec), opts_(opts), use_fanout_(util::fast_path()),
          value_words_((nl.num_gates() + 63) / 64),
          store_(use_fanout_ ? value_words_ + 1 : 1),
          packed_(value_words_ + 1, 0),
          meter_("verify.explore", opts.budget) {
        meter_.local().cap(util::Resource::States, opts.max_states);
        if (use_fanout_) fanout_ = net::FanoutIndex(nl);
    }

    VerifyResult run() {
        obs::Span span("verify.explore");
        span.attr("circuit", nl_.name);
        const Composite init{opts_.start_values ? *opts_.start_values : nl_.initial_values(),
                             opts_.start_spec ? *opts_.start_spec : spec_.initial()};
        require(init.values.size() == nl_.num_gates(), "start_values width != gate count");
        (void)remember(init);
        nodes_.push_back(Node{init, UINT32_MAX, GateId::invalid(), false,
                              use_fanout_ ? excited_gates(init) : BitVec()});
        (void)meter_.charge(util::Resource::States);
        std::deque<std::uint32_t> queue{0};

        while (!queue.empty()) {
            if (!result_.violations.empty() && opts_.stop_at_first) break;
            const std::uint32_t cur = queue.front();
            queue.pop_front();
            expand(cur, queue);
            if (meter_.exhausted()) {
                add_violation(ViolationKind::StateExplosion, cur,
                              "exploration stopped early, verdict unknown: " +
                                  meter_.why().describe());
                result_.exhaustion = meter_.why();
                // An aborted verification leaves a post-mortem artifact:
                // the ring at this point holds the exploration's recent
                // span events plus the budget-trip marker.
                if (obs::flight::armed()) {
                    obs::flight::note("verifier abort on '" + nl_.name +
                                      "': " + meter_.why().describe());
                    (void)obs::flight::dump("verifier-abort");
                }
                break;
            }
        }
        result_.ok = result_.violations.empty();
        result_.states_explored = nodes_.size();
        span.attr("states", static_cast<std::uint64_t>(nodes_.size()));
        span.attr("transitions", static_cast<std::uint64_t>(result_.transitions_explored));
        span.attr("ok", result_.ok ? "true" : "false");
        if (obs::enabled()) {
            obs::count("verify.runs");
            obs::count("verify.states", nodes_.size());
            obs::count("verify.transitions", result_.transitions_explored);
            obs::count("verify.violations", result_.violations.size());
            // Store telemetry is Diag: the packed index only runs on the
            // fast path, so its counters depend on which path was active.
            if (use_fanout_) {
                obs::count("verify.store.probes", store_.probes(), obs::Tag::Diag);
                obs::count("verify.store.resizes", store_.resizes(), obs::Tag::Diag);
            }
        }
        return std::move(result_);
    }

private:
    struct Node {
        Composite state;
        std::uint32_t parent;
        // The step that reached this node, as (gate, new value) — the
        // "+name"/"-name" string is only materialized when a violation
        // needs a trace, not once per explored transition.
        GateId act_gate;
        bool act_up;
        // Fast path: the excited non-input gates at this node, maintained
        // incrementally — a step on gate g can only change excitation of
        // g and its fanout, so each step recomputes those bits instead of
        // re-evaluating every gate function. Empty on the slow path.
        BitVec excited;
    };

    [[nodiscard]] std::string action_string(GateId gate, bool up) const {
        return (up ? "+" : "-") + nl_.gate(gate).name;
    }

    /// Records the composite in the visited index. Fast path: packed
    /// [value words..., spec] rows in a StateStore (ids are handed out in
    /// insertion order, matching nodes_). Returns whether it was new.
    bool remember(const Composite& c) {
        if (use_fanout_) {
            const std::size_t vw = c.values.num_words();
            for (std::size_t w = 0; w < vw; ++w) packed_[w] = c.values.word_data()[w];
            packed_[value_words_] = c.spec.raw();
            return store_.intern(packed_.data()).second;
        }
        return index_.emplace(c, static_cast<std::uint32_t>(nodes_.size())).second;
    }

    void add_violation(ViolationKind kind, std::uint32_t node, std::string message) {
        Violation v{kind, std::move(message), {}, {}};
        for (std::uint32_t n = node; n != UINT32_MAX; n = nodes_[n].parent) {
            if (nodes_[n].act_gate.is_valid())
                v.trace.push_back(action_string(nodes_[n].act_gate, nodes_[n].act_up));
        }
        std::reverse(v.trace.begin(), v.trace.end());
        // Provenance: the open span path while tracing, else the budget
        // stage path (always available). Both are name paths, so the
        // witness stays byte-identical across worker counts.
        if (obs::tracing()) v.span_path = obs::current_span_path();
        if (v.span_path.empty()) v.span_path = meter_.stage_path();
        result_.violations.push_back(std::move(v));
    }

    // Non-input gates excited under `c`.
    [[nodiscard]] BitVec excited_gates(const Composite& c) const {
        BitVec out(nl_.num_gates());
        for (std::size_t g = 0; g < nl_.num_gates(); ++g) {
            if (nl_.gate(GateId(g)).kind == net::GateKind::Input) continue;
            if (nl_.gate_excited(GateId(g), c.values)) out.set(g);
        }
        return out;
    }

    void check_disabling(std::uint32_t from_node, const Composite& before, const Composite& after,
                         GateId fired, GateId flipped, bool flipped_up) {
        // Pure-delay semantics: any excited non-input gate must stay
        // excited until it fires (Section III). Slow path: full gate scan.
        for (std::size_t g = 0; g < nl_.num_gates(); ++g) {
            const GateId gid{g};
            if (fired.is_valid() && gid == fired) continue;
            if (nl_.gate(gid).kind == net::GateKind::Input) continue;
            if (nl_.gate_excited(gid, before.values) && !nl_.gate_excited(gid, after.values)) {
                add_violation(ViolationKind::GateDisabled, from_node,
                              "gate '" + nl_.gate(gid).name + "' disabled while excited by " +
                                  action_string(flipped, flipped_up) +
                                  " (unacknowledged switching: hazard)");
                if (opts_.stop_at_first) return;
            }
        }
    }

    void take_step(std::uint32_t cur, Composite next, GateId fired, GateId flipped,
                   bool flipped_up, std::deque<std::uint32_t>& queue) {
        if (meter_.exhausted()) return; // stop materializing states once tripped
        ++result_.transitions_explored;
        (void)meter_.charge(util::Resource::Steps);
        check_disabling(cur, nodes_[cur].state, next, fired, flipped, flipped_up);
        if (remember(next)) {
            if (!meter_.charge(util::Resource::States)) {
                // Un-record the state we cannot afford.
                index_.erase(next);
                return;
            }
            const auto id = static_cast<std::uint32_t>(nodes_.size());
            nodes_.push_back(Node{std::move(next), cur, flipped, flipped_up, BitVec()});
            queue.push_back(id);
        }
    }

    // Fast path: explore the move that flips `flipped` out of node `cur`.
    // scratch_state_.values holds cur's gate values and is flipped in
    // place for the duration of the call (restored before returning), so
    // a revisited successor costs no allocation at all; the successor
    // Composite and its excitation set are only materialized when the
    // packed store reports the state as new.
    void take_step_fast(std::uint32_t cur, GateId fired, GateId flipped, bool flipped_up,
                        StateId next_spec, std::deque<std::uint32_t>& queue) {
        if (meter_.exhausted()) return; // stop materializing states once tripped
        ++result_.transitions_explored;
        (void)meter_.charge(util::Resource::Steps);
        obs::hot(obs::Hot::FanoutNarrowed);
        BitVec& vals = scratch_state_.values;
        vals.flip(flipped.index());

        // Only `flipped` and its readers can change excitation. touched_
        // merges flipped into the (ascending, duplicate-free) fanout row,
        // so the disabling scan below reports violations in the same gate
        // order as a full scan.
        touched_.clear();
        auto touch = [&](GateId gid) {
            if (nl_.gate(gid).kind == net::GateKind::Input) return;
            touched_.emplace_back(static_cast<std::uint32_t>(gid.index()),
                                  nl_.gate_excited(gid, vals));
        };
        bool flipped_merged = false;
        for (const GateId gid : fanout_.of(flipped)) {
            if (!flipped_merged && flipped.index() <= gid.index()) {
                if (flipped.index() < gid.index()) touch(flipped);
                flipped_merged = true;
            }
            touch(gid);
        }
        if (!flipped_merged) touch(flipped);

        // Disabling check: excited before, not excited after, didn't fire.
        for (const auto& [g, ex_after] : touched_) {
            if (ex_after || !scratch_ex_.test(g)) continue;
            if (fired.is_valid() && g == fired.index()) continue;
            add_violation(ViolationKind::GateDisabled, cur,
                          "gate '" + nl_.gate(GateId(g)).name + "' disabled while excited by " +
                              action_string(flipped, flipped_up) +
                              " (unacknowledged switching: hazard)");
            // Stop scanning, but still record the successor below — the
            // run loop is what cuts the exploration short.
            if (opts_.stop_at_first) break;
        }

        const std::size_t vw = vals.num_words();
        for (std::size_t w = 0; w < vw; ++w) packed_[w] = vals.word_data()[w];
        packed_[value_words_] = next_spec.raw();
        if (store_.intern(packed_.data()).second) {
            if (!meter_.charge(util::Resource::States)) {
                // The packed store has no erase, but the meter is
                // exhausted now, so no later step consults the index.
                vals.flip(flipped.index());
                return;
            }
            BitVec next_ex = scratch_ex_;
            for (const auto& [g, ex_after] : touched_) next_ex.assign(g, ex_after);
            const auto id = static_cast<std::uint32_t>(nodes_.size());
            nodes_.push_back(
                Node{Composite{vals, next_spec}, cur, flipped, flipped_up, std::move(next_ex)});
            queue.push_back(id);
        }
        vals.flip(flipped.index());
    }

    void expand(std::uint32_t cur, std::deque<std::uint32_t>& queue) {
        if (use_fanout_) {
            expand_fast(cur, queue);
            return;
        }
        const Composite c = nodes_[cur].state; // copy: nodes_ may reallocate
        bool any = false;

        // Environment moves: each input transition the spec enables.
        for (std::size_t vi = 0; vi < spec_.num_signals(); ++vi) {
            const SignalId v{vi};
            if (spec_.signals()[v].kind != SignalKind::Input) continue;
            const auto arc = spec_.arc_on(c.spec, v);
            if (arc == UINT32_MAX) continue;
            const GateId in_gate = nl_.gate_of_signal(v);
            require(in_gate.is_valid(), "input signal without an Input gate");
            require(c.values.test(in_gate.index()) == spec_.value(c.spec, v),
                    "input gate out of sync with the specification");
            Composite next = c;
            next.values.flip(in_gate.index());
            next.spec = spec_.arc(arc).to;
            const bool up = next.values.test(in_gate.index());
            take_step(cur, std::move(next), GateId::invalid(), in_gate, up, queue);
            any = true;
            if (!result_.violations.empty() && opts_.stop_at_first) return;
        }

        // Circuit moves: every excited non-input gate may fire.
        for (std::size_t g = 0; g < nl_.num_gates(); ++g) {
            const GateId gid{g};
            const auto& gate = nl_.gate(gid);
            if (gate.kind == net::GateKind::Input) continue;
            if (!nl_.gate_excited(gid, c.values)) continue;
            Composite next = c;
            next.values.flip(g);
            const bool new_value = next.values.test(g);

            if (gate.signal.is_valid() && is_non_input(spec_.signals()[gate.signal].kind)) {
                // A latched specification signal changed: the spec must
                // allow this transition here.
                const auto arc = spec_.arc_on(c.spec, gate.signal);
                const bool allowed =
                    arc != UINT32_MAX && spec_.value(spec_.arc(arc).to, gate.signal) == new_value;
                if (!allowed) {
                    add_violation(ViolationKind::NonConformant, cur,
                                  "signal '" + gate.name + "' fired to " +
                                      (new_value ? "1" : "0") + " at spec state " +
                                      spec_.state_label(c.spec) + " where it is not enabled");
                    if (opts_.stop_at_first) return;
                    continue;
                }
                next.spec = spec_.arc(arc).to;
            }
            take_step(cur, std::move(next), gid, gid, new_value, queue);
            any = true;
            if (!result_.violations.empty() && opts_.stop_at_first) return;
        }

        if (!any && !spec_.out_arcs(c.spec).empty()) {
            add_violation(ViolationKind::Deadlock, cur,
                          "no gate or input can fire but the spec expects progress at " +
                              spec_.state_label(c.spec));
        }
    }

    // Fast-path expand: identical move enumeration, but the node state and
    // excitation set are copied into capacity-reusing scratch buffers and
    // successors are explored by take_step_fast (in-place bit flips).
    void expand_fast(std::uint32_t cur, std::deque<std::uint32_t>& queue) {
        scratch_state_ = nodes_[cur].state;  // scratch: nodes_ may reallocate
        scratch_ex_ = nodes_[cur].excited;
        const StateId cur_spec = scratch_state_.spec;
        bool any = false;

        // Environment moves: each input transition the spec enables.
        for (std::size_t vi = 0; vi < spec_.num_signals(); ++vi) {
            const SignalId v{vi};
            if (spec_.signals()[v].kind != SignalKind::Input) continue;
            const auto arc = spec_.arc_on(cur_spec, v);
            if (arc == UINT32_MAX) continue;
            const GateId in_gate = nl_.gate_of_signal(v);
            require(in_gate.is_valid(), "input signal without an Input gate");
            require(scratch_state_.values.test(in_gate.index()) == spec_.value(cur_spec, v),
                    "input gate out of sync with the specification");
            const bool up = !scratch_state_.values.test(in_gate.index());
            take_step_fast(cur, GateId::invalid(), in_gate, up, spec_.arc(arc).to, queue);
            any = true;
            if (!result_.violations.empty() && opts_.stop_at_first) return;
        }

        // Circuit moves: walk the cached excitation set (ascending, the
        // same order as the slow path's full scan).
        for (std::size_t g = scratch_ex_.find_first(); g < nl_.num_gates();
             g = scratch_ex_.find_next(g)) {
            const GateId gid{g};
            const auto& gate = nl_.gate(gid);
            const bool new_value = !scratch_state_.values.test(g);
            StateId next_spec = cur_spec;

            if (gate.signal.is_valid() && is_non_input(spec_.signals()[gate.signal].kind)) {
                // A latched specification signal changed: the spec must
                // allow this transition here.
                const auto arc = spec_.arc_on(cur_spec, gate.signal);
                const bool allowed =
                    arc != UINT32_MAX && spec_.value(spec_.arc(arc).to, gate.signal) == new_value;
                if (!allowed) {
                    add_violation(ViolationKind::NonConformant, cur,
                                  "signal '" + gate.name + "' fired to " +
                                      (new_value ? "1" : "0") + " at spec state " +
                                      spec_.state_label(cur_spec) + " where it is not enabled");
                    if (opts_.stop_at_first) return;
                    continue;
                }
                next_spec = spec_.arc(arc).to;
            }
            take_step_fast(cur, gid, gid, new_value, next_spec, queue);
            any = true;
            if (!result_.violations.empty() && opts_.stop_at_first) return;
        }

        if (!any && !spec_.out_arcs(cur_spec).empty()) {
            add_violation(ViolationKind::Deadlock, cur,
                          "no gate or input can fire but the spec expects progress at " +
                              spec_.state_label(cur_spec));
        }
    }

    const net::Netlist& nl_;
    const sg::StateGraph& spec_;
    const VerifyOptions& opts_;
    // The fast-path knob is sampled once here: fanout_ is only built when
    // it was on at construction, so a later set_fast_path(true) must not
    // route check_disabling through an empty index.
    bool use_fanout_;
    net::FanoutIndex fanout_; ///< built only when use_fanout_
    std::size_t value_words_;            ///< packed words per gate-value row
    util::StateStore store_;             ///< fast path: packed visited index
    std::vector<std::uint64_t> packed_;  ///< scratch row for remember()
    Composite scratch_state_;            ///< expand_fast: working copy of the node state
    BitVec scratch_ex_;                  ///< expand_fast: the node's excitation set
    std::vector<std::pair<std::uint32_t, bool>> touched_; ///< (gate, excited after flip)
    util::Meter meter_;
    std::unordered_map<Composite, std::uint32_t, CompositeHash> index_; ///< slow path
    std::vector<Node> nodes_;
    VerifyResult result_;
};

} // namespace

VerifyResult verify_speed_independence(const net::Netlist& nl, const sg::StateGraph& spec,
                                       const VerifyOptions& opts) {
    return Verifier(nl, spec, opts).run();
}

bool SuiteResult::ok() const {
    for (const auto& p : properties)
        if (!p.ok) return false;
    return true;
}

std::string SuiteResult::describe() const {
    std::string out;
    for (const auto& p : properties) {
        out += p.name + ": " + (p.ok ? "PASS" : "FAIL");
        if (!p.detail.empty()) out += " (" + p.detail + ")";
        out += "\n";
    }
    return out;
}

SuiteResult verify_suite(const net::Netlist& nl, const sg::StateGraph& spec,
                         const SuiteOptions& opts) {
    SuiteResult out;
    const std::size_t n = opts.check_cycle ? 4 : 3;
    out.properties.resize(n);
    obs::Progress progress("verify.suite", n);
    // The four properties are independent reads of (nl, spec); only the
    // speed-independence exploration touches the caller's budget, so the
    // fan-out needs no budget sharding. Slots are pre-assigned, keeping
    // the report order fixed regardless of completion order.
    util::parallel_for(n, [&](std::size_t i) {
        PropertyReport& p = out.properties[i];
        switch (i) {
        case 0: {
            p.name = "speed-independence";
            out.si = verify_speed_independence(nl, spec, opts.si);
            p.ok = out.si.ok;
            if (!p.ok) p.detail = out.si.violations.empty()
                                      ? "no violation recorded"
                                      : out.si.violations.front().message;
            break;
        }
        case 1: {
            p.name = "spec-output-semimodularity";
            std::size_t internal = 0;
            std::string first;
            for (const auto& c : sg::find_conflicts(spec)) {
                if (!c.internal) continue;
                if (internal == 0) first = c.describe(spec);
                ++internal;
            }
            p.ok = internal == 0;
            if (!p.ok) p.detail = first;
            break;
        }
        case 2: {
            p.name = "spec-csc";
            const auto csc = sg::find_csc_violations(spec);
            p.ok = csc.empty();
            if (!p.ok) p.detail = csc.front().describe(spec);
            break;
        }
        case 3: {
            p.name = "unit-delay-cycle";
            try {
                const CycleEstimate est = estimate_cycle_time(nl, spec, opts.cycle_max_ticks);
                p.ok = est.periodic;
                p.detail = est.describe();
            } catch (const Error& e) {
                p.ok = false;
                p.detail = e.what();
            }
            break;
        }
        default: break;
        }
        progress.advance();
    });
    return out;
}

} // namespace si::verify
