#include "si/verify/verifier.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "si/obs/flight.hpp"
#include "si/obs/obs.hpp"
#include "si/sg/analysis.hpp"
#include "si/util/error.hpp"
#include "si/util/parallel.hpp"
#include "si/verify/performance.hpp"

namespace si::verify {

const char* to_string(HazardVerdict v) {
    switch (v) {
    case HazardVerdict::Clean: return "clean";
    case HazardVerdict::Hazard: return "hazard";
    case HazardVerdict::Unknown: return "unknown";
    }
    return "?";
}

std::string Violation::describe() const {
    std::string out = message;
    if (!trace.empty()) {
        out += "\n  trace:";
        for (const auto& a : trace) out += " " + a;
    }
    if (!span_path.empty()) out += "\n  found in: " + span_path;
    return out;
}

std::string VerifyResult::describe() const {
    // A concrete violation refutes SI even on a partial exploration; an
    // exhausted exploration with no violation proves nothing either way.
    bool refuted = false;
    for (const auto& v : violations) refuted = refuted || v.kind != ViolationKind::StateExplosion;
    std::string out = ok        ? "speed-independent"
                      : refuted ? "NOT speed-independent"
                                : "UNKNOWN (budget exhausted)";
    out += " (" + std::to_string(states_explored) + " composite states, " +
           std::to_string(transitions_explored) + " transitions)";
    if (exhaustion) out += "\n" + exhaustion->describe();
    for (const auto& v : violations) out += "\n" + v.describe();
    return out;
}

namespace {

struct Composite {
    BitVec values;
    StateId spec;

    friend bool operator==(const Composite&, const Composite&) = default;
};

struct CompositeHash {
    std::size_t operator()(const Composite& c) const noexcept {
        return c.values.hash() * 1000003u ^ c.spec.raw();
    }
};

class Verifier {
public:
    Verifier(const net::Netlist& nl, const sg::StateGraph& spec, const VerifyOptions& opts)
        : nl_(nl), spec_(spec), opts_(opts), use_fanout_(util::fast_path()),
          meter_("verify.explore", opts.budget) {
        meter_.local().cap(util::Resource::States, opts.max_states);
        if (use_fanout_) fanout_ = net::FanoutIndex(nl);
    }

    VerifyResult run() {
        obs::Span span("verify.explore");
        span.attr("circuit", nl_.name);
        const Composite init{opts_.start_values ? *opts_.start_values : nl_.initial_values(),
                             opts_.start_spec ? *opts_.start_spec : spec_.initial()};
        require(init.values.size() == nl_.num_gates(), "start_values width != gate count");
        index_.emplace(init, 0);
        nodes_.push_back(Node{init, UINT32_MAX, ""});
        (void)meter_.charge(util::Resource::States);
        std::deque<std::uint32_t> queue{0};

        while (!queue.empty()) {
            if (!result_.violations.empty() && opts_.stop_at_first) break;
            const std::uint32_t cur = queue.front();
            queue.pop_front();
            expand(cur, queue);
            if (meter_.exhausted()) {
                add_violation(ViolationKind::StateExplosion, cur,
                              "exploration stopped early, verdict unknown: " +
                                  meter_.why().describe());
                result_.exhaustion = meter_.why();
                // An aborted verification leaves a post-mortem artifact:
                // the ring at this point holds the exploration's recent
                // span events plus the budget-trip marker.
                if (obs::flight::armed()) {
                    obs::flight::note("verifier abort on '" + nl_.name +
                                      "': " + meter_.why().describe());
                    (void)obs::flight::dump("verifier-abort");
                }
                break;
            }
        }
        result_.ok = result_.violations.empty();
        result_.states_explored = nodes_.size();
        span.attr("states", static_cast<std::uint64_t>(nodes_.size()));
        span.attr("transitions", static_cast<std::uint64_t>(result_.transitions_explored));
        span.attr("ok", result_.ok ? "true" : "false");
        if (obs::enabled()) {
            obs::count("verify.runs");
            obs::count("verify.states", nodes_.size());
            obs::count("verify.transitions", result_.transitions_explored);
            obs::count("verify.violations", result_.violations.size());
        }
        return std::move(result_);
    }

private:
    struct Node {
        Composite state;
        std::uint32_t parent;
        std::string action;
    };

    void add_violation(ViolationKind kind, std::uint32_t node, std::string message) {
        Violation v{kind, std::move(message), {}, {}};
        for (std::uint32_t n = node; n != UINT32_MAX; n = nodes_[n].parent) {
            if (!nodes_[n].action.empty()) v.trace.push_back(nodes_[n].action);
        }
        std::reverse(v.trace.begin(), v.trace.end());
        // Provenance: the open span path while tracing, else the budget
        // stage path (always available). Both are name paths, so the
        // witness stays byte-identical across worker counts.
        if (obs::tracing()) v.span_path = obs::current_span_path();
        if (v.span_path.empty()) v.span_path = meter_.stage_path();
        result_.violations.push_back(std::move(v));
    }

    // Non-input gates excited under `c`.
    [[nodiscard]] BitVec excited_gates(const Composite& c) const {
        BitVec out(nl_.num_gates());
        for (std::size_t g = 0; g < nl_.num_gates(); ++g) {
            if (nl_.gate(GateId(g)).kind == net::GateKind::Input) continue;
            if (nl_.gate_excited(GateId(g), c.values)) out.set(g);
        }
        return out;
    }

    void check_disabling(std::uint32_t from_node, const Composite& before, const Composite& after,
                         GateId fired, GateId flipped, const std::string& action) {
        // Pure-delay semantics: any excited non-input gate must stay
        // excited until it fires (Section III).
        auto consider = [&](GateId gid) {
            if (fired.is_valid() && gid == fired) return false;
            if (nl_.gate(gid).kind == net::GateKind::Input) return false;
            if (nl_.gate_excited(gid, before.values) && !nl_.gate_excited(gid, after.values)) {
                add_violation(ViolationKind::GateDisabled, from_node,
                              "gate '" + nl_.gate(gid).name + "' disabled while excited by " +
                                  action + " (unacknowledged switching: hazard)");
                return opts_.stop_at_first;
            }
            return false;
        };
        if (use_fanout_) {
            // Only the flipped gate's readers can change excitation (the
            // flipped gate itself is the fired gate or an input). The
            // fanout rows are ascending, so violations come out in the
            // same gate order as the full scan.
            obs::hot(obs::Hot::FanoutNarrowed);
            for (const GateId gid : fanout_.of(flipped))
                if (consider(gid)) return;
            return;
        }
        for (std::size_t g = 0; g < nl_.num_gates(); ++g)
            if (consider(GateId(g))) return;
    }

    void take_step(std::uint32_t cur, Composite next, GateId fired, GateId flipped,
                   const std::string& action, std::deque<std::uint32_t>& queue) {
        if (meter_.exhausted()) return; // stop materializing states once tripped
        ++result_.transitions_explored;
        (void)meter_.charge(util::Resource::Steps);
        check_disabling(cur, nodes_[cur].state, next, fired, flipped, action);
        const auto [it, inserted] = index_.emplace(next, static_cast<std::uint32_t>(nodes_.size()));
        if (inserted) {
            if (!meter_.charge(util::Resource::States)) {
                index_.erase(it);
                return;
            }
            nodes_.push_back(Node{std::move(next), cur, action});
            queue.push_back(it->second);
        }
    }

    void expand(std::uint32_t cur, std::deque<std::uint32_t>& queue) {
        const Composite c = nodes_[cur].state; // copy: nodes_ may reallocate
        bool any = false;

        // Environment moves: each input transition the spec enables.
        for (std::size_t vi = 0; vi < spec_.num_signals(); ++vi) {
            const SignalId v{vi};
            if (spec_.signals()[v].kind != SignalKind::Input) continue;
            const auto arc = spec_.arc_on(c.spec, v);
            if (arc == UINT32_MAX) continue;
            const GateId in_gate = nl_.gate_of_signal(v);
            require(in_gate.is_valid(), "input signal without an Input gate");
            require(c.values.test(in_gate.index()) == spec_.value(c.spec, v),
                    "input gate out of sync with the specification");
            Composite next = c;
            next.values.flip(in_gate.index());
            next.spec = spec_.arc(arc).to;
            const std::string action =
                (next.values.test(in_gate.index()) ? "+" : "-") + nl_.gate(in_gate).name;
            take_step(cur, std::move(next), GateId::invalid(), in_gate, action, queue);
            any = true;
            if (!result_.violations.empty() && opts_.stop_at_first) return;
        }

        // Circuit moves: every excited non-input gate may fire.
        for (std::size_t g = 0; g < nl_.num_gates(); ++g) {
            const GateId gid{g};
            const auto& gate = nl_.gate(gid);
            if (gate.kind == net::GateKind::Input) continue;
            if (!nl_.gate_excited(gid, c.values)) continue;
            Composite next = c;
            next.values.flip(g);
            const bool new_value = next.values.test(g);
            const std::string action = (new_value ? "+" : "-") + gate.name;

            if (gate.signal.is_valid() && is_non_input(spec_.signals()[gate.signal].kind)) {
                // A latched specification signal changed: the spec must
                // allow this transition here.
                const auto arc = spec_.arc_on(c.spec, gate.signal);
                const bool allowed =
                    arc != UINT32_MAX && spec_.value(spec_.arc(arc).to, gate.signal) == new_value;
                if (!allowed) {
                    add_violation(ViolationKind::NonConformant, cur,
                                  "signal '" + gate.name + "' fired to " +
                                      (new_value ? "1" : "0") + " at spec state " +
                                      spec_.state_label(c.spec) + " where it is not enabled");
                    if (opts_.stop_at_first) return;
                    continue;
                }
                next.spec = spec_.arc(arc).to;
            }
            take_step(cur, std::move(next), gid, gid, action, queue);
            any = true;
            if (!result_.violations.empty() && opts_.stop_at_first) return;
        }

        if (!any && !spec_.state(c.spec).out.empty()) {
            add_violation(ViolationKind::Deadlock, cur,
                          "no gate or input can fire but the spec expects progress at " +
                              spec_.state_label(c.spec));
        }
    }

    const net::Netlist& nl_;
    const sg::StateGraph& spec_;
    const VerifyOptions& opts_;
    // The fast-path knob is sampled once here: fanout_ is only built when
    // it was on at construction, so a later set_fast_path(true) must not
    // route check_disabling through an empty index.
    bool use_fanout_;
    net::FanoutIndex fanout_; ///< built only when use_fanout_
    util::Meter meter_;
    std::unordered_map<Composite, std::uint32_t, CompositeHash> index_;
    std::vector<Node> nodes_;
    VerifyResult result_;
};

} // namespace

VerifyResult verify_speed_independence(const net::Netlist& nl, const sg::StateGraph& spec,
                                       const VerifyOptions& opts) {
    return Verifier(nl, spec, opts).run();
}

bool SuiteResult::ok() const {
    for (const auto& p : properties)
        if (!p.ok) return false;
    return true;
}

std::string SuiteResult::describe() const {
    std::string out;
    for (const auto& p : properties) {
        out += p.name + ": " + (p.ok ? "PASS" : "FAIL");
        if (!p.detail.empty()) out += " (" + p.detail + ")";
        out += "\n";
    }
    return out;
}

SuiteResult verify_suite(const net::Netlist& nl, const sg::StateGraph& spec,
                         const SuiteOptions& opts) {
    SuiteResult out;
    const std::size_t n = opts.check_cycle ? 4 : 3;
    out.properties.resize(n);
    // The four properties are independent reads of (nl, spec); only the
    // speed-independence exploration touches the caller's budget, so the
    // fan-out needs no budget sharding. Slots are pre-assigned, keeping
    // the report order fixed regardless of completion order.
    util::parallel_for(n, [&](std::size_t i) {
        PropertyReport& p = out.properties[i];
        switch (i) {
        case 0: {
            p.name = "speed-independence";
            out.si = verify_speed_independence(nl, spec, opts.si);
            p.ok = out.si.ok;
            if (!p.ok) p.detail = out.si.violations.empty()
                                      ? "no violation recorded"
                                      : out.si.violations.front().message;
            break;
        }
        case 1: {
            p.name = "spec-output-semimodularity";
            std::size_t internal = 0;
            std::string first;
            for (const auto& c : sg::find_conflicts(spec)) {
                if (!c.internal) continue;
                if (internal == 0) first = c.describe(spec);
                ++internal;
            }
            p.ok = internal == 0;
            if (!p.ok) p.detail = first;
            break;
        }
        case 2: {
            p.name = "spec-csc";
            const auto csc = sg::find_csc_violations(spec);
            p.ok = csc.empty();
            if (!p.ok) p.detail = csc.front().describe(spec);
            break;
        }
        case 3: {
            p.name = "unit-delay-cycle";
            try {
                const CycleEstimate est = estimate_cycle_time(nl, spec, opts.cycle_max_ticks);
                p.ok = est.periodic;
                p.detail = est.describe();
            } catch (const Error& e) {
                p.ok = false;
                p.detail = e.what();
            }
            break;
        }
        default: break;
        }
    });
    return out;
}

} // namespace si::verify
