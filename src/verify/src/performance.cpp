#include "si/verify/performance.hpp"

#include <unordered_map>

#include "si/util/error.hpp"

namespace si::verify {

std::string CycleEstimate::describe() const {
    if (!periodic) return "no periodic behaviour (deadlock or budget exhausted)";
    return "period " + std::to_string(period_ticks) + " gate delays (" +
           std::to_string(gate_events) + " gate events, " + std::to_string(input_events) +
           " input events per period, transient " + std::to_string(transient_ticks) + ")";
}

namespace {

struct Composite {
    BitVec values;
    StateId spec;
    friend bool operator==(const Composite&, const Composite&) = default;
};

struct CompositeHash {
    std::size_t operator()(const Composite& c) const noexcept {
        return c.values.hash() * 1000003u ^ c.spec.raw();
    }
};

} // namespace

CycleEstimate estimate_cycle_time(const net::Netlist& nl, const sg::StateGraph& spec,
                                  std::size_t max_ticks) {
    Composite cur{nl.initial_values(), spec.initial()};
    std::unordered_map<Composite, std::size_t, CompositeHash> seen_at;
    std::vector<std::pair<std::size_t, std::size_t>> events; // (gate, input) per tick

    for (std::size_t tick = 0; tick < max_ticks; ++tick) {
        const auto [it, inserted] = seen_at.emplace(cur, tick);
        if (!inserted) {
            CycleEstimate est;
            est.periodic = true;
            est.transient_ticks = it->second;
            est.period_ticks = tick - it->second;
            for (std::size_t t = it->second; t < tick; ++t) {
                est.gate_events += events[t].first;
                est.input_events += events[t].second;
            }
            return est;
        }

        std::size_t gate_events = 0;
        std::size_t input_events = 0;
        Composite next = cur;

        // Instant environment: all spec-enabled inputs fire first.
        for (std::size_t vi = 0; vi < spec.num_signals(); ++vi) {
            const SignalId v{vi};
            if (spec.signals()[v].kind != SignalKind::Input) continue;
            const auto arc = spec.arc_on(next.spec, v);
            if (arc == UINT32_MAX) continue;
            const GateId in = nl.gate_of_signal(v);
            require(in.is_valid(), "input without an Input gate");
            next.values.flip(in.index());
            next.spec = spec.arc(arc).to;
            ++input_events;
        }

        // Unit-delay step: every excited non-input gate switches at once
        // (excitation evaluated against the pre-step values).
        const BitVec before = next.values;
        std::vector<SignalId> latched;
        for (std::size_t g = 0; g < nl.num_gates(); ++g) {
            const GateId gid{g};
            const auto& gate = nl.gate(gid);
            if (gate.kind == net::GateKind::Input) continue;
            if (nl.target_value(gid, before) == before.test(g)) continue;
            next.values.flip(g);
            ++gate_events;
            if (gate.signal.is_valid() && is_non_input(spec.signals()[gate.signal].kind))
                latched.push_back(gate.signal);
        }
        // Advance the spec for the latched signals (any order: a verified
        // SI netlist only fires spec-enabled transitions).
        for (const SignalId v : latched) {
            const auto arc = spec.arc_on(next.spec, v);
            if (arc == UINT32_MAX ||
                spec.value(spec.arc(arc).to, v) != next.values.test(nl.gate_of_signal(v).index()))
                throw SpecError("unit-delay simulation diverged from the specification at " +
                                spec.state_label(next.spec) + " on signal " +
                                spec.signals()[v].name + " (non-conformant netlist?)");
            next.spec = spec.arc(arc).to;
        }

        events.emplace_back(gate_events, input_events);
        if (gate_events == 0 && input_events == 0) return {}; // deadlock
        cur = std::move(next);
    }
    return {};
}

} // namespace si::verify
