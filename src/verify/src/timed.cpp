#include "si/verify/timed.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "si/util/error.hpp"

namespace si::verify {

std::string TimedResult::describe() const {
    std::string out = ok ? "conformant under the delay bounds" : ("VIOLATION: " + violation);
    out += " (" + std::to_string(states_explored) + " timed states, " +
           std::to_string(pulses_filtered) + " pulses filtered)";
    if (!ok && !trace.empty()) {
        out += "\n  trace:";
        for (const auto& a : trace) out += " " + a;
    }
    return out;
}

namespace {

struct TimedState {
    BitVec values;
    std::vector<std::uint8_t> age; // per gate: time excited so far (0 = fresh/idle)
    StateId spec;

    friend bool operator==(const TimedState&, const TimedState&) = default;
};

struct TimedHash {
    std::size_t operator()(const TimedState& s) const noexcept {
        std::size_t h = s.values.hash() * 1000003u ^ s.spec.raw();
        for (const auto a : s.age) h = h * 131u + a;
        return h;
    }
};

class TimedVerifier {
public:
    TimedVerifier(const net::Netlist& nl, const sg::StateGraph& spec,
                  const std::vector<DelayBounds>& bounds, const TimedOptions& opts)
        : nl_(nl), spec_(spec), bounds_(bounds), opts_(opts) {
        require(bounds.size() == nl.num_gates(), "one delay bound per gate required");
    }

    TimedResult run() {
        TimedState init{nl_.initial_values(), std::vector<std::uint8_t>(nl_.num_gates(), 0),
                        spec_.initial()};
        index_.emplace(init, 0);
        nodes_.push_back(Node{std::move(init), UINT32_MAX, ""});
        std::deque<std::uint32_t> queue{0};

        while (!queue.empty() && result_.violation.empty()) {
            const std::uint32_t cur = queue.front();
            queue.pop_front();
            expand(cur, queue);
            if (index_.size() > opts_.max_states) {
                fail(cur, "timed exploration exceeded " + std::to_string(opts_.max_states) +
                              " states");
                break;
            }
        }
        result_.ok = result_.violation.empty();
        result_.states_explored = nodes_.size();
        return std::move(result_);
    }

private:
    struct Node {
        TimedState state;
        std::uint32_t parent;
        std::string action;
    };

    void fail(std::uint32_t node, std::string message) {
        if (!result_.violation.empty()) return;
        result_.violation = std::move(message);
        for (std::uint32_t n = node; n != UINT32_MAX; n = nodes_[n].parent)
            if (!nodes_[n].action.empty()) result_.trace.push_back(nodes_[n].action);
        std::reverse(result_.trace.begin(), result_.trace.end());
    }

    [[nodiscard]] bool gate_excited(const TimedState& s, GateId g) const {
        return nl_.gate(g).kind != net::GateKind::Input &&
               nl_.target_value(g, s.values) != s.values.test(g.index());
    }

    // Inertial rule: after any value change, pending ages of gates whose
    // excitation vanished reset to zero.
    void settle(TimedState& s) {
        for (std::size_t g = 0; g < nl_.num_gates(); ++g) {
            if (s.age[g] != 0 && !gate_excited(s, GateId(g))) {
                s.age[g] = 0;
                ++result_.pulses_filtered;
            }
        }
    }

    void take(std::uint32_t cur, TimedState next, const std::string& action,
              std::deque<std::uint32_t>& queue) {
        const auto [it, inserted] = index_.emplace(next, static_cast<std::uint32_t>(nodes_.size()));
        if (inserted) {
            nodes_.push_back(Node{std::move(next), cur, action});
            queue.push_back(it->second);
        }
    }

    void expand(std::uint32_t cur, std::deque<std::uint32_t>& queue) {
        const TimedState s = nodes_[cur].state;
        bool progress = false;

        // Environment: any spec-enabled input, at any moment.
        for (std::size_t vi = 0; vi < spec_.num_signals(); ++vi) {
            const SignalId v{vi};
            if (spec_.signals()[v].kind != SignalKind::Input) continue;
            const auto arc = spec_.arc_on(s.spec, v);
            if (arc == UINT32_MAX) continue;
            const GateId in = nl_.gate_of_signal(v);
            TimedState next = s;
            next.values.flip(in.index());
            next.spec = spec_.arc(arc).to;
            settle(next);
            take(cur, std::move(next),
                 (s.values.test(in.index()) ? "-" : "+") + nl_.gate(in).name, queue);
            progress = true;
        }

        // Gate firings: pending gates whose age has reached their lower
        // bound may fire now.
        bool deadline = false;
        for (std::size_t g = 0; g < nl_.num_gates(); ++g) {
            const GateId gid{g};
            if (!gate_excited(s, gid)) continue;
            if (s.age[g] >= bounds_[g].hi) deadline = true;
            if (s.age[g] < bounds_[g].lo) continue;
            TimedState next = s;
            next.values.flip(g);
            next.age[g] = 0;
            const bool new_value = next.values.test(g);
            const auto& gate = nl_.gate(gid);
            if (gate.signal.is_valid() && is_non_input(spec_.signals()[gate.signal].kind)) {
                const auto arc = spec_.arc_on(s.spec, gate.signal);
                const bool allowed =
                    arc != UINT32_MAX && spec_.value(spec_.arc(arc).to, gate.signal) == new_value;
                if (!allowed) {
                    fail(cur, "signal '" + gate.name + "' fired to " + (new_value ? "1" : "0") +
                                  " at spec state " + spec_.state_label(s.spec) +
                                  " where it is not enabled");
                    return;
                }
                next.spec = spec_.arc(arc).to;
            }
            settle(next);
            take(cur, std::move(next), (new_value ? "+" : "-") + gate.name, queue);
            progress = true;
        }

        // Time advance: one unit, blocked while some gate sits at its
        // deadline (it must fire first).
        if (!deadline) {
            TimedState next = s;
            bool any_pending = false;
            for (std::size_t g = 0; g < nl_.num_gates(); ++g) {
                if (gate_excited(s, GateId(g))) {
                    next.age[g] = static_cast<std::uint8_t>(
                        std::min<unsigned>(s.age[g] + 1, bounds_[g].hi));
                    any_pending = true;
                }
            }
            if (any_pending) {
                take(cur, std::move(next), "tick", queue);
                progress = true;
            }
        } else {
            progress = true; // a must-fire gate exists; firings cover it
        }

        if (!progress && !spec_.out_arcs(s.spec).empty())
            fail(cur, "deadlock: nothing can fire but the spec expects progress at " +
                          spec_.state_label(s.spec));
    }

    const net::Netlist& nl_;
    const sg::StateGraph& spec_;
    const std::vector<DelayBounds>& bounds_;
    const TimedOptions& opts_;
    std::unordered_map<TimedState, std::uint32_t, TimedHash> index_;
    std::vector<Node> nodes_;
    TimedResult result_;
};

} // namespace

TimedResult verify_bounded_delay(const net::Netlist& nl, const sg::StateGraph& spec,
                                 const std::vector<DelayBounds>& bounds,
                                 const TimedOptions& opts) {
    return TimedVerifier(nl, spec, bounds, opts).run();
}

std::vector<DelayBounds> uniform_bounds(const net::Netlist& nl, DelayBounds gates,
                                        DelayBounds inverters) {
    std::vector<DelayBounds> out(nl.num_gates(), gates);
    for (std::size_t g = 0; g < nl.num_gates(); ++g)
        if (nl.gate(GateId(g)).kind == net::GateKind::Not) out[g] = inverters;
    return out;
}

} // namespace si::verify
