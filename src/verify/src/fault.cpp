#include "si/verify/fault.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <random>
#include <unordered_map>

#include "si/obs/live.hpp"
#include "si/obs/obs.hpp"
#include "si/util/error.hpp"
#include "si/util/parallel.hpp"
#include "si/util/state_store.hpp"

namespace si::verify::fault {

const char* to_string(FaultClass c) {
    switch (c) {
    case FaultClass::LiteralFlip: return "literal-flip";
    case FaultClass::LiteralDrop: return "literal-drop";
    case FaultClass::LatchSwap: return "latch-swap";
    case FaultClass::DelaySchedule: return "delay-schedule";
    case FaultClass::Seu: return "seu";
    case FaultClass::Glitch: return "glitch";
    }
    return "?";
}

std::string StructuralFault::describe(const net::Netlist& nl) const {
    const std::string g = "gate '" + nl.gate(gate).name + "'";
    switch (cls) {
    case FaultClass::LiteralFlip:
        return "flip polarity of literal " + std::to_string(fanin) + " of " + g;
    case FaultClass::LiteralDrop: return "drop the last literal of " + g;
    case FaultClass::LatchSwap: return "swap the set/reset fanins of " + g;
    default: return std::string(to_string(cls)) + " on " + g;
    }
}

std::vector<StructuralFault> enumerate_structural(const net::Netlist& nl) {
    std::vector<StructuralFault> out;
    for (std::size_t gi = 0; gi < nl.num_gates(); ++gi) {
        const auto& g = nl.gate(GateId(gi));
        if (g.kind == net::GateKind::And || g.kind == net::GateKind::Or) {
            for (std::size_t fi = 0; fi < g.fanins.size(); ++fi)
                out.push_back({FaultClass::LiteralFlip, GateId(gi), fi});
            if (g.fanins.size() > 1) out.push_back({FaultClass::LiteralDrop, GateId(gi), 0});
        }
        if (g.kind == net::GateKind::CElement || g.kind == net::GateKind::RsLatch)
            out.push_back({FaultClass::LatchSwap, GateId(gi), 0});
    }
    return out;
}

net::Netlist apply(const net::Netlist& nl, const StructuralFault& f) {
    net::Netlist mutant = nl;
    auto& g = mutant.gate(f.gate);
    switch (f.cls) {
    case FaultClass::LiteralFlip:
        require(f.fanin < g.fanins.size(), "literal-flip fanin out of range");
        g.fanins[f.fanin].inverted = !g.fanins[f.fanin].inverted;
        break;
    case FaultClass::LiteralDrop:
        require(g.fanins.size() > 1, "literal-drop needs a multi-input gate");
        g.fanins.pop_back();
        break;
    case FaultClass::LatchSwap:
        require(g.fanins.size() >= 2, "latch-swap needs two fanins");
        std::swap(g.fanins[0], g.fanins[1]);
        break;
    default: throw SpecError("apply: not a structural fault class");
    }
    return mutant;
}

// ---------------------------------------------------------------------------
// Closed-circuit stepping shared by the nominal explorer, the adversarial
// scheduler and the witness replayer. A move is either an environment
// input transition the spec enables or the firing of an excited gate.

namespace {

struct Composite {
    BitVec values;
    StateId spec;

    friend bool operator==(const Composite&, const Composite&) = default;
};

struct CompositeHash {
    std::size_t operator()(const Composite& c) const noexcept {
        return c.values.hash() * 1000003u ^ c.spec.raw();
    }
};

struct Move {
    GateId gate;        ///< fired gate (Input gates model environment moves)
    bool up = false;    ///< new output value
    std::string action; ///< "+name" / "-name"; empty on the fast path (lazy)
    Composite next;
    bool conformant = true; ///< spec allows this latched-signal change
};

// "+name"/"-name" for a move; the fast path defers the string build to
// the few moves that end up in a trace or message.
std::string move_action(const net::Netlist& nl, const Move& m) {
    if (!m.action.empty()) return m.action;
    return (m.up ? "+" : "-") + nl.gate(m.gate).name;
}

// True iff `token` is the action string of `m`, without materializing it.
bool move_matches(const net::Netlist& nl, const Move& m, const std::string& token) {
    if (!m.action.empty()) return m.action == token;
    const std::string& name = nl.gate(m.gate).name;
    return token.size() == name.size() + 1 && token[0] == (m.up ? '+' : '-') &&
           token.compare(1, std::string::npos, name) == 0;
}

// All moves available in `c`, in deterministic gate order. Non-conformant
// latched firings are included (flagged) so callers decide whether they
// are a violation to report or a witness step to replay.
std::vector<Move> enabled_moves(const net::Netlist& nl, const sg::StateGraph& spec,
                                const Composite& c) {
    const bool lazy = util::fast_path(); // defer action-string builds
    std::vector<Move> out;
    for (std::size_t vi = 0; vi < spec.num_signals(); ++vi) {
        const SignalId v{vi};
        if (spec.signals()[v].kind != SignalKind::Input) continue;
        const auto arc = spec.arc_on(c.spec, v);
        if (arc == UINT32_MAX) continue;
        const GateId in_gate = nl.gate_of_signal(v);
        require(in_gate.is_valid(), "input signal without an Input gate");
        if (c.values.test(in_gate.index()) != spec.value(c.spec, v))
            continue; // input desynchronized (possible after an injection)
        Composite next = c;
        next.values.flip(in_gate.index());
        next.spec = spec.arc(arc).to;
        const bool up = next.values.test(in_gate.index());
        std::string action = lazy ? std::string() : (up ? "+" : "-") + nl.gate(in_gate).name;
        out.push_back({in_gate, up, std::move(action), std::move(next), true});
    }
    for (std::size_t g = 0; g < nl.num_gates(); ++g) {
        const GateId gid{g};
        const auto& gate = nl.gate(gid);
        if (gate.kind == net::GateKind::Input) continue;
        if (!nl.gate_excited(gid, c.values)) continue;
        Composite next = c;
        next.values.flip(g);
        const bool new_value = next.values.test(g);
        bool conformant = true;
        if (gate.signal.is_valid() && is_non_input(spec.signals()[gate.signal].kind)) {
            const auto arc = spec.arc_on(c.spec, gate.signal);
            conformant =
                arc != UINT32_MAX && spec.value(spec.arc(arc).to, gate.signal) == new_value;
            if (conformant) next.spec = spec.arc(arc).to;
        }
        std::string action = lazy ? std::string() : (new_value ? "+" : "-") + gate.name;
        out.push_back({gid, new_value, std::move(action), std::move(next), conformant});
    }
    return out;
}

// A non-input gate (other than `fired`) that was excited before the move
// and is not after it — the pure-delay hazard. With a fanout index the
// scan narrows to the readers of the flipped gate (the only gates whose
// excitation can change); the rows are ascending, so the first hit is
// the same gate the full scan reports.
std::string disabled_gate(const net::Netlist& nl, const net::FanoutIndex* fo,
                          const Composite& before, const Composite& after, GateId fired,
                          GateId flipped) {
    auto hit = [&](GateId gid) {
        if (gid == fired) return false;
        if (nl.gate(gid).kind == net::GateKind::Input) return false;
        return nl.gate_excited(gid, before.values) && !nl.gate_excited(gid, after.values);
    };
    if (fo != nullptr) {
        for (const GateId gid : fo->of(flipped))
            if (hit(gid)) return nl.gate(gid).name;
        return {};
    }
    for (std::size_t g = 0; g < nl.num_gates(); ++g)
        if (hit(GateId(g))) return nl.gate(GateId(g)).name;
    return {};
}

// Breadth-first nominal exploration recording one shortest action trace
// per reachable composite state — the injection-site pool.
struct NominalNode {
    Composite state;
    std::uint32_t parent;
    GateId gate = GateId::invalid(); ///< move that reached this node
    bool up = false;
    std::string action; ///< eager on the seed path; empty on the fast path
};

std::vector<NominalNode> explore_nominal(const net::Netlist& nl, const sg::StateGraph& spec,
                                         std::size_t max_states) {
    std::vector<NominalNode> nodes;
    const Composite init{nl.initial_values(), spec.initial()};
    std::deque<std::uint32_t> queue{0};
    if (util::fast_path()) {
        // Packed-code interning: one contiguous row per composite instead
        // of a BitVec-hashed map node, same insertion-order ids.
        const std::size_t vw = init.values.num_words();
        util::StateStore store(vw + 1);
        std::vector<std::uint64_t> packed(vw + 1);
        auto pack = [&](const Composite& c) {
            for (std::size_t w = 0; w < vw; ++w) packed[w] = c.values.word_data()[w];
            packed[vw] = c.spec.raw();
        };
        pack(init);
        store.intern(packed.data());
        nodes.push_back({init, UINT32_MAX, GateId::invalid(), false, ""});
        while (!queue.empty() && nodes.size() < max_states) {
            const std::uint32_t cur = queue.front();
            queue.pop_front();
            const Composite c = nodes[cur].state; // copy: nodes may reallocate
            for (auto& m : enabled_moves(nl, spec, c)) {
                if (!m.conformant) continue; // nominal exploration stays in-spec
                pack(m.next);
                if (!store.intern(packed.data()).second) continue;
                const auto id = static_cast<std::uint32_t>(nodes.size());
                nodes.push_back({std::move(m.next), cur, m.gate, m.up, std::move(m.action)});
                queue.push_back(id);
                if (nodes.size() >= max_states) break;
            }
        }
        return nodes;
    }
    std::unordered_map<Composite, std::uint32_t, CompositeHash> index;
    index.emplace(init, 0);
    nodes.push_back({init, UINT32_MAX, GateId::invalid(), false, ""});
    while (!queue.empty() && nodes.size() < max_states) {
        const std::uint32_t cur = queue.front();
        queue.pop_front();
        const Composite c = nodes[cur].state; // copy: nodes may reallocate
        for (auto& m : enabled_moves(nl, spec, c)) {
            if (!m.conformant) continue; // nominal exploration stays in-spec
            const auto [it, inserted] =
                index.emplace(m.next, static_cast<std::uint32_t>(nodes.size()));
            if (!inserted) continue;
            nodes.push_back({std::move(m.next), cur, m.gate, m.up, std::move(m.action)});
            queue.push_back(it->second);
            if (nodes.size() >= max_states) break;
        }
    }
    return nodes;
}

std::vector<std::string> trace_to(const net::Netlist& nl, const std::vector<NominalNode>& nodes,
                                  std::uint32_t node) {
    std::vector<std::string> out;
    for (std::uint32_t n = node; n != UINT32_MAX; n = nodes[n].parent) {
        if (!nodes[n].action.empty())
            out.push_back(nodes[n].action);
        else if (nodes[n].gate.is_valid())
            out.push_back((nodes[n].up ? "+" : "-") + nl.gate(nodes[n].gate).name);
    }
    std::reverse(out.begin(), out.end());
    return out;
}

// Shared engine for SEU and glitch passes: sample (state, gate) pairs
// over the given gate-kind targets, flip the gate output there, and
// verify onward from the perturbed composite state.
std::vector<Injection> inject_flips(const net::Netlist& nl, const sg::StateGraph& spec,
                                    const DynamicOptions& opts, FaultClass cls,
                                    std::span<const net::GateKind> targets) {
    const auto nodes = explore_nominal(nl, spec, opts.max_states);

    std::vector<GateId> candidates;
    for (std::size_t g = 0; g < nl.num_gates(); ++g)
        for (const auto k : targets)
            if (nl.gate(GateId(g)).kind == k) candidates.push_back(GateId(g));

    if (candidates.empty() || nodes.empty()) return {};

    // Draw every injection site up front from the single seeded stream
    // (same draw order as the serial engine), then verify the sites
    // concurrently — each with its own budget shard so exhaustion is
    // reproducible for any thread count.
    struct Site {
        std::uint32_t node;
        GateId gid;
    };
    std::vector<Site> sites;
    sites.reserve(opts.max_sites);
    std::mt19937_64 rng(opts.seed);
    for (std::size_t site = 0; site < opts.max_sites; ++site) {
        const auto node = static_cast<std::uint32_t>(rng() % nodes.size());
        sites.push_back({node, candidates[rng() % candidates.size()]});
    }

    const char* token_prefix = cls == FaultClass::Seu ? "seu:" : "glitch:";
    std::vector<Injection> out(sites.size());
    obs::Progress progress("fault.inject", sites.size());
    util::parallel_for_budget(opts.budget, sites.size(), [&](std::size_t i, util::Budget* shard) {
        const Site& site = sites[i];
        const NominalNode& node = nodes[site.node];
        const GateId gid = site.gid;

        Composite perturbed = node.state;
        perturbed.values.flip(gid.index());

        Injection& inj = out[i];
        inj.cls = cls;
        inj.gate = nl.gate(gid).name;
        inj.witness = trace_to(nl, nodes, site.node);
        inj.witness.push_back(token_prefix + inj.gate);

        obs::Span span("fault.inject");
        span.attr("fault", token_prefix + inj.gate);

        VerifyOptions vo;
        vo.max_states = opts.verify_max_states;
        vo.budget = shard;
        vo.start_values = perturbed.values;
        vo.start_spec = perturbed.spec;
        const VerifyResult res = verify_speed_independence(nl, spec, vo);

        // A definitive violation (not a budget trip) kills the injection.
        const Violation* hit = nullptr;
        for (const auto& v : res.violations)
            if (v.kind != ViolationKind::StateExplosion) hit = hit ? hit : &v;
        if (hit != nullptr) {
            inj.killed = true;
            inj.detail = hit->message;
            inj.witness.insert(inj.witness.end(), hit->trace.begin(), hit->trace.end());
            inj.span_path = hit->span_path;
        } else {
            inj.detail = res.complete() ? "absorbed: all downstream behaviour conforms"
                                        : "undetected within budget: " +
                                              res.exhaustion->describe();
            inj.span_path = obs::current_span_path();
        }
        span.attr("killed", inj.killed ? "true" : "false");
        progress.advance();
    });
    return out;
}

} // namespace

std::vector<Injection> inject_seu(const net::Netlist& nl, const sg::StateGraph& spec,
                                  const DynamicOptions& opts) {
    const net::GateKind targets[] = {net::GateKind::CElement, net::GateKind::RsLatch,
                                     net::GateKind::Nor};
    return inject_flips(nl, spec, opts, FaultClass::Seu, targets);
}

std::vector<Injection> inject_glitches(const net::Netlist& nl, const sg::StateGraph& spec,
                                       const DynamicOptions& opts) {
    const net::GateKind targets[] = {net::GateKind::And, net::GateKind::Or, net::GateKind::Not,
                                     net::GateKind::Wire};
    return inject_flips(nl, spec, opts, FaultClass::Glitch, targets);
}

ScheduleResult adversarial_schedule(const net::Netlist& nl, const sg::StateGraph& spec,
                                    std::uint64_t seed, std::size_t max_steps) {
    ScheduleResult out;
    std::mt19937_64 rng(seed);
    std::optional<net::FanoutIndex> fo;
    if (util::fast_path()) fo.emplace(nl);
    Composite c{nl.initial_values(), spec.initial()};
    for (std::size_t step = 0; step < max_steps; ++step) {
        auto moves = enabled_moves(nl, spec, c);
        if (moves.empty()) {
            if (!spec.out_arcs(c.spec).empty()) {
                out.violation_found = true;
                out.detail = "deadlock: no gate or input can fire but the spec expects "
                             "progress at " +
                             spec.state_label(c.spec);
            }
            return out;
        }
        auto& m = moves[rng() % moves.size()];
        out.trace.push_back(move_action(nl, m));
        ++out.steps;
        if (!m.conformant) {
            out.violation_found = true;
            out.detail = "signal '" + nl.gate(m.gate).name +
                         "' fired against the specification at " + spec.state_label(c.spec);
            return out;
        }
        const GateId fired = nl.gate(m.gate).kind == net::GateKind::Input
                                 ? GateId::invalid()
                                 : m.gate;
        if (const auto g = disabled_gate(nl, fo ? &*fo : nullptr, c, m.next, fired, m.gate);
            !g.empty()) {
            out.violation_found = true;
            out.detail = "gate '" + g + "' disabled while excited by " + out.trace.back();
            return out;
        }
        c = std::move(m.next);
    }
    return out;
}

ReplayResult replay_witness(const net::Netlist& nl, const sg::StateGraph& spec,
                            std::span<const std::string> witness) {
    ReplayResult out;
    std::optional<net::FanoutIndex> fo;
    if (util::fast_path()) fo.emplace(nl);
    Composite c{nl.initial_values(), spec.initial()};
    for (const auto& token : witness) {
        if (token.rfind("seu:", 0) == 0 || token.rfind("glitch:", 0) == 0) {
            const std::string name = token.substr(token.find(':') + 1);
            GateId gid = GateId::invalid();
            for (std::size_t g = 0; g < nl.num_gates(); ++g)
                if (nl.gate(GateId(g)).name == name) gid = GateId(g);
            if (!gid.is_valid()) {
                out.error = "unknown gate in token '" + token + "'";
                return out;
            }
            c.values.flip(gid.index());
            continue;
        }
        if (token.size() < 2 || (token[0] != '+' && token[0] != '-')) {
            out.error = "malformed action token '" + token + "'";
            return out;
        }
        auto moves = enabled_moves(nl, spec, c);
        const Move* chosen = nullptr;
        for (const auto& m : moves)
            if (move_matches(nl, m, token)) chosen = &m;
        if (chosen == nullptr) {
            out.error = "action '" + token + "' is not executable here";
            return out;
        }
        if (!chosen->conformant) {
            out.anomaly = true;
            out.anomaly_detail = "non-conformant firing " + token;
        }
        const GateId fired = nl.gate(chosen->gate).kind == net::GateKind::Input
                                 ? GateId::invalid()
                                 : chosen->gate;
        if (const auto g =
                disabled_gate(nl, fo ? &*fo : nullptr, c, chosen->next, fired, chosen->gate);
            !g.empty()) {
            out.anomaly = true;
            out.anomaly_detail = "gate '" + g + "' disabled while excited by " + token;
        }
        c = chosen->next;
    }
    if (!out.anomaly && enabled_moves(nl, spec, c).empty() && !spec.out_arcs(c.spec).empty()) {
        out.anomaly = true;
        out.anomaly_detail = "deadlock at the end of the trace";
    }
    out.valid = true;
    out.final_values = std::move(c.values);
    out.final_spec = c.spec;
    return out;
}

// ---------------------------------------------------------------------------
// Campaigns

std::size_t CampaignReport::injected() const {
    std::size_t n = 0;
    for (const auto& s : per_class) n += s.injected;
    return n;
}

std::size_t CampaignReport::killed() const {
    std::size_t n = 0;
    for (const auto& s : per_class) n += s.killed;
    return n;
}

std::string CampaignReport::describe() const {
    std::string out;
    for (std::size_t i = 0; i < kNumFaultClasses; ++i) {
        const auto& s = per_class[i];
        if (s.injected == 0) continue;
        out += std::string(to_string(static_cast<FaultClass>(i))) + ": " +
               std::to_string(s.killed) + "/" + std::to_string(s.injected) + " killed\n";
    }
    out += "survivors: " + std::to_string(survivors.size());
    return out;
}

CampaignReport run_campaign(const net::Netlist& nl, const sg::StateGraph& spec,
                            const CampaignOptions& opts) {
    obs::Span campaign_span("fault.campaign");
    campaign_span.attr("circuit", nl.name);
    CampaignReport report;
    auto& stats = report.per_class;
    const auto idx = [](FaultClass c) { return static_cast<std::size_t>(c); };

    if (opts.structural) {
        // Every mutant's verification is independent: fan the campaign
        // out per fault and reduce the outcomes in enumeration order, so
        // stats and survivor order match the serial sweep byte for byte.
        // Each fault derives its own walk stream from (seed, index) —
        // the schedule draws cannot depend on how work was scheduled.
        const auto faults = enumerate_structural(nl);
        struct FaultOutcome {
            bool killed = false;
            std::vector<std::string> witness;
            std::string span_path;
            bool ds_injected = false;
            bool ds_killed = false;
        };
        std::vector<FaultOutcome> outcomes(faults.size());
        obs::Progress progress("fault.campaign", faults.size());
        util::parallel_for_budget(
            opts.verify.budget, faults.size(), [&](std::size_t fi, util::Budget* shard) {
                const auto& f = faults[fi];
                auto& o = outcomes[fi];
                obs::Span span("fault.mutant");
                span.attr("fault", f.describe(nl));
                VerifyOptions vo = opts.verify;
                if (shard != nullptr) vo.budget = shard;
                std::mt19937_64 walk_seed((opts.seed * 0x9e3779b97f4a7c15ull + 1) ^
                                          (0xbf58476d1ce4e5b9ull * (fi + 1)));
                try {
                    const auto mutant = apply(nl, f);
                    const auto res = verify_speed_independence(mutant, spec, vo);
                    bool refuted = false;
                    for (const auto& v : res.violations)
                        refuted = refuted || v.kind != ViolationKind::StateExplosion;
                    o.killed = refuted;
                    if (o.killed && !res.violations.empty()) {
                        o.witness = res.violations.front().trace;
                        o.span_path = res.violations.front().span_path;
                    } else if (!o.killed) {
                        o.span_path = obs::current_span_path();
                    }

                    // How many of these permanent faults does a *sampled*
                    // interleaving catch without exhaustive search?
                    if (o.killed && opts.schedule_walks != 0) {
                        o.ds_injected = true;
                        for (std::size_t w = 0; w < opts.schedule_walks; ++w) {
                            try {
                                if (adversarial_schedule(mutant, spec, walk_seed(),
                                                         opts.schedule_steps)
                                        .violation_found) {
                                    o.ds_killed = true;
                                    break;
                                }
                            } catch (const Error&) {
                                o.ds_killed = true; // walk tripped a structural break
                                break;
                            }
                        }
                    }
                } catch (const Error&) {
                    o.killed = true; // structurally broken counts as caught
                }
                progress.advance();
            });
        for (std::size_t fi = 0; fi < faults.size(); ++fi) {
            const auto& f = faults[fi];
            auto& o = outcomes[fi];
            auto& s = stats[idx(f.cls)];
            ++s.injected;
            if (o.ds_injected) {
                auto& ds = stats[idx(FaultClass::DelaySchedule)];
                ++ds.injected;
                if (o.ds_killed) ++ds.killed;
            }
            if (o.killed) {
                ++s.killed;
            } else {
                report.survivors.push_back(
                    {f.cls, f.describe(nl), std::move(o.witness), std::move(o.span_path)});
            }
        }
    }

    if (opts.dynamic) {
        DynamicOptions dyn = opts.dynamic_opts;
        dyn.seed = opts.seed * 0x9e3779b97f4a7c15ull + 2;
        auto absorb = [&](std::vector<Injection>&& injections) {
            for (auto& inj : injections) {
                auto& s = stats[idx(inj.cls)];
                ++s.injected;
                if (inj.killed) {
                    ++s.killed;
                } else {
                    report.survivors.push_back({inj.cls,
                                                std::string(to_string(inj.cls)) + " on '" +
                                                    inj.gate + "': " + inj.detail,
                                                std::move(inj.witness),
                                                std::move(inj.span_path)});
                }
            }
        };
        absorb(inject_seu(nl, spec, dyn));
        dyn.seed = opts.seed * 0x9e3779b97f4a7c15ull + 3;
        absorb(inject_glitches(nl, spec, dyn));
    }

    if (obs::enabled()) {
        obs::count("fault.injections", report.injected());
        obs::count("fault.kills", report.killed());
        obs::count("fault.survivors", report.survivors.size());
    }
    campaign_span.attr("injected", static_cast<std::uint64_t>(report.injected()));
    campaign_span.attr("killed", static_cast<std::uint64_t>(report.killed()));
    return report;
}

} // namespace si::verify::fault
