// Unit-delay performance estimation.
//
// Speed-independent circuits have no clock; the usual first-order
// performance figure is the cycle period under the unit-delay model:
// every excited gate switches exactly one time unit after becoming
// excited and the environment answers instantly. The closed system is
// then deterministic, so it settles into a periodic orbit whose length
// (in gate delays) is the cycle time. Used by the architecture
// comparison benches (C vs RS vs complex vs shared gates).
#pragma once

#include <string>

#include "si/netlist/netlist.hpp"
#include "si/sg/state_graph.hpp"

namespace si::verify {

struct CycleEstimate {
    bool periodic = false;        ///< false: deadlocked or budget exhausted
    std::size_t transient_ticks = 0; ///< ticks before entering the orbit
    std::size_t period_ticks = 0;    ///< gate delays per specification cycle
    std::size_t gate_events = 0;     ///< gate output changes per period
    std::size_t input_events = 0;    ///< environment transitions per period

    [[nodiscard]] std::string describe() const;
};

/// Simulates the closed circuit (instant environment per the spec) under
/// unit delays until the composite state recurs. Throws SpecError if a
/// simultaneous firing step disagrees with the specification (only
/// possible on non-conformant netlists).
[[nodiscard]] CycleEstimate estimate_cycle_time(const net::Netlist& nl,
                                                const sg::StateGraph& spec,
                                                std::size_t max_ticks = 100000);

} // namespace si::verify
