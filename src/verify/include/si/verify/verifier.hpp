// Gate-level speed-independence verification.
//
// The netlist is closed with a mirror environment that behaves exactly
// like the specification state graph (Foam Rubber Wrapper discipline:
// inputs fire whenever the spec allows them). Every gate output is a
// signal with a pure unbounded delay, so the composite behaviour is
// explored by interleaving all excited gates. The circuit is
// speed-independent iff no non-input gate is ever disabled while excited
// (output semi-modularity of the closed circuit, the criterion of
// Section III) and every latched signal change conforms to the spec.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "si/netlist/netlist.hpp"
#include "si/sg/state_graph.hpp"
#include "si/util/budget.hpp"

namespace si::verify {

enum class ViolationKind {
    GateDisabled,     ///< an excited non-input gate lost its excitation: hazard
    NonConformant,    ///< a latched signal fired when the spec forbids it
    Deadlock,         ///< spec expects progress but nothing can fire
    StateExplosion,   ///< exploration exhausted its budget: verdict unknown
};

struct Violation {
    ViolationKind kind;
    std::string message;
    /// Actions (gate/input names with polarity) from reset to the
    /// violating transition.
    std::vector<std::string> trace;
    /// Provenance: the obs span path open when the violation was found
    /// (e.g. "synth.bnb/parallel/task/verify.explore"), or the budget
    /// stage path when tracing is off. Names only — no indices or tick
    /// values — so it is identical for every thread count.
    std::string span_path;

    [[nodiscard]] std::string describe() const;
};

struct VerifyOptions {
    /// Cap on composite states (a module-local util::Resource::States
    /// cap; the exploration also charges Steps per transition).
    std::size_t max_states = 1u << 22;
    /// Stop at the first violation (default) or keep exploring around it.
    bool stop_at_first = true;
    /// Optional shared governance budget, charged alongside max_states.
    util::Budget* budget = nullptr;
    /// Start exploration from this composite state (gate output vector +
    /// spec state) instead of the reset state — the fault-injection
    /// engine resumes from perturbed states through this.
    std::optional<BitVec> start_values;
    std::optional<StateId> start_spec;
};

/// Three-valued hazard-oracle verdict — what a differential harness
/// compares against the MC checker's claim (Theorem 3: a satisfied MC
/// report must imply Clean).
enum class HazardVerdict : unsigned char {
    Clean,   ///< exhaustively explored, no violation: speed-independent
    Hazard,  ///< a definitive violation was found
    Unknown, ///< exploration exhausted its budget: proves nothing
};

[[nodiscard]] const char* to_string(HazardVerdict v);

struct VerifyResult {
    bool ok = false;
    std::vector<Violation> violations;
    std::size_t states_explored = 0;
    std::size_t transitions_explored = 0;
    /// Set when the exploration ran out of budget: `ok` is then false
    /// but the verdict is "unknown", not "hazardous" — only `complete()`
    /// results prove anything.
    std::optional<util::Exhaustion> exhaustion;

    /// True when the whole composite space was explored (the verdict in
    /// `ok` is definitive).
    [[nodiscard]] bool complete() const { return !exhaustion.has_value(); }

    /// Folds ok/exhaustion into the three-valued oracle verdict. A
    /// concrete violation refutes speed-independence even when the
    /// exploration was cut short; a clean partial exploration proves
    /// nothing.
    [[nodiscard]] HazardVerdict verdict() const {
        for (const auto& v : violations)
            if (v.kind != ViolationKind::StateExplosion) return HazardVerdict::Hazard;
        if (!complete()) return HazardVerdict::Unknown;
        return ok ? HazardVerdict::Clean : HazardVerdict::Hazard;
    }

    [[nodiscard]] std::string describe() const;
};

[[nodiscard]] VerifyResult verify_speed_independence(const net::Netlist& nl,
                                                     const sg::StateGraph& spec,
                                                     const VerifyOptions& opts = {});

// ---------------------------------------------------------------------------
// Property suite

struct SuiteOptions {
    VerifyOptions si;                      ///< for the speed-independence exploration
    bool check_cycle = true;               ///< include the unit-delay cycle estimate
    std::size_t cycle_max_ticks = 100000;  ///< cap for estimate_cycle_time
};

struct PropertyReport {
    std::string name;
    bool ok = false;
    std::string detail; ///< first witness / estimate summary
};

struct SuiteResult {
    /// Full speed-independence result (also summarized in properties[0]).
    VerifyResult si;
    /// Fixed canonical order: speed-independence, spec-output-
    /// semimodularity, spec-csc, unit-delay-cycle (when enabled).
    std::vector<PropertyReport> properties;

    [[nodiscard]] bool ok() const;
    [[nodiscard]] std::string describe() const;
};

/// Checks the independent properties of a netlist/spec pair — gate-level
/// speed independence, output semi-modularity and CSC of the
/// specification, and the unit-delay cycle estimate — fanning the checks
/// out over the thread pool. Slots are pre-assigned so the report is
/// identical for every thread count.
[[nodiscard]] SuiteResult verify_suite(const net::Netlist& nl, const sg::StateGraph& spec,
                                       const SuiteOptions& opts = {});

} // namespace si::verify
