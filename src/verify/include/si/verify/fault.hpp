// Gate-level fault injection against the speed-independence verifier.
//
// Two families of faults probe a synthesized netlist:
//   * structural mutations — a literal polarity flip, a dropped literal,
//     a swapped latch set/reset pair — permanent design errors the
//     exhaustive verifier should reject;
//   * dynamic faults — transient SEUs on state-holding gates, glitch
//     pulses on combinational wires, and adversarial delay schedules —
//     runtime perturbations injected into a concrete reachable state,
//     each carrying a replayable witness trace from reset.
// Campaigns are deterministic from a fixed seed and report the verifier
// kill-rate per fault class; every survivor is listed with the witness
// that reaches its injection point.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "si/netlist/netlist.hpp"
#include "si/sg/state_graph.hpp"
#include "si/verify/verifier.hpp"

namespace si::verify::fault {

enum class FaultClass : unsigned char {
    // Structural (permanent) mutations of the netlist.
    LiteralFlip,   ///< invert one AND/OR fanin polarity
    LiteralDrop,   ///< remove the last fanin of a multi-input AND/OR
    LatchSwap,     ///< swap a C-element's / RS latch's two fanins
    // Dynamic (transient) faults on the intact netlist.
    DelaySchedule, ///< adversarial gate-delay interleaving (seeded walk)
    Seu,           ///< single-event upset: flip a state-holding gate output
    Glitch,        ///< transient pulse: flip a combinational gate output
};
inline constexpr std::size_t kNumFaultClasses = 6;

[[nodiscard]] const char* to_string(FaultClass c);

// ---------------------------------------------------------------------------
// Structural mutations

struct StructuralFault {
    FaultClass cls = FaultClass::LiteralFlip;
    GateId gate;           ///< mutated gate
    std::size_t fanin = 0; ///< fanin index (LiteralFlip only)

    /// "flip literal 2 of gate 'y0_up'", for reports.
    [[nodiscard]] std::string describe(const net::Netlist& nl) const;
};

/// Every structural mutant of the netlist, in deterministic gate order:
/// one LiteralFlip per AND/OR fanin, one LiteralDrop per multi-input
/// AND/OR, one LatchSwap per C-element / RS latch.
[[nodiscard]] std::vector<StructuralFault> enumerate_structural(const net::Netlist& nl);

/// The mutated copy of `nl` (the input is never modified).
[[nodiscard]] net::Netlist apply(const net::Netlist& nl, const StructuralFault& f);

// ---------------------------------------------------------------------------
// Dynamic faults

struct DynamicOptions {
    std::uint64_t seed = 1;
    /// Injection points sampled per netlist and fault class.
    std::size_t max_sites = 32;
    /// Cap on the nominal exploration that discovers reachable states.
    std::size_t max_states = 1u << 16;
    /// Cap per post-injection verification.
    std::size_t verify_max_states = 1u << 18;
    util::Budget* budget = nullptr;
};

/// One injected dynamic fault and the verifier's verdict on it.
struct Injection {
    FaultClass cls = FaultClass::Seu;
    std::string gate; ///< perturbed gate name
    /// Actions from reset to the injection point, then the perturbation
    /// token ("seu:<gate>" or "glitch:<gate>"), then — when killed — the
    /// verifier's violating suffix. Replayable via replay_witness.
    std::vector<std::string> witness;
    bool killed = false; ///< the verifier flagged the perturbed behaviour
    std::string detail;  ///< violation summary, or why it survived
    /// Provenance: the span path of the verifier counterexample that
    /// killed the injection, or of the injection site itself for a
    /// survivor (empty for survivors when tracing is off). Kept separate
    /// from `witness` so the token vector stays replayable.
    std::string span_path;
};

/// Flips the output of a state-holding gate (C-element, RS latch, NOR)
/// in sampled reachable states and verifies onward from the perturbed
/// state. A killed injection is one whose downstream behaviour the
/// verifier rejects; a survivor is an upset the circuit masks.
[[nodiscard]] std::vector<Injection> inject_seu(const net::Netlist& nl,
                                                const sg::StateGraph& spec,
                                                const DynamicOptions& opts = {});

/// As inject_seu, but pulses combinational outputs (AND/OR/NOT/Wire).
[[nodiscard]] std::vector<Injection> inject_glitches(const net::Netlist& nl,
                                                     const sg::StateGraph& spec,
                                                     const DynamicOptions& opts = {});

/// One adversarial delay schedule: a seeded random walk over the closed
/// circuit, checking gate disabling, specification conformance and
/// deadlock at every step — a sampled interleaving where the verifier is
/// exhaustive. On a speed-independent netlist every walk is clean.
struct ScheduleResult {
    bool violation_found = false;
    std::vector<std::string> trace; ///< actions from reset (ends at the violation)
    std::string detail;             ///< violation description when found
    std::size_t steps = 0;
};
[[nodiscard]] ScheduleResult adversarial_schedule(const net::Netlist& nl,
                                                  const sg::StateGraph& spec,
                                                  std::uint64_t seed,
                                                  std::size_t max_steps = 2048);

// ---------------------------------------------------------------------------
// Witness replay

/// Outcome of replaying a witness trace against a netlist + spec pair.
struct ReplayResult {
    bool valid = false;    ///< every token was executable in sequence
    std::string error;     ///< first inexecutable token, when !valid
    /// A replayed step exhibited the anomaly the witness reported:
    /// a non-conformant firing, a disabled excited gate, or a deadlock
    /// at the end of the trace.
    bool anomaly = false;
    std::string anomaly_detail;
    BitVec final_values;
    StateId final_spec;
};

/// Re-executes a witness from reset. "+g"/"-g" fire gate or input g
/// (inputs must be spec-enabled; gates must be excited — except for the
/// non-conformant final firing a violation witness ends with);
/// "seu:g"/"glitch:g" flip g's output in place.
[[nodiscard]] ReplayResult replay_witness(const net::Netlist& nl, const sg::StateGraph& spec,
                                          std::span<const std::string> witness);

// ---------------------------------------------------------------------------
// Campaigns

struct CampaignOptions {
    std::uint64_t seed = 1;
    bool structural = true; ///< run the structural mutation sweep
    bool dynamic = true;    ///< run SEU / glitch / delay-schedule passes
    DynamicOptions dynamic_opts;      ///< seed is derived from `seed`
    std::size_t schedule_walks = 4;   ///< delay-schedule walks per mutant
    std::size_t schedule_steps = 512; ///< steps per walk
    VerifyOptions verify;             ///< for the structural mutants
};

struct ClassStats {
    std::size_t injected = 0;
    std::size_t killed = 0;
};

struct Survivor {
    FaultClass cls = FaultClass::Seu;
    std::string description;
    std::vector<std::string> witness; ///< empty for structural survivors
    /// Obs span path of the campaign stage that failed to kill the fault
    /// (empty when tracing is off); see Injection::span_path.
    std::string span_path;
};

struct CampaignReport {
    /// Indexed by static_cast<std::size_t>(FaultClass).
    std::array<ClassStats, kNumFaultClasses> per_class{};
    std::vector<Survivor> survivors;

    [[nodiscard]] std::size_t injected() const;
    [[nodiscard]] std::size_t killed() const;
    [[nodiscard]] std::string describe() const;
};

/// Runs the full deterministic campaign on one netlist/spec pair:
/// every structural mutant through the exhaustive verifier (and under
/// `schedule_walks` adversarial schedules — the DelaySchedule row counts
/// how many killed mutants a sampled interleaving alone catches), plus
/// seeded SEU and glitch injections on the intact netlist.
[[nodiscard]] CampaignReport run_campaign(const net::Netlist& nl, const sg::StateGraph& spec,
                                          const CampaignOptions& opts = {});

} // namespace si::verify::fault
