// Bounded-delay (relative-timing) verification with inertial gates.
//
// The pure speed-independence verifier assumes unbounded *pure* delays:
// any pulse propagates, and an excited gate losing its excitation is a
// hazard. Section III of the paper instead justifies explicit input
// inverters (the tech-mapped C2 netlist) with a *relative timing bound*:
// the implementation is hazard-free whenever every inverter is faster
// than a whole signal network (d_inv^max < D_sn^min). Checking that
// claim needs a different delay model:
//   * every gate g has an integer delay in [lo(g), hi(g)];
//   * gates are inertial: if the excitation disappears before the gate
//     fires, the pending pulse is cancelled (filtered), which is not by
//     itself an error;
//   * the environment is untimed (an enabled input may fire at any
//     moment, or never hurry).
// Discrete time is explored exhaustively: a composite state holds the
// gate values, the per-gate elapsed excitation ages, and the mirror
// specification state; "tick" advances time one unit (blocked while some
// gate is at its deadline), events fire instantaneously. Correctness is
// conformance (latched signals only fire when the specification allows)
// plus absence of deadlock.
#pragma once

#include <string>
#include <vector>

#include "si/netlist/netlist.hpp"
#include "si/sg/state_graph.hpp"

namespace si::verify {

struct DelayBounds {
    unsigned lo = 1;
    unsigned hi = 1;
};

struct TimedOptions {
    std::size_t max_states = 1u << 22;
};

struct TimedResult {
    bool ok = false;
    std::string violation;          ///< first conformance/deadlock witness
    std::vector<std::string> trace; ///< actions to the violation ("tick" included)
    std::size_t states_explored = 0;
    std::size_t pulses_filtered = 0; ///< inertial cancellations seen (informative)

    [[nodiscard]] std::string describe() const;
};

/// Explores all delay assignments within `bounds` (one entry per gate;
/// Input gates' bounds are ignored). Throws InternalError on a bounds
/// size mismatch.
[[nodiscard]] TimedResult verify_bounded_delay(const net::Netlist& nl,
                                               const sg::StateGraph& spec,
                                               const std::vector<DelayBounds>& bounds,
                                               const TimedOptions& opts = {});

/// Convenience: the same bound for every gate except inverters.
[[nodiscard]] std::vector<DelayBounds> uniform_bounds(const net::Netlist& nl, DelayBounds gates,
                                                      DelayBounds inverters);

} // namespace si::verify
