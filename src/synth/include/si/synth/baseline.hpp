// Baseline synthesis in the style of Beerel & Meng [2]: excitation
// functions are derived as *minimized correct covers* (Defs 13/16) with
// no Monotonous Cover discipline — several cubes may implement one
// excitation region and a cube may stretch across quiescent states of
// other regions. The paper's Examples 1 and 2 show exactly where this
// baseline produces unacknowledged AND gates; our verifier exhibits the
// hazard on the resulting netlists.
#pragma once

#include <vector>

#include "si/netlist/builder.hpp"
#include "si/sg/regions.hpp"

namespace si::synth {

/// Derives one network per non-input signal: the up (down) function is a
/// two-level minimization of the exact excitation onset, with the
/// quiescent-after set as don't-care. No MC conditions are checked.
[[nodiscard]] std::vector<net::SignalNetwork> derive_baseline_networks(
    const sg::RegionAnalysis& ra);

} // namespace si::synth
