// Top-level synthesis procedure (Section V):
//   1. analyze regions of the (output semi-modular) state graph;
//   2. search MC cubes per excitation region (Def 18);
//   3. while some region has none, insert a state signal repairing the
//      worst violation (SAT labeling + expansion + re-validation);
//   4. build the standard C- or RS-implementation from the cubes,
//      optionally sharing AND gates under the generalized MC condition;
//   5. optionally verify the netlist speed-independent against the
//      (transformed) state graph.
#pragma once

#include <string>
#include <vector>

#include "si/mc/requirement.hpp"
#include "si/netlist/builder.hpp"
#include "si/sg/state_graph.hpp"
#include "si/synth/insertion.hpp"
#include "si/synth/sharing.hpp"
#include "si/util/budget.hpp"
#include "si/verify/verifier.hpp"

namespace si::synth {

struct SynthOptions {
    net::BuildOptions build;              ///< architecture / degenerate simplifications
    bool enable_sharing = false;          ///< Section VI generalized-MC gate sharing
    /// Quotient the input graph by bisimulation first (merges duplicate
    /// states composition tends to create; never changes behaviour).
    bool minimize_graph = false;
    bool verify_result = false;           ///< run the SI verifier on the netlist
    std::size_t max_inserted_signals = 8; ///< cascade cap for the repair loop
    /// Branch-and-bound rounds explored by the insertion driver (each
    /// round analyzes one candidate graph; stage "synth.bnb").
    std::size_t max_search_nodes = 500;
    InsertionOptions insertion;
    mc::McCubeSearch cube_search;
    std::string inserted_prefix = "csc"; ///< inserted signals: csc0, csc1, ...
};

struct SynthesisResult {
    sg::StateGraph graph;                  ///< final (possibly expanded) state graph
    std::vector<std::string> inserted;     ///< names of state signals added
    mc::McReport mc;                       ///< satisfied MC report on `graph`
    std::vector<net::SignalNetwork> networks;
    net::Netlist netlist;
    SharingStats sharing;
    verify::VerifyResult verification;     ///< populated when verify_result is set

    [[nodiscard]] std::string summary() const;
};

/// Runs the full flow under an optional caller-shared budget (threaded
/// into the branch-and-bound driver as stage "synth.bnb", the SAT-driven
/// insertion below it, and the final verification). Returns
/// Outcome::exhausted — naming the stage and the resource that ran out —
/// when the search was cut short before any MC completion was found;
/// genuine impossibility (the search space was exhausted with budget to
/// spare) still throws SynthesisError, and a malformed or non-semi-modular
/// input still throws SpecError.
[[nodiscard]] util::Outcome<SynthesisResult> synthesize_outcome(const sg::StateGraph& spec,
                                                                const SynthOptions& opts = {},
                                                                util::Budget* budget = nullptr);

/// Runs the full flow. Throws SpecError when the input graph is not
/// output semi-modular (not implementable speed-independently at all) or
/// SynthesisError when the repair loop cannot reach MC form within the
/// configured budget (including budget exhaustion — use
/// synthesize_outcome to tell the two apart).
[[nodiscard]] SynthesisResult synthesize(const sg::StateGraph& spec,
                                         const SynthOptions& opts = {});

} // namespace si::synth
