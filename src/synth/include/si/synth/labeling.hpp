// Four-valued state labelings for signal insertion (Section V).
//
// Following the generalized state assignment framework of Vanbekbergen
// et al. [11], a new internal signal x is described by giving every
// state of the graph one of four labels — x stable at 0, stable at 1,
// rising (excited to 1) or falling — and then *expanding* the graph:
// a rising state s becomes the pair (s,0) --x+--> (s,1), and each
// original arc survives in the slices where both endpoints exist.
#pragma once

#include <string>
#include <vector>

#include "si/sg/state_graph.hpp"

namespace si::synth {

enum class XLabel : unsigned char {
    Zero, ///< x = 0, stable
    One,  ///< x = 1, stable
    Rise, ///< x = 0 and excited: the state splits, x+ fires inside it
    Fall, ///< x = 1 and excited: the state splits, x- fires inside it
};

/// x's value in the slice(s) a label creates at x's "pre" side.
[[nodiscard]] constexpr bool label_value(XLabel l) {
    return l == XLabel::One || l == XLabel::Fall;
}

/// True if the pair (label(s), label(t)) is a legal transition of the
/// label along a graph arc (the [11]-style next-state relation):
/// Zero→{Zero,Rise,Fall}, Rise→{Rise,One}, One→{One,Fall,Rise},
/// Fall→{Fall,Zero}. The cross pairs Zero→Fall and One→Rise survive in
/// the single slice whose x value matches the source.
[[nodiscard]] bool labels_compatible(XLabel s, XLabel t);

/// Expands `sg` with a new internal signal named `name` according to the
/// per-state labeling. Throws SpecError when the labeling violates the
/// next-state relation (no arcs would survive between two states).
[[nodiscard]] sg::StateGraph expand_with_signal(const sg::StateGraph& sg,
                                                const std::vector<XLabel>& labels,
                                                const std::string& name,
                                                SignalKind kind = SignalKind::Internal);

} // namespace si::synth
