// si::synth::spec — the percy-style exact insertion engine.
//
// The legacy insertion loop (insertion.cpp) enumerates SAT models in
// solver order, validates every one behaviourally, and stops at a global
// attempt cap — on the hard two-signal instances it examines a thousand
// models whose ~70µs validations dominate the synthesis wall time. The
// spec engine replaces that with three measured ideas:
//
//  1. One incremental encoding per candidate signal. Tiers (the cross
//     next-state pairs) and cardinality layers are assumption literals,
//     never re-encodings; learnt clauses, variable activity and saved
//     phases persist across every probe, and consecutive solves share
//     their assumption-prefix trail (sat::Solver).
//
//  2. Canonical model enumeration, stratified by switching count. A
//     sequential counter over per-state "x switches here" variables lets
//     an AtMost(k) assumption select the layer; layers are explored in
//     increasing k, so models arrive ordered by expansion size (n + k
//     states) and the first complete repair found is a smallest one.
//     Within a layer each model is the *lexicographically minimal* one
//     (state-major, Zero < One < Rise < Fall), computed by committing one
//     state's label at a time under assumptions. Canonical order is what
//     makes every engine configuration — eager or CEGAR, any solver
//     seed, any racer — produce byte-identical insertion streams, and it
//     is why early stopping is sound: all engines truncate the same
//     stream at the same place.
//
//  3. CEGAR. The Cegar encoding starts from a skeleton (one-hot labels,
//     switching counter, x-must-switch, some-plan-chosen) and keeps the
//     arc next-state clauses and the per-plan Def-17 repair clauses lazy:
//     each candidate model is checked against the full clause list in
//     plain code, violated clauses are added, and the model is re-drawn.
//     At the fixpoint the model satisfies every clause of the eager
//     encoding, and a lex-min model of a clause subset that satisfies the
//     full set is the full set's lex-min model — so Cegar lands on
//     exactly the Eager stream, usually after far fewer constraints.
//
// Portfolio mode (spec_insert_candidates with InsertEngine::Portfolio)
// races a fixed list of (encoding, seed) configurations over the global
// thread pool. Because every racer computes the same byte-identical
// result, the physically first deterministic completion can win the race
// outright: it publishes its result, raises a cancellation flag, and the
// losers' partially-consumed budget shards are simply dropped (absorb is
// the only commit point, so their headroom returns to the parent). See
// DESIGN.md §8 for the determinism rules.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "si/synth/insertion.hpp"

namespace si::synth {

/// How the spec engine builds its clause database.
enum class SpecEncoding : unsigned char {
    Eager, ///< all constraint clauses added up front
    Cegar, ///< skeleton only; arc/plan clauses added on refutation
};

/// Per-run effort report. The stream-level fields are identical for
/// every encoding and seed (they are functions of the canonical model
/// stream); the solver-level fields are deterministic for a fixed
/// (encoding, seed) but differ across configurations — portfolio mode
/// therefore exports them as diagnostic, not stable, metrics.
struct SpecStats {
    // Stream-level (byte-identical across engine configurations).
    std::size_t attempts = 0;    ///< candidate models validated
    std::size_t accepted = 0;    ///< models accepted as partial/complete repairs
    std::size_t layers = 0;      ///< cardinality layers entered
    bool complete = false;       ///< a complete repair was found
    // Solver-level (deterministic per configuration only).
    std::size_t sat_calls = 0;   ///< solve() invocations incl. lex-min probes
    std::size_t refinements = 0; ///< lazy clauses added by CEGAR refutation
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t restarts = 0;
};

/// Why a spec run returned.
enum class SpecStatus : unsigned char {
    Done,      ///< search ran to its deterministic early-stop
    Exhausted, ///< an attempt/conflict budget tripped mid-stream
    Cancelled, ///< the cancellation flag was raised (losing racer)
};

struct SpecResult {
    std::vector<InsertionOutcome> outcomes;
    SpecStats stats;
    SpecStatus status = SpecStatus::Done;
};

/// Runs one spec-engine configuration to completion. `budget` may be
/// null; `cancel` (may be null) is polled between models and inside the
/// solver — when raised, the run returns SpecStatus::Cancelled. Exposed
/// separately from spec_insert_candidates so the differential tests can
/// drive a single encoding/seed directly.
[[nodiscard]] SpecResult run_spec_engine(const sg::RegionAnalysis& ra,
                                         std::span<const RegionId> victims,
                                         const std::string& signal_name,
                                         std::size_t max_candidates,
                                         const InsertionOptions& opts, SpecEncoding encoding,
                                         std::uint64_t seed, util::Budget* budget,
                                         const std::atomic<bool>* cancel = nullptr);

/// The spec-engine entry point behind insert_signal_candidates for the
/// non-legacy engines: dispatches Eager/Cegar to a single run and
/// Portfolio to the racer fan-out, and exports the synth.spec.* metrics.
[[nodiscard]] std::vector<InsertionOutcome> spec_insert_candidates(
    const sg::RegionAnalysis& ra, std::span<const RegionId> victims,
    const std::string& signal_name, std::size_t max_candidates, const InsertionOptions& opts);

} // namespace si::synth
