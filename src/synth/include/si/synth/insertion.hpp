// SAT-driven state-signal insertion to repair Monotonous Cover
// violations (Sections V and VII).
//
// Given an excitation region with no monotonous cover, we look for a
// labeling of the state graph with a new internal signal x such that:
//   * labels respect the next-state relation along every arc;
//   * inputs are never delayed by x (input-properness: an input arc may
//     not cross Rise→One or Fall→Zero);
//   * x is persistent (built into the next-state relation);
//   * the victim region's transition is pushed behind x (its ER states
//     carry x's active value; its firing arcs land on that value), and
//     every offending state — a state the region's smallest cover cube
//     wrongly reaches — carries the opposite stable value, so that x's
//     literal repairs the cover.
// The constraints go to the CDCL solver; each model is expanded and
// fully re-validated (consistency, output semi-modularity,
// distributivity, MC progress). Rejected models are blocked and the
// solver re-queried — a small CEGAR loop, standing in for the Boolean
// constraint formulation the paper reports in Section VII.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "si/mc/requirement.hpp"
#include "si/sg/regions.hpp"
#include "si/synth/labeling.hpp"
#include "si/util/budget.hpp"

namespace si::synth {

/// Which insertion engine answers insert_signal_candidates.
///
///  * Legacy    — the original encode-and-block loop over four assumption
///                tiers; kept verbatim as the perf-ladder baseline.
///  * Eager     — the spec engine (si/synth/spec.hpp): full eager
///                encoding, incremental canonical (lex-min) model
///                enumeration stratified by switching-state count.
///  * Cegar     — the spec engine starting from a skeleton encoding and
///                lazily adding only the constraint clauses each candidate
///                model violates. Chooses byte-identical insertions to
///                Eager (same canonical model stream).
///  * Portfolio — races Eager/Cegar × solver seeds across the thread
///                pool; the first deterministic completion wins and the
///                losers are cancelled. Byte-identical to Eager/Cegar.
enum class InsertEngine : unsigned char { Legacy, Eager, Cegar, Portfolio };

[[nodiscard]] const char* to_string(InsertEngine e);

struct InsertionOptions {
    /// Maximum SAT models examined across the search tiers.
    std::size_t max_attempts = 1024;
    /// Conflict budget per SAT call (0 = unlimited).
    std::uint64_t sat_conflict_budget = 200000;
    /// Shared governance budget (stage "synth.insert"/"synth.spec"):
    /// every model examined charges one Attempts unit, and the SAT solver
    /// charges Conflicts. When the shared budget is exhausted the search
    /// stops across all tiers; with only the per-call caps above, an
    /// Unknown SAT verdict merely advances to the next tier as before.
    util::Budget* budget = nullptr;
    /// Engine choice (spec engines only consult the fields below).
    InsertEngine engine = InsertEngine::Eager;
    /// Solver perturbation seed (see sat::Solver::set_seed). The spec
    /// engines' canonical enumeration makes the chosen insertions
    /// seed-invariant; the seed only moves solver effort around.
    std::uint64_t seed = 0;
    /// The spec engine explores switching-count layers k = 2, 3, ... and
    /// keeps layering until `layer_slack` layers beyond the first layer
    /// that produced a useful model (a complete repair always stops
    /// immediately).
    std::size_t layer_slack = 1;
    /// Give up after this many examined models without any useful one —
    /// the deterministic lid on dead-end recursion nodes, where
    /// enumerating every rejected labeling up to max_attempts would
    /// multiply across the synthesis driver's branch tree. Counted in
    /// attempts, not layers: unsatisfiable layers cost one SAT call
    /// each, so deep-but-sparse streams (repairs needing many switching
    /// states) still get reached, while model-dense dead ends stop
    /// cheaply.
    std::size_t barren_attempts = 128;
    /// Racer count for InsertEngine::Portfolio (configs cycle through
    /// Eager/Cegar × distinct seeds; fixed list, independent of the
    /// worker count, so results never depend on parallelism).
    std::size_t portfolio_racers = 4;
};

struct InsertionOutcome {
    sg::StateGraph graph;        ///< expanded graph with the new signal
    std::vector<XLabel> labels;  ///< the accepted labeling
    std::string signal_name;
    std::size_t attempts = 0;    ///< models examined (including rejected)
};

/// Offending states of a failed region: everything the smallest cover
/// cube reaches that an MC cube must exclude — covered states outside
/// the CFR, and covered quiescent states reachable (within the CFR)
/// after the cube has gone to 0 (the re-rises behind condition 2).
[[nodiscard]] std::vector<StateId> offending_states(const sg::RegionAnalysis& ra, RegionId victim);

/// Tries to insert one signal repairing every region in `victims` at
/// once (each victim gets its own polarity selector). Returns nullopt
/// when the constraints are unsatisfiable or every model was rejected —
/// callers then retry with smaller victim sets.
[[nodiscard]] std::optional<InsertionOutcome> insert_signal_for(
    const sg::RegionAnalysis& ra, std::span<const RegionId> victims,
    const std::string& signal_name, const InsertionOptions& opts = {});

/// As insert_signal_for, but returns up to `max_candidates` distinct
/// admissible insertions ordered by quality (fewest remaining
/// violations, then smallest expansion). The synthesis driver explores
/// these as branches when minimizing the number of inserted signals.
[[nodiscard]] std::vector<InsertionOutcome> insert_signal_candidates(
    const sg::RegionAnalysis& ra, std::span<const RegionId> victims,
    const std::string& signal_name, std::size_t max_candidates,
    const InsertionOptions& opts = {});

} // namespace si::synth
