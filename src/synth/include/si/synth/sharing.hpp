// Section VI optimization: AND-gate sharing under the generalized MC
// requirement (Def 19, Theorem 5).
//
// After each excitation region has its own MC cube, cubes of different
// regions may be merged into one shared cube (their supercube) when that
// supercube is a generalized monotonous cover for the region set — then
// one AND gate implements several region functions, possibly across
// signal networks.
#pragma once

#include <vector>

#include "si/mc/requirement.hpp"
#include "si/netlist/builder.hpp"

namespace si::synth {

struct SharingStats {
    std::size_t merges = 0;          ///< region pairs folded together
    std::size_t cubes_before = 0;    ///< distinct cubes before merging
    std::size_t cubes_after = 0;
};

/// Builds the per-signal networks from an MC report, then greedily merges
/// region cubes pairwise (never two regions of opposite polarity of the
/// same signal — they would drive set and reset at once). Each merge is
/// validated with check_generalized_mc over the grown region group.
/// With `enable == false` the networks are returned unmerged.
[[nodiscard]] std::vector<net::SignalNetwork> build_networks(const sg::RegionAnalysis& ra,
                                                             const mc::McReport& report,
                                                             bool enable_sharing,
                                                             SharingStats* stats = nullptr);

} // namespace si::synth
