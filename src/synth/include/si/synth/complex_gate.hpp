// The complex-gate methodology the paper departs from (Chu [3]): each
// non-input signal is one atomic gate computing its next-state function
// next(a) = S(a) + a·R(a)', assumed hazard-free internally. Complete
// State Coding is necessary and sufficient for this implementation to
// exist; no Monotonous Cover discipline (and no state-signal insertion
// beyond CSC) is involved. Provided as a comparator: specifications like
// the paper's Figure 1 are complex-gate implementable as-is, but their
// next-state functions are "too complex to have single complex gate
// implementations from a standard library" — which is the problem the
// paper's basic-gate architecture solves.
#pragma once

#include "si/netlist/netlist.hpp"
#include "si/sg/regions.hpp"

namespace si::synth {

/// Builds the complex-gate implementation: one Input gate per input, one
/// atomic Complex gate per non-input, whose SOP is the two-level
/// minimized next-state function. Throws SynthesisError when the graph
/// violates CSC (then no next-state function exists).
[[nodiscard]] net::Netlist build_complex_gate_implementation(const sg::RegionAnalysis& ra);

} // namespace si::synth
