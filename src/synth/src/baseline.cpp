#include "si/synth/baseline.hpp"

#include "si/boolean/minimize.hpp"
#include "si/util/parallel.hpp"

namespace si::synth {

std::vector<net::SignalNetwork> derive_baseline_networks(const sg::RegionAnalysis& ra) {
    const auto& graph = ra.graph();
    // Each non-input signal's two-level minimization is independent of
    // the others; fan them out and collect in signal order.
    std::vector<SignalId> targets;
    for (std::size_t vi = 0; vi < graph.num_signals(); ++vi)
        if (is_non_input(graph.signals()[SignalId(vi)].kind)) targets.push_back(SignalId(vi));

    return util::parallel_map(targets, [&](SignalId v) {
        net::SignalNetwork network;
        network.signal = v;

        auto half = [&](bool up) {
            // Onset: minterms of every state where the transition is
            // excited; don't-care: the stable states after it (Def 13
            // leaves the function free there).
            Cover onset(graph.num_signals());
            Cover dc(graph.num_signals());
            const BitVec& one = up ? ra.set_excited0(v) : ra.set_excited1(v);
            const BitVec& free = up ? ra.set_stable1(v) : ra.set_stable0(v);
            one.for_each_set([&](std::size_t si) {
                onset.add(Cube::minterm(graph.state(StateId(si)).code));
            });
            free.for_each_set([&](std::size_t si) {
                dc.add(Cube::minterm(graph.state(StateId(si)).code));
            });
            return minimize(onset, dc).cubes();
        };
        network.up_cubes = half(true);
        network.down_cubes = half(false);
        return network;
    });
}

} // namespace si::synth
