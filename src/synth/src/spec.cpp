// The spec insertion engine: incremental encoding, canonical (lex-min)
// model enumeration stratified by switching count, optional CEGAR clause
// laziness, and the portfolio racer. See si/synth/spec.hpp for the
// design contract and DESIGN.md §8 for the determinism argument.
#include "si/synth/spec.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "insertion_oracle.hpp"
#include "si/obs/live.hpp"
#include "si/obs/obs.hpp"
#include "si/sat/solver.hpp"
#include "si/synth/labeling.hpp"
#include "si/util/error.hpp"
#include "si/util/parallel.hpp"

namespace si::synth {

const char* to_string(InsertEngine e) {
    switch (e) {
        case InsertEngine::Legacy: return "legacy";
        case InsertEngine::Eager: return "eager";
        case InsertEngine::Cegar: return "cegar";
        case InsertEngine::Portfolio: return "portfolio";
    }
    return "?";
}

namespace {

using sat::Lit;
using sat::neg;
using sat::pos;
using sat::Var;

constexpr int kZero = 0, kOne = 1, kRise = 2, kFall = 3;

/// Largest bounded cardinality layer; beyond it one unbounded catch-all
/// stage enumerates whatever the blocked stream has left. Counter
/// columns cost n variables each, so the cap also bounds encoding size.
constexpr std::size_t kMaxLayerCap = 32;

class Engine {
public:
    Engine(const sg::RegionAnalysis& ra, std::span<const RegionId> victims,
           const std::string& signal_name, std::size_t max_candidates,
           const InsertionOptions& opts, SpecEncoding enc, std::uint64_t seed,
           util::Budget* budget, const std::atomic<bool>* cancel)
        : ra_(ra),
          graph_(ra.graph()),
          victims_(victims),
          name_(signal_name),
          max_candidates_(max_candidates),
          opts_(opts),
          enc_(enc),
          budget_(budget),
          cancel_(cancel),
          n_(graph_.num_states()),
          meter_("synth.spec", budget) {
        meter_.local().cap(util::Resource::Attempts, opts.max_attempts);
        solver_.set_conflict_budget(opts.sat_conflict_budget);
        solver_.set_budget(budget);
        solver_.set_cancel(cancel);
        old_names_ = graph_.signals().names();
        before_ = detail::count_violations(graph_, old_names_, /*serial_mc=*/true);
        cur_.resize(n_, kZero);
        encode();
        solver_.set_seed(seed);
    }

    SpecResult run() {
        if (!feasible_) return finish();
        // Lower-bound the first non-empty layer by binary search before
        // climbing: on specs whose smallest repair switches in many
        // states, walking up one layer at a time pays a fresh cardinality
        // Unsat proof per step — log2 probes replace all of them. Layer
        // feasibility is a property of the full constraint set (the
        // CEGAR probe refines to a fixpoint before trusting Sat), so
        // every engine configuration starts at the same layer and the
        // canonical model stream — empty layers contribute nothing — is
        // unchanged.
        std::size_t start = max_width(); // catch-all when every bounded layer is empty
        {
            std::size_t lo = 2, hi = max_width() >= 1 ? max_width() - 1 : 0;
            while (lo <= hi && hi >= 2) {
                const std::size_t mid = lo + (hi - lo) / 2;
                ensure_counter(mid);
                const sat::Result r = feasible_probe(neg(count_ge_[mid]));
                if (r == sat::Result::Unknown) {
                    status_ = solver_.cancelled() ? SpecStatus::Cancelled
                                                  : SpecStatus::Exhausted;
                    return finish();
                }
                if (r == sat::Result::Sat) {
                    start = mid;
                    if (mid == 2) break;
                    hi = mid - 1;
                } else {
                    lo = mid + 1;
                }
            }
        }
        for (layer_ = start;; ++layer_) {
            ++stats_.layers;
            const bool catch_all = layer_ >= max_width();
            if (!catch_all) ensure_counter(layer_);
            for (int tier = 0; tier < 2; ++tier) {
                base_.clear();
                base_.push_back(tier == 0 ? neg(cross_) : pos(cross_));
                if (!catch_all) base_.push_back(neg(count_ge_[layer_]));
                warm_ = false; // prefix reuse is only sound under unchanged base_
                if (!drain()) return finish();
            }
            if (catch_all) break; // the unbounded stage saw the whole stream
            if (accepted_.size() >= max_candidates_) break;
            if (first_accept_layer_ != 0 && layer_ >= first_accept_layer_ + opts_.layer_slack)
                break;
        }
        status_ = SpecStatus::Done;
        return finish();
    }

private:
    struct Scored {
        InsertionOutcome outcome;
        std::size_t total = 0;
    };
    enum class Acceptance { Rejected, Partial, Complete };

    [[nodiscard]] std::size_t max_width() const { return std::min(n_, kMaxLayerCap); }

    /// Adds a constraint clause eagerly, or records it for refutation-
    /// driven addition when the encoding is Cegar.
    void lazy_clause(std::initializer_list<Lit> lits) {
        if (enc_ == SpecEncoding::Eager) {
            solver_.add_clause(lits);
            return;
        }
        lazy_.emplace_back(lits.begin(), lits.end());
        lazy_added_.push_back(false);
    }

    void encode() {
        // One-hot label variables per state. Always skeleton: the label
        // projection must be well-defined on every candidate model.
        L_.resize(n_);
        for (std::size_t s = 0; s < n_; ++s)
            for (auto& v : L_[s]) v = solver_.new_var();
        for (std::size_t s = 0; s < n_; ++s) {
            const std::array<Lit, 4> lits{pos(L_[s][0]), pos(L_[s][1]), pos(L_[s][2]),
                                          pos(L_[s][3])};
            solver_.add_clause(std::span<const Lit>(lits.data(), 4));
            solver_.add_at_most_one(std::span<const Lit>(lits.data(), 4));
        }

        // Next-state relation along every arc — clause shapes exactly as
        // in the legacy engine (insertion.cpp), with the Zero→Fall /
        // One→Rise cross pairs behind the `cross` tier guard. Always part
        // of the skeleton, even under Cegar: they are cheap local
        // constraints that prune the label space by orders of magnitude,
        // and without them the lex-min probes on wide product graphs
        // wander an almost unconstrained space until a single
        // cardinality-vs-blocking Unsat proof blows the whole per-call
        // conflict budget.
        cross_ = solver_.new_var();
        for (const auto& a : graph_.arcs()) {
            const auto& S = L_[a.from.index()];
            const auto& T = L_[a.to.index()];
            solver_.add_clause({neg(S[kZero]), pos(T[kZero]), pos(T[kRise]), pos(T[kFall])});
            solver_.add_clause({neg(S[kOne]), pos(T[kOne]), pos(T[kFall]), pos(T[kRise])});
            solver_.add_clause({pos(cross_), neg(S[kZero]), pos(T[kZero]), pos(T[kRise])});
            solver_.add_clause({pos(cross_), neg(S[kOne]), pos(T[kOne]), pos(T[kFall])});
            if (graph_.signals()[a.signal].kind == SignalKind::Input) {
                solver_.add_clause({neg(S[kRise]), pos(T[kRise])});
                solver_.add_clause({neg(S[kFall]), pos(T[kFall])});
            } else {
                solver_.add_clause({neg(S[kRise]), pos(T[kRise]), pos(T[kOne])});
                solver_.add_clause({neg(S[kFall]), pos(T[kFall]), pos(T[kZero])});
            }
        }

        // Repair plans per victim (private / sibling-group cubes), each
        // behind a selector. The plan constraint clauses are the prime
        // CEGAR candidates: most models violate only a handful of them.
        std::vector<Lit> all_selectors;
        for (const RegionId victim : victims_) {
            std::vector<detail::RepairPlan> plans;
            plans.push_back(detail::private_plan(ra_, victim));
            if (auto gp = detail::group_plan(ra_, victim)) plans.push_back(std::move(*gp));
            for (const auto& plan : plans) {
                if (!detail::plan_feasible(ra_, plan)) continue;
                const Var m = solver_.new_var();   // this plan is chosen
                const Var pol = solver_.new_var(); // x high across the plan's regions
                all_selectors.push_back(pos(m));
                for (const RegionId rid : plan.regions) {
                    const auto& region = ra_.region(rid);
                    region.states.for_each_set([&](std::size_t s) {
                        lazy_clause({neg(m), neg(pol), pos(L_[s][kRise]), pos(L_[s][kOne])});
                        lazy_clause({neg(m), pos(pol), pos(L_[s][kFall]), pos(L_[s][kZero])});
                        const auto arc = graph_.arc_on(StateId(s), region.signal);
                        if (arc != UINT32_MAX) {
                            const std::size_t t = graph_.arc(arc).to.index();
                            lazy_clause(
                                {neg(m), neg(pol), neg(L_[s][kRise]), pos(L_[t][kOne])});
                            lazy_clause(
                                {neg(m), pos(pol), neg(L_[s][kFall]), pos(L_[t][kZero])});
                        }
                    });
                }
                for (const StateId o : plan.offending) {
                    lazy_clause({neg(m), neg(pol), pos(L_[o.index()][kZero]),
                                 pos(L_[o.index()][kFall])});
                    lazy_clause({neg(m), pos(pol), pos(L_[o.index()][kOne]),
                                 pos(L_[o.index()][kRise])});
                }
            }
        }
        if (all_selectors.empty()) {
            feasible_ = false;
            return;
        }
        // Skeleton: some plan must be chosen, x must really switch —
        // without these even the skeleton's models would be vacuous and
        // CEGAR would crawl through them one refutation at a time.
        solver_.add_clause(std::span<const Lit>(all_selectors.data(), all_selectors.size()));
        {
            std::vector<Lit> rises, falls;
            for (std::size_t s = 0; s < n_; ++s) {
                rises.push_back(pos(L_[s][kRise]));
                falls.push_back(pos(L_[s][kFall]));
            }
            solver_.add_clause(std::span<const Lit>(rises.data(), rises.size()));
            solver_.add_clause(std::span<const Lit>(falls.data(), falls.size()));
        }

        // Switching indicators feeding the cardinality counter: w_s holds
        // exactly when state s is a Rise or Fall state. Skeleton — the
        // layer assumptions are meaningless without them.
        w_.resize(n_);
        for (std::size_t s = 0; s < n_; ++s) {
            w_[s] = solver_.new_var();
            solver_.add_clause({neg(L_[s][kRise]), pos(w_[s])});
            solver_.add_clause({neg(L_[s][kFall]), pos(w_[s])});
            solver_.add_clause({neg(w_[s]), pos(L_[s][kRise]), pos(L_[s][kFall])});
        }
    }

    /// Sequential-counter columns 0..k (lazily: a run that stops at layer
    /// 3 never pays for column 20). Column j, variable col[i], encodes
    /// "at least j+1 of w_0..w_i are true" — implication in that
    /// direction only, which is all AtMost needs: assuming
    /// ¬count_ge_[k] makes any k+1 true w's propagate a conflict.
    void ensure_counter(std::size_t k) {
        while (cols_.size() <= k) {
            const std::size_t j = cols_.size();
            std::vector<Var> col(n_);
            for (auto& v : col) v = solver_.new_var();
            for (std::size_t i = 0; i < n_; ++i) {
                if (i > 0) solver_.add_clause({neg(col[i - 1]), pos(col[i])});
                if (j == 0)
                    solver_.add_clause({neg(w_[i]), pos(col[i])});
                else if (i > 0)
                    solver_.add_clause({neg(cols_[j - 1][i - 1]), neg(w_[i]), pos(col[i])});
            }
            count_ge_.push_back(col[n_ - 1]);
            cols_.push_back(std::move(col));
        }
    }

    /// One solver call plus effort bookkeeping.
    [[nodiscard]] sat::Result probe(std::span<const Lit> assumptions) {
        const sat::Result r = solver_.solve(assumptions);
        ++stats_.sat_calls;
        const sat::SolveStats& st = solver_.last_stats();
        stats_.conflicts += st.conflicts;
        stats_.decisions += st.decisions;
        stats_.propagations += st.propagations;
        stats_.restarts += st.restarts;
        return r;
    }

    /// Satisfiability of the *full* constraint set under one assumption —
    /// under Cegar a bare Sat only certifies the skeleton, so refine and
    /// re-probe until the model survives (or the layer proves empty).
    /// Both encodings therefore answer feasibility questions identically,
    /// which is what keeps the binary-searched start layer shared.
    [[nodiscard]] sat::Result feasible_probe(Lit assumption) {
        const std::array<Lit, 1> assumps{assumption};
        for (;;) {
            const sat::Result r = probe(std::span<const Lit>(assumps.data(), 1));
            if (r != sat::Result::Sat) return r;
            if (enc_ == SpecEncoding::Eager) return r;
            snapshot();
            if (!refine()) return r;
        }
    }

    /// Full-model snapshot. solve() == Sat guarantees a total assignment
    /// (branching runs until no variable is unassigned), and the solver
    /// keeps no separate model store — an Unsat probe destroys the
    /// assignment, so everything the engine needs is copied out here.
    void snapshot() {
        model_.resize(solver_.num_vars());
        for (Var v = 0; v < model_.size(); ++v) model_[v] = solver_.model_value(v);
        for (std::size_t s = 0; s < n_; ++s)
            for (int k = 0; k < 4; ++k)
                if (model_[L_[s][k]]) cur_[s] = k;
    }

    /// Computes the lexicographically minimal model under base_
    /// (state-major; Zero < One < Rise < Fall): for each state in order,
    /// probe every strictly smaller label under the committed prefix —
    /// the first Sat probe commits the smaller label, all-Unsat commits
    /// the current one (the snapshot itself is the witness, no extra
    /// solve needed). Consecutive probes share their assumption prefix,
    /// so each one costs a short trail extension, not a fresh search.
    [[nodiscard]] sat::Result lex_min() {
        if (!warm_) {
            const sat::Result r = probe(base_);
            if (r != sat::Result::Sat) return r;
            snapshot();
            assumps_.assign(base_.begin(), base_.end());
            return commit_tail(0, 0);
        }
        // Warm restart. Since prev_ was committed as the lex-min under
        // this very base_, the clause database has only grown (a blocking
        // clause, or CEGAR refinements), so the next lex-min model agrees
        // with prev_ on a prefix and exceeds it at the first divergence —
        // and every label the old commit loop refuted stays refuted.
        // Binary-search the longest still-feasible committed prefix
        // instead of re-proving all of it one state at a time.
        long best = -1;
        long lo = 0, hi = static_cast<long>(n_) - 1;
        while (lo <= hi) {
            const long mid = lo + (hi - lo + 1) / 2;
            assumps_.assign(base_.begin(), base_.end());
            for (long s = 0; s < mid; ++s) assumps_.push_back(pos(L_[s][prev_[s]]));
            const sat::Result r = probe(assumps_);
            if (r == sat::Result::Unknown) return r;
            if (r == sat::Result::Sat) {
                snapshot();
                best = mid;
                lo = mid + 1;
            } else {
                hi = mid - 1;
            }
        }
        if (best < 0) return sat::Result::Unsat; // even base_ alone has no model
        // States before the divergence keep their committed labels; the
        // divergence state needs only labels above prev_'s probed (all
        // smaller ones were already refuted when prev_ was committed, and
        // prev_'s own label is what the binary search just refuted).
        assumps_.assign(base_.begin(), base_.end());
        for (long s = 0; s < best; ++s) assumps_.push_back(pos(L_[s][prev_[s]]));
        return commit_tail(static_cast<std::size_t>(best), prev_[best] + 1);
    }

    /// The lex-min commit loop from state s0 on, given assumps_ already
    /// holding base_ plus the committed labels of states before s0 and a
    /// snapshot model consistent with them. `floor0` is the smallest
    /// label worth probing at s0 itself (0 on the cold path).
    [[nodiscard]] sat::Result commit_tail(std::size_t s0, int floor0) {
        for (std::size_t s = s0; s < n_; ++s) {
            for (int k = s == s0 ? floor0 : 0; k < cur_[s]; ++k) {
                assumps_.push_back(pos(L_[s][k]));
                const sat::Result pr = probe(assumps_);
                assumps_.pop_back();
                if (pr == sat::Result::Sat) {
                    snapshot();
                    break;
                }
                if (pr == sat::Result::Unknown) return pr;
            }
            assumps_.push_back(pos(L_[s][cur_[s]]));
        }
        return sat::Result::Sat;
    }

    /// CEGAR refutation: evaluates every not-yet-added lazy clause
    /// against the snapshot and adds the violated ones. True when the
    /// model was refuted (caller re-draws).
    bool refine() {
        std::size_t added = 0;
        for (std::size_t c = 0; c < lazy_.size(); ++c) {
            if (lazy_added_[c]) continue;
            bool satisfied = false;
            for (const Lit l : lazy_[c])
                satisfied = satisfied || (model_[l.var()] != l.negative());
            if (satisfied) continue;
            lazy_added_[c] = true;
            solver_.add_clause(std::span<const Lit>(lazy_[c].data(), lazy_[c].size()));
            ++added;
        }
        stats_.refinements += added;
        return added > 0;
    }

    /// The next canonical model of the *full* constraint set: lex-min of
    /// the current clause database, refined to a fixpoint under Cegar. A
    /// lex-min model of the clause subset that also satisfies the full
    /// set is the full set's lex-min model, so the fixpoint lands on
    /// exactly the eager stream.
    [[nodiscard]] sat::Result next_model() {
        for (;;) {
            const sat::Result r = lex_min();
            if (r != sat::Result::Sat) return r;
            if (enc_ == SpecEncoding::Cegar && refine()) {
                prev_ = cur_; // refuted lex-min: the next one lies above it
                warm_ = true;
                continue;
            }
            return sat::Result::Sat;
        }
    }

    /// Blocks the committed label projection (label literals only, so
    /// every encoding blocks the identical clause — the stream stays
    /// shared). Auxiliary variables are left free: a different plan
    /// choice over the same labeling is the same insertion.
    void block_model() {
        std::vector<Lit> block;
        block.reserve(n_);
        for (std::size_t s = 0; s < n_; ++s) block.push_back(neg(L_[s][cur_[s]]));
        solver_.add_clause(std::span<const Lit>(block.data(), block.size()));
        prev_ = cur_; // the stream's next model lies strictly above this one
        warm_ = true;
    }

    /// Behavioural acceptance — the same oracle as the legacy engine
    /// (insertion_oracle.hpp), with serial MC so portfolio racers don't
    /// contend for the pool.
    Acceptance validate() {
        std::vector<XLabel> labels(n_, XLabel::Zero);
        for (std::size_t s = 0; s < n_; ++s) {
            if (cur_[s] == kOne) labels[s] = XLabel::One;
            else if (cur_[s] == kRise) labels[s] = XLabel::Rise;
            else if (cur_[s] == kFall) labels[s] = XLabel::Fall;
        }
        sg::StateGraph expanded;
        try {
            expanded = expand_with_signal(graph_, labels, name_);
        } catch (const Error&) {
            return Acceptance::Rejected; // malformed expansion; model already blocked
        }
        if (detail::structural_reject(expanded, graph_)) return Acceptance::Rejected;
        const detail::ViolationCount after =
            detail::count_violations(expanded, old_names_, /*serial_mc=*/true);
        if (after.old_signals >= before_.old_signals) return Acceptance::Rejected;
        if (after.total() != 0 && !after.repairable) return Acceptance::Rejected;

        Scored scored{InsertionOutcome{std::move(expanded), std::move(labels), name_,
                                       stats_.attempts},
                      after.total()};
        if (scored.total == 0) {
            accepted_.clear(); // a complete repair dominates everything else
            accepted_.push_back(std::move(scored));
            ++stats_.accepted;
            stats_.complete = true;
            return Acceptance::Complete;
        }
        if (first_accept_layer_ == 0) first_accept_layer_ = layer_;
        if (after.total() < before_.total()) {
            accepted_.push_back(std::move(scored));
            ++stats_.accepted;
            return Acceptance::Partial;
        }
        // Old-side progress only (the new signal brought its own
        // violation along). Such insertions are still the driver's way
        // through the hard two-signal specs, and which of them chains to
        // a completion is not locally decidable — so keep a branching
        // fatter than one, in stream order, for the driver to explore.
        if (fallbacks_.size() < std::max<std::size_t>(max_candidates_, 1))
            fallbacks_.push_back(std::move(scored.outcome));
        return Acceptance::Rejected;
    }

    /// Enumerate-and-validate until the current tier runs dry (true) or
    /// the whole search must stop (false; status_ says why).
    bool drain() {
        for (;;) {
            if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
                status_ = SpecStatus::Cancelled;
                return false;
            }
            if (!meter_.charge(util::Resource::Attempts)) {
                // The local attempt cap is a deterministic truncation of
                // the shared stream (winnable in a race); a shared-budget
                // trip is not — it depends on the caller's headroom.
                status_ = (budget_ != nullptr && budget_->exhausted())
                              ? SpecStatus::Exhausted
                              : SpecStatus::Done;
                return false;
            }
            // Barren stop: a node whose stream has produced nothing
            // useful (no accepted model, no fallback) by this many
            // attempts is a dead end; stop before the local cap burns
            // hundreds more validations. A pure function of the shared
            // canonical stream, so every racer truncates identically.
            if (first_accept_layer_ == 0 && stats_.attempts >= opts_.barren_attempts) {
                status_ = SpecStatus::Done;
                return false;
            }
            ++stats_.attempts;
            progress_.advance();
            progress_.set_budget(meter_.local().consumed(util::Resource::Attempts),
                                 meter_.local().limit(util::Resource::Attempts));
            const sat::Result r = next_model();
            if (r == sat::Result::Unsat) return true;
            if (r == sat::Result::Unknown) {
                status_ = solver_.cancelled() ? SpecStatus::Cancelled : SpecStatus::Exhausted;
                return false;
            }
            block_model();
            if (validate() == Acceptance::Complete) {
                status_ = SpecStatus::Done;
                return false;
            }
        }
    }

    SpecResult finish() {
        std::stable_sort(accepted_.begin(), accepted_.end(),
                         [](const Scored& a, const Scored& b) {
                             if (a.total != b.total) return a.total < b.total;
                             return a.outcome.graph.num_states() < b.outcome.graph.num_states();
                         });
        SpecResult res;
        for (auto& sc : accepted_) {
            bool dup = false;
            for (const auto& kept : res.outcomes)
                dup = dup || kept.labels == sc.outcome.labels;
            if (!dup) res.outcomes.push_back(std::move(sc.outcome));
            if (res.outcomes.size() >= max_candidates_) break;
        }
        if (res.outcomes.empty()) {
            for (auto& fb : fallbacks_) {
                bool dup = false;
                for (const auto& kept : res.outcomes) dup = dup || kept.labels == fb.labels;
                if (!dup) res.outcomes.push_back(std::move(fb));
                if (res.outcomes.size() >= max_candidates_) break;
            }
        }
        res.stats = stats_;
        res.status = status_;
        return res;
    }

    const sg::RegionAnalysis& ra_;
    const sg::StateGraph& graph_;
    std::span<const RegionId> victims_;
    const std::string& name_;
    std::size_t max_candidates_;
    const InsertionOptions& opts_;
    SpecEncoding enc_;
    util::Budget* budget_;
    const std::atomic<bool>* cancel_;
    std::size_t n_;
    util::Meter meter_;

    sat::Solver solver_;
    std::vector<std::array<Var, 4>> L_;
    Var cross_ = 0;
    std::vector<Var> w_;                 // per-state switching indicators
    std::vector<std::vector<Var>> cols_; // counter columns, built lazily
    std::vector<Var> count_ge_;          // count_ge_[j] <- "≥ j+1 switching"
    std::vector<std::vector<Lit>> lazy_; // constraint clauses held back by Cegar
    std::vector<bool> lazy_added_;
    bool feasible_ = true;

    std::vector<std::string> old_names_;
    detail::ViolationCount before_;

    std::vector<bool> model_; // by var: snapshot of the last Sat assignment
    std::vector<int> cur_;    // by state: committed label of the snapshot
    std::vector<Lit> base_;   // current tier/layer assumptions
    std::vector<Lit> assumps_;

    std::vector<int> prev_; // last committed lex-min under the current base_
    bool warm_ = false;     // prev_ is valid and refuted: prefix reuse allowed

    std::size_t layer_ = 0;
    std::size_t first_accept_layer_ = 0; // 0 = nothing useful found yet
    std::vector<Scored> accepted_;
    std::vector<InsertionOutcome> fallbacks_; // old-side-progress models, stream order
    SpecStats stats_;
    SpecStatus status_ = SpecStatus::Done;
    /// Heartbeat gauge: done = attempts examined. Portfolio racers each
    /// register one; live aggregates them under the shared stage name.
    /// The deterministic Stable footprint stays with export_stream_stats
    /// (racers run under Silence, so the gauge's own counter is mute).
    obs::Progress progress_{"synth.spec"};
};

/// Stream-level counters are byte-identical across engine configurations
/// (Stable); solver-level effort depends on the configuration — and in a
/// race, on which racer won — so portfolio exports it as Diag under
/// distinct names, keeping every Stable counter single-tagged.
void export_stream_stats(const SpecStats& st) {
    obs::count("synth.spec.attempts", st.attempts);
    obs::count("synth.spec.accepted", st.accepted);
    obs::count("synth.spec.layers", st.layers);
    if (st.complete) obs::count("synth.spec.complete");
}

void export_solver_stats(const SpecStats& st, bool stable) {
    const char* prefix = stable ? "synth.spec." : "synth.spec.winner_";
    const obs::Tag tag = stable ? obs::Tag::Stable : obs::Tag::Diag;
    const auto emit = [&](const char* name, std::uint64_t v) {
        obs::count(std::string(prefix) + name, v, tag);
    };
    emit("sat_calls", st.sat_calls);
    emit("refinements", st.refinements);
    emit("conflicts", st.conflicts);
    emit("decisions", st.decisions);
    emit("propagations", st.propagations);
    emit("restarts", st.restarts);
}

} // namespace

SpecResult run_spec_engine(const sg::RegionAnalysis& ra, std::span<const RegionId> victims,
                           const std::string& signal_name, std::size_t max_candidates,
                           const InsertionOptions& opts, SpecEncoding encoding,
                           std::uint64_t seed, util::Budget* budget,
                           const std::atomic<bool>* cancel) {
    Engine engine(ra, victims, signal_name, max_candidates, opts, encoding, seed, budget,
                  cancel);
    return engine.run();
}

std::vector<InsertionOutcome> spec_insert_candidates(const sg::RegionAnalysis& ra,
                                                     std::span<const RegionId> victims,
                                                     const std::string& signal_name,
                                                     std::size_t max_candidates,
                                                     const InsertionOptions& opts) {
    obs::Span span("synth.spec");
    span.attr("signal", signal_name);
    span.attr("victims", static_cast<std::uint64_t>(victims.size()));
    span.attr("engine", to_string(opts.engine));

    if (opts.engine != InsertEngine::Portfolio) {
        const SpecEncoding enc =
            opts.engine == InsertEngine::Cegar ? SpecEncoding::Cegar : SpecEncoding::Eager;
        SpecResult r = run_spec_engine(ra, victims, signal_name, max_candidates, opts, enc,
                                       opts.seed, opts.budget);
        export_stream_stats(r.stats);
        export_solver_stats(r.stats, /*stable=*/true);
        return std::move(r.outcomes);
    }

    // Portfolio: a fixed racer list (encoding × seed), independent of the
    // worker count. Every racer computes the same canonical stream, so
    // the physically first deterministic completion (status Done) may win
    // outright; its CAS cancels the rest. Racers run Silenced — a loser
    // stops at a wall-clock-dependent point, and its counters must never
    // reach the deterministic snapshot.
    const std::size_t racers = std::max<std::size_t>(1, opts.portfolio_racers);
    std::atomic<bool> cancel{false};
    std::atomic<int> winner{-1};
    std::vector<util::Budget> shards;
    if (opts.budget != nullptr) {
        shards.reserve(racers);
        for (std::size_t i = 0; i < racers; ++i) shards.push_back(opts.budget->shard(racers));
    }
    std::vector<SpecResult> results(racers);
    util::parallel_for(racers, [&](std::size_t i) {
        obs::Silence silence;
        const SpecEncoding enc = (i % 2 == 0) ? SpecEncoding::Eager : SpecEncoding::Cegar;
        const std::uint64_t seed = opts.seed + 0x9e3779b97f4a7c15ull * (i / 2);
        util::Budget* shard = shards.empty() ? nullptr : &shards[i];
        results[i] = run_spec_engine(ra, victims, signal_name, max_candidates, opts, enc, seed,
                                     shard, &cancel);
        if (results[i].status == SpecStatus::Done) {
            int expected = -1;
            if (winner.compare_exchange_strong(expected, static_cast<int>(i)))
                cancel.store(true, std::memory_order_relaxed);
        }
    });

    obs::count("synth.spec.races");
    const int w = winner.load(std::memory_order_relaxed);
    if (w >= 0) {
        // A win commits only the canonical stream's attempt count to the
        // parent budget (identical for every possible winner). The
        // losers' shards are dropped without absorb — absorb is the only
        // commit point, so their unspent headroom simply returns to the
        // parent and no Conflicts are double-charged across racers.
        util::Meter meter("synth.spec", opts.budget);
        if (results[w].stats.attempts > 0)
            (void)meter.charge(util::Resource::Attempts, results[w].stats.attempts);
        export_stream_stats(results[w].stats);
        export_solver_stats(results[w].stats, /*stable=*/false);
        obs::gauge_max("synth.spec.racer_wins", static_cast<std::uint64_t>(w) + 1,
                       obs::Tag::Diag);
        return std::move(results[w].outcomes);
    }
    // No winner. The cancellation flag is only ever raised by a Done
    // racer, so nobody was cancelled: every racer exhausted its own
    // deterministic shard. Absorbing all shards in task order makes the
    // parent's trip deterministic too, and racer 0's partial result is a
    // deterministic function of its (fixed) configuration and shard.
    if (opts.budget != nullptr)
        for (const auto& shard : shards) opts.budget->absorb(shard);
    export_stream_stats(results[0].stats);
    export_solver_stats(results[0].stats, /*stable=*/false);
    return std::move(results[0].outcomes);
}

} // namespace si::synth
