#include "si/synth/synthesize.hpp"

#include <map>
#include <optional>

#include "si/obs/obs.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/minimize_sg.hpp"
#include "si/util/error.hpp"

namespace si::synth {

std::string SynthesisResult::summary() const {
    const auto s = netlist.stats();
    std::string out = graph.name + ": " + std::to_string(graph.num_states()) + " states, " +
                      std::to_string(inserted.size()) + " inserted signal(s)";
    if (!inserted.empty()) {
        out += " (";
        for (std::size_t i = 0; i < inserted.size(); ++i)
            out += (i ? ", " : "") + inserted[i];
        out += ")";
    }
    out += "; netlist: " + std::to_string(s.and_gates) + " AND, " + std::to_string(s.or_gates) +
           " OR, " + std::to_string(s.c_elements) + " C, " + std::to_string(s.nor_gates) +
           " NOR, " + std::to_string(s.literals) + " literals";
    if (sharing.merges != 0)
        out += "; " + std::to_string(sharing.merges) + " shared-gate merge(s)";
    if (!verification.describe().empty() && verification.states_explored != 0)
        out += "; verification: " + std::string(verification.ok ? "PASS" : "FAIL");
    return out;
}

namespace {

// Iterative-deepening branch-and-bound over insertion choices: each
// round may offer several admissible state-signal insertions, and which
// of them chains to a completion is not locally decidable — so the
// driver explores a few candidates per round, deepening the whole tree
// one insertion at a time. Deepening is what keeps dead-end candidates
// cheap: a branch that cannot complete within the current depth cap is
// abandoned after a shallow probe instead of dragging the search through
// its full subtree, and the first solution found is automatically one
// with the fewest inserted signals.
//
// Re-deepening would revisit every interior node, so per-node results
// (the MC verdict, the violated regions, the candidate insertions) are
// memoized across iterations, keyed by the candidate-index path from the
// root — the search tree is deterministic, so the path identifies the
// graph. Each node therefore pays for its region analysis and its SAT
// enumeration exactly once no matter how many deepening passes cross it.
struct Search {
    // Everything computed at one search-tree node. `violated` is only
    // meaningful when !satisfied; `candidates` only once `expanded`.
    struct Node {
        bool satisfied = false;
        bool expanded = false;
        std::vector<RegionId> violated;
        std::vector<InsertionOutcome> candidates;
    };

    const SynthOptions& opts;
    util::Meter& meter;                   // stage "synth.bnb"; Steps = distinct nodes
    std::size_t best_known;               // fewest insertions of any solution found
    std::optional<sg::StateGraph> best_graph;
    std::vector<std::string> best_names;
    std::size_t depth_cap = 0;            // insertions allowed this iteration
    std::map<std::vector<std::size_t>, Node> memo;
    static constexpr std::size_t kBranch = 3;

    void run(const sg::StateGraph& current, std::vector<std::string>& names,
             std::vector<std::size_t>& path) {
        if (names.size() >= best_known) return; // cannot improve

        auto [it, fresh] = memo.try_emplace(path);
        Node& node = it->second;
        if (fresh) {
            if (!meter.charge(util::Resource::Steps)) {
                memo.erase(it); // not evaluated; a later visit must retry
                return;
            }
            obs::count("synth.rounds");
            const sg::RegionAnalysis ra(current);
            const mc::McReport report = mc::check_requirement(ra, opts.cube_search);
            node.satisfied = report.satisfied();
            if (!node.satisfied)
                for (const auto& r : report.regions)
                    if (!r.ok()) node.violated.push_back(r.region);
        }
        if (node.satisfied) {
            best_known = names.size();
            best_graph = current;
            best_names = names;
            return;
        }
        if (names.size() >= depth_cap) return;
        if (names.size() + 1 >= best_known) return; // even one more cannot win

        if (!node.expanded) {
            // One SAT formula covers every violated region (plans are
            // individually optional inside), so a single candidate query
            // per node suffices — and the memo makes it per node, not
            // per (node, deepening pass).
            const std::string name = opts.inserted_prefix + std::to_string(names.size());
            const sg::RegionAnalysis ra(current);
            node.candidates =
                insert_signal_candidates(ra, node.violated, name, kBranch, opts.insertion);
            node.expanded = true;
        }
        for (std::size_t i = 0; i < node.candidates.size(); ++i) {
            // The memo owns the candidate; copy the child graph out so
            // recursion (which may grow the map) cannot invalidate it.
            const sg::StateGraph child = node.candidates[i].graph;
            names.push_back(node.candidates[i].signal_name);
            path.push_back(i);
            run(child, names, path);
            path.pop_back();
            names.pop_back();
            if (best_known <= names.size() + 1) return; // optimal from here
            if (meter.exhausted()) return;
        }
    }
};

} // namespace

util::Outcome<SynthesisResult> synthesize_outcome(const sg::StateGraph& spec,
                                                  const SynthOptions& caller_opts,
                                                  util::Budget* budget) {
    if (const auto err = sg::check_well_formed(spec))
        throw SpecError("synthesize: malformed state graph: " + *err);
    for (const auto& c : sg::find_conflicts(spec)) {
        if (c.internal)
            throw SpecError("synthesize: '" + spec.name +
                            "' is not output semi-modular and cannot be implemented "
                            "speed-independently: " +
                            c.describe(spec));
    }

    // The one budget governs every layer below: the insertion CEGAR loop
    // (and its SAT calls) as well as the driver's own rounds.
    SynthOptions opts = caller_opts;
    if (budget != nullptr && opts.insertion.budget == nullptr) opts.insertion.budget = budget;

    obs::Span span("synth.bnb");
    span.attr("spec", spec.name);

    const sg::StateGraph start =
        opts.minimize_graph ? sg::minimize_bisimulation(spec) : spec;

    util::Meter meter("synth.bnb", budget);
    meter.local().cap(util::Resource::Steps, opts.max_search_nodes);

    Search search{opts, meter, opts.max_inserted_signals + 1, std::nullopt, {}};
    for (std::size_t depth = 0; depth <= opts.max_inserted_signals; ++depth) {
        search.depth_cap = depth;
        std::vector<std::string> names;
        std::vector<std::size_t> path;
        search.run(start, names, path);
        if (search.best_graph || meter.exhausted()) break;
    }
    span.attr("inserted",
              static_cast<std::uint64_t>(search.best_graph ? search.best_names.size() : 0));
    if (obs::enabled() && search.best_graph)
        obs::count("synth.inserted_signals", search.best_names.size());

    if (!search.best_graph) {
        if (meter.exhausted()) return util::Outcome<SynthesisResult>::exhausted(meter.why());
        const sg::RegionAnalysis ra(start);
        const auto report = mc::check_requirement(ra, opts.cube_search);
        throw SynthesisError(
            "'" + spec.name +
            "': no sequence of state-signal insertions within the budget reaches MC form "
            "(conflicts that sit inside input bursts cannot be separated without delaying "
            "inputs):\n" +
            report.describe(ra));
    }

    SynthesisResult result{std::move(*search.best_graph),
                           std::move(search.best_names),
                           {},
                           {},
                           net::Netlist(spec.signals()),
                           {},
                           {}};
    const sg::RegionAnalysis final_ra(result.graph);
    result.mc = mc::check_requirement(final_ra, opts.cube_search);
    result.networks = build_networks(final_ra, result.mc, opts.enable_sharing, &result.sharing);
    net::BuildOptions build = opts.build;
    build.share_gates = build.share_gates || opts.enable_sharing;
    result.netlist = net::build_standard_implementation(result.graph, result.networks, build);
    if (opts.verify_result) {
        verify::VerifyOptions vo;
        vo.budget = budget;
        result.verification =
            verify::verify_speed_independence(result.netlist, result.graph, vo);
        if (!result.verification.complete()) {
            util::Exhaustion why = *result.verification.exhaustion;
            return util::Outcome<SynthesisResult>::exhausted(std::move(why), std::move(result));
        }
    }
    return util::Outcome<SynthesisResult>::complete(std::move(result));
}

SynthesisResult synthesize(const sg::StateGraph& spec, const SynthOptions& opts) {
    auto outcome = synthesize_outcome(spec, opts);
    if (!outcome.is_complete())
        throw SynthesisError("'" + spec.name + "': " + outcome.why().describe());
    return std::move(outcome.value());
}

} // namespace si::synth
