#include "si/synth/synthesize.hpp"

#include <optional>

#include "si/obs/obs.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/minimize_sg.hpp"
#include "si/util/error.hpp"

namespace si::synth {

std::string SynthesisResult::summary() const {
    const auto s = netlist.stats();
    std::string out = graph.name + ": " + std::to_string(graph.num_states()) + " states, " +
                      std::to_string(inserted.size()) + " inserted signal(s)";
    if (!inserted.empty()) {
        out += " (";
        for (std::size_t i = 0; i < inserted.size(); ++i)
            out += (i ? ", " : "") + inserted[i];
        out += ")";
    }
    out += "; netlist: " + std::to_string(s.and_gates) + " AND, " + std::to_string(s.or_gates) +
           " OR, " + std::to_string(s.c_elements) + " C, " + std::to_string(s.nor_gates) +
           " NOR, " + std::to_string(s.literals) + " literals";
    if (sharing.merges != 0)
        out += "; " + std::to_string(sharing.merges) + " shared-gate merge(s)";
    if (!verification.describe().empty() && verification.states_explored != 0)
        out += "; verification: " + std::string(verification.ok ? "PASS" : "FAIL");
    return out;
}

namespace {

// Depth-limited branch-and-bound over insertion choices: each round may
// offer several admissible state-signal insertions, and a locally best
// one can chain into more rounds than a rival — so the driver explores a
// few candidates per round and keeps the completion with the fewest
// inserted signals.
struct Search {
    const SynthOptions& opts;
    util::Meter& meter;                   // stage "synth.bnb"; Steps = rounds
    std::size_t best_known;               // fewest insertions of any solution found
    std::optional<sg::StateGraph> best_graph;
    std::vector<std::string> best_names;
    static constexpr std::size_t kBranch = 3;

    void run(const sg::StateGraph& current, std::vector<std::string>& names) {
        if (names.size() >= best_known) return; // cannot improve
        if (!meter.charge(util::Resource::Steps)) return;
        obs::count("synth.rounds");

        const sg::RegionAnalysis ra(current);
        const mc::McReport report = mc::check_requirement(ra, opts.cube_search);
        if (report.satisfied()) {
            best_known = names.size();
            best_graph = current;
            best_names = names;
            return;
        }
        if (names.size() >= opts.max_inserted_signals) return;
        if (names.size() + 1 >= best_known) return; // even one more cannot win

        std::vector<RegionId> violated;
        for (const auto& r : report.regions)
            if (!r.ok()) violated.push_back(r.region);

        // One SAT formula covers every violated region (plans are
        // individually optional inside), so a single candidate query per
        // round suffices.
        const std::string name = opts.inserted_prefix + std::to_string(names.size());
        const auto candidates =
            insert_signal_candidates(ra, violated, name, kBranch, opts.insertion);
        for (const auto& candidate : candidates) {
            names.push_back(candidate.signal_name);
            run(candidate.graph, names);
            names.pop_back();
            if (best_known <= names.size() + 1) return; // optimal from here
            if (meter.exhausted()) return;
        }
    }
};

} // namespace

util::Outcome<SynthesisResult> synthesize_outcome(const sg::StateGraph& spec,
                                                  const SynthOptions& caller_opts,
                                                  util::Budget* budget) {
    if (const auto err = sg::check_well_formed(spec))
        throw SpecError("synthesize: malformed state graph: " + *err);
    for (const auto& c : sg::find_conflicts(spec)) {
        if (c.internal)
            throw SpecError("synthesize: '" + spec.name +
                            "' is not output semi-modular and cannot be implemented "
                            "speed-independently: " +
                            c.describe(spec));
    }

    // The one budget governs every layer below: the insertion CEGAR loop
    // (and its SAT calls) as well as the driver's own rounds.
    SynthOptions opts = caller_opts;
    if (budget != nullptr && opts.insertion.budget == nullptr) opts.insertion.budget = budget;

    obs::Span span("synth.bnb");
    span.attr("spec", spec.name);

    const sg::StateGraph start =
        opts.minimize_graph ? sg::minimize_bisimulation(spec) : spec;

    util::Meter meter("synth.bnb", budget);
    meter.local().cap(util::Resource::Steps, opts.max_search_nodes);

    Search search{opts, meter, opts.max_inserted_signals + 1, std::nullopt, {}};
    std::vector<std::string> names;
    search.run(start, names);
    span.attr("inserted",
              static_cast<std::uint64_t>(search.best_graph ? search.best_names.size() : 0));
    if (obs::enabled() && search.best_graph)
        obs::count("synth.inserted_signals", search.best_names.size());

    if (!search.best_graph) {
        if (meter.exhausted()) return util::Outcome<SynthesisResult>::exhausted(meter.why());
        const sg::RegionAnalysis ra(start);
        const auto report = mc::check_requirement(ra, opts.cube_search);
        throw SynthesisError(
            "'" + spec.name +
            "': no sequence of state-signal insertions within the budget reaches MC form "
            "(conflicts that sit inside input bursts cannot be separated without delaying "
            "inputs):\n" +
            report.describe(ra));
    }

    SynthesisResult result{std::move(*search.best_graph),
                           std::move(search.best_names),
                           {},
                           {},
                           net::Netlist(spec.signals()),
                           {},
                           {}};
    const sg::RegionAnalysis final_ra(result.graph);
    result.mc = mc::check_requirement(final_ra, opts.cube_search);
    result.networks = build_networks(final_ra, result.mc, opts.enable_sharing, &result.sharing);
    net::BuildOptions build = opts.build;
    build.share_gates = build.share_gates || opts.enable_sharing;
    result.netlist = net::build_standard_implementation(result.graph, result.networks, build);
    if (opts.verify_result) {
        verify::VerifyOptions vo;
        vo.budget = budget;
        result.verification =
            verify::verify_speed_independence(result.netlist, result.graph, vo);
        if (!result.verification.complete()) {
            util::Exhaustion why = *result.verification.exhaustion;
            return util::Outcome<SynthesisResult>::exhausted(std::move(why), std::move(result));
        }
    }
    return util::Outcome<SynthesisResult>::complete(std::move(result));
}

SynthesisResult synthesize(const sg::StateGraph& spec, const SynthOptions& opts) {
    auto outcome = synthesize_outcome(spec, opts);
    if (!outcome.is_complete())
        throw SynthesisError("'" + spec.name + "': " + outcome.why().describe());
    return std::move(outcome.value());
}

} // namespace si::synth
