#include "si/synth/labeling.hpp"

#include <array>

#include "si/util/error.hpp"

namespace si::synth {

bool labels_compatible(XLabel s, XLabel t) {
    switch (s) {
    case XLabel::Zero:
        // Zero→Fall is legal: the arc lands in the Fall state's post-x-
        // slice only (some paths arrive with x already back at 0).
        return t == XLabel::Zero || t == XLabel::Rise || t == XLabel::Fall;
    case XLabel::Rise:
        // Rise→Fall/Zero would strand the pending x+ in the 0-slice.
        return t == XLabel::Rise || t == XLabel::One;
    case XLabel::One:
        // One→Rise is legal: the arc lands in the post-x+ slice only.
        return t == XLabel::One || t == XLabel::Fall || t == XLabel::Rise;
    case XLabel::Fall:
        return t == XLabel::Fall || t == XLabel::Zero;
    }
    return false;
}

sg::StateGraph expand_with_signal(const sg::StateGraph& old, const std::vector<XLabel>& labels,
                                  const std::string& name, SignalKind kind) {
    require(labels.size() == old.num_states(), "label table size mismatch");

    sg::StateGraph out;
    out.name = old.name;
    for (const auto& s : old.signals().all()) out.signals().add(s.name, s.kind);
    const SignalId x = out.signals().add(name, kind);

    // Slice states. slice[i][v] is the new id of (old state i, x = v).
    std::vector<std::array<StateId, 2>> slice(old.num_states(),
                                              {StateId::invalid(), StateId::invalid()});
    auto make_state = [&](std::size_t si, bool v) {
        BitVec code = old.state(StateId(si)).code;
        code.resize(out.num_signals());
        if (v) code.set(x.index());
        slice[si][v ? 1 : 0] = out.add_state(std::move(code));
    };
    for (std::size_t si = 0; si < old.num_states(); ++si) {
        switch (labels[si]) {
        case XLabel::Zero: make_state(si, false); break;
        case XLabel::One: make_state(si, true); break;
        case XLabel::Rise:
        case XLabel::Fall:
            make_state(si, false);
            make_state(si, true);
            break;
        }
    }

    // x's own transitions inside split states.
    for (std::size_t si = 0; si < old.num_states(); ++si) {
        if (labels[si] == XLabel::Rise) out.add_arc(slice[si][0], slice[si][1], x);
        if (labels[si] == XLabel::Fall) out.add_arc(slice[si][1], slice[si][0], x);
    }

    // Original arcs survive in each slice where both endpoints exist.
    for (const auto& a : old.arcs()) {
        if (!labels_compatible(labels[a.from.index()], labels[a.to.index()]))
            throw SpecError("labeling violates the next-state relation on arc " +
                            old.state_label(a.from) + " -> " + old.state_label(a.to));
        bool any = false;
        for (const int v : {0, 1}) {
            const StateId f = slice[a.from.index()][v];
            const StateId t = slice[a.to.index()][v];
            if (f.is_valid() && t.is_valid()) {
                out.add_arc(f, t, a.signal);
                any = true;
            }
        }
        if (!any)
            throw SpecError("labeling leaves no slice for arc " + old.state_label(a.from) +
                            " -> " + old.state_label(a.to));
    }

    // The initial state keeps x at its pre-transition value.
    const std::size_t i0 = old.initial().index();
    const bool v0 = label_value(labels[i0]);
    out.set_initial(slice[i0][v0 ? 1 : 0]);

    // The cross pairs (Zero→Fall, One→Rise) enter split states through a
    // single slice; the other slice can end up unreachable. Prune to the
    // reachable part so downstream analyses (and further insertions) see
    // a clean graph.
    const BitVec live = out.reachable();
    if (live.count() != out.num_states()) {
        sg::StateGraph pruned;
        pruned.name = out.name;
        for (const auto& sdecl : out.signals().all()) pruned.signals().add(sdecl.name, sdecl.kind);
        std::vector<StateId> remap(out.num_states(), StateId::invalid());
        live.for_each_set([&](std::size_t si) {
            remap[si] = pruned.add_state(out.state(StateId(si)).code);
        });
        for (const auto& arc : out.arcs()) {
            if (!live.test(arc.from.index()) || !live.test(arc.to.index())) continue;
            pruned.add_arc(remap[arc.from.index()], remap[arc.to.index()], arc.signal);
        }
        pruned.set_initial(remap[out.initial().index()]);
        return pruned;
    }
    return out;
}

} // namespace si::synth
