#include "si/synth/sharing.hpp"

#include <algorithm>
#include <map>

#include "si/util/error.hpp"

namespace si::synth {

std::vector<net::SignalNetwork> build_networks(const sg::RegionAnalysis& ra,
                                               const mc::McReport& report, bool enable_sharing,
                                               SharingStats* stats) {
    require(report.satisfied(), "cannot build networks from an unsatisfied MC report");

    // Working copy: cube per region, group of regions per cube slot.
    struct Slot {
        Cube cube;
        std::vector<RegionId> group;
        bool dead = false;
    };
    std::vector<Slot> slots;
    std::map<std::size_t, std::size_t> slot_of_region; // region index -> slot
    for (const auto& r : report.regions) {
        if (!r.cube) continue; // elementary-sum regions carry no cube slot
        slot_of_region[r.region.index()] = slots.size();
        slots.push_back(Slot{*r.cube, {r.region}, false});
    }
    if (stats) stats->cubes_before = slots.size();

    if (enable_sharing) {
        auto polarity_clash = [&](const Slot& a, const Slot& b) {
            // Never fold opposite-polarity regions of one signal: the
            // shared gate would drive its set and reset functions
            // simultaneously.
            for (const RegionId ri : a.group)
                for (const RegionId rj : b.group)
                    if (ra.region(ri).signal == ra.region(rj).signal &&
                        ra.region(ri).rising != ra.region(rj).rising)
                        return true;
            return false;
        };
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t i = 0; i < slots.size() && !changed; ++i) {
                if (slots[i].dead) continue;
                for (std::size_t j = i + 1; j < slots.size() && !changed; ++j) {
                    if (slots[j].dead) continue;
                    if (polarity_clash(slots[i], slots[j])) continue;
                    const Cube merged = slots[i].cube.supercube(slots[j].cube);
                    if (merged.is_universal()) continue;
                    std::vector<RegionId> group = slots[i].group;
                    group.insert(group.end(), slots[j].group.begin(), slots[j].group.end());
                    if (!mc::check_generalized_mc(ra, group, merged).empty()) continue;
                    slots[i].cube = merged;
                    slots[i].group = std::move(group);
                    slots[j].dead = true;
                    for (const RegionId r : slots[i].group)
                        slot_of_region[r.index()] = i;
                    if (stats) ++stats->merges;
                    changed = true;
                }
            }
        }
    }
    if (stats) {
        stats->cubes_after = 0;
        for (const auto& s : slots)
            if (!s.dead) ++stats->cubes_after;
    }

    // Assemble per-signal networks: every region contributes its (maybe
    // shared) cube to its polarity's SOP, in region instance order.
    std::map<std::size_t, net::SignalNetwork> by_signal;
    for (const auto& r : report.regions) {
        const auto& region = ra.region(r.region);
        auto& network = by_signal[region.signal.index()];
        network.signal = region.signal;
        auto& half = region.rising ? network.up_cubes : network.down_cubes;
        if (!r.cube) {
            // Elementary sum: each bare literal feeds the OR gate
            // directly (the degenerate-AND simplification handles it).
            for (const auto& lit : r.sum_literals)
                if (std::find(half.begin(), half.end(), lit) == half.end())
                    half.push_back(lit);
            continue;
        }
        const Cube& cube = slots[slot_of_region[r.region.index()]].cube;
        // A shared cube may already be present in this half (two regions
        // of the same signal/polarity folded together): add it once.
        if (std::find(half.begin(), half.end(), cube) == half.end()) half.push_back(cube);
    }
    std::vector<net::SignalNetwork> out;
    out.reserve(by_signal.size());
    for (auto& [idx, network] : by_signal) out.push_back(std::move(network));
    return out;
}

} // namespace si::synth
