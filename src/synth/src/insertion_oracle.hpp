// Internal: the acceptance oracle shared by the legacy insertion loop
// (insertion.cpp) and the spec engine (spec.cpp). Both engines judge a
// candidate labeling with exactly the same machinery — repair plans,
// structural re-validation, MC violation counting — so that "accepted"
// means the same thing no matter which engine produced the model. Not
// installed; include only from si_synth sources.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "si/sg/regions.hpp"
#include "si/sg/state_graph.hpp"

namespace si::synth::detail {

/// One way to repair a victim region: either privately (its own cube,
/// separated from everything it over-covers) or jointly with mergeable
/// same-signal same-polarity siblings under one shared cube (Def 19).
struct RepairPlan {
    std::vector<RegionId> regions;
    std::vector<StateId> offending;
};

[[nodiscard]] RepairPlan private_plan(const sg::RegionAnalysis& ra, RegionId victim);
[[nodiscard]] std::optional<RepairPlan> group_plan(const sg::RegionAnalysis& ra, RegionId victim);

/// A plan is structurally contradictory when it has nothing to separate,
/// or an offending state lies inside one of its ERs (it would have to
/// carry x's active value and its complement at once).
[[nodiscard]] bool plan_feasible(const sg::RegionAnalysis& ra, const RepairPlan& plan);

/// Counts MC violations, split into "pre-existing signals" (matched by
/// name against `old_names`) and newly inserted ones, and decides whether
/// every remaining violation is still repairable by a further insertion.
struct ViolationCount {
    std::size_t old_signals = 0;
    std::size_t new_signals = 0;
    bool repairable = true;
    [[nodiscard]] std::size_t total() const { return old_signals + new_signals; }
};

/// `serial_mc` runs the MC cube searches inline instead of over the
/// thread pool (byte-identical report) — the spec engine's choice, since
/// it re-checks many tiny expanded graphs where the fan-out handshake
/// costs more than the search, and it lets portfolio racers validate
/// concurrently without contending for the pool.
[[nodiscard]] ViolationCount count_violations(const sg::StateGraph& graph,
                                              const std::vector<std::string>& old_names,
                                              bool serial_mc = false);

/// Full behavioural re-validation of an expanded graph: well-formedness,
/// output semi-modularity, and the Foam Rubber Wrapper projection check
/// against the base graph. Returns the rejection reason, or nullopt.
[[nodiscard]] std::optional<std::string> structural_reject(const sg::StateGraph& graph,
                                                           const sg::StateGraph& base);

} // namespace si::synth::detail
