#include "si/synth/insertion.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <span>

#include "insertion_oracle.hpp"
#include "si/mc/cover_cube.hpp"
#include "si/obs/obs.hpp"
#include "si/sat/solver.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/projection.hpp"
#include "si/synth/spec.hpp"
#include "si/util/error.hpp"

namespace si::synth {

namespace detail {

RepairPlan private_plan(const sg::RegionAnalysis& ra, RegionId victim) {
    const std::vector<RegionId> regions{victim};
    return RepairPlan{regions, mc::offending_cover_states(
                                   ra, regions, mc::smallest_cover_cube(ra, victim))};
}

std::optional<RepairPlan> group_plan(const sg::RegionAnalysis& ra, RegionId victim) {
    const auto& region = ra.region(victim);
    std::vector<RegionId> regions{victim};
    Cube cube = mc::smallest_cover_cube(ra, victim);
    for (std::size_t ri = 0; ri < ra.regions().size(); ++ri) {
        const RegionId rid{ri};
        if (rid == victim) continue;
        const auto& sibling = ra.region(rid);
        if (sibling.signal != region.signal || sibling.rising != region.rising) continue;
        const Cube merged = cube.supercube(mc::smallest_cover_cube(ra, rid));
        if (merged.is_universal()) continue;
        bool ok = true;
        for (const RegionId r : regions)
            ok = ok && mc::is_cover_cube(ra, r, merged);
        ok = ok && mc::is_cover_cube(ra, rid, merged);
        if (!ok) continue;
        cube = merged;
        regions.push_back(rid);
    }
    if (regions.size() < 2) return std::nullopt;
    return RepairPlan{regions, mc::offending_cover_states(ra, regions, cube)};
}

bool plan_feasible(const sg::RegionAnalysis& ra, const RepairPlan& plan) {
    if (plan.offending.empty()) return false; // nothing a literal could exclude
    for (const StateId o : plan.offending)
        for (const RegionId rid : plan.regions)
            if (ra.region(rid).states.test(o.index())) return false;
    return true;
}

// Counts MC violations, split into "pre-existing signals" (matched by
// name against `old_names`) and newly inserted ones, and decides whether
// every remaining violation is still repairable by a further insertion
// (has offending states, none of which sit inside the region or on its
// firing targets — there the insertion constraints would contradict).
ViolationCount count_violations(const sg::StateGraph& graph,
                                const std::vector<std::string>& old_names, bool serial_mc) {
    const sg::RegionAnalysis ra(graph);
    mc::McCubeSearch search;
    search.serial = serial_mc;
    const auto report = mc::check_requirement(ra, search);
    ViolationCount vc;
    for (const auto& r : report.regions) {
        if (r.ok()) continue;
        const std::string& name = graph.signals()[ra.region(r.region).signal].name;
        const bool is_old =
            std::find(old_names.begin(), old_names.end(), name) != old_names.end();
        (is_old ? vc.old_signals : vc.new_signals) += 1;

        const auto offending = private_plan(ra, r.region).offending;
        if (offending.empty()) {
            vc.repairable = false;
            continue;
        }
        // An offender inside the ER itself cannot be separated by any
        // further insertion (it would need x active and inactive at
        // once); offenders on firing targets are fine — the Fall/Rise
        // split handles them.
        const auto& region = ra.region(r.region);
        for (const StateId o : offending)
            if (region.states.test(o.index())) vc.repairable = false;
    }
    return vc;
}

// Full behavioural re-validation of an expanded graph.
std::optional<std::string> structural_reject(const sg::StateGraph& graph,
                                             const sg::StateGraph& base) {
    if (const auto err = sg::check_well_formed(graph)) return err;
    for (const auto& c : sg::find_conflicts(graph))
        if (c.internal) return "insertion breaks output semi-modularity: " + c.describe(graph);
    // Detonant states (OR causality) are not rejected here: the
    // elementary-sum form of Section IV can implement them, and the MC
    // re-check decides whether it does.
    // Foam Rubber Wrapper: hiding the new signal, the expansion must
    // allow exactly the base behaviour.
    if (const auto proj = sg::check_projection(graph, base); !proj.ok)
        return "insertion changes the interface: " + proj.reason;
    return std::nullopt;
}

} // namespace detail

std::vector<StateId> offending_states(const sg::RegionAnalysis& ra, RegionId victim) {
    return detail::private_plan(ra, victim).offending;
}

std::vector<InsertionOutcome> insert_signal_candidates(const sg::RegionAnalysis& ra,
                                                       std::span<const RegionId> victims,
                                                       const std::string& signal_name,
                                                       std::size_t max_candidates,
                                                       const InsertionOptions& opts) {
    const auto& graph = ra.graph();
    const std::size_t n = graph.num_states();
    if (ra.reachable().count() != n)
        throw SpecError("signal insertion requires a fully reachable state graph");
    if (victims.empty()) return {};
    if (opts.engine != InsertEngine::Legacy)
        return spec_insert_candidates(ra, victims, signal_name, max_candidates, opts);

    obs::Span span("synth.insert");
    span.attr("signal", signal_name);
    span.attr("victims", static_cast<std::uint64_t>(victims.size()));

    util::Meter meter("synth.insert", opts.budget);
    meter.local().cap(util::Resource::Attempts, opts.max_attempts);

    sat::Solver solver;
    solver.set_conflict_budget(opts.sat_conflict_budget);
    solver.set_budget(opts.budget);

    // One-hot label variables per state plus the polarity selector.
    // var layout: L[s][k] with k = 0:Zero 1:One 2:Rise 3:Fall.
    std::vector<std::array<sat::Var, 4>> L(n);
    for (std::size_t s = 0; s < n; ++s)
        for (auto& v : L[s]) v = solver.new_var();
    using sat::neg;
    using sat::pos;
    constexpr int kZero = 0, kOne = 1, kRise = 2, kFall = 3;

    for (std::size_t s = 0; s < n; ++s) {
        const std::array<sat::Lit, 4> lits{pos(L[s][0]), pos(L[s][1]), pos(L[s][2]),
                                           pos(L[s][3])};
        solver.add_clause(std::span<const sat::Lit>(lits.data(), 4));
        solver.add_at_most_one(std::span<const sat::Lit>(lits.data(), 4));
    }

    // Next-state relation along every arc (see labels_compatible);
    // inputs must not be delayed, so a pending x pins them to the same
    // label, while stable sources may reach any label with a matching
    // slice. The cross pairs Zero→Fall and One→Rise enlarge the model
    // space considerably, so they sit behind the `cross` guard and are
    // only enabled in the later search tiers.
    const sat::Var cross = solver.new_var();
    for (const auto& a : graph.arcs()) {
        const auto& S = L[a.from.index()];
        const auto& T = L[a.to.index()];
        solver.add_clause({neg(S[kZero]), pos(T[kZero]), pos(T[kRise]), pos(T[kFall])});
        solver.add_clause({neg(S[kOne]), pos(T[kOne]), pos(T[kFall]), pos(T[kRise])});
        solver.add_clause({pos(cross), neg(S[kZero]), pos(T[kZero]), pos(T[kRise])});
        solver.add_clause({pos(cross), neg(S[kOne]), pos(T[kOne]), pos(T[kFall])});
        if (graph.signals()[a.signal].kind == SignalKind::Input) {
            solver.add_implies(pos(S[kRise]), pos(T[kRise]));
            solver.add_implies(pos(S[kFall]), pos(T[kFall]));
        } else {
            solver.add_clause({neg(S[kRise]), pos(T[kRise]), pos(T[kOne])});
            solver.add_clause({neg(S[kFall]), pos(T[kFall]), pos(T[kZero])});
        }
    }

    // Per victim region, one or two repair plans (private cube / shared
    // sibling-group cube), each guarded by a selector: under the chosen
    // plan, the plan's ER states carry x's active value (possibly still
    // rising/falling there), the firing arcs land where x is already at
    // the active value — so the repaired ER sits entirely in one slice —
    // and every offending state takes the opposite stable value, so x's
    // literal excludes it from the repaired cover cube.
    // A plan is structurally contradictory when an offending state lies
    // inside one of its ERs: it would have to carry x's active value and
    // its complement at once. (An offender that is merely a firing
    // target is representable — the Fall/Rise option below splits it.)
    //
    // Victim plans are individually optional: the solver may commit to
    // any non-empty subset (a signal repairing one conflict while the
    // group fallback absorbs another is perfectly fine — forcing every
    // victim would exclude such solutions). At least one plan must be
    // chosen globally.
    std::vector<sat::Lit> all_selectors;
    for (const RegionId victim : victims) {
        std::vector<detail::RepairPlan> plans;
        plans.push_back(detail::private_plan(ra, victim));
        if (auto gp = detail::group_plan(ra, victim)) plans.push_back(std::move(*gp));

        for (const auto& plan : plans) {
            if (!detail::plan_feasible(ra, plan)) continue;
            const sat::Var m = solver.new_var();   // this plan is chosen
            const sat::Var pol = solver.new_var(); // x high across the plan's regions
            all_selectors.push_back(pos(m));
            for (const RegionId rid : plan.regions) {
                const auto& region = ra.region(rid);
                region.states.for_each_set([&](std::size_t s) {
                    solver.add_clause({neg(m), neg(pol), pos(L[s][kRise]), pos(L[s][kOne])});
                    solver.add_clause({neg(m), pos(pol), pos(L[s][kFall]), pos(L[s][kZero])});
                    const auto arc = graph.arc_on(StateId(s), region.signal);
                    if (arc != UINT32_MAX) {
                        // The repaired ER must sit in one slice: when the
                        // ER state itself splits (Rise under UP, Fall
                        // under DOWN), the firing arc may only survive in
                        // the active slice, which forces the target's
                        // label; single-slice ER states land correctly by
                        // construction.
                        const std::size_t t = graph.arc(arc).to.index();
                        solver.add_clause(
                            {neg(m), neg(pol), neg(L[s][kRise]), pos(L[t][kOne])});
                        solver.add_clause(
                            {neg(m), pos(pol), neg(L[s][kFall]), pos(L[t][kZero])});
                    }
                });
            }
            for (const StateId o : plan.offending) {
                // The offending state must end up on the inactive side of
                // x's literal: stably inactive, or split by x's own
                // return transition (Fall under the UP schema) — the
                // latter covers offenders that are also quiescent states
                // the victim's firing legally reaches (the active slice
                // keeps the cube, the inactive slice sheds it).
                solver.add_clause({neg(m), neg(pol), pos(L[o.index()][kZero]),
                                   pos(L[o.index()][kFall])});
                solver.add_clause({neg(m), pos(pol), pos(L[o.index()][kOne]),
                                   pos(L[o.index()][kRise])});
            }
        }
    }
    if (all_selectors.empty()) return {};
    solver.add_clause(std::span<const sat::Lit>(all_selectors.data(), all_selectors.size()));

    // x must really switch: at least one rise and one fall somewhere.
    {
        std::vector<sat::Lit> rises, falls;
        for (std::size_t s = 0; s < n; ++s) {
            rises.push_back(pos(L[s][kRise]));
            falls.push_back(pos(L[s][kFall]));
        }
        solver.add_clause(std::span<const sat::Lit>(rises.data(), rises.size()));
        solver.add_clause(std::span<const sat::Lit>(falls.data(), falls.size()));
    }

    // Tier guard: under assumption `compact`, the rise and fall regions
    // are single states (x+ and x- inserted into one branch each). Such
    // insertions give x itself trivially implementable excitation
    // regions, so they are tried first; the guard is dropped if they
    // cannot repair the region.
    const sat::Var compact = solver.new_var();
    for (std::size_t s = 0; s < n; ++s) {
        for (std::size_t t = s + 1; t < n; ++t) {
            solver.add_clause({neg(compact), neg(L[s][kRise]), neg(L[t][kRise])});
            solver.add_clause({neg(compact), neg(L[s][kFall]), neg(L[t][kFall])});
        }
    }

    const detail::ViolationCount before =
        detail::count_violations(graph, graph.signals().names());
    const auto old_names = graph.signals().names();

    struct Scored {
        InsertionOutcome outcome;
        std::size_t total;
        std::size_t old_left;
    };
    std::vector<Scored> accepted;
    std::optional<InsertionOutcome> fallback;
    std::size_t attempt = 0;
    const std::array<std::array<sat::Lit, 2>, 4> tiers{{
        {neg(cross), pos(compact)},
        {neg(cross), neg(compact)},
        {pos(cross), pos(compact)},
        {pos(cross), neg(compact)},
    }};
    for (const auto& assumptions : tiers) {
        const bool tier_compact = assumptions[1] == pos(compact);
        for (;;) {
        // Running out of the attempt cap (local or shared) ends the whole
        // search, not just the tier — exactly the legacy `attempt <
        // max_attempts` bound, which also persisted across tiers.
        if (!meter.charge(util::Resource::Attempts)) goto done;
        ++attempt;
        obs::count("synth.insert_attempts");
        const auto verdict =
            solver.solve(std::span<const sat::Lit>(assumptions.data(), assumptions.size()));
        if (verdict != sat::Result::Sat) {
            if (std::getenv("SI_INSERT_DEBUG"))
                std::fprintf(stderr, "insert: tier %s%s -> %s at attempt %zu\n",
                             assumptions[0] == pos(cross) ? "cross+" : "",
                             tier_compact ? "compact" : "free",
                             verdict == sat::Result::Unsat ? "UNSAT" : "UNKNOWN", attempt);
            // A shared-budget exhaustion is sticky: later tiers would get
            // the same instant Unknown, so stop instead of spinning.
            if (verdict == sat::Result::Unknown && meter.exhausted()) goto done;
            break;
        }

        std::vector<XLabel> labels(n, XLabel::Zero);
        for (std::size_t s = 0; s < n; ++s) {
            if (solver.model_value(L[s][kOne])) labels[s] = XLabel::One;
            else if (solver.model_value(L[s][kRise])) labels[s] = XLabel::Rise;
            else if (solver.model_value(L[s][kFall])) labels[s] = XLabel::Fall;
        }

        // Block this model for the next round regardless of acceptance.
        std::vector<sat::Lit> block;
        for (std::size_t s = 0; s < n; ++s) {
            const int k = labels[s] == XLabel::Zero   ? kZero
                          : labels[s] == XLabel::One  ? kOne
                          : labels[s] == XLabel::Rise ? kRise
                                                      : kFall;
            block.push_back(neg(L[s][k]));
        }
        solver.add_clause(std::span<const sat::Lit>(block.data(), block.size()));

        const bool debug = std::getenv("SI_INSERT_DEBUG") != nullptr;
        sg::StateGraph expanded;
        try {
            expanded = expand_with_signal(graph, labels, signal_name);
        } catch (const Error& e) {
            if (debug) std::fprintf(stderr, "insert[%zu]: expansion failed: %s\n", attempt, e.what());
            continue; // malformed expansion; model already blocked
        }
        if (const auto why = detail::structural_reject(expanded, graph)) {
            if (debug) std::fprintf(stderr, "insert[%zu]: %s\n", attempt, why->c_str());
            continue;
        }

        const detail::ViolationCount after = detail::count_violations(expanded, old_names);
        if (after.old_signals >= before.old_signals) {
            if (debug)
                std::fprintf(stderr, "insert[%zu]: old violations %zu -> %zu (no progress)\n",
                             attempt, before.old_signals, after.old_signals);
            continue; // no progress on the victim's side
        }
        if (after.total() != 0 && !after.repairable) {
            if (debug) std::fprintf(stderr, "insert[%zu]: leftover violations unrepairable\n", attempt);
            continue;  // dead end: leftover violation unfixable
        }

        Scored scored{InsertionOutcome{std::move(expanded), std::move(labels), signal_name,
                                       attempt},
                      after.total(), after.old_signals};
        if (scored.total == 0) {
            // A complete repair dominates everything else.
            accepted.clear();
            accepted.push_back(std::move(scored));
            goto done;
        }
        if (after.total() < before.total()) {
            accepted.push_back(std::move(scored));
            continue;
        }
        if (!fallback) fallback = std::move(scored.outcome); // old-side progress only
        }
    }
done:
    std::stable_sort(accepted.begin(), accepted.end(), [](const Scored& a, const Scored& b) {
        if (a.total != b.total) return a.total < b.total;
        return a.outcome.graph.num_states() < b.outcome.graph.num_states();
    });
    std::vector<InsertionOutcome> out;
    for (auto& sc : accepted) {
        // Deduplicate structurally equal results (same size and labels).
        bool dup = false;
        for (const auto& kept : out)
            dup = dup || kept.labels == sc.outcome.labels;
        if (!dup) out.push_back(std::move(sc.outcome));
        if (out.size() >= max_candidates) break;
    }
    if (out.empty() && fallback) out.push_back(std::move(*fallback));
    return out;
}

std::optional<InsertionOutcome> insert_signal_for(const sg::RegionAnalysis& ra,
                                                  std::span<const RegionId> victims,
                                                  const std::string& signal_name,
                                                  const InsertionOptions& opts) {
    auto candidates = insert_signal_candidates(ra, victims, signal_name, 1, opts);
    if (candidates.empty()) return std::nullopt;
    return std::move(candidates.front());
}

} // namespace si::synth
