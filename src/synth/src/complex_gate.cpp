#include "si/synth/complex_gate.hpp"

#include "si/boolean/minimize.hpp"
#include "si/sg/analysis.hpp"
#include "si/util/error.hpp"

namespace si::synth {

net::Netlist build_complex_gate_implementation(const sg::RegionAnalysis& ra) {
    const auto& graph = ra.graph();
    if (const auto csc = sg::find_csc_violations(graph); !csc.empty())
        throw SynthesisError("complex-gate implementation requires CSC: " +
                             csc.front().describe(graph));

    net::Netlist nl(graph.signals());
    nl.name = graph.name + "-complex";
    const BitVec& init = graph.state(graph.initial()).code;

    // Inputs first, then one atomic complex gate per non-input.
    for (std::size_t vi = 0; vi < graph.num_signals(); ++vi) {
        const SignalId v{vi};
        if (graph.signals()[v].kind != SignalKind::Input) continue;
        const GateId g = nl.add_gate(net::GateKind::Input, graph.signals()[v].name, {}, v);
        nl.gate(g).initial_value = init.test(vi);
    }
    for (std::size_t vi = 0; vi < graph.num_signals(); ++vi) {
        const SignalId v{vi};
        if (!is_non_input(graph.signals()[v].kind)) continue;

        // next(v) = 1 exactly on 0*-set(v) ∪ 1-set(v); unreachable codes
        // are don't-cares.
        Cover onset(graph.num_signals());
        Cover care(graph.num_signals());
        const BitVec one = ra.set_excited0(v) | ra.set_stable1(v);
        one.for_each_set([&](std::size_t si) {
            onset.add(Cube::minterm(graph.state(StateId(si)).code));
        });
        ra.reachable().for_each_set([&](std::size_t si) {
            care.add(Cube::minterm(graph.state(StateId(si)).code));
        });
        const Cover dc = care.complement();
        const Cover fn = minimize(onset, dc);

        const GateId g = nl.add_gate(net::GateKind::Complex, graph.signals()[v].name, {}, v);
        nl.gate(g).complex_fn = fn;
        nl.gate(g).initial_value = init.test(vi);
    }

    // Fanout bookkeeping: every complex gate reads the realizations of
    // the signals its SOP mentions.
    for (std::size_t gi = 0; gi < nl.num_gates(); ++gi) {
        auto& gate = nl.gate(GateId(gi));
        if (gate.kind != net::GateKind::Complex) continue;
        std::vector<net::Fanin> fanins;
        for (std::size_t v = 0; v < graph.num_signals(); ++v) {
            bool used = false;
            for (const auto& c : gate.complex_fn.cubes())
                if (c.lit(SignalId(v)) != Lit::Dash) used = true;
            if (used) fanins.push_back(net::Fanin{nl.gate_of_signal(SignalId(v)), false});
        }
        gate.fanins = std::move(fanins);
    }
    return nl;
}

} // namespace si::synth
