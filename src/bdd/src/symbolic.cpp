#include "si/bdd/symbolic.hpp"

#include <algorithm>
#include <cmath>

#include "si/sg/from_stg.hpp"
#include "si/util/error.hpp"

namespace si::bdd {

namespace {

// Variable layout: place p -> current variable 2p, next variable 2p+1.
// Interleaving keeps both rename directions order-monotone.
std::size_t cur(std::size_t p) { return 2 * p; }
std::size_t nxt(std::size_t p) { return 2 * p + 1; }

void reach_impl(const stg::Stg& net, Manager& mgr, SymbolicReachability& result) {
    const std::size_t P = net.num_places();

    // Per-transition relation over (current, next).
    std::vector<Ref> relations;
    Ref unsafe_enabled = Manager::kFalse; // enabled with an already-marked post place
    for (std::size_t ti = 0; ti < net.num_transitions(); ++ti) {
        const auto& t = net.transition(TransitionId(ti));
        BitVec in_pre(P), in_post(P);
        for (const PlaceId p : t.preset) in_pre.set(p.index());
        for (const PlaceId p : t.postset) in_post.set(p.index());

        Ref enabled = Manager::kTrue;
        in_pre.for_each_set([&](std::size_t p) {
            enabled = mgr.apply_and(enabled, mgr.var(cur(p)));
        });

        Ref unsafe = Manager::kFalse;
        in_post.for_each_set([&](std::size_t p) {
            if (!in_pre.test(p)) unsafe = mgr.apply_or(unsafe, mgr.var(cur(p)));
        });
        unsafe_enabled = mgr.apply_or(unsafe_enabled, mgr.apply_and(enabled, unsafe));

        Ref rel = enabled;
        for (std::size_t p = 0; p < P; ++p) {
            Ref next_val;
            if (in_post.test(p)) {
                next_val = mgr.var(nxt(p));
            } else if (in_pre.test(p)) {
                next_val = mgr.nvar(nxt(p));
            } else {
                next_val = mgr.apply_xor(mgr.var(cur(p)), mgr.nvar(nxt(p))); // x' == x
            }
            rel = mgr.apply_and(rel, next_val);
        }
        relations.push_back(rel);
    }

    // Initial marking as a minterm over current variables.
    Ref reached = Manager::kTrue;
    for (std::size_t p = 0; p < P; ++p) {
        const bool marked = net.initial_marking()[p] != 0;
        if (net.initial_marking()[p] > 1)
            throw SpecError("symbolic reachability requires a safe initial marking");
        reached = mgr.apply_and(reached, marked ? mgr.var(cur(p)) : mgr.nvar(cur(p)));
    }

    // Masks and rename maps.
    BitVec current_mask(2 * P);
    for (std::size_t p = 0; p < P; ++p) current_mask.set(cur(p));
    std::vector<std::size_t> next_to_cur(2 * P);
    for (std::size_t p = 0; p < P; ++p) {
        next_to_cur[cur(p)] = cur(p); // unused in renamed support
        next_to_cur[nxt(p)] = cur(p);
    }

    Ref frontier = reached;
    while (frontier != Manager::kFalse) {
        ++result.iterations;
        Ref image = Manager::kFalse;
        for (const Ref rel : relations) {
            const Ref step = mgr.exists(mgr.apply_and(frontier, rel), current_mask);
            image = mgr.apply_or(image, mgr.rename(step, next_to_cur));
        }
        const Ref fresh = mgr.apply_and(image, mgr.apply_not(reached));
        reached = mgr.apply_or(reached, fresh);
        frontier = fresh;
    }

    if (mgr.apply_and(reached, unsafe_enabled) != Manager::kFalse) result.safe = false;
    // `reached` depends only on current variables; divide the count over
    // all 2P variables by 2^P (the free next variables).
    result.reachable_markings = mgr.sat_count(reached) / std::pow(2.0, static_cast<double>(P));
    result.total_nodes = mgr.num_nodes();
    result.set_nodes = mgr.size(reached);
}

void csc_impl(const stg::Stg& net, Manager& mgr, SymbolicCsc& result) {
    const std::size_t P = net.num_places();
    const std::size_t S = net.signals().size();
    const std::size_t N = P + S; // state variables: places and signal values

    // Static variable order: cluster each signal's value variable with
    // the places its transitions touch (a signal correlated only with
    // far-away places makes the reachable-set BDD blow up). Narrow
    // signals claim their clusters first; hub signals touching many
    // places (forks/joins) come last, so per-branch locality survives.
    std::vector<std::size_t> pos(N, SIZE_MAX);
    {
        std::vector<std::vector<std::size_t>> adjacent(S);
        for (std::size_t ti = 0; ti < net.num_transitions(); ++ti) {
            const auto& t = net.transition(TransitionId(ti));
            auto& adj = adjacent[t.edge.signal.index()];
            for (const PlaceId p : t.preset) adj.push_back(p.index());
            for (const PlaceId p : t.postset) adj.push_back(p.index());
        }
        std::vector<std::size_t> order(S);
        for (std::size_t i = 0; i < S; ++i) order[i] = i;
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            return adjacent[a].size() != adjacent[b].size()
                       ? adjacent[a].size() < adjacent[b].size()
                       : a < b;
        });
        std::size_t next_slot = 0;
        for (const std::size_t sigi : order) {
            for (const std::size_t p : adjacent[sigi])
                if (pos[p] == SIZE_MAX) pos[p] = next_slot++;
            pos[P + sigi] = next_slot++;
        }
        for (std::size_t i = 0; i < N; ++i)
            if (pos[i] == SIZE_MAX) pos[i] = next_slot++;
    }
    auto curv = [&](std::size_t i) { return 2 * pos[i]; };
    auto nxtv = [&](std::size_t i) { return 2 * pos[i] + 1; };

    // Per-transition relation over (marking, code).
    std::vector<Ref> relations;
    for (std::size_t ti = 0; ti < net.num_transitions(); ++ti) {
        const auto& t = net.transition(TransitionId(ti));
        BitVec in_pre(P), in_post(P);
        for (const PlaceId p : t.preset) in_pre.set(p.index());
        for (const PlaceId p : t.postset) in_post.set(p.index());
        const std::size_t sig = P + t.edge.signal.index();

        Ref rel = Manager::kTrue;
        in_pre.for_each_set([&](std::size_t p) { rel = mgr.apply_and(rel, mgr.var(curv(p))); });
        // Consistency: the signal holds the pre-transition value.
        rel = mgr.apply_and(rel, t.edge.rising ? mgr.nvar(curv(sig)) : mgr.var(curv(sig)));
        for (std::size_t p = 0; p < P; ++p) {
            Ref next_val;
            if (in_post.test(p)) next_val = mgr.var(nxtv(p));
            else if (in_pre.test(p)) next_val = mgr.nvar(nxtv(p));
            else next_val = mgr.apply_xor(mgr.var(curv(p)), mgr.nvar(nxtv(p)));
            rel = mgr.apply_and(rel, next_val);
        }
        for (std::size_t i = P; i < N; ++i) {
            Ref next_val;
            if (i == sig) next_val = t.edge.rising ? mgr.var(nxtv(i)) : mgr.nvar(nxtv(i));
            else next_val = mgr.apply_xor(mgr.var(curv(i)), mgr.nvar(nxtv(i)));
            rel = mgr.apply_and(rel, next_val);
        }
        relations.push_back(rel);
    }

    // Initial state: marking + inferred code.
    const BitVec init_code = sg::infer_initial_code(net);
    Ref reached = Manager::kTrue;
    for (std::size_t p = 0; p < P; ++p) {
        if (net.initial_marking()[p] > 1)
            throw SpecError("symbolic CSC requires a safe initial marking");
        reached = mgr.apply_and(reached, net.initial_marking()[p] != 0 ? mgr.var(curv(p))
                                                                       : mgr.nvar(curv(p)));
    }
    for (std::size_t i = 0; i < S; ++i)
        reached = mgr.apply_and(
            reached, init_code.test(i) ? mgr.var(curv(P + i)) : mgr.nvar(curv(P + i)));

    BitVec current_mask(2 * N);
    for (std::size_t i = 0; i < N; ++i) current_mask.set(curv(i));
    std::vector<std::size_t> next_to_cur(2 * N);
    for (std::size_t i = 0; i < N; ++i) {
        next_to_cur[curv(i)] = curv(i);
        next_to_cur[nxtv(i)] = curv(i);
    }
    std::vector<std::size_t> cur_to_next(2 * N);
    for (std::size_t i = 0; i < N; ++i) {
        cur_to_next[curv(i)] = nxtv(i);
        cur_to_next[nxtv(i)] = nxtv(i);
    }

    Ref frontier = reached;
    while (frontier != Manager::kFalse) {
        Ref image = Manager::kFalse;
        for (const Ref rel : relations) {
            const Ref step = mgr.exists(mgr.apply_and(frontier, rel), current_mask);
            image = mgr.apply_or(image, mgr.rename(step, next_to_cur));
        }
        const Ref fresh = mgr.apply_and(image, mgr.apply_not(reached));
        reached = mgr.apply_or(reached, fresh);
        frontier = fresh;
    }

    result.reachable_states = mgr.sat_count(reached) / std::pow(2.0, static_cast<double>(N));

    // Pair the state space with a renamed copy sharing the same code.
    const Ref reached_copy = mgr.rename(reached, cur_to_next);
    Ref same_code = Manager::kTrue;
    for (std::size_t i = 0; i < S; ++i)
        same_code = mgr.apply_and(
            same_code,
            mgr.apply_not(mgr.apply_xor(mgr.var(curv(P + i)), mgr.var(nxtv(P + i)))));
    const Ref paired = mgr.apply_and(mgr.apply_and(reached, reached_copy), same_code);

    // USC: some paired states differ in marking.
    Ref marking_differs = Manager::kFalse;
    for (std::size_t p = 0; p < P; ++p)
        marking_differs = mgr.apply_or(
            marking_differs, mgr.apply_xor(mgr.var(curv(p)), mgr.var(nxtv(p))));
    result.usc = mgr.apply_and(paired, marking_differs) == Manager::kFalse;

    // CSC: excitation of some non-input signal differs on a shared code.
    for (std::size_t si_ = 0; si_ < S; ++si_) {
        if (!is_non_input(net.signals()[SignalId(si_)].kind)) continue;
        Ref excited = Manager::kFalse;
        for (std::size_t ti = 0; ti < net.num_transitions(); ++ti) {
            const auto& t = net.transition(TransitionId(ti));
            if (t.edge.signal.index() != si_) continue;
            Ref en = Manager::kTrue;
            for (const PlaceId p : t.preset) en = mgr.apply_and(en, mgr.var(curv(p.index())));
            excited = mgr.apply_or(excited, en);
        }
        const Ref excited_copy = mgr.rename(excited, cur_to_next);
        const Ref mismatch =
            mgr.apply_and(paired, mgr.apply_xor(excited, excited_copy));
        if (mismatch != Manager::kFalse) {
            result.csc = false;
            result.conflict_signal = net.signals()[SignalId(si_)].name;
            break;
        }
    }
}

} // namespace

SymbolicReachability symbolic_reachability(const stg::Stg& net, util::Budget* budget) {
    net.validate();
    Manager mgr(2 * net.num_places());
    SymbolicReachability result;
    std::optional<util::Budget::StageScope> scope;
    if (budget != nullptr) {
        scope.emplace(*budget, "bdd.reach");
        mgr.set_budget(budget);
    }
    try {
        reach_impl(net, mgr, result);
    } catch (const util::BudgetExhausted& e) {
        result.exhaustion = e.why();
        result.total_nodes = mgr.num_nodes();
    }
    return result;
}

SymbolicCsc symbolic_csc(const stg::Stg& net, util::Budget* budget) {
    net.validate();
    Manager mgr(2 * (net.num_places() + net.signals().size()));
    SymbolicCsc result;
    std::optional<util::Budget::StageScope> scope;
    if (budget != nullptr) {
        scope.emplace(*budget, "bdd.csc");
        mgr.set_budget(budget);
    }
    try {
        csc_impl(net, mgr, result);
    } catch (const util::BudgetExhausted& e) {
        result.exhaustion = e.why();
    }
    return result;
}

} // namespace si::bdd
