#include "si/bdd/bdd.hpp"

#include <cmath>

#include "si/obs/obs.hpp"
#include "si/util/error.hpp"

namespace si::bdd {

namespace {
// Terminal marker: larger than any real variable so terminals sort last.
constexpr std::uint32_t kTermVar = UINT32_MAX;
} // namespace

Manager::Manager(std::size_t num_vars) : nvars_(num_vars) {
    nodes_.push_back(Node{kTermVar, kFalse, kFalse}); // 0
    nodes_.push_back(Node{kTermVar, kTrue, kTrue});   // 1
}

Manager::~Manager() {
    if (!obs::enabled()) return;
    obs::count("bdd.managers");
    obs::count("bdd.nodes", nodes_.size() - 2); // minus the two terminals
    obs::count("bdd.ite_calls", ite_calls_);
    obs::count("bdd.ite_cache_hits", ite_cache_hits_);
}

Ref Manager::make(std::uint32_t var, Ref lo, Ref hi) {
    if (lo == hi) return lo; // reduction rule
    const NodeKey key{var, lo, hi};
    const auto it = unique_.find(key);
    if (it != unique_.end()) return it->second;
    if (budget_ != nullptr && !budget_->charge(util::Resource::BddNodes))
        throw util::BudgetExhausted(*budget_->failure());
    const Ref ref = static_cast<Ref>(nodes_.size());
    nodes_.push_back(Node{var, lo, hi});
    unique_.emplace(key, ref);
    return ref;
}

Ref Manager::var(std::size_t v) {
    require(v < nvars_, "BDD variable out of range");
    return make(static_cast<std::uint32_t>(v), kFalse, kTrue);
}

Ref Manager::nvar(std::size_t v) {
    require(v < nvars_, "BDD variable out of range");
    return make(static_cast<std::uint32_t>(v), kTrue, kFalse);
}

std::uint32_t Manager::top_var(Ref f, Ref g, Ref h) const {
    std::uint32_t v = nodes_[f].var;
    v = std::min(v, nodes_[g].var);
    v = std::min(v, nodes_[h].var);
    return v;
}

Ref Manager::ite(Ref f, Ref g, Ref h) {
    ++ite_calls_;
    // Terminal cases.
    if (f == kTrue) return g;
    if (f == kFalse) return h;
    if (g == h) return g;
    if (g == kTrue && h == kFalse) return f;

    const IteKey key{f, g, h};
    if (const auto it = ite_cache_.find(key); it != ite_cache_.end()) {
        ++ite_cache_hits_;
        return it->second;
    }

    const std::uint32_t v = top_var(f, g, h);
    auto cof = [&](Ref x, bool hi) {
        if (nodes_[x].var != v) return x;
        return hi ? nodes_[x].hi : nodes_[x].lo;
    };
    const Ref hi = ite(cof(f, true), cof(g, true), cof(h, true));
    const Ref lo = ite(cof(f, false), cof(g, false), cof(h, false));
    const Ref out = make(v, lo, hi);
    ite_cache_.emplace(key, out);
    return out;
}

Ref Manager::restrict_var(Ref f, std::size_t v, bool value) {
    std::unordered_map<Ref, Ref> memo;
    auto walk = [&](auto&& self, Ref x) -> Ref {
        if (x <= kTrue) return x;
        const Node n = nodes_[x];
        if (n.var > v) return x; // v does not occur below
        if (n.var == v) return value ? n.hi : n.lo;
        if (const auto it = memo.find(x); it != memo.end()) return it->second;
        const Ref lo = self(self, n.lo);
        const Ref hi = self(self, n.hi);
        const Ref out = make(n.var, lo, hi);
        memo.emplace(x, out);
        return out;
    };
    return walk(walk, f);
}

Ref Manager::exists(Ref f, const BitVec& vars) {
    require(vars.size() == nvars_, "quantifier mask width mismatch");
    std::unordered_map<Ref, Ref> memo;
    auto walk = [&](auto&& self, Ref x) -> Ref {
        if (x <= kTrue) return x;
        if (const auto it = memo.find(x); it != memo.end()) return it->second;
        const Node n = nodes_[x];
        const Ref lo = self(self, n.lo);
        const Ref hi = self(self, n.hi);
        const Ref out = vars.test(n.var) ? apply_or(lo, hi) : make(n.var, lo, hi);
        memo.emplace(x, out);
        return out;
    };
    return walk(walk, f);
}

Ref Manager::rename(Ref f, const std::vector<std::size_t>& map) {
    require(map.size() == nvars_, "rename map width mismatch");
    std::unordered_map<Ref, Ref> memo;
    auto walk = [&](auto&& self, Ref x) -> Ref {
        if (x <= kTrue) return x;
        if (const auto it = memo.find(x); it != memo.end()) return it->second;
        const Node n = nodes_[x];
        const Ref lo = self(self, n.lo);
        const Ref hi = self(self, n.hi);
        // The map is monotone on the support, so rebuilding bottom-up
        // with make() keeps the order invariant.
        const Ref out = make(static_cast<std::uint32_t>(map[n.var]), lo, hi);
        memo.emplace(x, out);
        return out;
    };
    return walk(walk, f);
}

bool Manager::eval(Ref f, const BitVec& assignment) const {
    require(assignment.size() == nvars_, "assignment width mismatch");
    while (f > kTrue) {
        const Node& n = nodes_[f];
        f = assignment.test(n.var) ? n.hi : n.lo;
    }
    return f == kTrue;
}

double Manager::sat_count(Ref f) {
    // count(f) over the remaining variables below f's top var, then
    // scaled to all variables.
    std::unordered_map<Ref, double> memo;
    // fractional density: fraction of assignments satisfying f.
    auto density = [&](auto&& self, Ref x) -> double {
        if (x == kFalse) return 0.0;
        if (x == kTrue) return 1.0;
        if (const auto it = memo.find(x); it != memo.end()) return it->second;
        const Node& n = nodes_[x];
        const double d = 0.5 * self(self, n.lo) + 0.5 * self(self, n.hi);
        memo.emplace(x, d);
        return d;
    };
    return density(density, f) * std::pow(2.0, static_cast<double>(nvars_));
}

BitVec Manager::any_sat(Ref f) const {
    require(f != kFalse, "any_sat on the empty set");
    BitVec out(nvars_);
    while (f > kTrue) {
        const Node& n = nodes_[f];
        if (n.lo != kFalse) {
            f = n.lo;
        } else {
            out.set(n.var);
            f = n.hi;
        }
    }
    return out;
}

std::size_t Manager::size(Ref f) const {
    std::vector<Ref> stack{f};
    std::unordered_map<Ref, bool> seen;
    std::size_t count = 0;
    while (!stack.empty()) {
        const Ref x = stack.back();
        stack.pop_back();
        if (!seen.emplace(x, true).second) continue;
        ++count;
        if (x > kTrue) {
            stack.push_back(nodes_[x].lo);
            stack.push_back(nodes_[x].hi);
        }
    }
    return count;
}

} // namespace si::bdd
