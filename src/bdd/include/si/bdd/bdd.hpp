// Reduced Ordered Binary Decision Diagrams.
//
// A compact ROBDD manager: hash-consed nodes, memoized ITE, existential
// quantification, variable substitution and satisfying-assignment
// counting. Variable order is the creation order (no dynamic
// reordering); there is no garbage collection — managers are scoped to
// one analysis and dropped whole, which is how the symbolic reachability
// layer uses them.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "si/util/bitvec.hpp"
#include "si/util/budget.hpp"

namespace si::bdd {

/// Index into the manager's node table. 0 and 1 are the terminals.
using Ref = std::uint32_t;

class Manager {
public:
    static constexpr Ref kFalse = 0;
    static constexpr Ref kTrue = 1;

    explicit Manager(std::size_t num_vars);
    /// Flushes this manager's node/ITE statistics to the obs metrics
    /// registry ("bdd.*" counters) when metrics are enabled.
    ~Manager();
    Manager(const Manager&) = delete;
    Manager& operator=(const Manager&) = delete;

    [[nodiscard]] std::size_t num_vars() const { return nvars_; }
    /// Total live nodes (including terminals).
    [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }

    /// Attaches a governance budget (may be null to detach). Every node
    /// allocation charges one util::Resource::BddNodes unit; once the
    /// budget is exhausted, the next allocation throws
    /// util::BudgetExhausted — the recursive ITE has no way to return a
    /// partial diagram, so the owning analysis catches at its boundary
    /// and reports an Exhausted outcome.
    void set_budget(util::Budget* budget) { budget_ = budget; }

    /// The function of variable v / its complement.
    [[nodiscard]] Ref var(std::size_t v);
    [[nodiscard]] Ref nvar(std::size_t v);

    /// If-then-else — the universal connective.
    [[nodiscard]] Ref ite(Ref f, Ref g, Ref h);

    [[nodiscard]] Ref apply_and(Ref f, Ref g) { return ite(f, g, kFalse); }
    [[nodiscard]] Ref apply_or(Ref f, Ref g) { return ite(f, kTrue, g); }
    [[nodiscard]] Ref apply_xor(Ref f, Ref g) { return ite(f, apply_not(g), g); }
    [[nodiscard]] Ref apply_not(Ref f) { return ite(f, kFalse, kTrue); }
    [[nodiscard]] Ref apply_imp(Ref f, Ref g) { return ite(f, g, kTrue); }

    /// f with variable v fixed to `value` (the cofactor).
    [[nodiscard]] Ref restrict_var(Ref f, std::size_t v, bool value);

    /// ∃ v ∈ vars . f (vars as a bit mask over the variable space).
    [[nodiscard]] Ref exists(Ref f, const BitVec& vars);

    /// f with every variable v replaced by variable map[v] (map must be
    /// injective and monotone w.r.t. the order on the mapped range —
    /// true for the interleaved current/next schemes used here).
    [[nodiscard]] Ref rename(Ref f, const std::vector<std::size_t>& map);

    /// Value of f on a complete assignment.
    [[nodiscard]] bool eval(Ref f, const BitVec& assignment) const;

    /// Number of satisfying assignments over all num_vars() variables.
    [[nodiscard]] double sat_count(Ref f);

    /// One satisfying assignment (lexicographically least by variable
    /// order); f must not be kFalse.
    [[nodiscard]] BitVec any_sat(Ref f) const;

    /// Node count of the BDD rooted at f (measure of its size).
    [[nodiscard]] std::size_t size(Ref f) const;

    /// ITE statistics, for the obs layer and the perf benchmarks.
    [[nodiscard]] std::uint64_t ite_calls() const { return ite_calls_; }
    [[nodiscard]] std::uint64_t ite_cache_hits() const { return ite_cache_hits_; }

private:
    struct Node {
        std::uint32_t var;
        Ref lo;
        Ref hi;
    };
    struct NodeKey {
        std::uint32_t var;
        Ref lo;
        Ref hi;
        friend bool operator==(const NodeKey&, const NodeKey&) = default;
    };
    struct NodeKeyHash {
        std::size_t operator()(const NodeKey& k) const noexcept {
            std::size_t h = k.var;
            h = h * 1000003u ^ k.lo;
            h = h * 1000003u ^ k.hi;
            return h;
        }
    };
    struct IteKey {
        Ref f, g, h;
        friend bool operator==(const IteKey&, const IteKey&) = default;
    };
    struct IteKeyHash {
        std::size_t operator()(const IteKey& k) const noexcept {
            std::size_t x = k.f;
            x = x * 1000003u ^ k.g;
            x = x * 1000003u ^ k.h;
            return x;
        }
    };

    Ref make(std::uint32_t var, Ref lo, Ref hi);
    [[nodiscard]] std::uint32_t top_var(Ref f, Ref g, Ref h) const;

    std::size_t nvars_;
    std::vector<Node> nodes_;
    std::unordered_map<NodeKey, Ref, NodeKeyHash> unique_;
    std::unordered_map<IteKey, Ref, IteKeyHash> ite_cache_;
    util::Budget* budget_ = nullptr;
    std::uint64_t ite_calls_ = 0;
    std::uint64_t ite_cache_hits_ = 0;
};

} // namespace si::bdd
