// Symbolic (BDD-based) reachability for safe STGs.
//
// The explicit token game enumerates markings one by one; for highly
// concurrent nets (the fork-join family) that is exponential in the
// width. Here markings are sets encoded as BDDs over one variable per
// place (current/next interleaved), the transition relation is a
// disjunction of per-transition relations, and reachability is the usual
// image fixpoint — the states of a 2^20-marking net fit in a few
// thousand BDD nodes.
#pragma once

#include <optional>

#include "si/bdd/bdd.hpp"
#include "si/stg/stg.hpp"
#include "si/util/budget.hpp"

namespace si::bdd {

struct SymbolicReachability {
    /// Number of reachable markings (exact while below 2^53).
    double reachable_markings = 0;
    /// Breadth-first image iterations to the fixpoint.
    std::size_t iterations = 0;
    /// Nodes in the manager when done (memory proxy).
    std::size_t total_nodes = 0;
    /// BDD size of the reachable-set characteristic function.
    std::size_t set_nodes = 0;
    /// False when some reachable marking enables a transition that would
    /// put a second token on a place (the net is not safe; counts beyond
    /// that point follow the safe-net semantics and may differ from the
    /// counted token game).
    bool safe = true;
    /// Set when the BDD node budget ran out: every count above reflects
    /// only the work done up to that point.
    std::optional<util::Exhaustion> exhaustion;

    [[nodiscard]] bool complete() const { return !exhaustion.has_value(); }
};

/// Computes the reachable markings of a *safe* STG symbolically. The
/// optional budget caps BDD node allocations (stage "bdd.reach"); on
/// exhaustion the result carries the Exhaustion instead of throwing.
[[nodiscard]] SymbolicReachability symbolic_reachability(const stg::Stg& net,
                                                         util::Budget* budget = nullptr);

struct SymbolicCsc {
    /// True when every pair of reachable states sharing a signal code
    /// has identical excited non-input signals (Def 14).
    bool csc = true;
    /// True when all reachable codes are distinct (USC).
    bool usc = true;
    /// A non-input signal whose excitation differs on a shared code
    /// (empty when csc holds).
    std::string conflict_signal;
    double reachable_states = 0;
    /// Set when the BDD node budget ran out (csc/usc are then unknown).
    std::optional<util::Exhaustion> exhaustion;

    [[nodiscard]] bool complete() const { return !exhaustion.has_value(); }
};

/// CSC/USC over the symbolic state space: state variables are the
/// places *and* the signal values, so code comparisons quantify the
/// places away instead of enumerating markings. Works on safe STGs of a
/// width far beyond the explicit builder. Budget as in
/// symbolic_reachability (stage "bdd.csc").
[[nodiscard]] SymbolicCsc symbolic_csc(const stg::Stg& net, util::Budget* budget = nullptr);

} // namespace si::bdd
