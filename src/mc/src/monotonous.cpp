#include "si/mc/monotonous.hpp"

#include <deque>

#include "si/mc/cover_cube.hpp"
#include "si/sg/dot.hpp"

namespace si::mc {

std::string McViolation::describe(const sg::RegionAnalysis& ra) const {
    const auto& sg = ra.graph();
    std::string out = ra.region(region).label(sg) + ": ";
    switch (kind) {
    case McFailure::NotACoverCube: out += "not a cover cube (literal on a concurrent signal)"; break;
    case McFailure::UncoveredEr: out += "cube misses ER states"; break;
    case McFailure::NonMonotonic: out += "cube changes twice on a CFR trace"; break;
    case McFailure::CoversOutsideCfr: out += "cube covers reachable states outside the CFR"; break;
    case McFailure::IncorrectCover: out += "cube covers states where the excitation function must be 0"; break;
    }
    if (!states.empty()) {
        out += ":";
        for (const auto s : states) out += " " + sg.state_label(s);
    }
    return out;
}

std::string McViolation::describe_with_trace(const sg::RegionAnalysis& ra) const {
    std::string out = describe(ra);
    if (!states.empty()) {
        if (const auto path = sg::shortest_path(ra.graph(), ra.graph().initial(), states.front())) {
            out += "\n    reached by:";
            if (path->empty()) out += " (initial state)";
            for (const auto& step : *path) out += " " + step;
        }
    }
    return out;
}

namespace {

// Condition 2 of Def 17 restricted to one CFR: the cube may change at
// most once along any trace through the CFR. Every trace enters through
// the ER, where the cube is 1 (condition 1), so the single permitted
// change is a fall inside the quiescent part — equivalently, no arc
// *inside* the CFR may raise the cube from 0 to 1. (The rising edge of
// the region function happens on the trigger arcs crossing into the ER
// from outside the CFR.) The boundary case this stronger form settles is
// a quiescent region shared between two excitation regions of the same
// transition: a cube rising there is a gate pulse no latch acknowledges,
// even though some in-CFR path sees only one change.
//
// `cov` is the covered-state set of the cube/sum over the reachable part
// (the CFR is reachable, so bit tests on it equal function evaluation).
std::vector<StateId> find_rise_inside(const sg::StateGraph& sg, const BitVec& cfr,
                                      const BitVec& cov) {
    for (std::uint32_t ai = 0; ai < sg.num_arcs(); ++ai) {
        const auto& a = sg.arc(ai);
        if (!cfr.test(a.from.index()) || !cfr.test(a.to.index())) continue;
        if (!cov.test(a.from.index()) && cov.test(a.to.index()))
            return {a.from, a.to}; // rises inside the CFR
    }
    return {};
}

// Condition 1: ER states the cover misses, in state order.
std::vector<StateId> missed_er_states(const sg::Region& region, const BitVec& cov) {
    BitVec missed = region.states;
    missed.and_not(cov);
    std::vector<StateId> out;
    missed.for_each_set([&](std::size_t si) { out.emplace_back(si); });
    return out;
}

} // namespace

std::vector<McViolation> check_monotonous_cover(const sg::RegionAnalysis& ra, RegionId r,
                                                const Cube& c) {
    const auto& sg = ra.graph();
    const auto& region = ra.region(r);
    std::vector<McViolation> out;

    if (!is_cover_cube(ra, r, c)) {
        out.push_back(McViolation{McFailure::NotACoverCube, r, {}});
        return out;
    }

    // One covered-state set feeds all three conditions.
    const BitVec cov = covered_states(ra, c);

    // Condition 1: cover all ER states.
    if (auto missed = missed_er_states(region, cov); !missed.empty())
        out.push_back(McViolation{McFailure::UncoveredEr, r, std::move(missed)});

    // Condition 2: at most one change on any trace within the CFR.
    if (auto flips = find_rise_inside(sg, region.cfr, cov); !flips.empty())
        out.push_back(McViolation{McFailure::NonMonotonic, r, std::move(flips)});

    // Condition 3: no covered reachable state outside the CFR.
    BitVec outside = cov;
    outside.and_not(region.cfr);
    if (outside.any()) {
        std::vector<StateId> bad;
        outside.for_each_set([&](std::size_t si) { bad.emplace_back(si); });
        out.push_back(McViolation{McFailure::CoversOutsideCfr, r, std::move(bad)});
    }
    return out;
}

namespace {

// Word-level c ⊇ o: c's literals are a subset of o's with matching
// polarity. Equivalent to Cube::covers without the temporary BitVec.
bool cube_covers(const Cube& c, const Cube& o) {
    const std::size_t nw = c.mask().num_words();
    const std::uint64_t* cm = c.mask().word_data();
    const std::uint64_t* cv = c.polarity().word_data();
    const std::uint64_t* om = o.mask().word_data();
    const std::uint64_t* ov = o.polarity().word_data();
    for (std::size_t w = 0; w < nw; ++w) {
        if (cm[w] & ~om[w]) return false;
        if ((cv[w] ^ ov[w]) & cm[w]) return false;
    }
    return true;
}

} // namespace

McRegionCache::McRegionCache(const sg::RegionAnalysis& ra, RegionId r)
    : smallest(smallest_cover_cube(ra, r)) {
    const auto& sg = ra.graph();
    const auto& region = ra.region(r);
    const BitVec& cfr = region.cfr;
    for (std::uint32_t ai = 0; ai < sg.num_arcs(); ++ai) {
        const auto& a = sg.arc(ai);
        if (cfr.test(a.from.index()) && cfr.test(a.to.index()))
            cfr_arcs.emplace_back(a.from, a.to);
    }
    forbidden = region.rising ? (ra.set_excited1(region.signal) | ra.set_stable0(region.signal))
                              : (ra.set_excited0(region.signal) | ra.set_stable1(region.signal));
}

McVerdict quick_monotonous_cover(const sg::RegionAnalysis& ra, RegionId r, const Cube& c,
                                 const McRegionCache& cache) {
    if (!cube_covers(c, cache.smallest)) return McVerdict::Fail; // Def 15
    covered_states_into(ra, c, cache.cov);
    const auto& region = ra.region(r);
    if (!region.states.is_subset_of(cache.cov)) return McVerdict::Fail; // condition 1
    if (!cache.cov.is_subset_of(region.cfr)) return McVerdict::Fail;    // condition 3
    for (const auto& [from, to] : cache.cfr_arcs)
        if (!cache.cov.test(from.index()) && cache.cov.test(to.index()))
            return McVerdict::NonMonotonicOnly; // condition 2
    return McVerdict::Cover;
}

McVerdict quick_generalized_mc(const sg::RegionAnalysis& ra, std::span<const RegionId> regions,
                               const Cube& c, std::span<const McRegionCache> caches) {
    covered_states_into(ra, c, caches[0].cov);
    const BitVec& cov = caches[0].cov;
    bool mono = false;
    for (std::size_t gi = 0; gi < regions.size(); ++gi) {
        const auto& region = ra.region(regions[gi]);
        const McRegionCache& cache = caches[gi];
        if (!cube_covers(c, cache.smallest)) return McVerdict::Fail;        // Def 15
        if (!region.states.is_subset_of(cov)) return McVerdict::Fail;       // condition 1
        if (cov.intersects(cache.forbidden)) return McVerdict::Fail;        // Def 16
        if (!mono) {
            for (const auto& [from, to] : cache.cfr_arcs) {
                if (!cov.test(from.index()) && cov.test(to.index())) {
                    mono = true;
                    break;
                }
            }
        }
    }
    // Condition 3 against the union of the CFRs.
    BitVec& all_cfr = caches[0].tmp;
    all_cfr = ra.region(regions[0]).cfr;
    for (std::size_t gi = 1; gi < regions.size(); ++gi) all_cfr |= ra.region(regions[gi]).cfr;
    if (!cov.is_subset_of(all_cfr)) return McVerdict::Fail;
    return mono ? McVerdict::NonMonotonicOnly : McVerdict::Cover;
}

std::vector<McViolation> check_monotonous_cover(const sg::RegionAnalysis& ra, RegionId r,
                                                const Cube& c, const McRegionCache& cache) {
    const auto& region = ra.region(r);
    std::vector<McViolation> out;

    // Def 15: c's literals ⊆ smallest cube's literals ⟺ c ⊇ smallest.
    if (!c.covers(cache.smallest)) {
        out.push_back(McViolation{McFailure::NotACoverCube, r, {}});
        return out;
    }

    const BitVec cov = covered_states(ra, c);

    if (auto missed = missed_er_states(region, cov); !missed.empty())
        out.push_back(McViolation{McFailure::UncoveredEr, r, std::move(missed)});

    // Condition 2 over the precomputed in-CFR arcs (same arc order as
    // the full scan, so the witness pair is identical).
    for (const auto& [from, to] : cache.cfr_arcs) {
        if (!cov.test(from.index()) && cov.test(to.index())) {
            out.push_back(McViolation{McFailure::NonMonotonic, r, {from, to}});
            break;
        }
    }

    BitVec outside = cov;
    outside.and_not(region.cfr);
    if (outside.any()) {
        std::vector<StateId> bad;
        outside.for_each_set([&](std::size_t si) { bad.emplace_back(si); });
        out.push_back(McViolation{McFailure::CoversOutsideCfr, r, std::move(bad)});
    }
    return out;
}

std::vector<McViolation> check_elementary_sum(const sg::RegionAnalysis& ra, RegionId r,
                                              const Cover& sum) {
    const auto& sg = ra.graph();
    const auto& region = ra.region(r);
    std::vector<McViolation> out;

    // Only bare literals may feed the OR gate directly.
    for (const auto& c : sum.cubes())
        if (c.literal_count() != 1)
            out.push_back(McViolation{McFailure::NotACoverCube, r, {}});

    const BitVec cov = covered_states(ra, sum);

    if (auto missed = missed_er_states(region, cov); !missed.empty())
        out.push_back(McViolation{McFailure::UncoveredEr, r, std::move(missed)});

    if (auto flips = find_rise_inside(sg, region.cfr, cov); !flips.empty())
        out.push_back(McViolation{McFailure::NonMonotonic, r, std::move(flips)});

    // Nothing covered outside the CFR, and correct covering (Def 16).
    const BitVec forbidden = region.rising
                                 ? (ra.set_excited1(region.signal) | ra.set_stable0(region.signal))
                                 : (ra.set_excited0(region.signal) | ra.set_stable1(region.signal));
    BitVec outside_bv = cov;
    outside_bv.and_not(region.cfr);
    const BitVec incorrect_bv = cov & forbidden;
    std::vector<StateId> outside, incorrect;
    outside_bv.for_each_set([&](std::size_t si) { outside.emplace_back(si); });
    incorrect_bv.for_each_set([&](std::size_t si) { incorrect.emplace_back(si); });
    if (!outside.empty())
        out.push_back(McViolation{McFailure::CoversOutsideCfr, r, std::move(outside)});
    if (!incorrect.empty())
        out.push_back(McViolation{McFailure::IncorrectCover, r, std::move(incorrect)});
    return out;
}

std::optional<Cover> find_elementary_sum(const sg::RegionAnalysis& ra, RegionId r) {
    const auto& sg = ra.graph();
    const auto& region = ra.region(r);
    if (region.triggers.empty()) return std::nullopt;
    Cover sum(sg.num_signals());
    for (const auto& t : region.triggers) {
        Cube lit(sg.num_signals());
        lit.set_lit(t.signal, t.rising ? Lit::One : Lit::Zero);
        bool duplicate = false;
        for (const auto& c : sum.cubes()) duplicate = duplicate || c == lit;
        if (!duplicate) sum.add(std::move(lit));
    }
    if (check_elementary_sum(ra, r, sum).empty()) return sum;
    return std::nullopt;
}

std::vector<McViolation> check_generalized_mc(const sg::RegionAnalysis& ra,
                                              std::span<const RegionId> regions, const Cube& c) {
    const auto& sg = ra.graph();
    std::vector<McViolation> out;
    BitVec all_cfr(sg.num_states());

    // One covered-state set serves every region and the union condition.
    const BitVec cov = covered_states(ra, c);

    for (const RegionId r : regions) {
        const auto& region = ra.region(r);
        all_cfr |= region.cfr;

        if (!is_cover_cube(ra, r, c)) {
            out.push_back(McViolation{McFailure::NotACoverCube, r, {}});
            continue;
        }
        if (auto missed = missed_er_states(region, cov); !missed.empty())
            out.push_back(McViolation{McFailure::UncoveredEr, r, std::move(missed)});
        if (auto flips = find_rise_inside(sg, region.cfr, cov); !flips.empty())
            out.push_back(McViolation{McFailure::NonMonotonic, r, std::move(flips)});
        // Correct covering per region (Def 16): a cube shared into
        // another signal's excitation function must still evaluate to 0
        // wherever that function is required to be 0 — the union-of-CFRs
        // condition below does not guarantee it across signals.
        const BitVec forbidden =
            region.rising ? (ra.set_excited1(region.signal) | ra.set_stable0(region.signal))
                          : (ra.set_excited0(region.signal) | ra.set_stable1(region.signal));
        const BitVec bad_bv = cov & forbidden;
        if (bad_bv.any()) {
            std::vector<StateId> bad;
            bad_bv.for_each_set([&](std::size_t si) { bad.emplace_back(si); });
            out.push_back(McViolation{McFailure::IncorrectCover, r, std::move(bad)});
        }
    }

    // Condition 3 against the union of the CFRs.
    BitVec outside = cov;
    outside.and_not(all_cfr);
    if (outside.any()) {
        std::vector<StateId> bad;
        outside.for_each_set([&](std::size_t si) { bad.emplace_back(si); });
        out.push_back(McViolation{McFailure::CoversOutsideCfr,
                                  regions.empty() ? RegionId::invalid() : regions[0],
                                  std::move(bad)});
    }
    return out;
}

std::vector<McViolation> check_generalized_mc(const sg::RegionAnalysis& ra,
                                              std::span<const RegionId> regions, const Cube& c,
                                              std::span<const McRegionCache> caches) {
    const auto& sg = ra.graph();
    std::vector<McViolation> out;
    BitVec all_cfr(sg.num_states());

    const BitVec cov = covered_states(ra, c);

    for (std::size_t gi = 0; gi < regions.size(); ++gi) {
        const RegionId r = regions[gi];
        const auto& region = ra.region(r);
        const McRegionCache& cache = caches[gi];
        all_cfr |= region.cfr;

        if (!c.covers(cache.smallest)) {
            out.push_back(McViolation{McFailure::NotACoverCube, r, {}});
            continue;
        }
        if (auto missed = missed_er_states(region, cov); !missed.empty())
            out.push_back(McViolation{McFailure::UncoveredEr, r, std::move(missed)});
        for (const auto& [from, to] : cache.cfr_arcs) {
            if (!cov.test(from.index()) && cov.test(to.index())) {
                out.push_back(McViolation{McFailure::NonMonotonic, r, {from, to}});
                break;
            }
        }
        const BitVec forbidden =
            region.rising ? (ra.set_excited1(region.signal) | ra.set_stable0(region.signal))
                          : (ra.set_excited0(region.signal) | ra.set_stable1(region.signal));
        const BitVec bad_bv = cov & forbidden;
        if (bad_bv.any()) {
            std::vector<StateId> bad;
            bad_bv.for_each_set([&](std::size_t si) { bad.emplace_back(si); });
            out.push_back(McViolation{McFailure::IncorrectCover, r, std::move(bad)});
        }
    }

    BitVec outside = cov;
    outside.and_not(all_cfr);
    if (outside.any()) {
        std::vector<StateId> bad;
        outside.for_each_set([&](std::size_t si) { bad.emplace_back(si); });
        out.push_back(McViolation{McFailure::CoversOutsideCfr,
                                  regions.empty() ? RegionId::invalid() : regions[0],
                                  std::move(bad)});
    }
    return out;
}

} // namespace si::mc
