#include "si/mc/cover_cube.hpp"

#include <deque>

#include "si/util/error.hpp"
#include "si/util/parallel.hpp"

namespace si::mc {

Cube smallest_cover_cube(const sg::RegionAnalysis& ra, RegionId r) {
    const auto& sg = ra.graph();
    const auto& region = ra.region(r);
    Cube c(sg.num_signals());
    // Any region state gives the constant values of ordered signals.
    const std::size_t sample = region.states.find_first();
    require(sample < sg.num_states(), "empty excitation region");
    region.ordered_signals.for_each_set([&](std::size_t vi) {
        c.set_lit(SignalId(vi),
                  sg.value(StateId(sample), SignalId(vi)) ? Lit::One : Lit::Zero);
    });
    return c;
}

bool is_cover_cube(const sg::RegionAnalysis& ra, RegionId r, const Cube& c) {
    // Every literal of c must be a literal of the smallest cover cube:
    // an ordered signal at its constant value over the ER.
    const Cube smallest = smallest_cover_cube(ra, r);
    for (std::size_t v = 0; v < c.num_vars(); ++v) {
        const Lit l = c.lit(SignalId(v));
        if (l == Lit::Dash) continue;
        if (smallest.lit(SignalId(v)) != l) return false;
    }
    return true;
}

void covered_states_into(const sg::RegionAnalysis& ra, const Cube& c, BitVec& out) {
    const auto& sg = ra.graph();
    out = ra.reachable();
    c.mask().for_each_set([&](std::size_t vi) {
        if (c.polarity().test(vi))
            out &= sg.value_set(SignalId(vi));
        else
            out.and_not(sg.value_set(SignalId(vi)));
    });
}

BitVec covered_states(const sg::RegionAnalysis& ra, const Cube& c) {
    const auto& sg = ra.graph();
    if (util::fast_path()) {
        BitVec out;
        covered_states_into(ra, c, out);
        return out;
    }
    BitVec out(sg.num_states());
    ra.reachable().for_each_set([&](std::size_t si) {
        if (c.contains_minterm(sg.state(StateId(si)).code)) out.set(si);
    });
    return out;
}

BitVec covered_states(const sg::RegionAnalysis& ra, const Cover& f) {
    const auto& sg = ra.graph();
    if (util::fast_path()) {
        BitVec out(sg.num_states());
        for (const auto& c : f.cubes()) out |= covered_states(ra, c);
        return out;
    }
    BitVec out(sg.num_states());
    ra.reachable().for_each_set([&](std::size_t si) {
        if (f.eval(sg.state(StateId(si)).code)) out.set(si);
    });
    return out;
}

std::vector<StateId> incorrect_cover_states(const sg::RegionAnalysis& ra, RegionId r,
                                            const Cube& c) {
    const auto& region = ra.region(r);
    const SignalId a = region.signal;
    // Zones where the excitation function must be 0 (Def 13):
    //   up   : 1*-set(a) ∪ 0-set(a)
    //   down : 0*-set(a) ∪ 1-set(a)
    BitVec forbidden = region.rising ? (ra.set_excited1(a) | ra.set_stable0(a))
                                     : (ra.set_excited0(a) | ra.set_stable1(a));
    BitVec bad = covered_states(ra, c);
    bad &= forbidden;
    std::vector<StateId> out;
    bad.for_each_set([&](std::size_t si) { out.emplace_back(si); });
    return out;
}

std::vector<StateId> offending_cover_states(const sg::RegionAnalysis& ra,
                                            std::span<const RegionId> regions,
                                            const Cube& cube) {
    const auto& sg = ra.graph();
    const BitVec covered = covered_states(ra, cube);

    BitVec all_cfr(sg.num_states());
    for (const RegionId r : regions) all_cfr |= ra.region(r).cfr;
    BitVec bad = covered;
    bad.and_not(all_cfr);

    for (const RegionId rid : regions) {
        const auto& region = ra.region(rid);
        // Re-rises: covered CFR states reachable (inside this CFR) from a
        // CFR state the cube does not cover.
        BitVec zero_in_cfr(sg.num_states());
        region.cfr.for_each_set([&](std::size_t si) {
            if (!covered.test(si)) zero_in_cfr.set(si);
        });
        BitVec after_zero(sg.num_states());
        std::deque<StateId> queue;
        zero_in_cfr.for_each_set([&](std::size_t si) { queue.emplace_back(si); });
        while (!queue.empty()) {
            const StateId s = queue.front();
            queue.pop_front();
            for (const auto a : sg.out_arcs(s)) {
                const StateId t = sg.arc(a).to;
                if (region.cfr.test(t.index()) && !after_zero.test(t.index())) {
                    after_zero.set(t.index());
                    queue.push_back(t);
                }
            }
        }
        after_zero &= covered;
        bad |= after_zero;
    }

    std::vector<StateId> out;
    bad.for_each_set([&](std::size_t si) { out.emplace_back(si); });
    return out;
}

std::optional<StateId> check_consistent_excitation(const sg::RegionAnalysis& ra, SignalId a,
                                                   bool up, const Cover& f) {
    const auto& sg = ra.graph();
    const BitVec& must_one = up ? ra.set_excited0(a) : ra.set_excited1(a);
    const BitVec must_zero = up ? (ra.set_excited1(a) | ra.set_stable0(a))
                                : (ra.set_excited0(a) | ra.set_stable1(a));
    if (util::fast_path()) {
        const BitVec cov = covered_states(ra, f);
        BitVec missed = must_one;
        missed.and_not(cov);
        if (const auto si = missed.find_first(); si < missed.size()) return StateId(si);
        const BitVec wrong = must_zero & cov;
        if (const auto si = wrong.find_first(); si < wrong.size()) return StateId(si);
        return std::nullopt;
    }
    std::optional<StateId> bad;
    must_one.for_each_set([&](std::size_t si) {
        if (!bad && !f.eval(sg.state(StateId(si)).code)) bad = StateId(si);
    });
    must_zero.for_each_set([&](std::size_t si) {
        if (!bad && f.eval(sg.state(StateId(si)).code)) bad = StateId(si);
    });
    return bad;
}

} // namespace si::mc
