#include "si/mc/certificate.hpp"

#include <algorithm>
#include <map>

#include "si/util/error.hpp"

namespace si::mc {

std::string Certificate::to_text(const SignalTable& signals) const {
    std::string out = "certificate for '" + graph_name + "' (" + std::to_string(num_states) +
                      " states, " + std::to_string(num_arcs) + " arcs)\n";
    const auto names = signals.names();
    for (const auto& claim : claims) {
        out += "  ER(" + std::string(claim.rising ? "+" : "-") + signals[claim.signal].name +
               "," + std::to_string(claim.instance) + "): ";
        if (claim.cube) {
            out += "cube " + claim.cube->to_expr(names);
            if (!claim.shared_instances.empty()) {
                out += " (shared with instances";
                for (const int i : claim.shared_instances) out += " " + std::to_string(i);
                out += ")";
            }
        } else {
            out += "elementary sum";
            for (const auto& lit : claim.sum_literals) out += " " + lit.to_expr(names);
        }
        out += "\n";
    }
    return out;
}

Certificate make_certificate(const sg::RegionAnalysis& ra, const McReport& report) {
    require(report.satisfied(), "cannot certify an unsatisfied MC report");
    Certificate cert;
    cert.graph_name = ra.graph().name;
    cert.num_states = ra.graph().num_states();
    cert.num_arcs = ra.graph().num_arcs();
    for (const auto& rmc : report.regions) {
        const auto& region = ra.region(rmc.region);
        RegionClaim claim;
        claim.signal = region.signal;
        claim.rising = region.rising;
        claim.instance = region.instance;
        claim.cube = rmc.cube;
        claim.sum_literals = rmc.sum_literals;
        for (const RegionId other : rmc.shared_with)
            if (other != rmc.region) claim.shared_instances.push_back(ra.region(other).instance);
        cert.claims.push_back(std::move(claim));
    }
    return cert;
}

CertificateCheck check_certificate(const sg::StateGraph& graph, const Certificate& cert) {
    if (graph.num_states() != cert.num_states || graph.num_arcs() != cert.num_arcs)
        return {false, "graph fingerprint mismatch (certificate is for a different graph)"};

    const sg::RegionAnalysis ra(graph);
    // Index claims by (signal, polarity, instance).
    std::map<std::tuple<std::size_t, bool, int>, const RegionClaim*> by_key;
    for (const auto& claim : cert.claims) {
        const auto key = std::make_tuple(claim.signal.index(), claim.rising, claim.instance);
        if (!by_key.emplace(key, &claim).second)
            return {false, "duplicate claim for one excitation region"};
    }

    for (std::size_t ri = 0; ri < ra.regions().size(); ++ri) {
        const RegionId rid{ri};
        const auto& region = ra.region(rid);
        if (!is_non_input(graph.signals()[region.signal].kind)) continue;
        const auto key =
            std::make_tuple(region.signal.index(), region.rising, region.instance);
        const auto it = by_key.find(key);
        if (it == by_key.end())
            return {false, "no claim covers " + region.label(graph)};
        const RegionClaim& claim = *it->second;

        if (claim.cube && !claim.shared_instances.empty()) {
            // Generalized MC over the recorded sibling group.
            std::vector<RegionId> group{rid};
            for (const int inst : claim.shared_instances) {
                bool found = false;
                for (std::size_t rj = 0; rj < ra.regions().size(); ++rj) {
                    const auto& other = ra.region(RegionId(rj));
                    if (other.signal == region.signal && other.rising == region.rising &&
                        other.instance == inst) {
                        group.push_back(RegionId(rj));
                        found = true;
                    }
                }
                if (!found)
                    return {false, "claim for " + region.label(graph) +
                                       " names a missing sibling instance"};
            }
            if (const auto vio = check_generalized_mc(ra, group, *claim.cube); !vio.empty())
                return {false, "shared cube fails for " + region.label(graph) + ": " +
                                   vio.front().describe(ra)};
        } else if (claim.cube) {
            if (const auto vio = check_monotonous_cover(ra, rid, *claim.cube); !vio.empty())
                return {false, "cube fails for " + region.label(graph) + ": " +
                                   vio.front().describe(ra)};
        } else if (!claim.sum_literals.empty()) {
            Cover sum(graph.num_signals());
            for (const auto& lit : claim.sum_literals) sum.add(lit);
            if (const auto vio = check_elementary_sum(ra, rid, sum); !vio.empty())
                return {false, "elementary sum fails for " + region.label(graph) + ": " +
                                   vio.front().describe(ra)};
        } else {
            return {false, "claim for " + region.label(graph) + " carries no cube"};
        }
    }
    return {true, {}};
}

} // namespace si::mc
