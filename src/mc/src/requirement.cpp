#include "si/mc/requirement.hpp"

#include <deque>
#include <map>
#include <unordered_set>

#include "si/mc/cover_cube.hpp"
#include "si/obs/obs.hpp"
#include "si/util/parallel.hpp"

namespace si::mc {

namespace {

bool violations_mono_only(const std::vector<McViolation>& vs) {
    for (const auto& v : vs)
        if (v.kind != McFailure::NonMonotonic) return false;
    return !vs.empty();
}

// Generic literal-subset search shared by the per-region and group
// searches. `check` returns the violation list for a candidate cube;
// `quick` returns the same candidate's verdict without materializing
// witness states, and carries the hot path when no trail is recorded.
// A non-null `trail` records every examined candidate (including the
// greedy-reduce probes) with its rejecting violations, for explain
// reports.
template <class CheckFn, class QuickFn>
std::optional<Cube> search_cube(Cube full, const CheckFn& check, const QuickFn& quick,
                                std::size_t max_candidates,
                                std::vector<McCandidate>* trail = nullptr) {
    auto verdict = [&](const Cube& c) {
        if (trail == nullptr) return quick(c);
        auto vio = check(c);
        const auto v = vio.empty() ? McVerdict::Cover
                                   : (violations_mono_only(vio) ? McVerdict::NonMonotonicOnly
                                                                : McVerdict::Fail);
        trail->push_back(McCandidate{c, std::move(vio)});
        return v;
    };
    auto reduce = [&](Cube c) {
        for (std::size_t v = 0; v < c.num_vars(); ++v) {
            if (c.lit(SignalId(v)) == Lit::Dash) continue;
            Cube smaller = c.without(SignalId(v));
            if (verdict(smaller) == McVerdict::Cover) c = std::move(smaller);
        }
        return c;
    };

    const auto first = verdict(full);
    if (first == McVerdict::Cover) return reduce(std::move(full));
    if (first != McVerdict::NonMonotonicOnly) return std::nullopt;

    std::deque<Cube> queue{full};
    std::unordered_set<Cube> seen{full};
    std::size_t examined = 0;
    while (!queue.empty() && examined < max_candidates) {
        obs::count("mc.cube_candidates");
        const Cube cur = queue.front();
        queue.pop_front();
        ++examined;
        for (std::size_t v = 0; v < cur.num_vars(); ++v) {
            if (cur.lit(SignalId(v)) == Lit::Dash) continue;
            Cube cand = cur.without(SignalId(v));
            if (!seen.insert(cand).second) continue;
            const auto vio = verdict(cand);
            if (vio == McVerdict::Cover) return reduce(std::move(cand));
            // Below a condition-1/3 failure, subsets only cover more:
            // keep exploring only pure-monotonicity failures.
            if (vio == McVerdict::NonMonotonicOnly) queue.push_back(std::move(cand));
        }
    }
    return std::nullopt;
}

// Convenience overload deriving the verdict from the full check — the
// seed path and any caller without cached per-region facts.
template <class CheckFn>
std::optional<Cube> search_cube(Cube full, const CheckFn& check, std::size_t max_candidates,
                                std::vector<McCandidate>* trail = nullptr) {
    auto quick = [&](const Cube& c) {
        const auto vio = check(c);
        if (vio.empty()) return McVerdict::Cover;
        return violations_mono_only(vio) ? McVerdict::NonMonotonicOnly : McVerdict::Fail;
    };
    return search_cube(std::move(full), check, quick, max_candidates, trail);
}

} // namespace

RegionMc find_mc_cube(const sg::RegionAnalysis& ra, RegionId r, const McCubeSearch& opts) {
    obs::Span span("mc.cube");
    span.attr("region", ra.region(r).label(ra.graph()));
    RegionMc out;
    out.region = r;
    const Cube full = smallest_cover_cube(ra, r);
    std::optional<Cube> cube;
    if (util::fast_path()) {
        // One region's search examines hundreds of candidate cubes; the
        // cache amortizes the smallest-cube and in-CFR-arc computations
        // across all of them.
        const McRegionCache cache(ra, r);
        cube = search_cube(
            full, [&](const Cube& c) { return check_monotonous_cover(ra, r, c, cache); },
            [&](const Cube& c) { return quick_monotonous_cover(ra, r, c, cache); },
            opts.max_candidates, opts.record_trail ? &out.trail : nullptr);
    } else {
        cube = search_cube(
            full, [&](const Cube& c) { return check_monotonous_cover(ra, r, c); },
            opts.max_candidates, opts.record_trail ? &out.trail : nullptr);
    }
    if (cube) {
        out.cube = std::move(cube);
        if (obs::enabled()) {
            obs::count("mc.cubes_found");
            obs::observe("mc.cube_literals", out.cube->literal_count());
        }
        span.attr("cube", "found");
    } else {
        out.violations = check_monotonous_cover(ra, r, full);
        obs::count("mc.cubes_missing");
        span.attr("cube", "none");
    }
    return out;
}

std::optional<Cube> find_group_mc_cube(const sg::RegionAnalysis& ra,
                                       std::span<const RegionId> group,
                                       const McCubeSearch& opts) {
    if (group.empty()) return std::nullopt;
    Cube full = smallest_cover_cube(ra, group[0]);
    for (std::size_t i = 1; i < group.size(); ++i)
        full = full.supercube(smallest_cover_cube(ra, group[i]));
    if (full.is_universal()) return std::nullopt;
    if (util::fast_path()) {
        std::vector<McRegionCache> caches;
        caches.reserve(group.size());
        for (const auto r : group) caches.emplace_back(ra, r);
        return search_cube(
            full,
            [&](const Cube& c) {
                return check_generalized_mc(ra, group, c,
                                            std::span<const McRegionCache>(caches));
            },
            [&](const Cube& c) {
                return quick_generalized_mc(ra, group, c,
                                            std::span<const McRegionCache>(caches));
            },
            opts.max_candidates);
    }
    return search_cube(
        full, [&](const Cube& c) { return check_generalized_mc(ra, group, c); },
        opts.max_candidates);
}

std::string McReport::describe(const sg::RegionAnalysis& ra) const {
    std::string out;
    const auto names = ra.graph().signals().names();
    for (const auto& r : regions) {
        out += ra.region(r.region).label(ra.graph());
        if (r.ok() && !r.cube) {
            out += ": elementary sum";
            for (const auto& lit : r.sum_literals) out += " " + lit.to_expr(names);
            out += " (OR-causality form)\n";
        } else if (r.ok()) {
            out += ": MC cube " + r.cube->to_expr(names);
            if (!r.shared_with.empty()) {
                out += " (shared with";
                for (const auto g : r.shared_with)
                    if (g != r.region) out += " " + ra.region(g).label(ra.graph());
                out += ")";
            }
            out += "\n";
        } else {
            out += ": NO monotonous cover\n";
            for (const auto& v : r.violations) out += "    " + v.describe(ra) + "\n";
        }
    }
    return out;
}

McReport check_requirement(const sg::RegionAnalysis& ra, const McCubeSearch& opts) {
    obs::Span span("mc.check");
    span.attr("regions", static_cast<std::uint64_t>(ra.regions().size()));
    McReport report;
    // Map region id -> slot in the report for the group fallback.
    std::map<std::size_t, std::size_t> slot;
    // Phase 1: each non-input region's cube search is independent — fan
    // out over the pool and splice results back in region order, so the
    // report is byte-identical to the serial pass.
    std::vector<RegionId> work;
    for (std::size_t ri = 0; ri < ra.regions().size(); ++ri) {
        const RegionId r{ri};
        if (!is_non_input(ra.graph().signals()[ra.region(r).signal].kind)) continue;
        slot[ri] = work.size();
        work.push_back(r);
    }
    if (opts.serial) {
        report.regions.reserve(work.size());
        for (const RegionId r : work) report.regions.push_back(find_mc_cube(ra, r, opts));
    } else {
        report.regions =
            util::parallel_map(work, [&](RegionId r) { return find_mc_cube(ra, r, opts); });
    }

    // Phase 2: Def-19 fallback per (signal, polarity) with failures.
    std::map<std::pair<std::size_t, bool>, std::vector<RegionId>> families;
    for (const auto& rmc : report.regions) {
        const auto& region = ra.region(rmc.region);
        families[{region.signal.index(), region.rising}].push_back(rmc.region);
    }
    // Phase 3 candidates are prepared after phase 2 below.
    for (const auto& [key, family] : families) {
        if (family.size() < 2) continue;
        const bool any_failed = [&] {
            for (const auto r : family)
                if (!report.regions[slot[r.index()]].ok()) return true;
            return false;
        }();
        if (!any_failed) continue;

        // Try the whole family first, then pairs around each failure.
        std::vector<std::vector<RegionId>> candidates{family};
        for (const auto r : family) {
            if (report.regions[slot[r.index()]].ok()) continue;
            for (const auto s : family)
                if (s != r) candidates.push_back({r, s});
        }
        for (const auto& group : candidates) {
            const bool still_needed = [&] {
                for (const auto r : group)
                    if (!report.regions[slot[r.index()]].ok()) return true;
                return false;
            }();
            if (!still_needed) continue;
            if (auto cube = find_group_mc_cube(ra, group, opts)) {
                for (const auto r : group) {
                    auto& rmc = report.regions[slot[r.index()]];
                    rmc.cube = *cube;
                    rmc.shared_with = group;
                    rmc.violations.clear();
                }
            }
        }
    }
    // Phase 3: elementary-sum fallback (Section IV) for regions that
    // still lack a cube — typically detonant regions of non-distributive
    // graphs, where Theorem 2 rules single cubes out.
    for (auto& rmc : report.regions) {
        if (rmc.ok()) continue;
        if (auto sum = find_elementary_sum(ra, rmc.region)) {
            rmc.sum_literals = sum->cubes();
            rmc.violations.clear();
        }
    }
    return report;
}

util::Outcome<McReport> check_requirement_outcome(const sg::RegionAnalysis& ra,
                                                  const McCubeSearch& opts,
                                                  util::Budget* budget) {
    std::uint64_t work = 0;
    for (const auto& region : ra.regions())
        if (is_non_input(ra.graph().signals()[region.signal].kind)) ++work;
    {
        util::Meter meter("mc.check", budget);
        // Stage-granularity governance: the check either runs in full or
        // not at all — the cube searches below are capped locally by
        // McCubeSearch::max_candidates, so per-region spend is bounded.
        if (!meter.charge(util::Resource::Steps, work > 0 ? work : 1))
            return util::Outcome<McReport>::exhausted(meter.why());
    }
    return util::Outcome<McReport>::complete(check_requirement(ra, opts));
}

} // namespace si::mc
