#include "si/mc/symbolic.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <unordered_set>

#include "si/bdd/bdd.hpp"
#include "si/bdd/symbolic.hpp"
#include "si/obs/live.hpp"
#include "si/obs/obs.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/regions.hpp"
#include "si/util/error.hpp"

namespace si::mc {

const char* to_string(Engine e) {
    switch (e) {
    case Engine::Explicit: return "explicit";
    case Engine::Symbolic: return "symbolic";
    case Engine::Auto: return "auto";
    }
    return "?";
}

std::string StgMcResult::describe() const {
    std::string s = std::string("mc[") + to_string(used) + "]: ";
    if (!complete()) return s + exhaustion->describe();
    s += satisfied ? "satisfied" : "NOT satisfied";
    s += ", " + std::to_string(regions) + " regions (" + std::to_string(missing) + " missing)";
    s += " over " + std::to_string(static_cast<std::uint64_t>(reachable_states)) + " states";
    return s;
}

namespace {

using bdd::Manager;
using bdd::Ref;

// The symbolic state space of one STG: variables are the places and the
// signal values, current/next interleaved, ordered by the same
// signal-clustering heuristic as the symbolic CSC check (a signal's
// value variable sits next to the places its transitions touch).
struct SymSpace {
    const stg::Stg& net;
    std::size_t P, S, N;
    Manager mgr;
    std::vector<std::size_t> pos;       ///< variable -> order slot
    std::vector<Ref> place_rels;        ///< token game only, per transition
    std::vector<Ref> relations;         ///< per transition, over (cur, next)
    /// Monolithic disjunctions: one AND+exists per image instead of one
    /// per transition — the difference between minutes and seconds on
    /// 10^6-state products.
    Ref mono_rel = Manager::kFalse;               ///< OR of all relations
    Ref und_rel = Manager::kFalse;                ///< mono_rel ∨ its transpose
    std::vector<Ref> fire_up_rel, fire_down_rel;  ///< OR per (signal, polarity)
    Ref reached = Manager::kFalse;
    BitVec cur_mask, nxt_mask;
    std::vector<std::size_t> next_to_cur, cur_to_next;
    std::vector<Ref> excited_up, excited_down, excited_any; ///< per signal, ∧ reached
    std::vector<Ref> stable0, stable1;                      ///< per signal, ∧ reached
    double state_count = 0;
    /// Heartbeat gauge owned by symbolic_check; every fixpoint loop
    /// advances it once per iteration (the same events the
    /// mc.symbolic.iterations.* counters record), so a 10^6-state
    /// check shows liveness between regions.
    obs::Progress* progress = nullptr;

    explicit SymSpace(const stg::Stg& n)
        : net(n), P(n.num_places()), S(n.signals().size()), N(P + S), mgr(2 * (P + S)) {}

    [[nodiscard]] std::size_t curv(std::size_t i) const { return 2 * pos[i]; }
    [[nodiscard]] std::size_t nxtv(std::size_t i) const { return 2 * pos[i] + 1; }
    [[nodiscard]] std::size_t sigvar(std::size_t s) const { return P + s; }

    void build();
    [[nodiscard]] BitVec infer_initial_code();
    [[nodiscard]] Ref fwd(Ref f, Ref rel);
    /// Undirected flood of `seed` inside `members` (symbolic connected
    /// component union — the ER/QR component discipline of regions.cpp).
    /// `cls` names the region class for the per-class fixpoint
    /// iteration counter ("mc.symbolic.iterations.<cls>").
    [[nodiscard]] Ref flood(Ref seed, Ref members, const char* cls);
    /// Minterm over current variables of one satisfying assignment of f.
    [[nodiscard]] Ref any_state(Ref f);
    [[nodiscard]] Ref cov_of(const Cube& c);
};

void SymSpace::build() {
    // Static clustering order (see csc_impl): narrow signals claim their
    // adjacent places first, hub signals last.
    pos.assign(N, SIZE_MAX);
    {
        std::vector<std::vector<std::size_t>> adjacent(S);
        for (std::size_t ti = 0; ti < net.num_transitions(); ++ti) {
            const auto& t = net.transition(TransitionId(ti));
            auto& adj = adjacent[t.edge.signal.index()];
            for (const PlaceId p : t.preset) adj.push_back(p.index());
            for (const PlaceId p : t.postset) adj.push_back(p.index());
        }
        std::vector<std::size_t> order(S);
        for (std::size_t i = 0; i < S; ++i) order[i] = i;
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            return adjacent[a].size() != adjacent[b].size()
                       ? adjacent[a].size() < adjacent[b].size()
                       : a < b;
        });
        std::size_t next_slot = 0;
        for (const std::size_t sigi : order) {
            for (const std::size_t p : adjacent[sigi])
                if (pos[p] == SIZE_MAX) pos[p] = next_slot++;
            pos[P + sigi] = next_slot++;
        }
        for (std::size_t i = 0; i < N; ++i)
            if (pos[i] == SIZE_MAX) pos[i] = next_slot++;
    }

    cur_mask = BitVec(2 * N);
    nxt_mask = BitVec(2 * N);
    for (std::size_t i = 0; i < N; ++i) {
        cur_mask.set(curv(i));
        nxt_mask.set(nxtv(i));
    }
    next_to_cur.assign(2 * N, 0);
    cur_to_next.assign(2 * N, 0);
    for (std::size_t i = 0; i < N; ++i) {
        next_to_cur[curv(i)] = curv(i);
        next_to_cur[nxtv(i)] = curv(i);
        cur_to_next[curv(i)] = nxtv(i);
        cur_to_next[nxtv(i)] = nxtv(i);
    }

    for (std::size_t ti = 0; ti < net.num_transitions(); ++ti) {
        const auto& t = net.transition(TransitionId(ti));
        BitVec in_pre(P), in_post(P);
        for (const PlaceId p : t.preset) in_pre.set(p.index());
        for (const PlaceId p : t.postset) in_post.set(p.index());
        const std::size_t sig = sigvar(t.edge.signal.index());

        // The token game alone (the explicit explore() fires on markings
        // only; codes come later) — also what the initial-code inference
        // below walks.
        Ref prel = Manager::kTrue;
        in_pre.for_each_set([&](std::size_t p) { prel = mgr.apply_and(prel, mgr.var(curv(p))); });
        for (std::size_t p = 0; p < P; ++p) {
            Ref next_val;
            if (in_post.test(p)) next_val = mgr.var(nxtv(p));
            else if (in_pre.test(p)) next_val = mgr.nvar(nxtv(p));
            else next_val = mgr.apply_xor(mgr.var(curv(p)), mgr.nvar(nxtv(p)));
            prel = mgr.apply_and(prel, next_val);
        }
        place_rels.push_back(prel);

        // Full relation: consistency (the signal holds its
        // pre-transition value) plus the signal next-values.
        Ref rel = mgr.apply_and(prel, t.edge.rising ? mgr.nvar(curv(sig)) : mgr.var(curv(sig)));
        // Its transpose, built structurally (a cur/next variable swap is
        // not a monotone rename, so it cannot come from rename()): holds
        // for (x, x') exactly when x' fires t into x.
        Ref rev = Manager::kTrue;
        in_pre.for_each_set([&](std::size_t p) { rev = mgr.apply_and(rev, mgr.var(nxtv(p))); });
        rev = mgr.apply_and(rev, t.edge.rising ? mgr.nvar(nxtv(sig)) : mgr.var(nxtv(sig)));
        for (std::size_t p = 0; p < P; ++p) {
            Ref cur_val;
            if (in_post.test(p)) cur_val = mgr.var(curv(p));
            else if (in_pre.test(p)) cur_val = mgr.nvar(curv(p));
            else cur_val = mgr.apply_xor(mgr.var(curv(p)), mgr.nvar(nxtv(p)));
            rev = mgr.apply_and(rev, cur_val);
        }
        for (std::size_t i = P; i < N; ++i) {
            Ref next_val;
            if (i == sig) next_val = t.edge.rising ? mgr.var(nxtv(i)) : mgr.nvar(nxtv(i));
            else next_val = mgr.apply_xor(mgr.var(curv(i)), mgr.nvar(nxtv(i)));
            rel = mgr.apply_and(rel, next_val);
            Ref cur_val;
            if (i == sig) cur_val = t.edge.rising ? mgr.var(curv(i)) : mgr.nvar(curv(i));
            else cur_val = mgr.apply_xor(mgr.var(curv(i)), mgr.nvar(nxtv(i)));
            rev = mgr.apply_and(rev, cur_val);
        }
        relations.push_back(rel);
        und_rel = mgr.apply_or(und_rel, rev);
    }
    fire_up_rel.assign(S, Manager::kFalse);
    fire_down_rel.assign(S, Manager::kFalse);
    for (std::size_t ti = 0; ti < net.num_transitions(); ++ti) {
        const auto& t = net.transition(TransitionId(ti));
        auto& slot = (t.edge.rising ? fire_up_rel : fire_down_rel)[t.edge.signal.index()];
        slot = mgr.apply_or(slot, relations[ti]);
    }
    for (std::size_t s = 0; s < S; ++s)
        mono_rel = mgr.apply_or(mono_rel, mgr.apply_or(fire_up_rel[s], fire_down_rel[s]));
    und_rel = mgr.apply_or(und_rel, mono_rel);

    reached = Manager::kTrue;
    for (std::size_t p = 0; p < P; ++p) {
        if (net.initial_marking()[p] > 1)
            throw SpecError("symbolic MC requires a safe initial marking");
        reached = mgr.apply_and(reached, net.initial_marking()[p] != 0 ? mgr.var(curv(p))
                                                                       : mgr.nvar(curv(p)));
    }
    const BitVec init_code = infer_initial_code();
    for (std::size_t i = 0; i < S; ++i)
        reached = mgr.apply_and(
            reached, init_code.test(i) ? mgr.var(curv(P + i)) : mgr.nvar(curv(P + i)));

    Ref frontier = reached;
    while (frontier != Manager::kFalse) {
        obs::count("mc.symbolic.iterations.reach");
        if (progress != nullptr) progress->advance();
        const Ref fresh = mgr.apply_and(fwd(frontier, mono_rel), mgr.apply_not(reached));
        reached = mgr.apply_or(reached, fresh);
        frontier = fresh;
    }
    state_count = mgr.sat_count(reached) / std::pow(2.0, static_cast<double>(N));

    // Per-signal excitation and stability zones (the 0*/1*/0/1-sets).
    excited_up.assign(S, Manager::kFalse);
    excited_down.assign(S, Manager::kFalse);
    for (std::size_t ti = 0; ti < net.num_transitions(); ++ti) {
        const auto& t = net.transition(TransitionId(ti));
        Ref en = Manager::kTrue;
        for (const PlaceId p : t.preset) en = mgr.apply_and(en, mgr.var(curv(p.index())));
        // An enabled transition is an arc only on the consistent side of
        // the signal — exactly the states where the explicit graph has
        // the edge.
        const std::size_t sig = sigvar(t.edge.signal.index());
        en = mgr.apply_and(en, t.edge.rising ? mgr.nvar(curv(sig)) : mgr.var(curv(sig)));
        auto& slot = t.edge.rising ? excited_up[t.edge.signal.index()]
                                   : excited_down[t.edge.signal.index()];
        slot = mgr.apply_or(slot, en);
    }
    excited_any.assign(S, Manager::kFalse);
    stable0.assign(S, Manager::kFalse);
    stable1.assign(S, Manager::kFalse);
    for (std::size_t s = 0; s < S; ++s) {
        excited_up[s] = mgr.apply_and(excited_up[s], reached);
        excited_down[s] = mgr.apply_and(excited_down[s], reached);
        excited_any[s] = mgr.apply_or(excited_up[s], excited_down[s]);
        const Ref stable = mgr.apply_and(reached, mgr.apply_not(excited_any[s]));
        const Ref val = mgr.var(curv(sigvar(s)));
        stable1[s] = mgr.apply_and(stable, val);
        stable0[s] = mgr.apply_and(stable, mgr.apply_not(val));
    }
}

// The explicit builder pins each signal's initial value from the
// polarity of its first edge (and rejects nets where both polarities can
// come first). Symbolically: freeze signal s and take the place-space
// fixpoint — the edges of s enabled somewhere in that set are exactly
// the ones that can fire first, so their polarity gives the initial
// value. Runs on the token game only (place_rels); precondition: the
// member `reached` still holds just the initial-marking function.
BitVec SymSpace::infer_initial_code() {
    // One token-game relation per signal, then prefix/suffix ORs so the
    // everyone-but-s disjunction costs two ORs per signal, not S of them.
    std::vector<Ref> by_sig(S, Manager::kFalse);
    for (std::size_t ti = 0; ti < net.num_transitions(); ++ti) {
        auto& slot = by_sig[net.transition(TransitionId(ti)).edge.signal.index()];
        slot = mgr.apply_or(slot, place_rels[ti]);
    }
    std::vector<Ref> prefix(S + 1, Manager::kFalse), suffix(S + 1, Manager::kFalse);
    for (std::size_t s = 0; s < S; ++s) prefix[s + 1] = mgr.apply_or(prefix[s], by_sig[s]);
    for (std::size_t s = S; s-- > 0;) suffix[s] = mgr.apply_or(suffix[s + 1], by_sig[s]);

    BitVec init(S);
    for (std::size_t s = 0; s < S; ++s) {
        const Ref others = mgr.apply_or(prefix[s], suffix[s + 1]);
        Ref frozen = reached;
        Ref frontier = frozen;
        while (frontier != Manager::kFalse) {
            obs::count("mc.symbolic.iterations.init");
            if (progress != nullptr) progress->advance();
            const Ref fresh = mgr.apply_and(fwd(frontier, others), mgr.apply_not(frozen));
            frozen = mgr.apply_or(frozen, fresh);
            frontier = fresh;
        }
        bool rising_first = false, falling_first = false;
        for (std::size_t ti = 0; ti < net.num_transitions(); ++ti) {
            const auto& t = net.transition(TransitionId(ti));
            if (t.edge.signal.index() != s) continue;
            Ref en = frozen;
            for (const PlaceId p : t.preset) en = mgr.apply_and(en, mgr.var(curv(p.index())));
            if (en == Manager::kFalse) continue;
            (t.edge.rising ? rising_first : falling_first) = true;
        }
        if (rising_first && falling_first)
            throw SpecError("signal '" + net.signals()[SignalId(s)].name +
                            "' can both rise and fall first: no consistent initial value");
        if (falling_first) init.set(s);
    }
    return init;
}

Ref SymSpace::fwd(Ref f, Ref rel) {
    return mgr.rename(mgr.exists(mgr.apply_and(f, rel), cur_mask), next_to_cur);
}

Ref SymSpace::flood(Ref seed, Ref members, const char* cls) {
    // Arcs with both endpoints inside `members` are the only ones an
    // interior flood can take; restricting the (already undirected)
    // relation up front keeps every image proportional to the component,
    // not the whole space, and needs one image per BFS level.
    const Ref rel = mgr.apply_and(mgr.apply_and(und_rel, members),
                                  mgr.rename(members, cur_to_next));
    Ref comp = mgr.apply_and(seed, members);
    Ref frontier = comp;
    const std::string iter_ctr = std::string("mc.symbolic.iterations.") + cls;
    while (frontier != Manager::kFalse) {
        obs::count(iter_ctr);
        if (progress != nullptr) progress->advance();
        const Ref fresh = mgr.apply_and(fwd(frontier, rel), mgr.apply_not(comp));
        comp = mgr.apply_or(comp, fresh);
        frontier = fresh;
    }
    return comp;
}

Ref SymSpace::any_state(Ref f) {
    const BitVec a = mgr.any_sat(f);
    Ref m = Manager::kTrue;
    for (std::size_t i = 0; i < N; ++i)
        m = mgr.apply_and(m, a.test(curv(i)) ? mgr.var(curv(i)) : mgr.nvar(curv(i)));
    return m;
}

Ref SymSpace::cov_of(const Cube& c) {
    Ref f = reached;
    c.mask().for_each_set([&](std::size_t vi) {
        const Ref v = mgr.var(curv(sigvar(vi)));
        f = mgr.apply_and(f, c.polarity().test(vi) ? v : mgr.apply_not(v));
    });
    return f;
}

// One symbolic excitation region with its derived zones — the BDD
// counterpart of sg::Region + McRegionCache.
struct SymRegion {
    SignalId signal;
    bool rising = true;
    Ref er = Manager::kFalse;
    Ref cfr = Manager::kFalse;
    Ref forbidden = Manager::kFalse; ///< Def-16 zone of the signal/polarity
    Ref rise_rel = Manager::kFalse;  ///< arcs interior to the CFR, over (cur, next)
    Cube smallest;                   ///< Lemma-3 smallest cover cube
    bool ok = false;
};

// Mirrors the explicit search_cube verdict contract on symbolic sets.
enum class Verdict { Cover, NonMonotonicOnly, Fail };

Verdict verdict_single(SymSpace& sp, const SymRegion& r, const Cube& c) {
    Manager& mgr = sp.mgr;
    const Ref cov = sp.cov_of(c);
    if (mgr.apply_and(r.er, mgr.apply_not(cov)) != Manager::kFalse)
        return Verdict::Fail; // condition 1
    if (mgr.apply_and(cov, mgr.apply_not(r.cfr)) != Manager::kFalse)
        return Verdict::Fail; // condition 3
    const Ref rise = mgr.apply_and(
        mgr.apply_and(r.rise_rel, mgr.apply_not(cov)), mgr.rename(cov, sp.cur_to_next));
    return rise != Manager::kFalse ? Verdict::NonMonotonicOnly : Verdict::Cover;
}

Verdict verdict_group(SymSpace& sp, const std::vector<const SymRegion*>& group, const Cube& c) {
    Manager& mgr = sp.mgr;
    const Ref cov = sp.cov_of(c);
    const Ref cov_next = mgr.rename(cov, sp.cur_to_next);
    const Ref not_cov = mgr.apply_not(cov);
    bool mono = false;
    Ref all_cfr = Manager::kFalse;
    for (const SymRegion* r : group) {
        all_cfr = mgr.apply_or(all_cfr, r->cfr);
        if (!c.covers(r->smallest)) return Verdict::Fail;                      // Def 15
        if (mgr.apply_and(r->er, not_cov) != Manager::kFalse) return Verdict::Fail; // cond 1
        if (mgr.apply_and(cov, r->forbidden) != Manager::kFalse) return Verdict::Fail; // Def 16
        if (!mono &&
            mgr.apply_and(mgr.apply_and(r->rise_rel, not_cov), cov_next) != Manager::kFalse)
            mono = true;
    }
    if (mgr.apply_and(cov, mgr.apply_not(all_cfr)) != Manager::kFalse)
        return Verdict::Fail; // condition 3 against the union of the CFRs
    return mono ? Verdict::NonMonotonicOnly : Verdict::Cover;
}

// The explicit search_cube control flow (requirement.cpp), verdict-only:
// Cover succeeds, NonMonotonicOnly explores literal subsets breadth
// first, Fail prunes (conditions 1/3 only worsen for subsets). The
// greedy literal-minimal reduction is skipped — it changes which cube is
// found, never whether one exists, and only existence feeds the verdict.
template <class VerdictFn>
bool cube_exists(Cube full, const VerdictFn& verdict, std::size_t max_candidates) {
    const auto first = verdict(full);
    if (first == Verdict::Cover) return true;
    if (first != Verdict::NonMonotonicOnly) return false;

    std::deque<Cube> queue{full};
    std::unordered_set<Cube> seen{full};
    std::size_t examined = 0;
    while (!queue.empty() && examined < max_candidates) {
        obs::count("mc.symbolic.candidates");
        const Cube cur = queue.front();
        queue.pop_front();
        ++examined;
        for (std::size_t v = 0; v < cur.num_vars(); ++v) {
            if (cur.lit(SignalId(v)) == Lit::Dash) continue;
            Cube cand = cur.without(SignalId(v));
            if (!seen.insert(cand).second) continue;
            const auto vio = verdict(cand);
            if (vio == Verdict::Cover) return true;
            if (vio == Verdict::NonMonotonicOnly) queue.push_back(std::move(cand));
        }
    }
    return false;
}

StgMcResult symbolic_check(const stg::Stg& net, const StgMcOptions& opts,
                           util::Budget* budget) {
    obs::Span span("mc.symbolic");
    span.attr("model", net.name);
    StgMcResult out;
    out.used = Engine::Symbolic;

    SymSpace sp(net);
    // Units are fixpoint iterations (total unknown up front).
    obs::Progress progress("mc.symbolic");
    sp.progress = &progress;
    // The explicit checker charges one Steps unit per non-input region
    // under "mc.check"; the symbolic engine mirrors that accounting
    // exactly so Budget::shard fairness holds across engines. BDD work is
    // charged separately as Resource::BddNodes by the manager.
    util::Meter meter("mc.check", budget);
    sp.mgr.set_budget(budget);
    try {
        sp.build();
        out.reachable_states = sp.state_count;

        const std::size_t S = sp.S;
        Manager& mgr = sp.mgr;

        // Excitation regions of non-input signals: symbolic connected
        // components of the 0*/1*-sets, each with QR/CFR/Def-16 zones.
        std::vector<SymRegion> regions;
        for (std::size_t s = 0; s < S; ++s) {
            if (!is_non_input(net.signals()[SignalId(s)].kind)) continue;
            for (const bool rising : {true, false}) {
                Ref excited = rising ? sp.excited_up[s] : sp.excited_down[s];
                while (excited != Manager::kFalse) {
                    SymRegion r;
                    r.signal = SignalId(s);
                    r.rising = rising;
                    r.er = sp.flood(sp.any_state(excited), excited, "er");
                    excited = mgr.apply_and(excited, mgr.apply_not(r.er));
                    regions.push_back(r);
                }
            }
        }
        out.regions = regions.size();
        obs::count("mc.symbolic.regions", regions.size());
        if (!meter.charge(util::Resource::Steps, regions.empty() ? 1 : regions.size())) {
            out.exhaustion = meter.why();
            return out;
        }

        for (auto& r : regions) {
            const std::size_t s = r.signal.index();
            // QR: stable components entered by firing this region's
            // transition; flooding the whole successor seed at once
            // yields the same union as per-component floods.
            const Ref stable_after = r.rising ? sp.stable1[s] : sp.stable0[s];
            const Ref succ = mgr.apply_and(
                sp.fwd(r.er, r.rising ? sp.fire_up_rel[s] : sp.fire_down_rel[s]), stable_after);
            r.cfr = mgr.apply_or(r.er, sp.flood(succ, stable_after, "qr"));
            r.forbidden = r.rising ? mgr.apply_or(sp.excited_down[s], sp.stable0[s])
                                   : mgr.apply_or(sp.excited_up[s], sp.stable1[s]);
            // Arcs interior to the CFR (condition 2's scan domain).
            const Ref cfr_next = mgr.rename(r.cfr, sp.cur_to_next);
            r.rise_rel = mgr.apply_and(mgr.apply_and(sp.mono_rel, r.cfr), cfr_next);

            // Smallest cover cube: ordered signals (never excited inside
            // the ER) at their constant ER value.
            r.smallest = Cube(S);
            for (std::size_t b = 0; b < S; ++b) {
                if (mgr.apply_and(r.er, sp.excited_any[b]) != Manager::kFalse) continue;
                const Ref val = mgr.var(sp.curv(sp.sigvar(b)));
                if (mgr.apply_and(r.er, mgr.apply_not(val)) == Manager::kFalse)
                    r.smallest.set_lit(SignalId(b), Lit::One);
                else if (mgr.apply_and(r.er, val) == Manager::kFalse)
                    r.smallest.set_lit(SignalId(b), Lit::Zero);
            }
        }

        // Phase 1: a private MC cube per region (Def 17).
        for (auto& r : regions)
            r.ok = cube_exists(
                r.smallest, [&](const Cube& c) { return verdict_single(sp, r, c); },
                opts.cube_search.max_candidates);

        // Phase 2: Def-19 generalized cube per (signal, polarity) family
        // with failures — the whole family first, then pairs around each
        // failing region (the explicit phase-2 candidate order).
        std::map<std::pair<std::size_t, bool>, std::vector<SymRegion*>> families;
        for (auto& r : regions) families[{r.signal.index(), r.rising}].push_back(&r);
        for (auto& [key, family] : families) {
            if (family.size() < 2) continue;
            const bool any_failed =
                std::any_of(family.begin(), family.end(), [](SymRegion* r) { return !r->ok; });
            if (!any_failed) continue;
            std::vector<std::vector<SymRegion*>> candidates{family};
            for (SymRegion* r : family) {
                if (r->ok) continue;
                for (SymRegion* s2 : family)
                    if (s2 != r) candidates.push_back({r, s2});
            }
            for (const auto& group : candidates) {
                const bool still_needed =
                    std::any_of(group.begin(), group.end(), [](SymRegion* r) { return !r->ok; });
                if (!still_needed) continue;
                Cube full = group[0]->smallest;
                for (std::size_t i = 1; i < group.size(); ++i)
                    full = full.supercube(group[i]->smallest);
                if (full.is_universal()) continue;
                std::vector<const SymRegion*> view(group.begin(), group.end());
                if (cube_exists(
                        full, [&](const Cube& c) { return verdict_group(sp, view, c); },
                        opts.cube_search.max_candidates))
                    for (SymRegion* r : group) r->ok = true;
            }
        }

        // Phase 3: elementary sum of trigger literals (Section IV) for
        // regions still without a cube.
        for (auto& r : regions) {
            if (r.ok) continue;
            // Triggers: signal edges on arcs entering the ER from outside.
            Ref cov = Manager::kFalse;
            bool any_lit = false;
            const Ref er_next = mgr.rename(r.er, sp.cur_to_next);
            const Ref outside = mgr.apply_and(sp.reached, mgr.apply_not(r.er));
            for (std::size_t b = 0; b < S; ++b) {
                for (const bool rising : {true, false}) {
                    const Ref rel = rising ? sp.fire_up_rel[b] : sp.fire_down_rel[b];
                    const Ref enters = mgr.apply_and(mgr.apply_and(rel, outside), er_next);
                    if (enters == Manager::kFalse) continue;
                    any_lit = true;
                    const Ref val = mgr.var(sp.curv(sp.sigvar(b)));
                    cov = mgr.apply_or(cov, rising ? val : mgr.apply_not(val));
                }
            }
            if (!any_lit) continue;
            cov = mgr.apply_and(cov, sp.reached);
            if (mgr.apply_and(r.er, mgr.apply_not(cov)) != Manager::kFalse) continue;
            if (mgr.apply_and(cov, mgr.apply_not(r.cfr)) != Manager::kFalse) continue;
            if (mgr.apply_and(cov, r.forbidden) != Manager::kFalse) continue;
            const Ref rise = mgr.apply_and(mgr.apply_and(r.rise_rel, mgr.apply_not(cov)),
                                           mgr.rename(cov, sp.cur_to_next));
            if (rise != Manager::kFalse) continue;
            r.ok = true;
        }

        for (const auto& r : regions)
            if (!r.ok) ++out.missing;
        out.satisfied = out.missing == 0;
        obs::count("mc.symbolic.nodes", sp.mgr.num_nodes());
        span.attr("satisfied", out.satisfied ? "true" : "false");
        span.attr("regions", static_cast<std::uint64_t>(out.regions));
    } catch (const util::BudgetExhausted& e) {
        out.exhaustion = e.why();
    }
    return out;
}

StgMcResult explicit_check(const stg::Stg& net, const StgMcOptions& opts,
                           util::Budget* budget) {
    StgMcResult out;
    out.used = Engine::Explicit;
    auto sgo = sg::build_state_graph_outcome(net, {opts.max_sg_states, budget});
    if (!sgo.is_complete()) {
        out.exhaustion = sgo.why();
        return out;
    }
    const sg::StateGraph& graph = sgo.value();
    out.reachable_states = static_cast<double>(graph.num_states());
    sg::RegionAnalysis ra(graph);
    auto mco = check_requirement_outcome(ra, opts.cube_search, budget);
    if (!mco.is_complete()) {
        out.exhaustion = mco.why();
        return out;
    }
    out.regions = mco.value().regions.size();
    out.missing = mco.value().violation_count();
    out.satisfied = mco.value().satisfied();
    return out;
}

} // namespace

StgMcResult check_stg(const stg::Stg& net, Engine engine, const StgMcOptions& opts,
                      util::Budget* budget) {
    net.validate();
    if (engine == Engine::Auto) {
        // Estimated-state threshold: one place-space reachability counts
        // the markings exactly and is cheap relative to either engine.
        const auto reach = bdd::symbolic_reachability(net, budget);
        if (!reach.complete()) {
            StgMcResult out;
            out.used = Engine::Auto;
            out.exhaustion = reach.exhaustion;
            return out;
        }
        engine =
            reach.reachable_markings <= opts.auto_threshold ? Engine::Explicit : Engine::Symbolic;
    }
    return engine == Engine::Symbolic ? symbolic_check(net, opts, budget)
                                      : explicit_check(net, opts, budget);
}

} // namespace si::mc
