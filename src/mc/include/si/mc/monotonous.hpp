// The Monotonous Cover conditions (Def 17) and their generalization to
// sets of excitation regions (Def 19).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "si/boolean/cover.hpp"
#include "si/boolean/cube.hpp"
#include "si/sg/regions.hpp"

namespace si::mc {

/// Why a cube fails to be a monotonous cover.
enum class McFailure {
    NotACoverCube,    ///< a literal is not an ordered signal at its ER value (Def 15)
    UncoveredEr,      ///< condition 1: some ER state not covered
    NonMonotonic,     ///< condition 2: cube value changes twice on a CFR trace
    CoversOutsideCfr, ///< condition 3: covers a reachable state outside the CFR
    IncorrectCover,   ///< Def 16: covers a state where the excitation function must be 0
                      ///< (only reachable through the generalized check — the
                      ///< single-region conditions subsume it)
};

struct McViolation {
    McFailure kind;
    RegionId region;
    /// Witness states: uncovered ER states, the two flip points of a
    /// non-monotonic trace, or the covered outside-CFR states.
    std::vector<StateId> states;

    [[nodiscard]] std::string describe(const sg::RegionAnalysis& ra) const;

    /// describe() plus a firing sequence from the initial state to the
    /// first witness state — the counterexample a designer replays.
    [[nodiscard]] std::string describe_with_trace(const sg::RegionAnalysis& ra) const;
};

/// Checks all three conditions of Def 17 for cube `c` against region
/// `r`. Empty result means `c` is a monotonous cover cube for ER(*a_i).
[[nodiscard]] std::vector<McViolation> check_monotonous_cover(const sg::RegionAnalysis& ra,
                                                              RegionId r, const Cube& c);

/// Per-region facts reused across the many candidate cubes one search
/// examines: the smallest cover cube (Def 15 test becomes a word-wise
/// containment), the arcs interior to the CFR (so the monotonicity scan
/// is proportional to the CFR instead of the whole graph), and the
/// Def-16 forbidden zone. `cov`/`tmp` are scratch buffers the cached
/// checks reuse across candidates; a cache is local to one search, so
/// the mutation is single-threaded.
struct McRegionCache {
    Cube smallest;
    std::vector<std::pair<StateId, StateId>> cfr_arcs; ///< arc-index order
    BitVec forbidden; ///< states where the excitation function must be 0
    mutable BitVec cov, tmp;
    McRegionCache(const sg::RegionAnalysis& ra, RegionId r);
};

/// What a candidate-cube check tells the search: the search succeeds on
/// Cover, keeps exploring subsets on NonMonotonicOnly, and prunes on
/// Fail (conditions 1/3 only worsen for subsets).
enum class McVerdict { Cover, NonMonotonicOnly, Fail };

/// Verdict of check_monotonous_cover without materializing witness
/// states — the allocation-free predicate the cube searches branch on.
[[nodiscard]] McVerdict quick_monotonous_cover(const sg::RegionAnalysis& ra, RegionId r,
                                               const Cube& c, const McRegionCache& cache);

/// Verdict of check_generalized_mc without witnesses; caches[i] must
/// belong to regions[i].
[[nodiscard]] McVerdict quick_generalized_mc(const sg::RegionAnalysis& ra,
                                             std::span<const RegionId> regions, const Cube& c,
                                             std::span<const McRegionCache> caches);

/// check_monotonous_cover with the per-region facts precomputed; the
/// violation list is identical to the uncached overload.
[[nodiscard]] std::vector<McViolation> check_monotonous_cover(const sg::RegionAnalysis& ra,
                                                              RegionId r, const Cube& c,
                                                              const McRegionCache& cache);

/// Checks whether a *sum of single literals* implements ER(*a_i)
/// directly at the OR gate (Section IV: the implementation form for
/// detonant regions of semi-modular but non-distributive graphs, where
/// Theorem 2 rules out any single monotonous cube). Conditions: the sum
/// covers every ER state, covers nothing reachable outside the CFR,
/// never rises inside the CFR, and covers no state where the excitation
/// function must be 0 (Def 16). Empty result = the sum is admissible.
[[nodiscard]] std::vector<McViolation> check_elementary_sum(const sg::RegionAnalysis& ra,
                                                            RegionId r,
                                                            const Cover& sum);

/// Searches an admissible elementary sum for `r` built from its trigger
/// literals (one literal per trigger signal, at its post-trigger value).
/// nullopt when the trigger literals do not form an admissible sum.
[[nodiscard]] std::optional<Cover> find_elementary_sum(const sg::RegionAnalysis& ra, RegionId r);

/// Def 19: generalized MC of one cube for a *set* of excitation regions
/// (AND-gate sharing). The cube must be a cover cube for every region,
/// cover the union of their ERs, change at most once inside each CFR,
/// and cover nothing outside the union of the CFRs.
[[nodiscard]] std::vector<McViolation> check_generalized_mc(const sg::RegionAnalysis& ra,
                                                            std::span<const RegionId> regions,
                                                            const Cube& c);

/// check_generalized_mc with per-region facts precomputed; caches[i]
/// must belong to regions[i]. Violation list identical to the uncached
/// overload.
[[nodiscard]] std::vector<McViolation> check_generalized_mc(const sg::RegionAnalysis& ra,
                                                            std::span<const RegionId> regions,
                                                            const Cube& c,
                                                            std::span<const McRegionCache> caches);

} // namespace si::mc
