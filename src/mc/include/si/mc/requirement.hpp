// The Monotonous Cover requirement over a whole state graph (Def 18) and
// the search for literal-minimal MC cubes per excitation region.
//
// The checker works in two phases. Phase 1 searches a private MC cube
// per excitation region (Def 17). Phase 2, for signals where some region
// failed, falls back to the generalized condition (Def 19): one cube
// jointly covering several same-polarity regions of the signal. The
// paper's own Figure 3 solution (Sd = x') is of this second kind — the
// single cube covers both excitation regions of +d, which no per-region
// cube can do.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "si/mc/monotonous.hpp"
#include "si/util/budget.hpp"

namespace si::mc {

struct McCubeSearch {
    /// Upper bound on cube candidates examined when repairing a
    /// condition-2 failure by dropping literals.
    std::size_t max_candidates = 4096;
    /// Record every candidate cube the search examined (with the
    /// violations that rejected it) into RegionMc::trail. Off by default:
    /// the trail exists for explain reports, not for synthesis.
    bool record_trail = false;
    /// Run the per-region cube searches inline instead of fanning out
    /// over the thread pool. The report is byte-identical either way;
    /// the insertion spec engine sets this because it re-checks many tiny
    /// expanded graphs per second, where the fan-out handshake costs more
    /// than the search.
    bool serial = false;
};

/// One cube the MC search examined: the violations that rejected it, or
/// empty when it was accepted (the accepted cube's greedy reductions
/// appear as later entries).
struct McCandidate {
    Cube cube;
    std::vector<McViolation> violations;
    [[nodiscard]] bool accepted() const { return violations.empty(); }
};

/// MC status of one excitation region.
struct RegionMc {
    RegionId region;
    /// A literal-minimal monotonous cover cube, when one exists.
    std::optional<Cube> cube;
    /// Regions sharing this cube under the generalized condition (empty
    /// when the cube is private to this region).
    std::vector<RegionId> shared_with;
    /// Non-empty instead of `cube` when the region is implemented as an
    /// elementary sum of bare literals straight into the OR gate
    /// (Section IV, the non-distributive/OR-causality form).
    std::vector<Cube> sum_literals;
    /// Violations of the *smallest* cover cube when no MC cube exists
    /// (these drive the repair engine).
    std::vector<McViolation> violations;
    /// Candidate-by-candidate search record, in examination order, when
    /// McCubeSearch::record_trail is set (empty otherwise). The first
    /// entry is always the Lemma-3 smallest cover cube.
    std::vector<McCandidate> trail;

    [[nodiscard]] bool ok() const { return cube.has_value() || !sum_literals.empty(); }
};

/// Searches for a monotonous cover cube for `r`:
///  - starts from the Lemma-3 smallest cover cube (all ordered literals);
///  - a condition-3 failure there is final (sub-cubes cover even more);
///  - a condition-2 failure triggers a breadth-first search over literal
///    subsets (dropping a toggling literal can restore monotonicity);
///  - any hit is then greedily reduced to a literal-minimal MC cube.
[[nodiscard]] RegionMc find_mc_cube(const sg::RegionAnalysis& ra, RegionId r,
                                    const McCubeSearch& opts = {});

/// Searches one cube that is a generalized monotonous cover (Def 19) for
/// the whole region group, starting from the supercube of the groups'
/// smallest cover cubes (the maximal shared cover cube). nullopt when
/// none exists.
[[nodiscard]] std::optional<Cube> find_group_mc_cube(const sg::RegionAnalysis& ra,
                                                     std::span<const RegionId> group,
                                                     const McCubeSearch& opts = {});

/// Def 18 over all excitation regions of non-input signals, with the
/// Def-19 group fallback.
struct McReport {
    std::vector<RegionMc> regions;
    [[nodiscard]] bool satisfied() const {
        for (const auto& r : regions)
            if (!r.ok()) return false;
        return true;
    }
    [[nodiscard]] std::size_t violation_count() const {
        std::size_t n = 0;
        for (const auto& r : regions) n += r.ok() ? 0 : 1;
        return n;
    }
    [[nodiscard]] std::string describe(const sg::RegionAnalysis& ra) const;
};

[[nodiscard]] McReport check_requirement(const sg::RegionAnalysis& ra,
                                         const McCubeSearch& opts = {});

/// Budget-governed variant (stage "mc.check", one Steps unit per
/// non-input excitation region, charged before the search runs): returns
/// Exhausted instead of a report when the shared budget cannot pay for
/// the check — the differential-fuzzing oracle's graceful-degradation
/// path. `budget` may be null (then always Complete).
[[nodiscard]] util::Outcome<McReport> check_requirement_outcome(const sg::RegionAnalysis& ra,
                                                                const McCubeSearch& opts = {},
                                                                util::Budget* budget = nullptr);

} // namespace si::mc
