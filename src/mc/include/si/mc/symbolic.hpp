// The Monotonous Cover requirement checked directly on an STG, with a
// symbolic (BDD) engine that never materializes the state graph.
//
// The explicit checker (requirement.hpp) needs the unfolded StateGraph;
// for wide parallel compositions the graph is the product of the
// components and explodes long before the net itself gets large. Here
// the reachable state space lives as a BDD over one variable per place
// and per signal (the csc_impl encoding), excitation regions are flooded
// as symbolic connected components, QR/CFR/Def-16 zones are image
// fixpoints, and the Def 17/19 cube searches run with verdict-only BDD
// membership tests — the same control flow as the explicit search, so
// the Def-18 verdict agrees with the explicit pipeline wherever both can
// run, and still completes on 10^6+-state nets.
#pragma once

#include <optional>
#include <string>

#include "si/mc/requirement.hpp"
#include "si/stg/stg.hpp"
#include "si/util/budget.hpp"

namespace si::mc {

/// Which machinery evaluates the Def-18 requirement.
enum class Engine : unsigned char {
    Explicit, ///< token-game unfolding + RegionAnalysis + check_requirement
    Symbolic, ///< BDD state space; regions and cube checks fully symbolic
    Auto,     ///< Explicit below the estimated-state threshold, else Symbolic
};

[[nodiscard]] const char* to_string(Engine e);

struct StgMcOptions {
    McCubeSearch cube_search;
    /// Cap on explicit unfolding states (Engine::Explicit / the explicit
    /// side of Auto). The explicit engine reports exhaustion beyond it.
    std::size_t max_sg_states = 1u << 20;
    /// Auto picks Symbolic when the symbolically counted reachable
    /// markings exceed this threshold (the estimate costs one cheap
    /// place-space reachability, which the symbolic engine needs anyway).
    double auto_threshold = 1u << 15;
};

/// Engine-independent Def-18 verdict for one STG.
struct StgMcResult {
    Engine used = Engine::Explicit; ///< engine that produced the verdict
    bool satisfied = false;         ///< every region has a cube / group cube / sum
    std::size_t regions = 0;        ///< ERs of non-input signals examined
    std::size_t missing = 0;        ///< regions left without any MC implementation
    /// Reachable states the engine saw: exact BDD count (symbolic) or
    /// unfolded graph size (explicit).
    double reachable_states = 0;
    /// Set when a budget tripped; satisfied/missing are then unknown.
    std::optional<util::Exhaustion> exhaustion;

    [[nodiscard]] bool complete() const { return !exhaustion.has_value(); }
    [[nodiscard]] std::string describe() const;
};

/// Checks the MC requirement (Def 18, with the Def-19 group fallback and
/// the Section-IV elementary-sum fallback) on `net` using the chosen
/// engine. Symbolic work charges Resource::Steps under stage "mc.check"
/// (identical accounting to the explicit checker, so Budget::shard
/// fairness holds across engines) and BDD allocations under
/// Resource::BddNodes. Never throws on exhaustion — the result carries
/// the Exhaustion instead.
[[nodiscard]] StgMcResult check_stg(const stg::Stg& net, Engine engine,
                                    const StgMcOptions& opts = {},
                                    util::Budget* budget = nullptr);

} // namespace si::mc
