// Proof certificates for MC-based implementations.
//
// A synthesis run ends with one cube (or elementary sum) per excitation
// region. Those cubes are the entire correctness argument: by Theorem 3,
// if each is a (generalized) monotonous cover, the standard
// implementation is semi-modular. A certificate records exactly that
// data, so a consumer can re-validate a design without trusting — or
// re-running — the searches: the checker recomputes the region
// decomposition from the state graph and re-checks every Def 15-19
// condition against the recorded cubes only.
#pragma once

#include <string>
#include <vector>

#include "si/mc/requirement.hpp"

namespace si::mc {

struct RegionClaim {
    SignalId signal;
    bool rising = true;
    int instance = 1;
    /// Exactly one of the two is used: a single (possibly shared) cube,
    /// or an elementary sum of bare literals.
    std::optional<Cube> cube;
    std::vector<Cube> sum_literals;
    /// Regions this cube is shared with under Def 19 (instances of the
    /// same signal & polarity), identified by instance number.
    std::vector<int> shared_instances;
};

struct Certificate {
    std::string graph_name;
    std::size_t num_states = 0;
    std::size_t num_arcs = 0;
    std::vector<RegionClaim> claims;

    [[nodiscard]] std::string to_text(const SignalTable& signals) const;
};

/// Extracts the certificate from a satisfied MC report.
[[nodiscard]] Certificate make_certificate(const sg::RegionAnalysis& ra, const McReport& report);

struct CertificateCheck {
    bool ok = false;
    std::string reason;
    explicit operator bool() const { return ok; }
};

/// Re-validates the certificate against the graph from scratch: region
/// decomposition is recomputed, every excitation region of a non-input
/// signal must be covered by exactly one claim, and each claim must pass
/// the monotonous-cover conditions (per-region, generalized-shared, or
/// elementary-sum as recorded).
[[nodiscard]] CertificateCheck check_certificate(const sg::StateGraph& graph,
                                                 const Certificate& cert);

} // namespace si::mc
