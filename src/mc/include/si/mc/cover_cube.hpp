// Cover cubes for excitation regions (Defs 15-16, Lemma 3, Thm 1).
//
// A cover cube for ER(*a_i) may only use literals of signals *ordered*
// with the region (constant across it), at the value they hold there.
// The smallest-dimension such cube uses every ordered signal; correct
// covering additionally forbids touching states where the excitation
// function must be 0 (Def 13/16).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "si/boolean/cover.hpp"
#include "si/boolean/cube.hpp"
#include "si/sg/regions.hpp"

namespace si::mc {

/// Lemma 3: the smallest (most literals) cover cube — one literal per
/// ordered signal, at its constant value over the ER. The region's own
/// signal is concurrent with itself and thus never appears.
[[nodiscard]] Cube smallest_cover_cube(const sg::RegionAnalysis& ra, RegionId r);

/// Def 15: true if every literal of `c` is an ordered signal of `r` at
/// its value within the region (then `c` automatically covers the ER).
[[nodiscard]] bool is_cover_cube(const sg::RegionAnalysis& ra, RegionId r, const Cube& c);

/// States (reachable) covered by `c`. On the fast path this is a
/// word-wide intersection of the graph's per-signal code columns instead
/// of a per-state minterm scan.
[[nodiscard]] BitVec covered_states(const sg::RegionAnalysis& ra, const Cube& c);

/// covered_states(ra, c) into a caller-provided buffer, reusing its
/// capacity — the allocation-free form the candidate searches lean on.
void covered_states_into(const sg::RegionAnalysis& ra, const Cube& c, BitVec& out);

/// States (reachable) where the SOP `f` evaluates to 1 (union of the
/// cube covers).
[[nodiscard]] BitVec covered_states(const sg::RegionAnalysis& ra, const Cover& f);

/// Def 16: states that make the cover incorrect — covered states where
/// the excitation function of the region's signal must be 0: for +a,
/// 1*-set(a) ∪ 0-set(a); for -a, 0*-set(a) ∪ 1-set(a). Empty means the
/// cube covers the region correctly.
[[nodiscard]] std::vector<StateId> incorrect_cover_states(const sg::RegionAnalysis& ra, RegionId r,
                                                          const Cube& c);

/// States a cube wrongly reaches w.r.t. a *set* of regions it is meant
/// to cover (one region for a private cube, a Def-19 sibling group for a
/// shared one): everything covered outside the union of the CFRs, plus
/// covered states where the cube would re-rise inside some CFR (covered
/// CFR states reachable, within that CFR, from a CFR state the cube does
/// not cover — the witnesses behind condition 2). These are the
/// counterexample states the insertion engines separate with the new
/// signal's literal, and the refutation set the CEGAR loop extracts from
/// a candidate model.
[[nodiscard]] std::vector<StateId> offending_cover_states(const sg::RegionAnalysis& ra,
                                                          std::span<const RegionId> regions,
                                                          const Cube& cube);

/// Def 13: checks a full SOP up- or down-excitation function for
/// consistency — value 1 on every ER of that polarity, value 0 wherever
/// the definition demands 0. Returns an offending state or nullopt.
[[nodiscard]] std::optional<StateId> check_consistent_excitation(const sg::RegionAnalysis& ra,
                                                                 SignalId a, bool up,
                                                                 const Cover& f);

} // namespace si::mc
