#include "si/util/budget.hpp"

#include "si/obs/flight.hpp"
#include "si/obs/live.hpp"
#include "si/obs/obs.hpp"

namespace si::util {

namespace {

/// Identifier-safe resource names for metric keys ("BDD nodes" has a
/// space in its human form).
const char* resource_key(Resource r) {
    switch (r) {
        case Resource::WallClock: return "wall_ms";
        case Resource::States: return "states";
        case Resource::Steps: return "steps";
        case Resource::Conflicts: return "conflicts";
        case Resource::BddNodes: return "bdd_nodes";
        case Resource::Attempts: return "attempts";
    }
    return "?";
}

} // namespace

const char* to_string(Resource r) {
    switch (r) {
        case Resource::WallClock: return "milliseconds";
        case Resource::States: return "states";
        case Resource::Steps: return "steps";
        case Resource::Conflicts: return "conflicts";
        case Resource::BddNodes: return "BDD nodes";
        case Resource::Attempts: return "attempts";
    }
    return "?";
}

std::string Exhaustion::describe() const {
    if (!tripped) return "budget not exhausted";
    return "budget exhausted in stage '" + (stage.empty() ? std::string("<top>") : stage) +
           "': " + std::to_string(consumed) + " of " + std::to_string(limit) + " " +
           to_string(resource) + " consumed";
}

Budget& Budget::cap(Resource r, std::uint64_t limit) {
    limits_[static_cast<std::size_t>(r)] = limit;
    return *this;
}

Budget& Budget::deadline(std::chrono::milliseconds wall) {
    armed_at_ = std::chrono::steady_clock::now();
    deadline_ = armed_at_ + wall;
    wall_ms_ = static_cast<std::uint64_t>(wall.count());
    return *this;
}

std::string Budget::current_stage() const {
    std::string out;
    for (const auto& s : stages_) {
        if (!out.empty()) out += '/';
        out += s;
    }
    return out;
}

void Budget::trip(Resource r, std::uint64_t consumed, std::uint64_t limit) {
    failure_ = Exhaustion{current_stage(), r, consumed, limit};
    if (obs::enabled()) {
        // Attach the stable-metric snapshot so the exhaustion site is
        // attributable, and count the trip per stage/resource. Both are
        // diagnostic: a snapshot taken mid-flight depends on scheduling.
        failure_->metrics = obs::metrics_brief();
        obs::count("budget.exhaustions", 1);
        obs::count("budget.exhausted." + failure_->stage + "." + resource_key(r), 1,
                   obs::Tag::Diag);
    }
    // Top-level trips leave a post-mortem artifact when the flight
    // recorder is armed. Shard trips are skipped: they are folded into
    // the parent by absorb(), and dumping from every parallel worker
    // would race on the same file.
    if (!shard_ && obs::flight::armed()) {
        obs::flight::detail::record('T', obs::detail::keyed_span_path(), failure_->describe());
        (void)obs::flight::dump("budget-trip");
    }
    // A watcher tailing the heartbeat stream learns about top-level
    // trips immediately instead of at the next interval.
    if (!shard_ && obs::live::armed())
        obs::live::detail::event("budget-trip", failure_->describe());
}

bool Budget::charge(Resource r, std::uint64_t amount) {
    if (failure_) return false;
    const auto i = static_cast<std::size_t>(r);
    consumed_[i] += amount;
    if (consumed_[i] > limits_[i]) {
        trip(r, consumed_[i], limits_[i]);
        return false;
    }
    // Poll the clock every 64 charges; a deadline is a coarse guard, not
    // a precise timer, and steady_clock::now() is too expensive per step.
    if (deadline_ && (++clock_skip_ & 63u) == 0) return checkpoint();
    return true;
}

Budget Budget::shard(std::uint64_t ways) const {
    Budget s;
    for (std::size_t i = 0; i < kNumResources; ++i) {
        if (limits_[i] == UINT64_MAX) continue; // uncapped stays uncapped
        const std::uint64_t headroom = limits_[i] > consumed_[i] ? limits_[i] - consumed_[i] : 0;
        s.limits_[i] = ways > 1 ? (headroom + ways - 1) / ways : headroom;
    }
    s.shard_ = true;
    if (failure_) s.limits_.fill(0); // already exhausted: shards get nothing
    if (deadline_) {
        s.deadline_ = deadline_;
        s.armed_at_ = armed_at_;
        s.wall_ms_ = wall_ms_;
    }
    s.stages_ = stages_;
    return s;
}

void Budget::absorb(const Budget& shard) {
    for (std::size_t i = 0; i < kNumResources; ++i) {
        if (i == static_cast<std::size_t>(Resource::WallClock)) continue; // not additive
        consumed_[i] += shard.consumed_[i];
        if (!failure_ && consumed_[i] > limits_[i])
            trip(static_cast<Resource>(i), consumed_[i], limits_[i]);
    }
    if (!failure_ && shard.failure_) failure_ = shard.failure_;
}

Meter::~Meter() {
    if (!obs::enabled()) return;
    // Per-stage spend: what this analysis consumed, by resource. The
    // local budget mirrors every charge (shared budgets see the same
    // amounts), so its counters are the stage's own spend.
    for (std::size_t i = 0; i < kNumResources; ++i) {
        const std::uint64_t used = local_.consumed(static_cast<Resource>(i));
        if (used == 0) continue;
        obs::count("stage." + stage_ + "." + resource_key(static_cast<Resource>(i)), used);
    }
}

const Exhaustion& Meter::why() const {
    if (local_.exhausted()) return *local_.failure();
    if (shared_ != nullptr && shared_->exhausted()) return *shared_->failure();
    static const Exhaustion not_exhausted{"", Resource::Steps, 0, 0, /*tripped=*/false, ""};
    return not_exhausted;
}

bool Budget::checkpoint() {
    if (failure_) return false;
    if (!deadline_) return true;
    const auto now = std::chrono::steady_clock::now();
    if (now >= *deadline_) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(now - armed_at_).count();
        consumed_[static_cast<std::size_t>(Resource::WallClock)] =
            static_cast<std::uint64_t>(elapsed);
        trip(Resource::WallClock, static_cast<std::uint64_t>(elapsed), wall_ms_);
        return false;
    }
    return true;
}

} // namespace si::util
