#include "si/util/budget.hpp"

namespace si::util {

const char* to_string(Resource r) {
    switch (r) {
        case Resource::WallClock: return "milliseconds";
        case Resource::States: return "states";
        case Resource::Steps: return "steps";
        case Resource::Conflicts: return "conflicts";
        case Resource::BddNodes: return "BDD nodes";
        case Resource::Attempts: return "attempts";
    }
    return "?";
}

std::string Exhaustion::describe() const {
    return "budget exhausted in stage '" + (stage.empty() ? std::string("<top>") : stage) +
           "': " + std::to_string(consumed) + " of " + std::to_string(limit) + " " +
           to_string(resource) + " consumed";
}

Budget& Budget::cap(Resource r, std::uint64_t limit) {
    limits_[static_cast<std::size_t>(r)] = limit;
    return *this;
}

Budget& Budget::deadline(std::chrono::milliseconds wall) {
    armed_at_ = std::chrono::steady_clock::now();
    deadline_ = armed_at_ + wall;
    wall_ms_ = static_cast<std::uint64_t>(wall.count());
    return *this;
}

std::string Budget::current_stage() const {
    std::string out;
    for (const auto& s : stages_) {
        if (!out.empty()) out += '/';
        out += s;
    }
    return out;
}

void Budget::trip(Resource r, std::uint64_t consumed, std::uint64_t limit) {
    failure_ = Exhaustion{current_stage(), r, consumed, limit};
}

bool Budget::charge(Resource r, std::uint64_t amount) {
    if (failure_) return false;
    const auto i = static_cast<std::size_t>(r);
    consumed_[i] += amount;
    if (consumed_[i] > limits_[i]) {
        trip(r, consumed_[i], limits_[i]);
        return false;
    }
    // Poll the clock every 64 charges; a deadline is a coarse guard, not
    // a precise timer, and steady_clock::now() is too expensive per step.
    if (deadline_ && (++clock_skip_ & 63u) == 0) return checkpoint();
    return true;
}

Budget Budget::shard(std::uint64_t ways) const {
    Budget s;
    for (std::size_t i = 0; i < kNumResources; ++i) {
        if (limits_[i] == UINT64_MAX) continue; // uncapped stays uncapped
        const std::uint64_t headroom = limits_[i] > consumed_[i] ? limits_[i] - consumed_[i] : 0;
        s.limits_[i] = ways > 1 ? (headroom + ways - 1) / ways : headroom;
    }
    if (failure_) s.limits_.fill(0); // already exhausted: shards get nothing
    if (deadline_) {
        s.deadline_ = deadline_;
        s.armed_at_ = armed_at_;
        s.wall_ms_ = wall_ms_;
    }
    s.stages_ = stages_;
    return s;
}

void Budget::absorb(const Budget& shard) {
    for (std::size_t i = 0; i < kNumResources; ++i) {
        if (i == static_cast<std::size_t>(Resource::WallClock)) continue; // not additive
        consumed_[i] += shard.consumed_[i];
        if (!failure_ && consumed_[i] > limits_[i])
            trip(static_cast<Resource>(i), consumed_[i], limits_[i]);
    }
    if (!failure_ && shard.failure_) failure_ = shard.failure_;
}

bool Budget::checkpoint() {
    if (failure_) return false;
    if (!deadline_) return true;
    const auto now = std::chrono::steady_clock::now();
    if (now >= *deadline_) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(now - armed_at_).count();
        consumed_[static_cast<std::size_t>(Resource::WallClock)] =
            static_cast<std::uint64_t>(elapsed);
        trip(Resource::WallClock, static_cast<std::uint64_t>(elapsed), wall_ms_);
        return false;
    }
    return true;
}

} // namespace si::util
