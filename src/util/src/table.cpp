#include "si/util/table.hpp"

#include "si/util/error.hpp"

namespace si {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
    require(cells.size() == headers_.size(), "TextTable row width mismatch");
    rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            if (c + 1 < row.size()) out.append(width[c] - row[c].size() + 2, ' ');
        }
        out += '\n';
    };

    std::string out;
    emit_row(headers_, out);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
    out.append(total, '-');
    out += '\n';
    for (const auto& row : rows_) emit_row(row, out);
    return out;
}

} // namespace si
