#include "si/util/text.hpp"

namespace si {

std::vector<std::string> split(std::string_view text, std::string_view seps) {
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() && seps.find(text[i]) != std::string_view::npos) ++i;
        std::size_t j = i;
        while (j < text.size() && seps.find(text[j]) == std::string_view::npos) ++j;
        if (j > i) out.emplace_back(text.substr(i, j - i));
        i = j;
    }
    return out;
}

std::string_view trim(std::string_view text) {
    std::size_t b = 0;
    std::size_t e = text.size();
    while (b < e && (text[b] == ' ' || text[b] == '\t' || text[b] == '\r' || text[b] == '\n')) ++b;
    while (e > b && (text[e - 1] == ' ' || text[e - 1] == '\t' || text[e - 1] == '\r' || text[e - 1] == '\n')) --e;
    return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out += sep;
        out += items[i];
    }
    return out;
}

std::vector<std::string> lines_of(std::string_view text) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == '\n') {
            std::string_view line = text.substr(start, i - start);
            if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
            if (i < text.size() || !line.empty()) out.emplace_back(line);
            start = i + 1;
        }
    }
    return out;
}

} // namespace si
