#include "si/util/bitvec.hpp"

#include <bit>
#include <string>

#include "si/util/error.hpp"

namespace si {

BitVec::BitVec(std::size_t nbits, bool value) { resize(nbits, value); }

void BitVec::resize(std::size_t nbits, bool value) {
    const std::size_t nwords = (nbits + kBits - 1) / kBits;
    words_.resize(nwords, value ? ~word_type(0) : word_type(0));
    if (value && nbits > nbits_) {
        // Bits between old size and old word boundary were zero; raise them.
        for (std::size_t i = nbits_; i < std::min(nbits, words_.size() * kBits); ++i)
            set(i);
    }
    nbits_ = nbits;
    trim_tail();
}

void BitVec::trim_tail() {
    const std::size_t used = nbits_ % kBits;
    if (!words_.empty() && used != 0)
        words_.back() &= (word_type(1) << used) - 1;
}

void BitVec::set_all() {
    for (auto& w : words_) w = ~word_type(0);
    trim_tail();
}

void BitVec::reset_all() {
    for (auto& w : words_) w = 0;
}

std::size_t BitVec::count() const {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

bool BitVec::none() const {
    for (auto w : words_)
        if (w != 0) return false;
    return true;
}

BitVec& BitVec::operator&=(const BitVec& o) {
    require(nbits_ == o.nbits_, "BitVec size mismatch in operator&=");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
}

BitVec& BitVec::operator|=(const BitVec& o) {
    require(nbits_ == o.nbits_, "BitVec size mismatch in operator|=");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
}

BitVec& BitVec::operator^=(const BitVec& o) {
    require(nbits_ == o.nbits_, "BitVec size mismatch in operator^=");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
    return *this;
}

BitVec& BitVec::and_not(const BitVec& o) {
    require(nbits_ == o.nbits_, "BitVec size mismatch in and_not");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
}

bool BitVec::intersects(const BitVec& o) const {
    require(nbits_ == o.nbits_, "BitVec size mismatch in intersects");
    for (std::size_t i = 0; i < words_.size(); ++i)
        if ((words_[i] & o.words_[i]) != 0) return true;
    return false;
}

bool BitVec::is_subset_of(const BitVec& o) const {
    require(nbits_ == o.nbits_, "BitVec size mismatch in is_subset_of");
    for (std::size_t i = 0; i < words_.size(); ++i)
        if ((words_[i] & ~o.words_[i]) != 0) return false;
    return true;
}

std::size_t BitVec::find_first() const {
    for (std::size_t w = 0; w < words_.size(); ++w)
        if (words_[w] != 0)
            return w * kBits + static_cast<std::size_t>(std::countr_zero(words_[w]));
    return nbits_;
}

std::size_t BitVec::find_next(std::size_t i) const {
    ++i;
    if (i >= nbits_) return nbits_;
    std::size_t w = i / kBits;
    word_type bits = words_[w] & (~word_type(0) << (i % kBits));
    while (true) {
        if (bits != 0)
            return w * kBits + static_cast<std::size_t>(std::countr_zero(bits));
        if (++w >= words_.size()) return nbits_;
        bits = words_[w];
    }
}

BitVec BitVec::from_words(const std::uint64_t* words, std::size_t nbits) {
    BitVec out(nbits);
    for (std::size_t i = 0; i < out.words_.size(); ++i) out.words_[i] = words[i];
    out.trim_tail();
    return out;
}

std::size_t BitVec::hash() const {
    // FNV-1a over the words plus the length.
    std::size_t h = 1469598103934665603ull;
    auto mix = [&h](std::size_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(nbits_);
    for (auto w : words_) mix(static_cast<std::size_t>(w));
    return h;
}

std::string BitVec::to_string() const {
    std::string s(nbits_, '0');
    for (std::size_t i = 0; i < nbits_; ++i)
        if (test(i)) s[i] = '1';
    return s;
}

} // namespace si
