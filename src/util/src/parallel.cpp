#include "si/util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "si/obs/live.hpp"
#include "si/obs/obs.hpp"

namespace si::util {

namespace {

std::atomic<std::size_t> g_requested_threads{0}; // 0 = hardware concurrency
std::atomic<bool> g_fast_path{true};

// True on threads owned by the pool: nested fan-outs run inline there.
thread_local bool t_in_pool_worker = false;
// True on a caller thread while it drives a top-level fan-out: a nested
// fan-out issued from inside one of its own tasks must also run inline —
// re-entering Pool::run would self-deadlock on the run mutex.
thread_local bool t_in_fan_out = false;

// One job: a task function over [0, n) indices pulled via an atomic
// cursor and a deterministic first-error slot. Completion is tracked by
// the pool (busy worker count), not the job, because the job lives on
// the caller's stack and must not be read after the caller returns.
struct Job {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* task = nullptr;
    std::atomic<std::size_t> next{0};

    std::mutex error_mutex;
    std::size_t error_index = SIZE_MAX;
    std::exception_ptr error;

    void record(std::size_t index, std::exception_ptr e) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (index < error_index) {
            error_index = index;
            error = std::move(e);
        }
    }

    void work() {
        while (true) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) return;
            try {
                (*task)(i);
            } catch (...) {
                record(i, std::current_exception());
            }
        }
    }
};

// Lazily started worker set. Workers block on a condition variable until
// a job is published, help drain it, then go back to sleep. The pool is
// sized once, at first use, from the knob active at that moment; later
// set_num_threads calls below the pool size simply leave extra workers
// idle (the job cursor hands out no more than `n` indices anyway), and
// calls above it grow the pool on the next fan-out.
//
// Only one top-level job is in flight at a time: run() holds run_mutex_
// for the whole fan-out, so concurrent callers queue instead of
// clobbering the single current_/generation_ slot. (Pool workers never
// reach run() — nested fan-outs run inline in pool_run.)
class Pool {
public:
    static Pool& instance() {
        static Pool p;
        return p;
    }

    void run(std::size_t n, const std::function<void(std::size_t)>& task) {
        std::lock_guard<std::mutex> serialize(run_mutex_);
        Job job;
        job.n = n;
        job.task = &task;
        const std::size_t workers = num_threads() - 1; // caller participates
        ensure_workers(workers);
        if (workers > 0) publish(&job);
        job.work(); // the calling thread is always worker #0
        if (workers > 0) retract(); // blocks until no worker can touch `job`
        if (job.error) std::rethrow_exception(job.error);
    }

private:
    Pool() = default;
    ~Pool() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            shutdown_ = true;
        }
        wake_.notify_all();
        for (auto& t : threads_) t.join();
    }

    void ensure_workers(std::size_t count) {
        std::lock_guard<std::mutex> lock(mutex_);
        while (threads_.size() < count) {
            threads_.emplace_back([this] {
                t_in_pool_worker = true;
                worker_loop();
            });
        }
    }

    void publish(Job* job) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            current_ = job;
            ++generation_;
        }
        wake_.notify_all();
    }

    // Unpublishes the current job and waits until every worker that
    // picked it up has left work(). The job is stack-allocated in run();
    // returning before busy_ hits zero would let a straggler dereference
    // freed memory (its cursor read or a work() call it had in flight).
    void retract() {
        std::unique_lock<std::mutex> lock(mutex_);
        current_ = nullptr;
        idle_.wait(lock, [&] { return busy_ == 0; });
    }

    void worker_loop() {
        std::uint64_t seen = 0;
        while (true) {
            Job* job = nullptr;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
                if (shutdown_) return;
                seen = generation_;
                job = current_;
                // Register under the same lock that read current_, so
                // retract() always sees an accurate count of workers
                // holding the job pointer.
                if (job != nullptr) ++busy_;
            }
            if (job != nullptr) {
                job->work();
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    --busy_;
                }
                idle_.notify_all();
            }
        }
    }

    std::mutex run_mutex_; ///< serializes top-level run() calls
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    std::vector<std::thread> threads_;
    Job* current_ = nullptr;
    std::uint64_t generation_ = 0;
    std::size_t busy_ = 0; ///< workers currently inside current job's work()
    bool shutdown_ = false;
};

} // namespace

void set_num_threads(std::size_t n) { g_requested_threads.store(n); }

std::size_t num_threads() {
#ifdef SI_NO_THREADS
    return 1;
#else
    const std::size_t req = g_requested_threads.load();
    if (req != 0) return req;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
#endif
}

void set_fast_path(bool on) { g_fast_path.store(on); }
bool fast_path() { return g_fast_path.load(std::memory_order_relaxed); }

namespace detail {

namespace {

// The fan-out body, shared by the traced and untraced entry below.
void pool_run_impl(std::size_t n, const std::function<void(std::size_t)>& task) {
    if (n == 1 || num_threads() == 1 || t_in_pool_worker || t_in_fan_out) {
        // Inline: nested fan-outs and serial mode share one code path so
        // results cannot depend on the worker count.
        obs::count("pool.tasks_inline", n, obs::Tag::Diag);
        std::size_t error_index = SIZE_MAX;
        std::exception_ptr error;
        for (std::size_t i = 0; i < n; ++i) {
            try {
                task(i);
            } catch (...) {
                if (i < error_index) {
                    error_index = i;
                    error = std::current_exception();
                }
            }
        }
        if (error) std::rethrow_exception(error);
        return;
    }
    obs::count("pool.tasks_pooled", n, obs::Tag::Diag);
    obs::gauge_max("pool.workers", num_threads(), obs::Tag::Diag);
    t_in_fan_out = true;
    try {
        Pool::instance().run(n, task);
    } catch (...) {
        t_in_fan_out = false;
        throw;
    }
    t_in_fan_out = false;
}

} // namespace

void pool_run(std::size_t n, const std::function<void(std::size_t)>& task) {
    if (n == 0) return;
    obs::count("pool.fan_outs");
    obs::count("pool.tasks", n);
    // Heartbeats report cumulative fan-out/task counts even under
    // Silence (racers), where the counters above are suppressed.
    if (obs::live::armed()) obs::live::detail::pool_note(1, n);
    // The caller's request identity rides into every task: workers are
    // long-lived threads with no identity of their own, so each task
    // installs the captured identity for its duration (a no-op swap when
    // the task runs inline on the calling thread).
    const obs::RequestInfo req = obs::current_request();
    if (!obs::tracing()) {
        if (!req.active) {
            pool_run_impl(n, task);
            return;
        }
        const std::function<void(std::size_t)> scoped = [&](std::size_t i) {
            obs::detail::RequestTlsGuard guard(req);
            task(i);
        };
        pool_run_impl(n, scoped);
        return;
    }
    // One "parallel" span plus one "task" span per index, keyed by the
    // index — the traced tree is the same whether tasks ran inline, on
    // this thread, or on any number of pool workers.
    obs::FanOutSpan fan(n);
    const std::function<void(std::size_t)> traced = [&](std::size_t i) {
        obs::detail::RequestTlsGuard guard(req);
        obs::TaskSpan scope(fan, i);
        task(i);
    };
    pool_run_impl(n, traced);
}

} // namespace detail

} // namespace si::util
