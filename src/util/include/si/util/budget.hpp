// Unified resource governance for the long-running analyses.
//
// Every exploration in this library (token-game unfolding, closed-circuit
// verification, SAT search, BDD construction, branch-and-bound insertion)
// can blow up on an adversarial input. Instead of one ad-hoc cap per
// module, a Budget carries the caps — state counts, abstract steps, SAT
// conflicts, BDD nodes, a wall-clock deadline — and the analyses charge
// it cooperatively. When a cap trips, the first Exhaustion (innermost
// stage, resource, consumption) is recorded and all further charges fail,
// so a whole pipeline winds down to a partial result instead of throwing
// or silently truncating. Outcome<T> is the partial-result carrier the
// governed entry points return: Complete(value) or Exhausted{stage,
// resource, consumed}, optionally with a best-effort value attached.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "si/util/error.hpp"

namespace si::util {

/// The resource kinds a Budget can cap. `WallClock` is measured in
/// milliseconds since the deadline was armed; the others are counts in
/// whatever unit the charging module defines (documented per call site).
enum class Resource : unsigned char {
    WallClock, ///< elapsed milliseconds
    States,    ///< distinct states/markings materialized by an exploration
    Steps,     ///< abstract work units (transitions, search nodes, passes)
    Conflicts, ///< CDCL conflicts in the SAT solver
    BddNodes,  ///< nodes allocated by a BDD manager
    Attempts,  ///< candidate models examined by a CEGAR loop
};
inline constexpr std::size_t kNumResources = 6;

[[nodiscard]] const char* to_string(Resource r);

/// Where and why a budget ran out.
struct Exhaustion {
    std::string stage;       ///< innermost stage path at the trip, e.g. "synth.bnb/sg.explore"
    Resource resource = Resource::Steps;
    std::uint64_t consumed = 0; ///< units consumed when the cap tripped
    std::uint64_t limit = 0;    ///< the cap that tripped
    /// False only for the structured "not exhausted" outcome Meter::why()
    /// returns when queried from an observability path before any trip.
    bool tripped = true;
    /// Stable-metric snapshot at the trip (obs::metrics_brief), filled
    /// when metrics are enabled so the exhaustion site is attributable.
    /// Diagnostic only — excluded from describe() because mid-flight
    /// counter values are not part of the determinism contract.
    std::string metrics;

    /// "budget exhausted in stage 'verify.explore': 4096 of 4096 states consumed"
    [[nodiscard]] std::string describe() const;
};

/// Thrown only from deep recursions that cannot return partial results
/// (the BDD manager); caught at the owning subsystem's boundary and
/// converted into an Outcome / exhaustion field there. Callers of the
/// governed public entry points never see it.
class BudgetExhausted : public Error {
public:
    explicit BudgetExhausted(Exhaustion why) : Error(why.describe()), why_(std::move(why)) {}
    [[nodiscard]] const Exhaustion& why() const { return why_; }

private:
    Exhaustion why_;
};

/// A cooperative resource budget. Default-constructed budgets are
/// unlimited; caps are armed with cap()/deadline(). Charging is cheap
/// (array increment; the clock is polled every 64 charges), exhaustion
/// is sticky, and the object is shared by pointer down a pipeline so the
/// first stage to trip stops all of them.
class Budget {
public:
    Budget() = default;

    /// Arms (or replaces) a cap. Returns *this for fluent setup.
    Budget& cap(Resource r, std::uint64_t limit);
    /// Arms a wall-clock deadline `wall` from now.
    Budget& deadline(std::chrono::milliseconds wall);

    /// Charges `amount` units of r. False once the budget is exhausted;
    /// the first trip is recorded and every later charge keeps failing.
    bool charge(Resource r, std::uint64_t amount = 1);
    /// Deadline/stickiness check without consuming a counted resource —
    /// for loops whose unit of work is not worth metering.
    bool checkpoint();

    [[nodiscard]] bool exhausted() const { return failure_.has_value(); }
    [[nodiscard]] const std::optional<Exhaustion>& failure() const { return failure_; }

    [[nodiscard]] std::uint64_t consumed(Resource r) const {
        return consumed_[static_cast<std::size_t>(r)];
    }
    /// UINT64_MAX when uncapped.
    [[nodiscard]] std::uint64_t limit(Resource r) const {
        return limits_[static_cast<std::size_t>(r)];
    }

    /// Innermost-first stage path, joined with '/' ("" outside any stage).
    [[nodiscard]] std::string current_stage() const;

    /// A fresh Budget whose caps are a 1/`ways` slice (rounded up) of
    /// this budget's *remaining* headroom (limit - consumed per resource,
    /// zero once exhausted) and whose deadline is the same absolute time
    /// point. A fan-out over n tasks passes ways = n so the shards'
    /// combined caps never exceed the remaining headroom by more than
    /// rounding. Handed to one task of a parallel fan-out; see
    /// parallel.hpp for the discipline.
    ///
    /// Racing fan-outs (N racers redundantly computing one deterministic
    /// answer, e.g. the synth spec portfolio) use the same slices with a
    /// different commit rule: when a racer wins, EVERY shard — winner's
    /// included — is dropped without absorb() and only the deterministic
    /// stream-level cost (identical for any possible winner) is
    /// re-charged to the parent; absorb all shards, in task order, only
    /// when nobody wins. absorb() is the sole commit point, so dropped
    /// shards simply return their unspent headroom and a cancelled
    /// loser's wall-clock-dependent trip never reaches the parent.
    [[nodiscard]] Budget shard(std::uint64_t ways = 1) const;
    /// Folds a shard's consumption back in (counters summed; the shard's
    /// exhaustion — or the overshoot the sum itself causes — trips this
    /// budget if it has not tripped already). Shards must be absorbed in
    /// task order so the recorded exhaustion is deterministic.
    void absorb(const Budget& shard);

    /// RAII stage marker: exhaustions recorded while alive name `name`.
    class [[nodiscard]] StageScope {
    public:
        StageScope(Budget& b, std::string name) : budget_(&b) {
            budget_->stages_.push_back(std::move(name));
        }
        ~StageScope() {
            if (budget_) budget_->stages_.pop_back();
        }
        StageScope(const StageScope&) = delete;
        StageScope& operator=(const StageScope&) = delete;

    private:
        Budget* budget_;
    };
    [[nodiscard]] StageScope stage(std::string name) { return StageScope(*this, std::move(name)); }

private:
    void trip(Resource r, std::uint64_t consumed, std::uint64_t limit);

    std::array<std::uint64_t, kNumResources> limits_{UINT64_MAX, UINT64_MAX, UINT64_MAX,
                                                     UINT64_MAX, UINT64_MAX, UINT64_MAX};
    std::array<std::uint64_t, kNumResources> consumed_{};
    std::optional<std::chrono::steady_clock::time_point> deadline_;
    std::chrono::steady_clock::time_point armed_at_;
    std::uint64_t wall_ms_ = 0;
    std::uint32_t clock_skip_ = 0;
    /// True for budgets created by shard(): their trips are absorbed by
    /// the parent, so only top-level trips write a flight-recorder dump.
    bool shard_ = false;
    std::vector<std::string> stages_;
    std::optional<Exhaustion> failure_;
};

/// Charges a module-local budget (the module's legacy per-call caps) and
/// an optional caller-shared budget in lockstep, reporting whichever
/// trips first. This is how each governed module honours both its own
/// options (FromStgOptions::max_states and friends) and a pipeline-wide
/// Budget without the two knowing about each other.
class Meter {
public:
    /// `stage` names the work this meter governs; it is pushed onto the
    /// shared budget's stage stack for the meter's lifetime (so nested
    /// modules produce nested stage paths). `shared` may be null.
    Meter(std::string stage, Budget* shared)
        : shared_(shared), stage_(stage), local_scope_(local_, stage) {
        if (shared_) shared_scope_.emplace(*shared_, std::move(stage));
    }
    /// Flushes the meter's per-stage spend to the obs metrics registry
    /// ("stage.<stage>.<resource>" counters) when metrics are enabled.
    ~Meter();
    Meter(const Meter&) = delete;
    Meter& operator=(const Meter&) = delete;

    /// The module-local caps; arm before the first charge.
    [[nodiscard]] Budget& local() { return local_; }

    bool charge(Resource r, std::uint64_t amount = 1) {
        if (!local_.charge(r, amount)) return false;
        return shared_ == nullptr || shared_->charge(r, amount);
    }
    bool checkpoint() {
        if (!local_.checkpoint()) return false;
        return shared_ == nullptr || shared_->checkpoint();
    }

    [[nodiscard]] bool exhausted() const {
        return local_.exhausted() || (shared_ != nullptr && shared_->exhausted());
    }
    /// The exhaustion that stopped the work (local cap or shared budget).
    /// Never aborts: when neither budget has tripped (an observability
    /// path asking "why did you stop?" of a meter that didn't), the
    /// returned Exhaustion is a structured "not exhausted" outcome with
    /// tripped == false.
    [[nodiscard]] const Exhaustion& why() const;
    /// Stage path of this meter on its local budget (innermost scope).
    [[nodiscard]] std::string stage_path() const { return local_.current_stage(); }

private:
    Budget local_;
    Budget* shared_;
    std::string stage_;
    Budget::StageScope local_scope_;
    std::optional<Budget::StageScope> shared_scope_;
};

/// Partial-result carrier for budget-governed analyses: either a
/// complete value, or an Exhaustion (optionally with a best-effort
/// partial value — callers must check is_complete() before trusting it).
template <class T>
class Outcome {
public:
    [[nodiscard]] static Outcome complete(T value) {
        Outcome o;
        o.value_.emplace(std::move(value));
        return o;
    }
    [[nodiscard]] static Outcome exhausted(Exhaustion why) {
        Outcome o;
        o.why_.emplace(std::move(why));
        return o;
    }
    [[nodiscard]] static Outcome exhausted(Exhaustion why, T partial) {
        Outcome o;
        o.why_.emplace(std::move(why));
        o.value_.emplace(std::move(partial));
        return o;
    }

    [[nodiscard]] bool is_complete() const { return !why_.has_value(); }
    /// True when a (complete or partial) value is available.
    [[nodiscard]] bool has_value() const { return value_.has_value(); }

    [[nodiscard]] const Exhaustion& why() const {
        require(why_.has_value(), "Outcome::why on a complete outcome");
        return *why_;
    }
    [[nodiscard]] T& value() {
        require(value_.has_value(), "Outcome::value on a value-less outcome");
        return *value_;
    }
    [[nodiscard]] const T& value() const {
        require(value_.has_value(), "Outcome::value on a value-less outcome");
        return *value_;
    }

    /// "complete" or the exhaustion description, for reports.
    [[nodiscard]] std::string status() const {
        return is_complete() ? std::string("complete") : why_->describe();
    }

private:
    Outcome() = default;
    std::optional<T> value_;
    std::optional<Exhaustion> why_;
};

} // namespace si::util
