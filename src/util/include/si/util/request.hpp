// si::util — request-scoped execution context.
//
// One RequestContext describes one unit of batch/server work: a request
// id, the seed derived for it, and the Budget shard it may spend. It is
// the substrate the planned si::serve daemon sits on — a long-lived
// process admits a request, carves it a budget shard, opens an
// obs::RequestScope with the context's identity, and every span, metric
// and flight-recorder entry the pipeline records (including on pool
// workers — si::util::parallel propagates the identity through fan-outs)
// is attributable to that request.
//
// The seed derivation is the same one-splitmix64-step discipline
// si::gen::derive_seed and the fault engine use, so request streams are
// decorrelated and independent of how many other requests a campaign
// serves. trace_test pins the two derivations to each other.
#pragma once

#include <cstdint>

#include "si/obs/obs.hpp"
#include "si/util/budget.hpp"

namespace si::util {

struct RequestContext {
    std::uint64_t id = 0;
    std::uint64_t seed = 0;
    /// This request's budget slice (unlimited when built without a
    /// parent). The owner absorbs it back after the request completes:
    /// parent.absorb(ctx.budget).
    Budget budget;

    /// One splitmix64 step over (campaign_seed, id) — byte-identical to
    /// si::gen::derive_seed, kept here so layers below si::gen can seed
    /// per-request streams the same way.
    [[nodiscard]] static std::uint64_t derive_seed(std::uint64_t campaign_seed,
                                                   std::uint64_t id) {
        std::uint64_t z = ((campaign_seed * 0x9e3779b97f4a7c15ull + 1) ^
                           (id * 0xbf58476d1ce4e5b9ull)) +
                          0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /// Builds the context for request `id`: derived seed plus a budget
    /// shard carved from `parent` (1/`ways` of its remaining headroom)
    /// when one is given.
    [[nodiscard]] static RequestContext make(std::uint64_t campaign_seed, std::uint64_t id,
                                             const Budget* parent = nullptr,
                                             std::uint64_t ways = 1) {
        RequestContext ctx;
        ctx.id = id;
        ctx.seed = derive_seed(campaign_seed, id);
        if (parent != nullptr) ctx.budget = parent->shard(ways);
        return ctx;
    }

    /// The obs-side identity this context installs; construct
    /// obs::RequestScope(ctx.id, ctx.seed) to activate it.
    [[nodiscard]] obs::RequestInfo info() const { return obs::RequestInfo{id, seed, true}; }
};

} // namespace si::util
