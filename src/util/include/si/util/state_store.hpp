// Arena-packed state storage with sharded open-addressing interning.
//
// The explicit engines (marking exploration, verifier composites,
// minimize signatures, projection pairs) used to keep one heap node per
// state inside unordered containers; at 10^4+ states the pointer chasing
// and per-node allocation dominate the walk. Here every state code is a
// fixed-width row of 64-bit words in one contiguous arena, and the hash
// table stores only dense 32-bit ids in flat power-of-two slot arrays
// (open addressing, linear probing, no tombstones — nothing is ever
// erased, so every non-empty slot is live and lookups never step over
// graves).
//
// Sharding: the slot space is split into `shards` independent tables
// selected by the top hash bits. A shard per ThreadPool worker bounds
// probe-chain interference when workers intern disjoint frontiers; ids
// are always handed out from the shared arena in insertion order, so the
// id sequence — and everything derived from it — is identical for any
// shard count and any worker count (the deterministic merge is the arena
// order itself). The default shard count is fixed (not num_threads()) so
// recorded probe/resize counters are byte-identical across thread
// configurations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace si::util {

/// Contiguous rows of `words_per_code` uint64 words. Row ids are dense
/// and stable; growth is geometric (rows never move mid-call, the whole
/// buffer reallocates on push like vector).
class CodeArena {
public:
    explicit CodeArena(std::size_t words_per_code) : wpc_(words_per_code ? words_per_code : 1) {}

    [[nodiscard]] std::size_t words_per_code() const { return wpc_; }
    [[nodiscard]] std::size_t size() const { return rows_; }
    [[nodiscard]] std::size_t capacity_rows() const { return data_.capacity() / wpc_; }

    std::uint32_t push(const std::uint64_t* words) {
        data_.insert(data_.end(), words, words + wpc_);
        return static_cast<std::uint32_t>(rows_++);
    }
    [[nodiscard]] const std::uint64_t* row(std::uint32_t id) const {
        return data_.data() + std::size_t(id) * wpc_;
    }

    void clear() {
        data_.clear();
        rows_ = 0;
    }

private:
    std::vector<std::uint64_t> data_;
    std::size_t wpc_;
    std::size_t rows_ = 0;
};

namespace detail {
/// splitmix64-style word mixer; the avalanche matters because shard
/// selection uses the top bits and probing the low bits.
inline std::uint64_t mix_u64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

inline std::uint64_t hash_words(const std::uint64_t* w, std::size_t n) {
    std::uint64_t h = 0x243f6a8885a308d3ull ^ (n * 0x9e3779b97f4a7c15ull);
    for (std::size_t i = 0; i < n; ++i) h = mix_u64(h ^ w[i]);
    return h;
}
} // namespace detail

/// Interns fixed-width word codes; returns dense ids in insertion order.
class StateStore {
public:
    static constexpr std::uint32_t kEmpty = UINT32_MAX;

    /// `shards` must be a power of two; the default is fixed so counter
    /// streams don't depend on the thread configuration.
    explicit StateStore(std::size_t words_per_code, std::size_t shards = 8)
        : arena_(words_per_code), shards_(shards ? shards : 1) {
        for (auto& s : shards_) s.slots.assign(kInitialSlots, kEmpty);
    }

    /// Interns `words` (exactly words_per_code() of them). Returns the
    /// dense id and whether it was newly inserted.
    std::pair<std::uint32_t, bool> intern(const std::uint64_t* words) {
        const std::uint64_t h = detail::hash_words(words, arena_.words_per_code());
        Shard& sh = shards_[(h >> 48) & (shards_.size() - 1)];
        if ((sh.count + 1) * 4 > sh.slots.size() * 3) grow(sh);
        const std::size_t mask = sh.slots.size() - 1;
        std::size_t i = static_cast<std::size_t>(h) & mask;
        while (true) {
            ++probes_;
            const std::uint32_t id = sh.slots[i];
            if (id == kEmpty) {
                const std::uint32_t fresh = arena_.push(words);
                sh.slots[i] = fresh;
                ++sh.count;
                return {fresh, true};
            }
            if (equal(arena_.row(id), words)) return {id, false};
            i = (i + 1) & mask;
        }
    }

    /// Lookup without insertion; kEmpty when absent.
    [[nodiscard]] std::uint32_t find(const std::uint64_t* words) const {
        const std::uint64_t h = detail::hash_words(words, arena_.words_per_code());
        const Shard& sh = shards_[(h >> 48) & (shards_.size() - 1)];
        const std::size_t mask = sh.slots.size() - 1;
        std::size_t i = static_cast<std::size_t>(h) & mask;
        while (true) {
            const std::uint32_t id = sh.slots[i];
            if (id == kEmpty) return kEmpty;
            if (equal(arena_.row(id), words)) return id;
            i = (i + 1) & mask;
        }
    }

    [[nodiscard]] const std::uint64_t* code(std::uint32_t id) const { return arena_.row(id); }
    [[nodiscard]] std::size_t size() const { return arena_.size(); }
    [[nodiscard]] std::size_t words_per_code() const { return arena_.words_per_code(); }
    [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }

    /// Probe steps (slot inspections) across all interns/finds.
    [[nodiscard]] std::uint64_t probes() const { return probes_; }
    /// Shard slot-array doublings.
    [[nodiscard]] std::uint64_t resizes() const { return resizes_; }
    /// Live slots across shards; equals size() while no clear() happened
    /// — the tombstone-free invariant (nothing is ever erased).
    [[nodiscard]] std::size_t occupied_slots() const {
        std::size_t n = 0;
        for (const auto& s : shards_) n += s.count;
        return n;
    }

private:
    struct Shard {
        std::vector<std::uint32_t> slots;
        std::size_t count = 0;
    };
    static constexpr std::size_t kInitialSlots = 16;

    [[nodiscard]] bool equal(const std::uint64_t* a, const std::uint64_t* b) const {
        for (std::size_t i = 0; i < arena_.words_per_code(); ++i)
            if (a[i] != b[i]) return false;
        return true;
    }

    void grow(Shard& sh) {
        ++resizes_;
        std::vector<std::uint32_t> old = std::move(sh.slots);
        sh.slots.assign(old.size() * 2, kEmpty);
        const std::size_t mask = sh.slots.size() - 1;
        for (const std::uint32_t id : old) {
            if (id == kEmpty) continue;
            std::size_t i = static_cast<std::size_t>(
                                detail::hash_words(arena_.row(id), arena_.words_per_code())) &
                            mask;
            while (sh.slots[i] != kEmpty) i = (i + 1) & mask;
            sh.slots[i] = id;
        }
    }

    CodeArena arena_;
    std::vector<Shard> shards_;
    std::uint64_t probes_ = 0;
    std::uint64_t resizes_ = 0;
};

/// Interns variable-length uint64 sequences (refinement signatures and
/// other composite keys). Same open-addressing/no-tombstone discipline
/// as StateStore; ids are dense in insertion order.
class SeqStore {
public:
    static constexpr std::uint32_t kEmpty = UINT32_MAX;

    explicit SeqStore(std::size_t shards = 8) : shards_(shards ? shards : 1) {
        for (auto& s : shards_) s.slots.assign(64, kEmpty);
        offsets_.push_back(0);
    }

    std::pair<std::uint32_t, bool> intern(const std::uint64_t* words, std::size_t n) {
        const std::uint64_t h = detail::hash_words(words, n);
        Shard& sh = shards_[(h >> 48) & (shards_.size() - 1)];
        if ((sh.count + 1) * 4 > sh.slots.size() * 3) grow(sh);
        const std::size_t mask = sh.slots.size() - 1;
        std::size_t i = static_cast<std::size_t>(h) & mask;
        while (true) {
            const std::uint32_t id = sh.slots[i];
            if (id == kEmpty) {
                const auto fresh = static_cast<std::uint32_t>(offsets_.size() - 1);
                data_.insert(data_.end(), words, words + n);
                offsets_.push_back(data_.size());
                sh.slots[i] = fresh;
                ++sh.count;
                return {fresh, true};
            }
            if (equal(id, words, n)) return {id, false};
            i = (i + 1) & mask;
        }
    }

    [[nodiscard]] std::size_t size() const { return offsets_.size() - 1; }

private:
    struct Shard {
        std::vector<std::uint32_t> slots;
        std::size_t count = 0;
    };

    [[nodiscard]] bool equal(std::uint32_t id, const std::uint64_t* words, std::size_t n) const {
        const std::size_t b = offsets_[id];
        if (offsets_[id + 1] - b != n) return false;
        for (std::size_t i = 0; i < n; ++i)
            if (data_[b + i] != words[i]) return false;
        return true;
    }

    void grow(Shard& sh) {
        std::vector<std::uint32_t> old = std::move(sh.slots);
        sh.slots.assign(old.size() * 2, kEmpty);
        const std::size_t mask = sh.slots.size() - 1;
        for (const std::uint32_t id : old) {
            if (id == kEmpty) continue;
            const std::size_t b = offsets_[id];
            std::size_t i = static_cast<std::size_t>(
                                detail::hash_words(data_.data() + b, offsets_[id + 1] - b)) &
                            mask;
            while (sh.slots[i] != kEmpty) i = (i + 1) & mask;
            sh.slots[i] = id;
        }
    }

    std::vector<Shard> shards_;
    std::vector<std::uint64_t> data_;
    std::vector<std::size_t> offsets_;
};

/// Flat open-addressing set of uint64 keys (projection pairs, arc-dedup
/// keys). No tombstones; kSentinel is tracked out of band so every key
/// value is usable.
class U64Set {
public:
    explicit U64Set(std::size_t initial_slots = 64) {
        std::size_t n = 16;
        while (n < initial_slots) n *= 2;
        slots_.assign(n, kSentinel);
    }

    /// True when the key was newly inserted.
    bool insert(std::uint64_t key) {
        if (key == kSentinel) {
            const bool fresh = !has_sentinel_;
            has_sentinel_ = true;
            return fresh;
        }
        if ((count_ + 1) * 4 > slots_.size() * 3) grow();
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = static_cast<std::size_t>(detail::mix_u64(key)) & mask;
        while (true) {
            if (slots_[i] == kSentinel) {
                slots_[i] = key;
                ++count_;
                return true;
            }
            if (slots_[i] == key) return false;
            i = (i + 1) & mask;
        }
    }

    [[nodiscard]] bool contains(std::uint64_t key) const {
        if (key == kSentinel) return has_sentinel_;
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = static_cast<std::size_t>(detail::mix_u64(key)) & mask;
        while (true) {
            if (slots_[i] == kSentinel) return false;
            if (slots_[i] == key) return true;
            i = (i + 1) & mask;
        }
    }

    [[nodiscard]] std::size_t size() const { return count_ + (has_sentinel_ ? 1 : 0); }

private:
    static constexpr std::uint64_t kSentinel = ~0ull;

    void grow() {
        std::vector<std::uint64_t> old = std::move(slots_);
        slots_.assign(old.size() * 2, kSentinel);
        const std::size_t mask = slots_.size() - 1;
        for (const std::uint64_t key : old) {
            if (key == kSentinel) continue;
            std::size_t i = static_cast<std::size_t>(detail::mix_u64(key)) & mask;
            while (slots_[i] != kSentinel) i = (i + 1) & mask;
            slots_[i] = key;
        }
    }

    std::vector<std::uint64_t> slots_;
    std::size_t count_ = 0;
    bool has_sentinel_ = false;
};

} // namespace si::util
