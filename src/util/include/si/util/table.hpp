// Plain-text table rendering for benchmark harnesses and reports.
//
// The paper's Table 1 and our extended result tables are printed through
// this helper so every bench binary formats rows identically.
#pragma once

#include <string>
#include <vector>

namespace si {

class TextTable {
public:
    /// Column headers define the column count; all rows must match it.
    explicit TextTable(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);

    /// Renders with a header rule, columns padded to content width.
    [[nodiscard]] std::string render() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace si
