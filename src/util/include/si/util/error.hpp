// Error types shared across the si libraries.
//
// All recoverable failures in the library surface as subclasses of
// si::Error, each carrying a human-readable message built at the throw
// site (E.14: purpose-designed, informative exception types).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace si {

/// Base class of every exception thrown by the si libraries.
class Error : public std::runtime_error {
public:
    explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

/// A malformed input file or string (e.g. a bad .g STG description).
/// Structured: carries the 1-based source position next to the message,
/// so fuzzing harnesses and editors can point at the offending token
/// without re-parsing what(). Position 0 means "not attributable to a
/// location" (e.g. a missing file or a whole-input problem).
class ParseError : public Error {
public:
    using Error::Error;
    ParseError(std::size_t line, std::size_t column, std::string message)
        : Error(render(line, column, message)),
          line_(line),
          column_(column),
          message_(std::move(message)) {}

    /// 1-based line of the offending token (0 when unknown).
    [[nodiscard]] std::size_t line() const { return line_; }
    /// 1-based column of the offending token (0 when unknown).
    [[nodiscard]] std::size_t column() const { return column_; }
    /// The bare message, without the rendered position prefix.
    [[nodiscard]] const std::string& message() const { return message_; }

private:
    static std::string render(std::size_t line, std::size_t column, const std::string& message) {
        std::string s = ".g line " + std::to_string(line);
        if (column != 0) s += ", col " + std::to_string(column);
        return s + ": " + message;
    }

    std::size_t line_ = 0;
    std::size_t column_ = 0;
    std::string message_;
};

/// A specification that violates a structural requirement (e.g. an STG
/// whose reachable markings have no consistent state assignment).
class SpecError : public Error {
public:
    using Error::Error;
};

/// A request that is valid in form but cannot be satisfied (e.g. asking
/// for a monotonous cover of an excitation region that has none).
class SynthesisError : public Error {
public:
    using Error::Error;
};

/// Internal invariant violation; indicates a bug in this library.
class InternalError : public Error {
public:
    using Error::Error;
};

/// Throws InternalError when `cond` is false. Used for invariants that
/// are cheap enough to keep on in release builds.
inline void require(bool cond, const char* msg) {
    if (!cond) throw InternalError(std::string("internal invariant violated: ") + msg);
}

} // namespace si
