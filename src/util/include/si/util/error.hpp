// Error types shared across the si libraries.
//
// All recoverable failures in the library surface as subclasses of
// si::Error, each carrying a human-readable message built at the throw
// site (E.14: purpose-designed, informative exception types).
#pragma once

#include <stdexcept>
#include <string>

namespace si {

/// Base class of every exception thrown by the si libraries.
class Error : public std::runtime_error {
public:
    explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

/// A malformed input file or string (e.g. a bad .g STG description).
class ParseError : public Error {
public:
    using Error::Error;
};

/// A specification that violates a structural requirement (e.g. an STG
/// whose reachable markings have no consistent state assignment).
class SpecError : public Error {
public:
    using Error::Error;
};

/// A request that is valid in form but cannot be satisfied (e.g. asking
/// for a monotonous cover of an excitation region that has none).
class SynthesisError : public Error {
public:
    using Error::Error;
};

/// Internal invariant violation; indicates a bug in this library.
class InternalError : public Error {
public:
    using Error::Error;
};

/// Throws InternalError when `cond` is false. Used for invariants that
/// are cheap enough to keep on in release builds.
inline void require(bool cond, const char* msg) {
    if (!cond) throw InternalError(std::string("internal invariant violated: ") + msg);
}

} // namespace si
