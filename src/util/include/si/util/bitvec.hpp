// A compact dynamic bit vector.
//
// Used for state-set membership (regions, reachability closures) and for
// binary state codes. Narrower in scope than std::vector<bool> — it adds
// whole-word set algebra (and/or/andnot), popcount, and fast iteration
// over set bits, all of which the region algorithms lean on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace si {

class BitVec {
public:
    BitVec() = default;
    explicit BitVec(std::size_t nbits, bool value = false);

    [[nodiscard]] std::size_t size() const { return nbits_; }
    [[nodiscard]] bool empty() const { return nbits_ == 0; }

    void resize(std::size_t nbits, bool value = false);
    void clear() { words_.clear(); nbits_ = 0; }

    [[nodiscard]] bool test(std::size_t i) const {
        return (words_[i / kBits] >> (i % kBits)) & 1u;
    }
    void set(std::size_t i) { words_[i / kBits] |= word_type(1) << (i % kBits); }
    void reset(std::size_t i) { words_[i / kBits] &= ~(word_type(1) << (i % kBits)); }
    void assign(std::size_t i, bool v) { v ? set(i) : reset(i); }
    void flip(std::size_t i) { words_[i / kBits] ^= word_type(1) << (i % kBits); }

    void set_all();
    void reset_all();

    /// Number of set bits.
    [[nodiscard]] std::size_t count() const;
    /// True if no bit is set.
    [[nodiscard]] bool none() const;
    /// True if any bit is set.
    [[nodiscard]] bool any() const { return !none(); }

    /// In-place set algebra. All operands must have equal size().
    BitVec& operator&=(const BitVec& o);
    BitVec& operator|=(const BitVec& o);
    BitVec& operator^=(const BitVec& o);
    /// this := this & ~o.
    BitVec& and_not(const BitVec& o);

    [[nodiscard]] friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
    [[nodiscard]] friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }
    [[nodiscard]] friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }

    /// True if this and o share at least one set bit.
    [[nodiscard]] bool intersects(const BitVec& o) const;
    /// True if every set bit of this is also set in o.
    [[nodiscard]] bool is_subset_of(const BitVec& o) const;

    friend bool operator==(const BitVec&, const BitVec&) = default;

    /// Index of the first set bit, or size() if none.
    [[nodiscard]] std::size_t find_first() const;
    /// Index of the first set bit after i, or size() if none.
    [[nodiscard]] std::size_t find_next(std::size_t i) const;

    /// Calls fn(index) for each set bit in ascending order.
    template <class Fn>
    void for_each_set(Fn&& fn) const {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            word_type bits = words_[w];
            while (bits != 0) {
                const auto b = static_cast<std::size_t>(__builtin_ctzll(bits));
                fn(w * kBits + b);
                bits &= bits - 1;
            }
        }
    }

    /// Raw 64-bit word access for arena packing and word-parallel scans.
    /// Bit i lives at word_data()[i / 64] bit (i % 64); tail bits beyond
    /// size() are zero.
    [[nodiscard]] const std::uint64_t* word_data() const { return words_.data(); }
    [[nodiscard]] std::size_t num_words() const { return words_.size(); }

    /// Builds a BitVec of `nbits` bits from packed words (tail bits of
    /// the last word are masked off).
    [[nodiscard]] static BitVec from_words(const std::uint64_t* words, std::size_t nbits);

    /// Stable hash of the contents (for hash-consing markings/codes).
    [[nodiscard]] std::size_t hash() const;

    /// Renders as a left-to-right 0/1 string, bit 0 first.
    [[nodiscard]] std::string to_string() const;

private:
    using word_type = std::uint64_t;
    static constexpr std::size_t kBits = 64;

    void trim_tail();

    std::vector<word_type> words_;
    std::size_t nbits_ = 0;
};

} // namespace si

template <>
struct std::hash<si::BitVec> {
    std::size_t operator()(const si::BitVec& v) const noexcept { return v.hash(); }
};
