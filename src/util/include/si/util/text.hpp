// Small text utilities used by the parsers and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace si {

/// Splits on any run of characters from `seps`; empty tokens are dropped.
[[nodiscard]] std::vector<std::string> split(std::string_view text, std::string_view seps = " \t");

/// Strips leading and trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Joins items with `sep` between them.
[[nodiscard]] std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Splits text into lines (without terminators). A trailing newline does
/// not produce an empty final line.
[[nodiscard]] std::vector<std::string> lines_of(std::string_view text);

} // namespace si
