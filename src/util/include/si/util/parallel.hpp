// Parallel execution core.
//
// A single process-wide ThreadPool drives every data-parallel fan-out in
// the library: per-region MC cover search, per-mutant fault campaigns,
// per-property verification suites and the benchmark runners. The pool is
// deliberately simple — a fixed set of workers pulling chunk indices from
// an atomic counter — because every call site is an independent fan-out
// whose results are reduced in canonical (input) order, so output is
// byte-identical no matter how many workers run.
//
// Knobs:
//   * set_num_threads(n) — global worker count (0 = hardware concurrency;
//     compile with SI_THREADS=OFF to force 1 regardless).
//   * set_fast_path(b)   — gates the excitation/fanout indexes and the
//     word-wide set paths built on them. Results are identical either
//     way; the knob exists so benchmarks can measure the seed-equivalent
//     scan path against the indexed one.
//
// Budget integration: Budget/Meter are single-threaded by design (cheap
// unguarded counters). A parallel fan-out over n tasks therefore gives
// each task a *shard* — a fresh Budget armed with a 1/n slice of the
// parent's remaining headroom — and absorbs the shards back into the
// parent in task order after the join (consumption summed; the first
// exhaustion, lowest task index, wins). Slicing by the task count (never
// the worker count) keeps exhaustion independent of how many workers
// ran, and bounds the merged total at the remaining headroom plus one
// trip-charge per shard — not n × the headroom. The cost is that a
// single task can no longer consume more than its slice even when its
// siblings are cheap; exhaustion is still reported as Outcome::exhausted,
// never a wrong verdict.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "si/util/budget.hpp"

namespace si::util {

/// Sets the global worker count used by parallel_for/parallel_map.
/// 0 selects std::thread::hardware_concurrency(). With SI_THREADS=OFF
/// the effective count is always 1.
void set_num_threads(std::size_t n);
/// The effective worker count (>= 1).
[[nodiscard]] std::size_t num_threads();

/// Enables (default) or disables the indexed fast paths; see file header.
void set_fast_path(bool on);
[[nodiscard]] bool fast_path();

namespace detail {
/// Runs task(0..n-1), distributing indices over the pool. Blocks until
/// all complete. The first exception (lowest task index) is rethrown on
/// the calling thread. Reentrant calls (from inside a pool task) run
/// inline on the calling thread to avoid deadlock.
void pool_run(std::size_t n, const std::function<void(std::size_t)>& task);
} // namespace detail

/// fn(i) for i in [0, n), in parallel. Blocking; exception-propagating
/// (first failing index wins deterministically).
template <class Fn>
void parallel_for(std::size_t n, Fn&& fn) {
    detail::pool_run(n, std::function<void(std::size_t)>(std::forward<Fn>(fn)));
}

/// Maps fn over items, returning results in input order. R only needs to
/// be move-constructible: results are built in optional slots, not
/// default-constructed then assigned.
template <class T, class Fn>
[[nodiscard]] auto parallel_map(const std::vector<T>& items, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(items[0]))>> {
    using R = std::decay_t<decltype(fn(items[0]))>;
    std::vector<std::optional<R>> slots(items.size());
    detail::pool_run(items.size(), [&](std::size_t i) { slots[i].emplace(fn(items[i])); });
    std::vector<R> out;
    out.reserve(items.size());
    for (auto& s : slots) out.push_back(std::move(*s));
    return out;
}

/// Budget-aware fan-out: each task receives its own Budget shard armed
/// with a 1/n slice of `shared`'s remaining headroom (null shard when
/// `shared` is null), and after the join every shard is absorbed into
/// `shared` in task order — so the recorded exhaustion, if any, is the
/// same no matter how many workers ran. fn(i, shard) must charge the
/// shard, not `shared`. See the file header for the overshoot bound.
template <class Fn>
void parallel_for_budget(Budget* shared, std::size_t n, Fn&& fn) {
    if (shared == nullptr) {
        detail::pool_run(n, [&](std::size_t i) { fn(i, static_cast<Budget*>(nullptr)); });
        return;
    }
    std::vector<Budget> shards;
    shards.reserve(n);
    for (std::size_t i = 0; i < n; ++i) shards.push_back(shared->shard(n));
    detail::pool_run(n, [&](std::size_t i) { fn(i, &shards[i]); });
    for (auto& s : shards) shared->absorb(s);
}

} // namespace si::util
