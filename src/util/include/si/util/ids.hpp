// Strongly typed integer identifiers.
//
// The si libraries index almost everything (signals, states, places,
// transitions, gates) by dense integer ids. Raw std::size_t invites
// mixing a state index into a signal table; Id<Tag> makes each id space
// a distinct type while staying a trivially copyable value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace si {

/// A strongly typed index. Tag is an empty struct naming the id space.
template <class Tag>
class Id {
public:
    using underlying_type = std::uint32_t;

    constexpr Id() = default;
    constexpr explicit Id(std::size_t v) : value_(static_cast<underlying_type>(v)) {}

    /// Sentinel "no such object" value.
    [[nodiscard]] static constexpr Id invalid() {
        return Id(std::numeric_limits<underlying_type>::max());
    }
    [[nodiscard]] constexpr bool is_valid() const { return *this != invalid(); }

    [[nodiscard]] constexpr std::size_t index() const { return value_; }
    [[nodiscard]] constexpr underlying_type raw() const { return value_; }

    friend constexpr bool operator==(Id, Id) = default;
    friend constexpr auto operator<=>(Id, Id) = default;

private:
    underlying_type value_ = std::numeric_limits<underlying_type>::max();
};

struct SignalTag {};
struct StateTag {};
struct PlaceTag {};
struct TransitionTag {};
struct GateTag {};
struct RegionTag {};

/// Index of a signal within a specification or circuit.
using SignalId = Id<SignalTag>;
/// Index of a state within a state graph.
using StateId = Id<StateTag>;
/// Index of a place within an STG's underlying Petri net.
using PlaceId = Id<PlaceTag>;
/// Index of a transition within an STG's underlying Petri net.
using TransitionId = Id<TransitionTag>;
/// Index of a gate within a netlist.
using GateId = Id<GateTag>;
/// Index of an excitation region within a state graph analysis.
using RegionId = Id<RegionTag>;

} // namespace si

template <class Tag>
struct std::hash<si::Id<Tag>> {
    std::size_t operator()(si::Id<Tag> id) const noexcept {
        return std::hash<typename si::Id<Tag>::underlying_type>()(id.raw());
    }
};
