// A small CDCL SAT solver.
//
// The paper solves its state-assignment constraints "as a Boolean
// satisfiability task" (Sections V and VII). This solver is the substrate
// for that: conflict-driven clause learning with two-watched literals,
// first-UIP learning, activity-based branching, phase saving and
// geometric restarts. It is deliberately compact — the assignment
// instances are thousands of variables at most — but it is a real CDCL
// solver, exhaustively cross-checked against enumeration in the tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "si/util/budget.hpp"

namespace si::sat {

/// Variables are dense indices 0..num_vars-1.
using Var = std::uint32_t;

/// A literal: variable plus sign, packed as var*2 + (negative ? 1 : 0).
class Lit {
public:
    Lit() = default;
    Lit(Var v, bool negative) : code_(v * 2 + (negative ? 1u : 0u)) {}

    [[nodiscard]] static Lit from_code(std::uint32_t code) {
        Lit l;
        l.code_ = code;
        return l;
    }

    [[nodiscard]] Var var() const { return code_ >> 1; }
    [[nodiscard]] bool negative() const { return code_ & 1u; }
    [[nodiscard]] Lit operator~() const { return from_code(code_ ^ 1u); }
    [[nodiscard]] std::uint32_t code() const { return code_; }

    friend bool operator==(Lit, Lit) = default;

private:
    std::uint32_t code_ = 0;
};

/// Positive literal of v.
[[nodiscard]] inline Lit pos(Var v) { return Lit(v, false); }
/// Negative literal of v.
[[nodiscard]] inline Lit neg(Var v) { return Lit(v, true); }

/// Sat and Unsat are definitive answers. Unknown is returned for exactly
/// one reason — a resource budget ran out mid-search — and must never be
/// conflated with Unsat: the instance may well have a model. Callers that
/// branch on "not Sat" should consult budget_exhausted() to tell a proved
/// absence of models from an abandoned search.
enum class Result { Sat, Unsat, Unknown };

/// Per-call search effort, as deltas of the lifetime counters. Returned
/// by Solver::last_stats() after each solve(); the incremental callers
/// (the insertion spec engine) export these as obs counters per attempt.
struct SolveStats {
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t restarts = 0;
};

class Solver {
public:
    Solver();

    /// Allocates and returns a fresh variable.
    Var new_var();
    [[nodiscard]] std::size_t num_vars() const { return assign_.size(); }

    /// Adds a clause (disjunction). An empty clause makes the instance
    /// trivially unsatisfiable. Returns false if the database is already
    /// known inconsistent.
    bool add_clause(std::span<const Lit> lits);
    bool add_clause(std::initializer_list<Lit> lits) {
        return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
    }

    /// Convenience encoders.
    bool add_unit(Lit a) { return add_clause({a}); }
    bool add_implies(Lit a, Lit b) { return add_clause({~a, b}); }
    /// a <-> (b AND c)
    bool add_and(Lit a, Lit b, Lit c);
    /// At most one of the literals is true (pairwise encoding).
    bool add_at_most_one(std::span<const Lit> lits);

    /// Decides satisfiability under optional assumptions. The solver is
    /// incremental: clauses (including everything learnt), variable
    /// activity and saved phases persist across calls, and a successive
    /// call whose assumption vector shares a prefix with the previous one
    /// re-uses the still-valid assumption levels of the trail instead of
    /// restarting from level 0 — the cheap path the canonical-model
    /// enumeration in si::synth::spec leans on.
    Result solve(std::span<const Lit> assumptions = {});

    /// Model value of v after solve() returned Sat.
    [[nodiscard]] bool model_value(Var v) const;

    /// Total conflicts seen; exposed for the perf benchmarks.
    [[nodiscard]] std::uint64_t conflicts() const { return conflicts_; }
    /// Total branching decisions / unit propagations, for the obs layer.
    [[nodiscard]] std::uint64_t decisions() const { return decisions_; }
    [[nodiscard]] std::uint64_t propagations() const { return propagations_; }
    /// Total restarts performed (geometric schedule, reset per solve()).
    [[nodiscard]] std::uint64_t restarts() const { return restarts_; }
    /// Effort of the most recent solve() call alone.
    [[nodiscard]] const SolveStats& last_stats() const { return last_stats_; }

    /// Deterministically perturbs branching state (initial activities and
    /// saved phases) from `seed` — the portfolio racer's diversification
    /// knob. Affects only the order models are found in, never which
    /// formulas are satisfiable; call after encoding, before solve().
    void set_seed(std::uint64_t seed);

    /// Attaches a cooperative cancellation flag (may be null to detach).
    /// When the flag becomes true, solve() stops at the next conflict or
    /// decision and returns Unknown with cancelled() set — how a losing
    /// portfolio racer is told the race is over.
    void set_cancel(const std::atomic<bool>* cancel) { cancel_ = cancel; }
    /// True when the last solve() returned Unknown because the attached
    /// cancellation flag was raised (never set by budget exhaustion).
    [[nodiscard]] bool cancelled() const { return cancelled_; }

    /// Abort search after this many conflicts (0 = unlimited);
    /// solve() then returns Unknown.
    void set_conflict_budget(std::uint64_t budget) { conflict_budget_ = budget; }

    /// Attaches a shared governance budget (may be null to detach). Each
    /// conflict charges one util::Resource::Conflicts unit; when the
    /// budget is exhausted (any resource, including a deadline), solve()
    /// stops and returns Unknown.
    void set_budget(util::Budget* budget) { budget_ = budget; }

    /// True when the last solve() returned Unknown because a budget (the
    /// conflict cap or the attached shared budget) ran out.
    [[nodiscard]] bool budget_exhausted() const { return budget_exhausted_; }

private:
    enum class Value : std::int8_t { False = 0, True = 1, Undef = 2 };

    struct Clause {
        std::vector<Lit> lits;
        bool learnt = false;
        double activity = 0.0;
    };

    using ClauseRef = std::uint32_t;
    static constexpr ClauseRef kNoReason = UINT32_MAX;

    [[nodiscard]] Value value(Lit l) const {
        const Value v = assign_[l.var()];
        if (v == Value::Undef) return Value::Undef;
        return (v == Value::True) != l.negative() ? Value::True : Value::False;
    }

    Result solve_impl(std::span<const Lit> assumptions);
    void enqueue(Lit l, ClauseRef reason);
    [[nodiscard]] ClauseRef propagate();
    void analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& backtrack_level);
    void backtrack(int level);
    [[nodiscard]] std::optional<Lit> pick_branch();
    void bump_var(Var v);
    void decay_var_activity();
    void attach(ClauseRef cr);
    void reduce_learnts();

    // Branching order heap: an indexed binary max-heap over the strict
    // total order (higher activity, then lower variable index). The
    // comparator's tie-break reproduces the old linear argmax scan
    // exactly — same decisions, same models — while each pick costs
    // O(log n) instead of O(n), which is what makes the spec engine's
    // thousands of tiny incremental solves affordable.
    [[nodiscard]] bool heap_below(Var a, Var b) const;
    void heap_sift_up(std::size_t i);
    void heap_sift_down(std::size_t i);
    void heap_insert(Var v);
    void heap_rebuild();

    std::vector<Clause> clauses_;
    std::vector<std::vector<ClauseRef>> watches_; // indexed by Lit::code()
    std::vector<Value> assign_;                   // by var
    std::vector<ClauseRef> reason_;               // by var
    std::vector<int> level_;                      // by var
    std::vector<double> activity_;                // by var
    std::vector<bool> polarity_;                  // by var (phase saving)
    std::vector<Var> heap_;                       // branching heap (unassigned vars, lazily)
    std::vector<std::int32_t> heap_pos_;          // by var; -1 = not in heap
    std::vector<Lit> trail_;
    std::vector<std::size_t> trail_lim_;
    std::size_t qhead_ = 0;
    double var_inc_ = 1.0;
    bool ok_ = true;
    std::uint64_t conflicts_ = 0;
    std::uint64_t decisions_ = 0;
    std::uint64_t propagations_ = 0;
    std::uint64_t restarts_ = 0;
    std::uint64_t conflict_budget_ = 0;
    util::Budget* budget_ = nullptr;
    bool budget_exhausted_ = false;
    const std::atomic<bool>* cancel_ = nullptr;
    bool cancelled_ = false;
    SolveStats last_stats_;
    /// Assumption vector of the previous solve() plus how many of its
    /// leading trail levels are assumption decisions that survived — the
    /// reusable prefix for the next call. add_clause() backtracks to
    /// level 0, which invalidates reuse automatically (a new clause may
    /// falsify literals below any kept level).
    std::vector<Lit> last_assumptions_;
    std::size_t assumption_levels_ = 0;
    std::vector<bool> seen_; // scratch for analyze
};

} // namespace si::sat
