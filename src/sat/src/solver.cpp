#include "si/sat/solver.hpp"

#include <algorithm>
#include <cmath>

#include "si/obs/obs.hpp"
#include "si/util/error.hpp"

namespace si::sat {

Solver::Solver() = default;

Var Solver::new_var() {
    const Var v = static_cast<Var>(assign_.size());
    assign_.push_back(Value::Undef);
    reason_.push_back(kNoReason);
    level_.push_back(0);
    activity_.push_back(0.0);
    polarity_.push_back(false);
    seen_.push_back(false);
    watches_.emplace_back();
    watches_.emplace_back();
    heap_pos_.push_back(-1);
    heap_insert(v);
    return v;
}

bool Solver::heap_below(Var a, Var b) const {
    // Strict order whose maximum is the lowest-index variable among those
    // of maximal activity — exactly the variable the old linear argmax
    // scan returned, so branching (and the model stream) is unchanged.
    return activity_[a] < activity_[b] || (activity_[a] == activity_[b] && a > b);
}

void Solver::heap_sift_up(std::size_t i) {
    const Var v = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!heap_below(heap_[parent], v)) break;
        heap_[i] = heap_[parent];
        heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
        i = parent;
    }
    heap_[i] = v;
    heap_pos_[v] = static_cast<std::int32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
    const Var v = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
        std::size_t child = 2 * i + 1;
        if (child >= n) break;
        if (child + 1 < n && heap_below(heap_[child], heap_[child + 1])) ++child;
        if (!heap_below(v, heap_[child])) break;
        heap_[i] = heap_[child];
        heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
        i = child;
    }
    heap_[i] = v;
    heap_pos_[v] = static_cast<std::int32_t>(i);
}

void Solver::heap_insert(Var v) {
    if (heap_pos_[v] >= 0) return;
    heap_.push_back(v);
    heap_sift_up(heap_.size() - 1);
}

void Solver::heap_rebuild() {
    // Floyd heapify over the current membership set; used when activities
    // change wholesale (rescale, seeding) and pairwise sifts can't help.
    if (heap_.size() > 1)
        for (std::size_t i = heap_.size() / 2; i-- > 0;) heap_sift_down(i);
}

bool Solver::add_clause(std::span<const Lit> lits) {
    if (!ok_) return false;
    backtrack(0); // clauses join the database at decision level 0

    // Normalize: sort, drop duplicates, detect tautologies and literals
    // already false at level 0.
    std::vector<Lit> cl(lits.begin(), lits.end());
    std::sort(cl.begin(), cl.end(), [](Lit a, Lit b) { return a.code() < b.code(); });
    cl.erase(std::unique(cl.begin(), cl.end()), cl.end());
    std::vector<Lit> out;
    for (std::size_t i = 0; i < cl.size(); ++i) {
        if (i + 1 < cl.size() && cl[i + 1] == ~cl[i]) return true; // tautology
        const Value v = value(cl[i]);
        if (v == Value::True) return true; // already satisfied
        if (v == Value::Undef) out.push_back(cl[i]);
    }

    if (out.empty()) {
        ok_ = false;
        return false;
    }
    if (out.size() == 1) {
        enqueue(out[0], kNoReason);
        ok_ = propagate() == kNoReason;
        return ok_;
    }
    clauses_.push_back(Clause{std::move(out), false, 0.0});
    attach(static_cast<ClauseRef>(clauses_.size() - 1));
    return true;
}

bool Solver::add_and(Lit a, Lit b, Lit c) {
    return add_clause({~a, b}) && add_clause({~a, c}) && add_clause({a, ~b, ~c});
}

bool Solver::add_at_most_one(std::span<const Lit> lits) {
    for (std::size_t i = 0; i < lits.size(); ++i)
        for (std::size_t j = i + 1; j < lits.size(); ++j)
            if (!add_clause({~lits[i], ~lits[j]})) return false;
    return true;
}

void Solver::attach(ClauseRef cr) {
    const auto& cl = clauses_[cr].lits;
    watches_[(~cl[0]).code()].push_back(cr);
    watches_[(~cl[1]).code()].push_back(cr);
}

void Solver::enqueue(Lit l, ClauseRef reason) {
    assign_[l.var()] = l.negative() ? Value::False : Value::True;
    reason_[l.var()] = reason;
    level_[l.var()] = static_cast<int>(trail_lim_.size());
    polarity_[l.var()] = !l.negative();
    trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
    while (qhead_ < trail_.size()) {
        const Lit p = trail_[qhead_++];
        auto& ws = watches_[p.code()];
        std::size_t keep = 0;
        for (std::size_t i = 0; i < ws.size(); ++i) {
            const ClauseRef cr = ws[i];
            auto& cl = clauses_[cr].lits;
            // Ensure the false literal (~p) sits at position 1.
            if (cl[0] == ~p) std::swap(cl[0], cl[1]);
            if (value(cl[0]) == Value::True) {
                ws[keep++] = cr;
                continue;
            }
            // Look for a replacement watch.
            bool moved = false;
            for (std::size_t k = 2; k < cl.size(); ++k) {
                if (value(cl[k]) != Value::False) {
                    std::swap(cl[1], cl[k]);
                    watches_[(~cl[1]).code()].push_back(cr);
                    moved = true;
                    break;
                }
            }
            if (moved) continue;
            // Clause is unit or conflicting.
            ws[keep++] = cr;
            if (value(cl[0]) == Value::False) {
                // Conflict: keep remaining watches, report.
                for (std::size_t k = i + 1; k < ws.size(); ++k) ws[keep++] = ws[k];
                ws.resize(keep);
                qhead_ = trail_.size();
                return cr;
            }
            ++propagations_;
            enqueue(cl[0], cr);
        }
        ws.resize(keep);
    }
    return kNoReason;
}

void Solver::bump_var(Var v) {
    activity_[v] += var_inc_;
    if (activity_[v] > 1e100) {
        for (auto& a : activity_) a *= 1e-100;
        var_inc_ *= 1e-100;
        // 1e-100 is not a power of two: rounding can reorder near-ties,
        // so a full heapify is needed, not a sift of v alone.
        heap_rebuild();
    } else if (heap_pos_[v] >= 0) {
        heap_sift_up(static_cast<std::size_t>(heap_pos_[v]));
    }
}

void Solver::decay_var_activity() { var_inc_ /= 0.95; }

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& backtrack_level) {
    learnt.clear();
    learnt.push_back(Lit()); // slot for the asserting literal
    int counter = 0;
    Lit p;
    bool have_p = false;
    std::size_t index = trail_.size();
    ClauseRef reason = conflict;
    const int cur_level = static_cast<int>(trail_lim_.size());
    std::vector<Var> to_clear;

    while (true) {
        const auto& cl = clauses_[reason].lits;
        for (const Lit q : cl) {
            if (have_p && q == p) continue;
            const Var v = q.var();
            if (seen_[v] || level_[v] == 0) continue;
            seen_[v] = true;
            to_clear.push_back(v);
            bump_var(v);
            if (level_[v] == cur_level)
                ++counter;
            else
                learnt.push_back(q);
        }
        // Pick the next seen literal on the trail.
        while (!seen_[trail_[index - 1].var()]) --index;
        p = trail_[--index];
        have_p = true;
        seen_[p.var()] = false;
        if (--counter == 0) break;
        reason = reason_[p.var()];
        require(reason != kNoReason, "conflict analysis walked past a decision");
    }
    learnt[0] = ~p;

    // Compute the backtrack level: highest level among the other lits.
    backtrack_level = 0;
    std::size_t max_pos = 1;
    for (std::size_t i = 1; i < learnt.size(); ++i) {
        if (level_[learnt[i].var()] > backtrack_level) {
            backtrack_level = level_[learnt[i].var()];
            max_pos = i;
        }
    }
    if (learnt.size() > 1) std::swap(learnt[1], learnt[max_pos]);
    for (const Var v : to_clear) seen_[v] = false;
}

void Solver::backtrack(int target) {
    if (static_cast<std::size_t>(target) < assumption_levels_)
        assumption_levels_ = static_cast<std::size_t>(target);
    while (static_cast<int>(trail_lim_.size()) > target) {
        const std::size_t limit = trail_lim_.back();
        trail_lim_.pop_back();
        while (trail_.size() > limit) {
            const Var v = trail_.back().var();
            assign_[v] = Value::Undef;
            reason_[v] = kNoReason;
            heap_insert(v);
            trail_.pop_back();
        }
    }
    qhead_ = trail_.size();
}

std::optional<Lit> Solver::pick_branch() {
    // Lazy deletion: assigned variables stay in the heap until popped
    // here; backtrack() re-inserts whatever it unassigns.
    while (!heap_.empty()) {
        const Var v = heap_.front();
        const Var last = heap_.back();
        heap_.pop_back();
        heap_pos_[v] = -1;
        if (!heap_.empty() && v != last) {
            heap_.front() = last;
            heap_pos_[last] = 0;
            heap_sift_down(0);
        }
        if (assign_[v] == Value::Undef) return Lit(v, !polarity_[v]);
    }
    return std::nullopt;
}

void Solver::reduce_learnts() {
    // Learnt clause deletion is unnecessary at this problem scale; the
    // assignment instances stay small. Kept as a hook for growth.
}

void Solver::set_seed(std::uint64_t seed) {
    if (seed == 0) return; // seed 0 = the default untouched branching state
    // splitmix64 per variable: deterministic, order-independent jitter.
    for (Var v = 0; v < assign_.size(); ++v) {
        std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (v + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        activity_[v] += static_cast<double>(z % 1024) * 1e-7 * var_inc_;
        polarity_[v] = (z & 1024) != 0;
    }
    heap_rebuild();
}

Result Solver::solve(std::span<const Lit> assumptions) {
    const std::uint64_t conflicts0 = conflicts_;
    const std::uint64_t decisions0 = decisions_;
    const std::uint64_t propagations0 = propagations_;
    const std::uint64_t restarts0 = restarts_;
    if (!obs::enabled()) {
        const Result r = solve_impl(assumptions);
        last_stats_ = SolveStats{conflicts_ - conflicts0, decisions_ - decisions0,
                                 propagations_ - propagations0, restarts_ - restarts0};
        return r;
    }
    obs::Span span("sat.solve");
    span.attr("vars", static_cast<std::uint64_t>(num_vars()));
    span.attr("clauses", static_cast<std::uint64_t>(clauses_.size()));
    const Result r = solve_impl(assumptions);
    last_stats_ = SolveStats{conflicts_ - conflicts0, decisions_ - decisions0,
                             propagations_ - propagations0, restarts_ - restarts0};
    obs::count("sat.solves");
    obs::count("sat.conflicts", last_stats_.conflicts);
    obs::count("sat.decisions", last_stats_.decisions);
    obs::count("sat.propagations", last_stats_.propagations);
    obs::count("sat.restarts", last_stats_.restarts);
    span.attr("conflicts", last_stats_.conflicts);
    span.attr("result",
              r == Result::Sat ? "sat" : (r == Result::Unsat ? "unsat" : "unknown"));
    return r;
}

Result Solver::solve_impl(std::span<const Lit> assumptions) {
    budget_exhausted_ = false;
    cancelled_ = false;
    if (!ok_) return Result::Unsat;
    if (budget_ != nullptr && !budget_->checkpoint()) {
        budget_exhausted_ = true;
        return Result::Unknown;
    }
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
        cancelled_ = true;
        return Result::Unknown;
    }

    // Trail reuse: keep the longest run of leading trail levels that are
    // assumption decisions shared with the previous call. Those levels
    // (and everything they propagated) are still valid — add_clause()
    // backtracked to 0 if the clause database changed, so a non-zero
    // assumption_levels_ certifies an unchanged database.
    std::size_t keep = 0;
    const std::size_t reusable = std::min(assumption_levels_, trail_lim_.size());
    while (keep < assumptions.size() && keep < reusable &&
           keep < last_assumptions_.size() && assumptions[keep] == last_assumptions_[keep])
        ++keep;
    last_assumptions_.assign(assumptions.begin(), assumptions.end());
    backtrack(static_cast<int>(keep));
    if (keep == 0 && propagate() != kNoReason) {
        ok_ = false;
        return Result::Unsat;
    }

    std::uint64_t restart_limit = 64;
    std::uint64_t conflicts_since_restart = 0;
    std::vector<Lit> learnt;

    while (true) {
        const ClauseRef conflict = propagate();
        if (conflict != kNoReason) {
            ++conflicts_;
            ++conflicts_since_restart;
            if (conflict_budget_ != 0 && conflicts_ >= conflict_budget_) {
                backtrack(0);
                budget_exhausted_ = true;
                return Result::Unknown;
            }
            if (budget_ != nullptr && !budget_->charge(util::Resource::Conflicts)) {
                backtrack(0);
                budget_exhausted_ = true;
                return Result::Unknown;
            }
            if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
                backtrack(0);
                cancelled_ = true;
                return Result::Unknown;
            }
            if (trail_lim_.empty()) return Result::Unsat;
            int bt_level = 0;
            analyze(conflict, learnt, bt_level);
            backtrack(bt_level);
            if (learnt.size() == 1) {
                enqueue(learnt[0], kNoReason);
            } else {
                clauses_.push_back(Clause{learnt, true, 0.0});
                attach(static_cast<ClauseRef>(clauses_.size() - 1));
                enqueue(learnt[0], static_cast<ClauseRef>(clauses_.size() - 1));
            }
            decay_var_activity();
            continue;
        }

        if (conflicts_since_restart >= restart_limit) {
            conflicts_since_restart = 0;
            restart_limit = restart_limit + restart_limit / 2;
            ++restarts_;
            backtrack(0);
            continue;
        }

        // Re-apply any assumptions not yet on the trail.
        bool assumption_pending = false;
        for (std::size_t i = trail_lim_.size(); i < assumptions.size(); ++i) {
            const Lit a = assumptions[i];
            if (value(a) == Value::False) return Result::Unsat;
            trail_lim_.push_back(trail_.size());
            assumption_levels_ = i + 1;
            if (value(a) == Value::Undef) enqueue(a, kNoReason);
            assumption_pending = true;
            break;
        }
        if (assumption_pending) continue;

        const auto branch = pick_branch();
        if (!branch) return Result::Sat;
        ++decisions_;
        trail_lim_.push_back(trail_.size());
        enqueue(*branch, kNoReason);
    }
}

bool Solver::model_value(Var v) const {
    require(assign_[v] != Value::Undef, "model_value on unassigned variable");
    return assign_[v] == Value::True;
}

} // namespace si::sat
