// Sums of cubes (two-level SOP covers).
//
// Excitation functions S(a)/R(a) of the paper's standard implementations
// are covers: one cube per excitation region, OR-ed together. This class
// provides the SOP algebra the synthesis and verification layers need.
#pragma once

#include <string>
#include <vector>

#include "si/boolean/cube.hpp"

namespace si {

class Cover {
public:
    Cover() = default;
    explicit Cover(std::size_t nvars) : nvars_(nvars) {}
    Cover(std::size_t nvars, std::vector<Cube> cubes);

    [[nodiscard]] std::size_t num_vars() const { return nvars_; }
    [[nodiscard]] std::size_t size() const { return cubes_.size(); }
    [[nodiscard]] bool empty() const { return cubes_.empty(); }

    [[nodiscard]] const std::vector<Cube>& cubes() const { return cubes_; }
    [[nodiscard]] const Cube& cube(std::size_t i) const { return cubes_[i]; }

    void add(Cube c);

    /// Value of the SOP on a complete assignment.
    [[nodiscard]] bool eval(const BitVec& code) const;

    /// True if the cover contains every point of `c` (multi-cube
    /// containment, decided by recursive Shannon expansion).
    [[nodiscard]] bool covers_cube(const Cube& c) const;

    /// True if the cover contains every point of `o`.
    [[nodiscard]] bool covers(const Cover& o) const;

    /// True if the SOP is the constant-1 function.
    [[nodiscard]] bool is_tautology() const;

    /// Cofactor of the whole cover by a literal.
    [[nodiscard]] Cover cofactor(SignalId v, bool positive) const;

    /// Complement as a cover (sharp of the universe against each cube).
    [[nodiscard]] Cover complement() const;

    /// Removes duplicate and single-cube-contained cubes.
    void remove_contained();

    /// Total number of literals across all cubes.
    [[nodiscard]] std::size_t literal_count() const;

    /// One cube per line, position-string form.
    [[nodiscard]] std::string to_string() const;
    /// Algebraic form, e.g. "a b' + c d". Empty cover renders as "0".
    [[nodiscard]] std::string to_expr(const std::vector<std::string>& names) const;

private:
    std::size_t nvars_ = 0;
    std::vector<Cube> cubes_;
};

} // namespace si
