// Two-level SOP minimization (espresso-style expand / irredundant).
//
// Used when deriving compact excitation functions and when sizing the
// comparison logic of the Beerel-style baseline. The scale here is small
// (tens of variables, tens of cubes), so the classic greedy loop is both
// adequate and easy to validate exhaustively in tests.
#pragma once

#include "si/boolean/cover.hpp"
#include "si/util/budget.hpp"

namespace si {

struct MinimizeOptions {
    /// Maximum expand/reduce sweeps before settling.
    int max_passes = 4;
    /// Optional shared governance budget (stage "minimize", charged one
    /// util::Resource::Steps per cube per sweep phase). On exhaustion
    /// minimize() returns the best cover found so far — always a valid
    /// cover of the onset, possibly not fully minimized.
    util::Budget* budget = nullptr;
};

/// Minimizes `onset` against the care space: the result covers every
/// onset point, no offset point, and may absorb `dontcare` points.
/// The offset is derived as the complement of onset ∪ dontcare.
[[nodiscard]] Cover minimize(const Cover& onset, const Cover& dontcare,
                             const MinimizeOptions& opts = {});

/// Expands each cube of `cover` to a prime against the explicit offset
/// (greedy literal dropping), then removes contained cubes.
[[nodiscard]] Cover expand_against(const Cover& cover, const Cover& offset);

/// Removes cubes whose points are covered by the rest of the cover
/// together with the don't-care set.
[[nodiscard]] Cover irredundant(const Cover& cover, const Cover& dontcare);

/// Shrinks each cube to the smallest cube still covering the onset
/// points only it covers (given the rest of the cover and the
/// don't-cares) — the classic REDUCE step that lets the next EXPAND
/// escape local minima.
[[nodiscard]] Cover reduce(const Cover& cover, const Cover& onset, const Cover& dontcare);

} // namespace si
