// Ternary cubes over a fixed signal universe.
//
// A cube is a conjunction of literals: each variable is constrained to 0,
// constrained to 1, or free ("-"). Cubes are the currency of the paper:
// region functions are single cubes (Def 15), excitation functions are
// sums of cubes, and the Monotonous Cover conditions are predicates on
// how a cube's value evolves over state-graph traces.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "si/util/bitvec.hpp"
#include "si/util/ids.hpp"

namespace si {

/// Value a cube assigns to one variable.
enum class Lit : unsigned char {
    Zero, ///< complemented literal (variable must be 0)
    One,  ///< positive literal (variable must be 1)
    Dash, ///< variable unconstrained
};

class Cube {
public:
    Cube() = default;
    /// The universal cube (all dashes) over n variables.
    explicit Cube(std::size_t nvars);
    /// Parses a position string like "1-0" (Zero='0', One='1', Dash='-').
    static Cube from_string(std::string_view text);
    /// The cube whose literals pin every variable to the given code
    /// (a minterm).
    static Cube minterm(const BitVec& code);

    [[nodiscard]] std::size_t num_vars() const { return mask_.size(); }

    [[nodiscard]] Lit lit(SignalId v) const;
    void set_lit(SignalId v, Lit l);

    /// Number of literals (non-dash positions).
    [[nodiscard]] std::size_t literal_count() const { return mask_.count(); }
    /// True if every position is a dash.
    [[nodiscard]] bool is_universal() const { return mask_.none(); }

    /// True if the cube evaluates to 1 on the given complete assignment.
    [[nodiscard]] bool contains_minterm(const BitVec& code) const;

    /// True if every minterm of `o` is a minterm of this cube
    /// (single-cube containment: this ⊇ o).
    [[nodiscard]] bool covers(const Cube& o) const;

    /// Intersection (conjunction); nullopt when the cubes conflict in
    /// some literal (empty intersection).
    [[nodiscard]] std::optional<Cube> intersect(const Cube& o) const;

    /// True if the cubes share at least one minterm.
    [[nodiscard]] bool intersects(const Cube& o) const { return distance(o) == 0; }

    /// Number of variables where the cubes carry opposite literals.
    [[nodiscard]] std::size_t distance(const Cube& o) const;

    /// Smallest cube containing both (componentwise join).
    [[nodiscard]] Cube supercube(const Cube& o) const;

    /// Consensus cube: defined only when distance is exactly 1; the
    /// returned cube is the union's projection across the opposition.
    [[nodiscard]] std::optional<Cube> consensus(const Cube& o) const;

    /// this AND (v == positive ? v : !v) simplification: the cofactor of
    /// the cube with respect to a literal. nullopt when the cube carries
    /// the opposite literal (cofactor is empty).
    [[nodiscard]] std::optional<Cube> cofactor(SignalId v, bool positive) const;

    /// Cubes whose union is (this AND NOT o) — the sharp operation.
    [[nodiscard]] std::vector<Cube> sharp(const Cube& o) const;

    /// Drops the literal at v (sets it to dash).
    [[nodiscard]] Cube without(SignalId v) const;

    friend bool operator==(const Cube&, const Cube&) = default;

    /// Position-string rendering, e.g. "1-0-".
    [[nodiscard]] std::string to_string() const;
    /// Algebraic rendering with the given variable names, complements as
    /// name', e.g. "a b' d". The universal cube renders as "1".
    [[nodiscard]] std::string to_expr(const std::vector<std::string>& names) const;

    [[nodiscard]] std::size_t hash() const;

    /// Constrained-position mask: bit set ⟺ the variable carries a
    /// literal. Word layout matches BitVec::word_data().
    [[nodiscard]] const BitVec& mask() const { return mask_; }
    /// Literal polarity at constrained positions (0 at dashes).
    [[nodiscard]] const BitVec& polarity() const { return value_; }

private:
    // mask_ bit set   => variable constrained; value_ then gives polarity.
    // mask_ bit clear => dash (value_ bit kept 0 so equality works).
    BitVec mask_;
    BitVec value_;
};

} // namespace si

template <>
struct std::hash<si::Cube> {
    std::size_t operator()(const si::Cube& c) const noexcept { return c.hash(); }
};
