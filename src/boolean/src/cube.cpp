#include "si/boolean/cube.hpp"

#include "si/util/error.hpp"

namespace si {

Cube::Cube(std::size_t nvars) : mask_(nvars), value_(nvars) {}

Cube Cube::from_string(std::string_view text) {
    Cube c(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        switch (text[i]) {
        case '0': c.set_lit(SignalId(i), Lit::Zero); break;
        case '1': c.set_lit(SignalId(i), Lit::One); break;
        case '-': break;
        default: throw ParseError("bad cube character '" + std::string(1, text[i]) + "'");
        }
    }
    return c;
}

Cube Cube::minterm(const BitVec& code) {
    Cube c(code.size());
    c.mask_.set_all();
    c.value_ = code;
    return c;
}

Lit Cube::lit(SignalId v) const {
    if (!mask_.test(v.index())) return Lit::Dash;
    return value_.test(v.index()) ? Lit::One : Lit::Zero;
}

void Cube::set_lit(SignalId v, Lit l) {
    switch (l) {
    case Lit::Dash:
        mask_.reset(v.index());
        value_.reset(v.index());
        break;
    case Lit::Zero:
        mask_.set(v.index());
        value_.reset(v.index());
        break;
    case Lit::One:
        mask_.set(v.index());
        value_.set(v.index());
        break;
    }
}

bool Cube::contains_minterm(const BitVec& code) const {
    require(code.size() == num_vars(), "minterm width mismatch");
    // Mismatch iff (code XOR value) has a bit inside mask.
    BitVec diff = code;
    diff ^= value_;
    return !diff.intersects(mask_);
}

bool Cube::covers(const Cube& o) const {
    require(num_vars() == o.num_vars(), "cube width mismatch");
    // Every literal of this must appear in o with the same polarity.
    if (!mask_.is_subset_of(o.mask_)) return false;
    BitVec diff = value_;
    diff ^= o.value_;
    return !diff.intersects(mask_);
}

std::optional<Cube> Cube::intersect(const Cube& o) const {
    if (distance(o) != 0) return std::nullopt;
    Cube r(num_vars());
    r.mask_ = mask_ | o.mask_;
    r.value_ = value_ | o.value_;
    return r;
}

std::size_t Cube::distance(const Cube& o) const {
    require(num_vars() == o.num_vars(), "cube width mismatch");
    BitVec diff = value_;
    diff ^= o.value_;
    diff &= mask_;
    diff &= o.mask_;
    return diff.count();
}

Cube Cube::supercube(const Cube& o) const {
    require(num_vars() == o.num_vars(), "cube width mismatch");
    Cube r(num_vars());
    // Keep a literal only where both cubes constrain it identically.
    BitVec agree = value_;
    agree ^= o.value_;
    // agree bit 0 => same polarity.
    r.mask_ = mask_ & o.mask_;
    r.mask_.and_not(agree);
    r.value_ = value_;
    r.value_ &= r.mask_;
    return r;
}

std::optional<Cube> Cube::consensus(const Cube& o) const {
    if (distance(o) != 1) return std::nullopt;
    // Find the single opposition variable.
    BitVec diff = value_;
    diff ^= o.value_;
    diff &= mask_;
    diff &= o.mask_;
    const std::size_t v = diff.find_first();
    Cube a = without(SignalId(v));
    Cube b = o.without(SignalId(v));
    return a.intersect(b);
}

std::optional<Cube> Cube::cofactor(SignalId v, bool positive) const {
    const Lit l = lit(v);
    if (l != Lit::Dash && (l == Lit::One) != positive) return std::nullopt;
    return without(v);
}

std::vector<Cube> Cube::sharp(const Cube& o) const {
    require(num_vars() == o.num_vars(), "cube width mismatch");
    if (o.covers(*this)) return {};
    if (distance(o) != 0) return {*this};
    // For each literal of o free in this, split off the opposite half.
    std::vector<Cube> out;
    Cube base = *this;
    for (std::size_t i = 0; i < num_vars(); ++i) {
        const SignalId v{i};
        if (o.lit(v) == Lit::Dash || lit(v) != Lit::Dash) continue;
        Cube piece = base;
        piece.set_lit(v, o.lit(v) == Lit::One ? Lit::Zero : Lit::One);
        out.push_back(std::move(piece));
        base.set_lit(v, o.lit(v));
    }
    return out;
}

Cube Cube::without(SignalId v) const {
    Cube r = *this;
    r.set_lit(v, Lit::Dash);
    return r;
}

std::string Cube::to_string() const {
    std::string s(num_vars(), '-');
    for (std::size_t i = 0; i < num_vars(); ++i) {
        switch (lit(SignalId(i))) {
        case Lit::Zero: s[i] = '0'; break;
        case Lit::One: s[i] = '1'; break;
        case Lit::Dash: break;
        }
    }
    return s;
}

std::string Cube::to_expr(const std::vector<std::string>& names) const {
    require(names.size() == num_vars(), "name table width mismatch");
    std::string s;
    for (std::size_t i = 0; i < num_vars(); ++i) {
        const Lit l = lit(SignalId(i));
        if (l == Lit::Dash) continue;
        if (!s.empty()) s += ' ';
        s += names[i];
        if (l == Lit::Zero) s += '\'';
    }
    return s.empty() ? "1" : s;
}

std::size_t Cube::hash() const {
    return mask_.hash() * 1000003u ^ value_.hash();
}

} // namespace si
