#include "si/boolean/cover.hpp"

#include <algorithm>

#include "si/util/error.hpp"

namespace si {

Cover::Cover(std::size_t nvars, std::vector<Cube> cubes) : nvars_(nvars), cubes_(std::move(cubes)) {
    for (const auto& c : cubes_) require(c.num_vars() == nvars_, "cover cube width mismatch");
}

void Cover::add(Cube c) {
    require(c.num_vars() == nvars_, "cover cube width mismatch");
    cubes_.push_back(std::move(c));
}

bool Cover::eval(const BitVec& code) const {
    for (const auto& c : cubes_)
        if (c.contains_minterm(code)) return true;
    return false;
}

namespace {

// Shannon-expansion tautology check on a cube list.
bool tautology_rec(const std::vector<Cube>& cubes, std::size_t nvars) {
    // A cover containing the universal cube is a tautology.
    for (const auto& c : cubes)
        if (c.is_universal()) return true;
    if (cubes.empty()) return false;

    // Pick the most-constrained variable as the splitting variable.
    std::vector<std::size_t> uses(nvars, 0);
    for (const auto& c : cubes)
        for (std::size_t v = 0; v < nvars; ++v)
            if (c.lit(SignalId(v)) != Lit::Dash) ++uses[v];
    const auto it = std::max_element(uses.begin(), uses.end());
    if (*it == 0) return false; // only non-universal dashless case handled above
    const SignalId v{static_cast<std::size_t>(it - uses.begin())};

    for (const bool phase : {false, true}) {
        std::vector<Cube> half;
        half.reserve(cubes.size());
        for (const auto& c : cubes)
            if (auto cf = c.cofactor(v, phase)) half.push_back(std::move(*cf));
        if (!tautology_rec(half, nvars)) return false;
    }
    return true;
}

} // namespace

bool Cover::covers_cube(const Cube& c) const {
    require(c.num_vars() == nvars_, "cube width mismatch");
    // F ⊇ c  iff  F cofactored by c is a tautology.
    std::vector<Cube> cof;
    cof.reserve(cubes_.size());
    for (const auto& f : cubes_) {
        std::optional<Cube> g = f;
        for (std::size_t v = 0; v < nvars_ && g; ++v) {
            const Lit l = c.lit(SignalId(v));
            if (l != Lit::Dash) g = g->cofactor(SignalId(v), l == Lit::One);
        }
        if (g) cof.push_back(std::move(*g));
    }
    return tautology_rec(cof, nvars_);
}

bool Cover::covers(const Cover& o) const {
    return std::all_of(o.cubes_.begin(), o.cubes_.end(),
                       [this](const Cube& c) { return covers_cube(c); });
}

bool Cover::is_tautology() const { return tautology_rec(cubes_, nvars_); }

Cover Cover::cofactor(SignalId v, bool positive) const {
    Cover out(nvars_);
    for (const auto& c : cubes_)
        if (auto cf = c.cofactor(v, positive)) out.add(std::move(*cf));
    return out;
}

Cover Cover::complement() const {
    // Iterated sharp: start from the universe, subtract each cube.
    std::vector<Cube> acc{Cube(nvars_)};
    for (const auto& c : cubes_) {
        std::vector<Cube> next;
        for (const auto& a : acc) {
            auto pieces = a.sharp(c);
            next.insert(next.end(), pieces.begin(), pieces.end());
        }
        acc = std::move(next);
        if (acc.empty()) break;
    }
    Cover out(nvars_, std::move(acc));
    out.remove_contained();
    return out;
}

void Cover::remove_contained() {
    std::vector<Cube> kept;
    for (std::size_t i = 0; i < cubes_.size(); ++i) {
        bool redundant = false;
        for (std::size_t j = 0; j < cubes_.size() && !redundant; ++j) {
            if (i == j) continue;
            if (cubes_[j].covers(cubes_[i])) {
                // Break ties between equal cubes by index so exactly one
                // survives.
                redundant = cubes_[j] != cubes_[i] || j < i;
            }
        }
        if (!redundant) kept.push_back(cubes_[i]);
    }
    cubes_ = std::move(kept);
}

std::size_t Cover::literal_count() const {
    std::size_t n = 0;
    for (const auto& c : cubes_) n += c.literal_count();
    return n;
}

std::string Cover::to_string() const {
    std::string s;
    for (const auto& c : cubes_) {
        s += c.to_string();
        s += '\n';
    }
    return s;
}

std::string Cover::to_expr(const std::vector<std::string>& names) const {
    if (cubes_.empty()) return "0";
    std::string s;
    for (std::size_t i = 0; i < cubes_.size(); ++i) {
        if (i != 0) s += " + ";
        s += cubes_[i].to_expr(names);
    }
    return s;
}

} // namespace si
