#include "si/boolean/minimize.hpp"

#include "si/obs/obs.hpp"

namespace si {

Cover expand_against(const Cover& cover, const Cover& offset) {
    Cover out(cover.num_vars());
    for (const auto& c : cover.cubes()) {
        Cube cur = c;
        // Greedily drop literals while the enlarged cube stays disjoint
        // from the offset. Dropping in ascending variable order keeps the
        // result deterministic.
        for (std::size_t v = 0; v < cover.num_vars(); ++v) {
            if (cur.lit(SignalId(v)) == Lit::Dash) continue;
            const Cube widened = cur.without(SignalId(v));
            bool hits_offset = false;
            for (const auto& r : offset.cubes()) {
                if (widened.intersects(r)) {
                    hits_offset = true;
                    break;
                }
            }
            if (!hits_offset) cur = widened;
        }
        out.add(std::move(cur));
    }
    out.remove_contained();
    return out;
}

Cover irredundant(const Cover& cover, const Cover& dontcare) {
    // Greedy: try to delete each cube (largest literal count first would
    // bias to big AND gates; delete in reverse insertion order instead,
    // which favours keeping the earlier, region-ordered cubes).
    std::vector<Cube> kept = cover.cubes();
    for (std::size_t i = kept.size(); i-- > 0;) {
        Cover rest(cover.num_vars());
        for (std::size_t j = 0; j < kept.size(); ++j)
            if (j != i) rest.add(kept[j]);
        for (const auto& d : dontcare.cubes()) rest.add(d);
        if (rest.covers_cube(kept[i])) kept.erase(kept.begin() + static_cast<std::ptrdiff_t>(i));
    }
    return Cover(cover.num_vars(), std::move(kept));
}

Cover reduce(const Cover& cover, const Cover& onset, const Cover& dontcare) {
    // For each cube, find the onset points no other cube covers and
    // shrink to their supercube; fully redundant cubes are dropped.
    std::vector<Cube> out;
    for (std::size_t i = 0; i < cover.size(); ++i) {
        // Essential part: onset ∧ cube ∧ ¬(rest of cover) ∧ ¬dontcare.
        std::vector<Cube> essential;
        for (const auto& on : onset.cubes()) {
            if (auto isec = on.intersect(cover.cube(i))) {
                std::vector<Cube> pieces{*isec};
                auto subtract = [&pieces](const Cube& sub) {
                    std::vector<Cube> next;
                    for (const auto& piece : pieces) {
                        auto diff = piece.sharp(sub);
                        next.insert(next.end(), diff.begin(), diff.end());
                    }
                    pieces = std::move(next);
                };
                for (std::size_t j = 0; j < cover.size(); ++j)
                    if (j != i) subtract(cover.cube(j));
                for (const auto& d : dontcare.cubes()) subtract(d);
                essential.insert(essential.end(), pieces.begin(), pieces.end());
            }
        }
        if (essential.empty()) continue; // fully redundant: drop
        Cube shrunk = essential.front();
        for (std::size_t k = 1; k < essential.size(); ++k)
            shrunk = shrunk.supercube(essential[k]);
        out.push_back(std::move(shrunk));
    }
    return Cover(cover.num_vars(), std::move(out));
}

Cover minimize(const Cover& onset, const Cover& dontcare, const MinimizeOptions& opts) {
    obs::Span span("minimize");
    span.attr("onset_cubes", static_cast<std::uint64_t>(onset.size()));
    util::Meter meter("minimize", opts.budget);

    Cover care(onset.num_vars());
    for (const auto& c : onset.cubes()) care.add(c);
    for (const auto& c : dontcare.cubes()) care.add(c);
    const Cover offset = care.complement();

    Cover cur = onset;
    cur.remove_contained();
    Cover best = cur;
    std::size_t best_cost = SIZE_MAX;
    for (int pass = 0; pass < opts.max_passes; ++pass) {
        // Each sweep phase costs one Steps unit per cube it touches; an
        // exhausted budget settles for the best cover reached so far (a
        // correct cover every round — only optimality degrades).
        if (!meter.charge(util::Resource::Steps, cur.size() + 1)) break;
        obs::count("minimize.passes");
        Cover expanded = expand_against(cur, offset);
        if (!meter.charge(util::Resource::Steps, expanded.size())) {
            Cover pruned = irredundant(expanded, dontcare);
            const std::size_t cost = pruned.size() * 1000 + pruned.literal_count();
            if (cost < best_cost) best = std::move(pruned);
            break;
        }
        Cover pruned = irredundant(expanded, dontcare);
        const std::size_t cost = pruned.size() * 1000 + pruned.literal_count();
        if (cost < best_cost) {
            best_cost = cost;
            best = pruned;
        } else if (pass > 0) {
            break;
        }
        if (!meter.charge(util::Resource::Steps, pruned.size())) break;
        // REDUCE perturbs the local minimum so the next EXPAND can find
        // different primes.
        cur = reduce(pruned, onset, dontcare);
        if (cur.empty()) cur = std::move(pruned);
    }
    span.attr("cubes", static_cast<std::uint64_t>(best.size()));
    span.attr("literals", static_cast<std::uint64_t>(best.literal_count()));
    if (obs::enabled()) {
        obs::count("minimize.calls");
        obs::count("minimize.cubes_out", best.size());
        obs::observe("minimize.literals", best.literal_count());
    }
    return best;
}

} // namespace si
