#include "si/obs/flight.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "si/obs/obs.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <fcntl.h>
#include <unistd.h>
#define SI_FLIGHT_SIGNALS 1
#endif

namespace si::obs::flight {

namespace detail {
std::atomic<unsigned char> g_armed{255}; // 255 = read SI_OBS_FLIGHT on first use
} // namespace detail

namespace {

struct Entry {
    std::string path; ///< keyed span path at record time ("" outside spans)
    std::uint64_t seq = 0; ///< per-path sequence number
    char kind = 'N';       ///< 'B'/'E' span events, 'N' note, 'T' trip
    std::string msg;
};

// Leaked singleton, like the obs registry: the recorder must stay valid
// for pool workers and the signal handler regardless of static
// destruction order.
struct State {
    std::mutex mutex; ///< ring, sequence counters and directory
    std::mutex io;    ///< serializes concurrent dump() file writes
    std::deque<Entry> ring;
    std::unordered_map<std::string, std::uint64_t> seq;
    std::string dir;
    /// Pre-composed crash-dump path, readable from the signal handler.
    char crash_path[512] = {0};
    bool handlers_installed = false;
    /// Active ring capacity; 0 = SI_OBS_FLIGHT_RING not yet consulted.
    std::size_t capacity = 0;
    /// Sort scratch for the signal-safe crash writer, preallocated
    /// whenever the capacity is (re)resolved — the handler itself must
    /// not allocate.
    const Entry** crash_sorted = nullptr;
    std::size_t crash_cap = 0;
};

State& state() {
    static State* s = new State;
    return *s;
}

/// Resolves the ring capacity, consulting SI_OBS_FLIGHT_RING exactly
/// once (so a garbage value warns exactly once). Caller holds s.mutex.
std::size_t capacity_locked(State& s) {
    if (s.capacity == 0) {
        std::size_t cap = kDefaultCapacity;
        if (const char* env = std::getenv("SI_OBS_FLIGHT_RING"); env != nullptr && env[0] != '\0') {
            char* end = nullptr;
            const unsigned long long v = std::strtoull(env, &end, 10);
            if (end != nullptr && *end == '\0' && v >= 1 && v <= (1ULL << 20)) {
                cap = static_cast<std::size_t>(v);
            } else {
                std::fprintf(stderr,
                             "si::obs::flight: ignoring unrecognized SI_OBS_FLIGHT_RING "
                             "value '%s' (expected 1..%llu); using %zu\n",
                             env, 1ULL << 20, kDefaultCapacity);
            }
        }
        s.capacity = cap;
    }
    if (s.crash_cap != s.capacity) {
        delete[] s.crash_sorted;
        s.crash_sorted = new const Entry*[s.capacity];
        s.crash_cap = s.capacity;
    }
    return s.capacity;
}

const char* kind_name(char k) {
    switch (k) {
    case 'B': return "B";
    case 'E': return "E";
    case 'T': return "T";
    default: return "N";
    }
}

/// Canonical event order: per-path program order. Paths are unique per
/// concurrent task (they embed the canonical span keys), so this order
/// is thread-count independent whenever the instrumented work is.
bool entry_less(const Entry& a, const Entry& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.seq != b.seq) return a.seq < b.seq;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.msg < b.msg;
}

void append_event_line(std::string& out, const Entry& e, bool last) {
    out += "    {\"path\": \"";
    obs::detail::json_escape(out, e.path);
    out += "\", \"seq\": " + std::to_string(e.seq) + ", \"kind\": \"";
    out += kind_name(e.kind);
    out += "\", \"msg\": \"";
    obs::detail::json_escape(out, e.msg);
    out += last ? "\"}\n" : "\"},\n";
}

const char* mode_name() {
    switch (mode()) {
    case Mode::Trace: return "trace";
    case Mode::Metrics: return "metrics";
    case Mode::Off: return "off";
    }
    return "?";
}

const char* clock_name() {
    return clock_mode() == ClockMode::Wall ? "wall" : "deterministic";
}

#ifdef SI_FLIGHT_SIGNALS

// ---------------------------------------------------------------------------
// Signal-safe crash writer. Mirrors render()'s byte layout using only
// write(2) and hand-rolled formatting (no allocation, no stdio); the
// entry strings are read in place — racing threads can at worst tear a
// message, and the process is crashing anyway.

void put(int fd, const char* s, std::size_t n) {
    while (n > 0) {
        const ::ssize_t w = ::write(fd, s, n);
        if (w <= 0) return;
        s += w;
        n -= static_cast<std::size_t>(w);
    }
}

void put_str(int fd, const char* s) { put(fd, s, std::strlen(s)); }

void put_u64(int fd, std::uint64_t v) {
    char buf[24];
    char* p = buf + sizeof buf;
    *--p = '\0';
    do {
        *--p = static_cast<char>('0' + v % 10);
        v /= 10;
    } while (v != 0);
    put_str(fd, p);
}

void put_escaped(int fd, const char* s, std::size_t n) {
    static const char* hex = "0123456789abcdef";
    for (std::size_t i = 0; i < n; ++i) {
        const char c = s[i];
        switch (c) {
        case '"': put(fd, "\\\"", 2); break;
        case '\\': put(fd, "\\\\", 2); break;
        case '\n': put(fd, "\\n", 2); break;
        case '\t': put(fd, "\\t", 2); break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char u[6] = {'\\', 'u', '0', '0', hex[(c >> 4) & 0xf], hex[c & 0xf]};
                put(fd, u, 6);
            } else {
                put(fd, &c, 1);
            }
        }
    }
}

void write_crash_json(int fd, int sig) {
    State& s = state();
    // Best effort: if the crashing thread already holds the ring mutex,
    // dump without it rather than deadlocking in the handler.
    const bool locked = s.mutex.try_lock();
    // The sort scratch was preallocated when the capacity was resolved
    // (before anything could have been recorded); null means an empty
    // ring, so there is nothing to lose by skipping the events.
    const Entry** sorted = s.crash_sorted;
    std::size_t n = 0;
    if (sorted != nullptr) {
        for (const Entry& e : s.ring) {
            if (n == s.crash_cap) break;
            sorted[n++] = &e;
        }
        std::sort(sorted, sorted + n,
                  [](const Entry* a, const Entry* b) { return entry_less(*a, *b); });
    }

    put_str(fd, "{\n  \"flight\": 1,\n  \"reason\": \"crash\",\n  \"signal\": ");
    put_u64(fd, static_cast<std::uint64_t>(sig));
    put_str(fd, ",\n  \"mode\": \"");
    put_str(fd, mode_name());
    put_str(fd, "\",\n  \"clock\": \"");
    put_str(fd, clock_name());
    put_str(fd, "\",\n  \"events\": [\n");
    for (std::size_t i = 0; i < n; ++i) {
        const Entry& e = *sorted[i];
        put_str(fd, "    {\"path\": \"");
        put_escaped(fd, e.path.data(), e.path.size());
        put_str(fd, "\", \"seq\": ");
        put_u64(fd, e.seq);
        put_str(fd, ", \"kind\": \"");
        put_str(fd, kind_name(e.kind));
        put_str(fd, "\", \"msg\": \"");
        put_escaped(fd, e.msg.data(), e.msg.size());
        put_str(fd, i + 1 == n ? "\"}\n" : "\"},\n");
    }
    // No metrics in the crash path: merging the shards allocates.
    put_str(fd, "  ],\n  \"metrics\": {}\n}\n");
    if (locked) s.mutex.unlock();
}

extern "C" void flight_signal_handler(int sig) {
    State& s = state();
    if (s.crash_path[0] != '\0') {
        const int fd = ::open(s.crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
            write_crash_json(fd, sig);
            ::close(fd);
        }
    }
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

void install_handlers_locked(State& s) {
    if (s.handlers_installed) return;
    s.handlers_installed = true;
    for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL})
        ::signal(sig, flight_signal_handler);
}

#else

void install_handlers_locked(State&) {}

#endif // SI_FLIGHT_SIGNALS

} // namespace

namespace detail {

bool armed_slow() {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    unsigned char expected = 255;
    if (g_armed.load(std::memory_order_relaxed) == 255) {
        const char* env = std::getenv("SI_OBS_FLIGHT");
        if (env != nullptr && env[0] != '\0') {
            std::error_code ec;
            std::filesystem::create_directories(env, ec);
            s.dir = env;
            std::snprintf(s.crash_path, sizeof s.crash_path, "%s/flight-crash.json", env);
            install_handlers_locked(s);
            g_armed.compare_exchange_strong(expected, 1);
        } else {
            g_armed.compare_exchange_strong(expected, 0);
        }
    }
    return g_armed.load(std::memory_order_relaxed) != 0;
}

void record(char kind, std::string path, std::string msg) {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    const std::size_t cap = capacity_locked(s);
    const std::uint64_t seq = s.seq[path]++;
    while (s.ring.size() >= cap) s.ring.pop_front();
    s.ring.push_back(Entry{std::move(path), seq, kind, std::move(msg)});
}

} // namespace detail

void set_dir(std::string dir) {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (dir.empty()) {
        s.dir.clear();
        s.crash_path[0] = '\0';
        detail::g_armed.store(0);
        return;
    }
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::snprintf(s.crash_path, sizeof s.crash_path, "%s/flight-crash.json", dir.c_str());
    s.dir = std::move(dir);
    install_handlers_locked(s);
    detail::g_armed.store(1);
}

std::string dir() {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.dir;
}

std::size_t capacity() {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return capacity_locked(s);
}

void set_capacity(std::size_t n) {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.capacity = n == 0 ? kDefaultCapacity : std::min(n, std::size_t{1} << 20);
    (void)capacity_locked(s); // re-size the crash sort scratch
    while (s.ring.size() > s.capacity) s.ring.pop_front();
}

void note(std::string_view message) {
    if (!armed()) return;
    detail::record('N', obs::detail::keyed_span_path(), std::string(message));
}

std::string render(std::string_view reason) {
    std::string out = "{\n  \"flight\": 1,\n  \"reason\": \"";
    obs::detail::json_escape(out, reason);
    out += "\",\n  \"signal\": 0,\n  \"mode\": \"";
    out += mode_name();
    out += "\",\n  \"clock\": \"";
    out += clock_name();
    out += "\",\n  \"events\": [\n";
    {
        State& s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        std::vector<const Entry*> sorted;
        sorted.reserve(s.ring.size());
        for (const Entry& e : s.ring) sorted.push_back(&e);
        std::sort(sorted.begin(), sorted.end(),
                  [](const Entry* a, const Entry* b) { return entry_less(*a, *b); });
        for (std::size_t i = 0; i < sorted.size(); ++i)
            append_event_line(out, *sorted[i], i + 1 == sorted.size());
    }
    out += "  ],\n  \"metrics\": " + metrics_json() + "\n}\n";
    return out;
}

std::string dump(std::string_view reason) {
    if (!armed()) return "flight recorder disarmed (set_dir or SI_OBS_FLIGHT)";
    std::string name = "flight-";
    for (const char c : reason)
        name += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' || c == '_')
                    ? c
                    : '-';
    name += ".json";
    State& s = state();
    std::lock_guard<std::mutex> io(s.io);
    std::string path;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (s.dir.empty()) return "flight recorder disarmed (set_dir or SI_OBS_FLIGHT)";
        path = s.dir + "/" + name;
    }
    // Latest post-mortem wins: a dump is a crash artifact, not a report
    // the overwrite-refusal contract protects.
    std::ofstream out(path, std::ios::trunc);
    if (!out) return "cannot write '" + path + "'";
    out << render(reason);
    return out.good() ? std::string{} : "write to '" + path + "' failed";
}

void reset() {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.ring.clear();
    s.seq.clear();
}

} // namespace si::obs::flight
