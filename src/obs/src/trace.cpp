#include "si/obs/trace.hpp"

#include "obs_internal.hpp"

#include <algorithm>
#include <bit>
#include <cctype>

namespace si::obs::trace {

// ---------------------------------------------------------------------------
// Snapshot capture

namespace {

// Flattens one canonical-tree node (and its subtree) into the snapshot,
// assigning ticks exactly like the deterministic exporters: one tick at
// begin, one at end, children in key order between them.
void flatten(const detail::Tree& tree, std::uint32_t t, std::uint32_t parent,
             const std::string& parent_path, const std::string& request, std::uint64_t& tick,
             Snapshot& out) {
    const detail::Rec& rec = *tree.nodes[t].rec;
    const std::uint32_t idx = static_cast<std::uint32_t>(out.nodes.size());
    out.nodes.emplace_back();
    {
        Node& n = out.nodes[idx];
        n.name = rec.name;
        n.path = parent_path.empty() ? std::string{} : parent_path + "/";
        n.path += rec.name + ":" + std::to_string(rec.key);
        n.attrs = rec.attrs;
        n.parent = parent;
        n.request = request;
        if (rec.name == "request") {
            for (const auto& [k, v] : rec.attrs)
                if (k == "req") n.request = v;
        }
        n.tick_begin = tick++;
        if (rec.end_ns >= rec.begin_ns) n.wall_total = rec.end_ns - rec.begin_ns;
        if ((rec.begin_ns | rec.end_ns) != 0) out.has_wall = true;
    }
    // Children: re-index into the locals each iteration — the nodes
    // vector reallocates as the recursion appends.
    for (const std::uint32_t c : tree.nodes[t].children) {
        const std::uint32_t child_idx = static_cast<std::uint32_t>(out.nodes.size());
        out.nodes[idx].children.push_back(child_idx);
        flatten(tree, c, idx, out.nodes[idx].path, out.nodes[idx].request, tick, out);
    }
    Node& n = out.nodes[idx];
    n.tick_end = tick++;
    n.tick_total = n.tick_end - n.tick_begin;
    std::uint64_t child_ticks = 0;
    std::uint64_t child_wall = 0;
    for (const std::uint32_t c : n.children) {
        child_ticks += out.nodes[c].tick_total;
        child_wall += out.nodes[c].wall_total;
    }
    n.tick_self = n.tick_total - child_ticks; // = 1 + #children, never underflows
    // Parallel children overlap, so their wall sum can exceed the
    // parent's span; clamp — self-time attribution never goes negative.
    n.wall_self = n.wall_total > child_wall ? n.wall_total - child_wall : 0;
}

} // namespace

Snapshot snapshot() {
    auto& r = detail::registry();
    std::unique_lock<std::mutex> lock(r.mutex);
    const detail::Tree tree = detail::build_tree(r);
    lock.unlock(); // records are stable; only the registry lists needed the lock
    Snapshot out;
    out.nodes.reserve(tree.nodes.size());
    std::uint64_t tick = 0;
    for (const std::uint32_t root : tree.roots) {
        out.roots.push_back(static_cast<std::uint32_t>(out.nodes.size()));
        flatten(tree, root, UINT32_MAX, {}, {}, tick, out);
    }
    return out;
}

// ---------------------------------------------------------------------------
// Aggregation, critical path, folded stacks

std::vector<std::uint32_t> critical_path(const Snapshot& snap, Lane lane) {
    std::vector<std::uint32_t> out;
    if (snap.empty()) return out;
    // Heavier total wins; equal totals fall back to the smaller keyed
    // path, so the choice is unique even when a lane carries no weight.
    const auto better = [&](std::uint32_t a, std::uint32_t b) {
        const Node& na = snap.nodes[a];
        const Node& nb = snap.nodes[b];
        if (na.total(lane) != nb.total(lane)) return na.total(lane) > nb.total(lane);
        return na.path < nb.path;
    };
    std::uint32_t cur = snap.roots.front();
    for (const std::uint32_t r : snap.roots)
        if (r != cur && better(r, cur)) cur = r;
    out.push_back(cur);
    while (!snap.nodes[cur].children.empty()) {
        std::uint32_t best = snap.nodes[cur].children.front();
        for (const std::uint32_t c : snap.nodes[cur].children)
            if (c != best && better(c, best)) best = c;
        out.push_back(best);
        cur = best;
    }
    return out;
}

std::string critical_path_text(const Snapshot& snap, Lane lane) {
    const auto path = critical_path(snap, lane);
    std::string out = "critical path [";
    out += lane_name(lane);
    out += "]:";
    if (path.empty()) return out + " (no spans)\n";
    out += " total=" + std::to_string(snap.nodes[path.front()].total(lane)) + "\n";
    for (const std::uint32_t idx : path) {
        const Node& n = snap.nodes[idx];
        out += "  " + n.path + "  total=" + std::to_string(n.total(lane)) +
               "  self=" + std::to_string(n.self(lane)) + "\n";
    }
    return out;
}

std::string export_folded(const Snapshot& snap, Lane lane) {
    // Stack = name chain root→node; identical chains from different
    // instances merge, which is exactly the collapsed-stack semantics.
    std::map<std::string, std::uint64_t> folded;
    std::vector<std::string> stack_of(snap.nodes.size());
    for (std::uint32_t i = 0; i < snap.nodes.size(); ++i) {
        const Node& n = snap.nodes[i];
        stack_of[i] = n.parent == UINT32_MAX ? n.name : stack_of[n.parent] + ";" + n.name;
        const std::uint64_t self = n.self(lane);
        if (self == 0 && lane == Lane::Wall) continue;
        folded[stack_of[i]] += self;
    }
    std::string out;
    for (const auto& [stack, weight] : folded)
        out += stack + " " + std::to_string(weight) + "\n";
    return out;
}

Profile profile(const Snapshot& snap, Lane lane) {
    Profile prof;
    prof.lane = lane;
    prof.has_wall = snap.has_wall;
    for (const Node& n : snap.nodes) {
        Agg& a = prof.by_name[n.name];
        ++a.count;
        a.tick_total += n.tick_total;
        a.tick_self += n.tick_self;
        a.wall_total += n.wall_total;
        a.wall_self += n.wall_self;
        a.max_fanout = std::max(a.max_fanout, static_cast<std::uint64_t>(n.children.size()));
    }
    for (const std::uint32_t r : snap.roots) {
        prof.root_tick += snap.nodes[r].tick_total;
        prof.root_wall += snap.nodes[r].wall_total;
    }
    for (const std::uint32_t idx : critical_path(snap, lane)) {
        const Node& n = snap.nodes[idx];
        prof.critical.push_back(
            {n.name, n.path, n.tick_total, n.tick_self, n.wall_total, n.wall_self});
    }
    return prof;
}

// ---------------------------------------------------------------------------
// Profile interchange

std::string profile_json(const Profile& prof) {
    std::string out = "{\n  \"si_trace_profile\": 1,\n";
    out += "  \"lane\": \"";
    out += lane_name(prof.lane);
    out += "\",\n";
    out += "  \"has_wall\": ";
    out += prof.has_wall ? "true" : "false";
    out += ",\n";
    out += "  \"root_tick\": " + std::to_string(prof.root_tick) + ",\n";
    out += "  \"root_wall_ns\": " + std::to_string(prof.root_wall) + ",\n";
    out += "  \"spans\": [\n";
    std::size_t i = 0;
    for (const auto& [name, a] : prof.by_name) {
        out += "    {\"name\": \"";
        detail::json_escape(out, name);
        out += "\", \"count\": " + std::to_string(a.count) +
               ", \"tick_total\": " + std::to_string(a.tick_total) +
               ", \"tick_self\": " + std::to_string(a.tick_self) +
               ", \"wall_ns_total\": " + std::to_string(a.wall_total) +
               ", \"wall_ns_self\": " + std::to_string(a.wall_self) +
               ", \"max_fanout\": " + std::to_string(a.max_fanout) + "}";
        out += ++i < prof.by_name.size() ? ",\n" : "\n";
    }
    out += "  ],\n  \"critical_path\": [\n";
    for (std::size_t s = 0; s < prof.critical.size(); ++s) {
        const CriticalStep& step = prof.critical[s];
        out += "    {\"name\": \"";
        detail::json_escape(out, step.name);
        out += "\", \"path\": \"";
        detail::json_escape(out, step.path);
        out += "\", \"tick_total\": " + std::to_string(step.tick_total) +
               ", \"tick_self\": " + std::to_string(step.tick_self) +
               ", \"wall_ns_total\": " + std::to_string(step.wall_total) +
               ", \"wall_ns_self\": " + std::to_string(step.wall_self) + "}";
        out += s + 1 < prof.critical.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

namespace {

// Minimal scanner for the JSON subset profile_json emits: objects and
// arrays of flat objects whose members are strings, integers or bools.
struct Scanner {
    std::string_view s;
    std::size_t i = 0;
    bool ok = true;
    std::string error;

    void fail(const std::string& msg) {
        if (ok) error = msg + " at offset " + std::to_string(i);
        ok = false;
    }
    void ws() {
        while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) ++i;
    }
    bool eat(char c) {
        ws();
        if (i < s.size() && s[i] == c) {
            ++i;
            return true;
        }
        return false;
    }
    std::string string() {
        ws();
        std::string out;
        if (i >= s.size() || s[i] != '"') {
            fail("expected string");
            return out;
        }
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\' && i + 1 < s.size()) {
                ++i;
                switch (s[i]) {
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                default: out += s[i];
                }
            } else {
                out += s[i];
            }
            ++i;
        }
        if (i >= s.size()) fail("unterminated string");
        else ++i;
        return out;
    }
    std::uint64_t number() {
        ws();
        if (i >= s.size() || std::isdigit(static_cast<unsigned char>(s[i])) == 0) {
            fail("expected number");
            return 0;
        }
        std::uint64_t v = 0;
        while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])) != 0)
            v = v * 10 + static_cast<std::uint64_t>(s[i++] - '0');
        return v;
    }
    /// Skips any scalar value (string, number, true/false/null).
    void skip_scalar() {
        ws();
        if (i < s.size() && s[i] == '"') {
            (void)string();
            return;
        }
        while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']') ++i;
    }
};

/// Parses a flat object of string/number members into maps.
void flat_object(Scanner& sc, std::map<std::string, std::string>& strings,
                 std::map<std::string, std::uint64_t>& numbers) {
    if (!sc.eat('{')) {
        sc.fail("expected object");
        return;
    }
    if (sc.eat('}')) return;
    do {
        const std::string key = sc.string();
        if (!sc.eat(':')) {
            sc.fail("expected ':'");
            return;
        }
        sc.ws();
        if (sc.i < sc.s.size() && sc.s[sc.i] == '"') strings[key] = sc.string();
        else if (sc.i < sc.s.size() && std::isdigit(static_cast<unsigned char>(sc.s[sc.i])) != 0)
            numbers[key] = sc.number();
        else sc.skip_scalar();
        if (!sc.ok) return;
    } while (sc.eat(','));
    if (!sc.eat('}')) sc.fail("expected '}'");
}

} // namespace

bool parse_profile(std::string_view text, Profile& out, std::string* error) {
    Scanner sc{text, 0, true, {}};
    out = Profile{};
    bool marker = false;
    if (!sc.eat('{')) sc.fail("expected top-level object");
    if (sc.ok && !sc.eat('}')) {
        do {
            const std::string key = sc.string();
            if (!sc.eat(':')) {
                sc.fail("expected ':'");
                break;
            }
            if (key == "si_trace_profile") {
                marker = sc.number() == 1;
            } else if (key == "lane") {
                out.lane = sc.string() == "wall" ? Lane::Wall : Lane::Tick;
            } else if (key == "has_wall") {
                sc.ws();
                out.has_wall = sc.s.substr(sc.i, 4) == "true";
                sc.skip_scalar();
            } else if (key == "root_tick") {
                out.root_tick = sc.number();
            } else if (key == "root_wall_ns") {
                out.root_wall = sc.number();
            } else if (key == "spans" || key == "critical_path") {
                if (!sc.eat('[')) {
                    sc.fail("expected array");
                    break;
                }
                if (!sc.eat(']')) {
                    do {
                        std::map<std::string, std::string> strs;
                        std::map<std::string, std::uint64_t> nums;
                        flat_object(sc, strs, nums);
                        if (!sc.ok) break;
                        if (key == "spans") {
                            Agg& a = out.by_name[strs["name"]];
                            a.count = nums["count"];
                            a.tick_total = nums["tick_total"];
                            a.tick_self = nums["tick_self"];
                            a.wall_total = nums["wall_ns_total"];
                            a.wall_self = nums["wall_ns_self"];
                            a.max_fanout = nums["max_fanout"];
                        } else {
                            out.critical.push_back({strs["name"], strs["path"],
                                                    nums["tick_total"], nums["tick_self"],
                                                    nums["wall_ns_total"], nums["wall_ns_self"]});
                        }
                    } while (sc.eat(','));
                    if (sc.ok && !sc.eat(']')) sc.fail("expected ']'");
                }
            } else {
                sc.skip_scalar();
            }
            if (!sc.ok) break;
        } while (sc.eat(','));
        if (sc.ok && !sc.eat('}')) sc.fail("expected closing '}'");
    }
    if (sc.ok && !marker) {
        sc.ok = false;
        sc.error = "missing si_trace_profile marker";
    }
    if (!sc.ok && error != nullptr) *error = sc.error;
    return sc.ok;
}

// ---------------------------------------------------------------------------
// Percentiles

Percentiles percentiles(const std::array<std::uint64_t, 65>& buckets) {
    Percentiles out;
    for (const std::uint64_t c : buckets) out.count += c;
    if (out.count == 0) return out;
    // Nearest rank: the pct-th percentile is the ceil(count*pct/100)-th
    // smallest observation; the log2 bucket holding that rank reports
    // its upper bound (0 for bucket 0, 2^b−1 for bucket b).
    const auto at = [&](std::uint64_t pct) {
        const std::uint64_t rank = std::max<std::uint64_t>(1, (out.count * pct + 99) / 100);
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < buckets.size(); ++b) {
            cum += buckets[b];
            if (cum >= rank) {
                if (b == 0) return std::uint64_t{0};
                return b >= 64 ? UINT64_MAX : (std::uint64_t{1} << b) - 1;
            }
        }
        return UINT64_MAX; // unreachable: cum == count >= rank by then
    };
    out.p50 = at(50);
    out.p95 = at(95);
    out.p99 = at(99);
    return out;
}

Percentiles metric_percentiles(std::string_view hist_name) {
    const auto merged = detail::merged_metrics();
    const auto it = merged.find(std::string(hist_name));
    if (it == merged.end() || it->second.kind != detail::Slot::Kind::Hist) return {};
    return percentiles(it->second.buckets);
}

std::map<std::string, Percentiles> latency_percentiles(const Snapshot& snap, Lane lane) {
    std::map<std::string, std::array<std::uint64_t, 65>> hists;
    for (const Node& n : snap.nodes) {
        auto [it, inserted] = hists.try_emplace(n.name);
        if (inserted) it->second.fill(0);
        ++it->second[std::bit_width(n.total(lane))];
    }
    std::map<std::string, Percentiles> out;
    for (const auto& [name, buckets] : hists) out.emplace(name, percentiles(buckets));
    return out;
}

} // namespace si::obs::trace
