#include "si/obs/obs.hpp"

#include "obs_internal.hpp"
#include "si/obs/flight.hpp"
#include "si/obs/live.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace si::obs {

namespace detail {

std::atomic<unsigned char> g_mode{255}; // 255 = read SI_OBS on first use
thread_local int g_silence_depth = 0;
std::atomic<std::uint64_t> g_hot[kNumHot]{};

Registry& registry() {
    static Registry* r = new Registry;
    return *r;
}

namespace {

std::atomic<unsigned char> g_clock{static_cast<unsigned char>(ClockMode::Deterministic)};
std::atomic<unsigned char> g_wall_lane{255}; // 255 = read SI_OBS_WALL on first use

struct Tls {
    ThreadBuf* buf = nullptr;
    MetricShard* shard = nullptr;
    std::vector<SpanRef> stack;
    RequestInfo request;
};

Tls& tls() {
    thread_local Tls t;
    return t;
}

ThreadBuf& thread_buf() {
    Tls& t = tls();
    if (t.buf == nullptr) {
        auto* buf = new ThreadBuf;
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        buf->id = static_cast<std::int32_t>(r.bufs.size());
        r.bufs.push_back(buf);
        t.buf = buf;
    }
    return *t.buf;
}

MetricShard& metric_shard() {
    Tls& t = tls();
    if (t.shard == nullptr) {
        auto* shard = new MetricShard;
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        r.shards.push_back(shard);
        t.shard = shard;
    }
    return *t.shard;
}

std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now().time_since_epoch())
                                          .count());
}

bool wall_clock() {
    return static_cast<ClockMode>(g_clock.load(std::memory_order_relaxed)) == ClockMode::Wall;
}

bool wall_lane_slow() {
    unsigned char expected = 255;
    const char* env = std::getenv("SI_OBS_WALL");
    const bool on =
        env != nullptr && (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0);
    g_wall_lane.compare_exchange_strong(expected, on ? 1 : 0);
    return g_wall_lane.load(std::memory_order_relaxed) != 0;
}

bool wall_lane_on() {
    const unsigned char v = g_wall_lane.load(std::memory_order_relaxed);
    if (v == 255) return wall_lane_slow();
    return v != 0;
}

/// True when spans should record steady-clock timestamps: either the
/// wall clock drives the exports, or the wall lane rides along under
/// the deterministic clock.
bool record_wall() { return wall_clock() || wall_lane_on(); }

/// Looks up (or creates) a slot in the calling thread's shard. The
/// caller must hold `shard.mutex` — see MetricShard in obs_internal.hpp.
Slot& slot_locked(MetricShard& shard, std::string_view name, Slot::Kind kind, Tag tag) {
    auto [it, inserted] = shard.slots.try_emplace(std::string(name));
    if (inserted) {
        it->second.kind = kind;
        it->second.tag = tag;
    }
    return it->second;
}

} // namespace

// Must be called under the registry lock with no spans being recorded
// (the quiescence contract from the header).
Tree build_tree(Registry& r) {
    Tree tree;
    // Global index = offset of the buf + slot within it.
    std::vector<std::size_t> base(r.bufs.size() + 1, 0);
    for (std::size_t b = 0; b < r.bufs.size(); ++b)
        base[b + 1] = base[b] + r.bufs[b]->recs.size();
    tree.nodes.resize(base.back());
    for (std::size_t b = 0; b < r.bufs.size(); ++b) {
        std::size_t i = base[b];
        for (const Rec& rec : r.bufs[b]->recs) {
            tree.nodes[i].rec = &rec;
            tree.nodes[i].buf = static_cast<std::int32_t>(b);
            ++i;
        }
    }
    for (std::uint32_t i = 0; i < tree.nodes.size(); ++i) {
        const Rec& rec = *tree.nodes[i].rec;
        if (rec.parent_buf < 0) {
            tree.roots.push_back(i);
        } else {
            const std::size_t p = base[static_cast<std::size_t>(rec.parent_buf)] + rec.parent_idx;
            tree.nodes[p].children.push_back(i);
        }
    }
    const auto by_key = [&](std::uint32_t a, std::uint32_t b) {
        return tree.nodes[a].rec->key < tree.nodes[b].rec->key;
    };
    std::sort(tree.roots.begin(), tree.roots.end(), by_key);
    for (auto& n : tree.nodes) std::sort(n.children.begin(), n.children.end(), by_key);
    return tree;
}

void json_escape(std::string& out, std::string_view s) {
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof hex, "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
}

std::string keyed_span_path() {
    const auto& stack = tls().stack;
    std::string out;
    if (!stack.empty()) out = stack.front().rec->flight_prefix;
    for (const auto& ref : stack) {
        if (!out.empty()) out += '/';
        out += ref.rec->name;
        out += ':';
        out += std::to_string(ref.rec->key);
    }
    return out;
}

Rec* span_begin(const char* name) {
    Tls& t = tls();
    ThreadBuf& buf = thread_buf();
    Rec rec;
    rec.name = name;
    if (!t.stack.empty()) {
        const SpanRef& top = t.stack.back();
        rec.parent_buf = top.buf;
        rec.parent_idx = top.idx;
        rec.key = top.rec->next_child++;
    } else {
        rec.key = registry().root_seq.fetch_add(1, std::memory_order_relaxed);
    }
    if (record_wall()) rec.begin_ns = now_ns();
    buf.recs.push_back(std::move(rec));
    Rec* r = &buf.recs.back();
    t.stack.push_back({r, buf.id, static_cast<std::uint32_t>(buf.recs.size() - 1)});
    if (flight::armed()) flight::detail::record('B', keyed_span_path(), r->name);
    return r;
}

Rec* task_begin(const SpanRef& fan, std::size_t index) {
    Tls& t = tls();
    ThreadBuf& buf = thread_buf();
    Rec rec;
    rec.name = "task";
    rec.parent_buf = fan.buf;
    rec.parent_idx = fan.idx;
    rec.key = index; // canonical: the task index, not arrival order
    rec.flight_prefix = fan.rec->flight_prefix; // caller-side chain (read-only here)
    if (record_wall()) rec.begin_ns = now_ns();
    buf.recs.push_back(std::move(rec));
    Rec* r = &buf.recs.back();
    t.stack.push_back({r, buf.id, static_cast<std::uint32_t>(buf.recs.size() - 1)});
    if (flight::armed()) flight::detail::record('B', keyed_span_path(), r->name);
    return r;
}

void span_end(Rec* rec) {
    if (record_wall()) rec->end_ns = now_ns();
    auto& stack = tls().stack;
    // RAII discipline makes this the top; tolerate a mismatch (a span
    // leaked across a reset) by scanning instead of corrupting the stack.
    for (std::size_t i = stack.size(); i-- > 0;) {
        if (stack[i].rec == rec) {
            if (flight::armed()) flight::detail::record('E', keyed_span_path(), rec->name);
            stack.resize(i);
            return;
        }
    }
}

void span_attr(Rec* rec, const char* key, std::string value) {
    rec->attrs.emplace_back(key, std::move(value));
}

SpanRef current_ref() {
    auto& stack = tls().stack;
    return stack.empty() ? SpanRef{} : stack.back();
}

RequestInfo swap_request(const RequestInfo& info) {
    RequestInfo& slot = tls().request;
    const RequestInfo prev = slot;
    slot = info;
    return prev;
}

Mode mode_slow() {
    unsigned char expected = 255;
    const char* env = std::getenv("SI_OBS");
    Mode m = Mode::Off;
    bool recognized = true;
    if (env != nullptr) {
        if (std::strcmp(env, "trace") == 0) m = Mode::Trace;
        else if (std::strcmp(env, "metrics") == 0) m = Mode::Metrics;
        else
            recognized =
                std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 || env[0] == '\0';
    }
    // Only the initializing thread (the one whose CAS installs the mode)
    // warns, so a misspelt SI_OBS is reported exactly once instead of
    // silently disabling the instrumentation.
    if (g_mode.compare_exchange_strong(expected, static_cast<unsigned char>(m)) && !recognized)
        std::fprintf(stderr,
                     "si::obs: ignoring unrecognized SI_OBS value '%s' "
                     "(expected trace|metrics|off); observability stays off\n",
                     env);
    return static_cast<Mode>(g_mode.load(std::memory_order_relaxed));
}

} // namespace detail

Mode mode() { return detail::mode_fast(); }

void set_mode(Mode m) { detail::g_mode.store(static_cast<unsigned char>(m)); }

ClockMode clock_mode() {
    return static_cast<ClockMode>(detail::g_clock.load(std::memory_order_relaxed));
}

void set_clock(ClockMode m) { detail::g_clock.store(static_cast<unsigned char>(m)); }

bool wall_lane() { return detail::wall_lane_on(); }

void set_wall_lane(bool on) { detail::g_wall_lane.store(on ? 1 : 0); }

RequestInfo current_request() { return detail::tls().request; }

RequestScope::RequestScope(std::uint64_t id, std::uint64_t seed)
    : prev_(detail::swap_request(RequestInfo{id, seed, true})) {
    if (tracing()) {
        rec_ = detail::span_begin("request");
        detail::span_attr(rec_, "req", std::to_string(id));
        detail::span_attr(rec_, "seed", std::to_string(seed));
    }
    if (live::armed()) {
        live_ = true;
        live::detail::request_begin(id, seed);
    }
}

RequestScope::~RequestScope() {
    if (rec_ != nullptr) detail::span_end(rec_);
    if (live_) live::detail::request_end(detail::tls().request.id);
    (void)detail::swap_request(prev_);
}

std::string current_span_path() {
    const auto& stack = detail::tls().stack;
    std::string out;
    for (const auto& ref : stack) {
        if (!out.empty()) out += '/';
        out += ref.rec->name;
    }
    return out;
}

// ---------------------------------------------------------------------------
// Fan-out integration

FanOutSpan::FanOutSpan(std::size_t n) {
    if (!tracing()) return;
    detail::Rec* rec = detail::span_begin("parallel");
    detail::span_attr(rec, "n", std::to_string(n));
    const RequestInfo req = current_request();
    if (req.active) detail::span_attr(rec, "req", std::to_string(req.id));
    ref_ = detail::current_ref();
    // The fan's full keyed path, resolved while the caller's stack is
    // visible; task_begin hands it to tasks that run on pool workers.
    rec->flight_prefix = detail::keyed_span_path();
}

FanOutSpan::~FanOutSpan() {
    if (ref_.rec != nullptr) detail::span_end(ref_.rec);
}

TaskSpan::TaskSpan(const FanOutSpan& fan, std::size_t index) {
    if (fan.ref_.rec == nullptr) return;
    rec_ = detail::task_begin(fan.ref_, index);
}

TaskSpan::~TaskSpan() {
    if (rec_ != nullptr) detail::span_end(rec_);
}

// ---------------------------------------------------------------------------
// Metrics

void count(std::string_view name, std::uint64_t delta, Tag tag) {
    if (!enabled()) return;
    detail::MetricShard& shard = detail::metric_shard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    detail::slot_locked(shard, name, detail::Slot::Kind::Counter, tag).value += delta;
}

void gauge_max(std::string_view name, std::uint64_t value, Tag tag) {
    if (!enabled()) return;
    detail::MetricShard& shard = detail::metric_shard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto& s = detail::slot_locked(shard, name, detail::Slot::Kind::Gauge, tag);
    s.value = std::max(s.value, value);
}

void observe(std::string_view name, std::uint64_t value, Tag tag) {
    if (!enabled()) return;
    detail::MetricShard& shard = detail::metric_shard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto& s = detail::slot_locked(shard, name, detail::Slot::Kind::Hist, tag);
    ++s.hist_count;
    s.hist_sum += value;
    ++s.buckets[std::bit_width(value)];
}

namespace detail {
namespace {

/// Fixed names for the Hot counter slots, all Diag.
constexpr const char* kHotNames[kNumHot] = {
    "sg.excited_index_hits",
    "sg.arc_on_index_hits",
    "verify.fanout_narrowed_checks",
};

} // namespace

// Merged, name-ordered snapshot of every shard plus the hot counters.
std::map<std::string, Slot> merged_metrics() {
    auto& r = registry();
    std::map<std::string, Slot> out;
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        for (auto* shard : r.shards) {
            std::lock_guard<std::mutex> shard_lock(shard->mutex);
            for (const auto& [name, s] : shard->slots) {
                auto [it, inserted] = out.try_emplace(name, s);
                if (inserted) continue;
                Slot& m = it->second;
                switch (s.kind) {
                case Slot::Kind::Counter: m.value += s.value; break;
                case Slot::Kind::Gauge: m.value = std::max(m.value, s.value); break;
                case Slot::Kind::Hist:
                    m.hist_count += s.hist_count;
                    m.hist_sum += s.hist_sum;
                    for (std::size_t b = 0; b < m.buckets.size(); ++b)
                        m.buckets[b] += s.buckets[b];
                    break;
                }
            }
        }
    }
    for (std::size_t h = 0; h < kNumHot; ++h) {
        const std::uint64_t v = g_hot[h].load(std::memory_order_relaxed);
        if (v == 0) continue;
        Slot s;
        s.kind = Slot::Kind::Counter;
        s.tag = Tag::Diag;
        s.value = v;
        out.emplace(kHotNames[h], s);
    }
    return out;
}

} // namespace detail

namespace {

using detail::Slot;

std::string metric_line(const std::string& name, const Slot& s) {
    switch (s.kind) {
    case Slot::Kind::Counter: return "counter " + name + " = " + std::to_string(s.value);
    case Slot::Kind::Gauge: return "gauge " + name + " max = " + std::to_string(s.value);
    case Slot::Kind::Hist: {
        std::string out = "hist " + name + " count=" + std::to_string(s.hist_count) +
                          " sum=" + std::to_string(s.hist_sum) + " buckets=[";
        bool first = true;
        for (std::size_t b = 0; b < s.buckets.size(); ++b) {
            if (s.buckets[b] == 0) continue;
            if (!first) out += ' ';
            first = false;
            out += "2^" + std::to_string(b) + ":" + std::to_string(s.buckets[b]);
        }
        return out + "]";
    }
    }
    return {};
}

} // namespace

std::string metrics_text(bool include_diag) {
    const auto merged = detail::merged_metrics();
    std::string out;
    for (const auto& [name, s] : merged)
        if (s.tag == Tag::Stable) out += metric_line(name, s) + "\n";
    if (include_diag) {
        bool header = false;
        for (const auto& [name, s] : merged) {
            if (s.tag != Tag::Diag) continue;
            if (!header) {
                out += "# diagnostic (scheduling/path dependent)\n";
                header = true;
            }
            out += metric_line(name, s) + "\n";
        }
    }
    return out;
}

std::string metrics_brief() {
    std::string out;
    for (const auto& [name, s] : detail::merged_metrics()) {
        if (s.tag != Tag::Stable || s.kind != Slot::Kind::Counter) continue;
        if (!out.empty()) out += ' ';
        out += name + "=" + std::to_string(s.value);
    }
    return out;
}

std::string metrics_json() {
    std::string out = "{";
    for (const auto& [name, s] : detail::merged_metrics()) {
        if (s.tag != Tag::Stable || s.kind != Slot::Kind::Counter) continue;
        if (out.size() > 1) out += ", ";
        out += '"';
        detail::json_escape(out, name);
        out += "\": " + std::to_string(s.value);
    }
    return out + "}";
}

// ---------------------------------------------------------------------------
// Trace exports

namespace {

// Emits one node (begin event, children, end event). With the
// deterministic clock `tick` numbers the events by canonical DFS order,
// which is what makes the export byte-identical across worker counts.
void emit_chrome(const detail::Tree& tree, std::uint32_t n, bool wall, std::uint64_t& tick,
                 std::string& out) {
    const auto& node = tree.nodes[n];
    const auto& rec = *node.rec;
    const std::uint64_t ts = wall ? rec.begin_ns / 1000 : tick++;
    const std::int32_t tid = wall ? node.buf : 0;
    out += "{\"name\":\"";
    detail::json_escape(out, rec.name);
    out += "\",\"cat\":\"si\",\"ph\":\"B\",\"pid\":0,\"tid\":" + std::to_string(tid) +
           ",\"ts\":" + std::to_string(ts);
    if (!rec.attrs.empty()) {
        out += ",\"args\":{";
        for (std::size_t a = 0; a < rec.attrs.size(); ++a) {
            if (a != 0) out += ',';
            out += '"';
            detail::json_escape(out, rec.attrs[a].first);
            out += "\":\"";
            detail::json_escape(out, rec.attrs[a].second);
            out += '"';
        }
        out += '}';
    }
    out += "},\n";
    for (const auto c : node.children) emit_chrome(tree, c, wall, tick, out);
    const std::uint64_t end = wall ? rec.end_ns / 1000 : tick++;
    out += "{\"name\":\"";
    detail::json_escape(out, rec.name);
    out += "\",\"cat\":\"si\",\"ph\":\"E\",\"pid\":0,\"tid\":" + std::to_string(tid) +
           ",\"ts\":" + std::to_string(end) + "},\n";
}

void emit_tree(const detail::Tree& tree, std::uint32_t n, bool wall, std::size_t depth,
               std::uint64_t& tick, std::string& out) {
    const auto& node = tree.nodes[n];
    const auto& rec = *node.rec;
    out.append(depth * 2, ' ');
    out += rec.name;
    for (const auto& [k, v] : rec.attrs) out += " " + k + "=" + v;
    if (wall) {
        out += " (" + std::to_string((rec.end_ns - rec.begin_ns) / 1000) + " us)\n";
        for (const auto c : node.children) emit_tree(tree, c, wall, depth + 1, tick, out);
    } else {
        const std::uint64_t begin = tick++;
        std::string body;
        for (const auto c : node.children) emit_tree(tree, c, wall, depth + 1, tick, body);
        out += " [" + std::to_string(begin) + ".." + std::to_string(tick++) + "]\n";
        out += body;
    }
}

} // namespace

std::string trace_chrome_json() {
    auto& r = detail::registry();
    std::unique_lock<std::mutex> lock(r.mutex);
    const detail::Tree tree = detail::build_tree(r);
    lock.unlock(); // records are stable; only the registry lists needed the lock
    const bool wall = clock_mode() == ClockMode::Wall;
    std::string out = "{\"traceEvents\":[\n";
    std::uint64_t tick = 0;
    for (const auto root : tree.roots) emit_chrome(tree, root, wall, tick, out);
    if (out.size() >= 2 && out[out.size() - 2] == ',') {
        out.erase(out.size() - 2, 1); // drop the trailing comma
    }
    out += "],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

std::string trace_tree() {
    auto& r = detail::registry();
    std::unique_lock<std::mutex> lock(r.mutex);
    const detail::Tree tree = detail::build_tree(r);
    lock.unlock();
    const bool wall = clock_mode() == ClockMode::Wall;
    std::string out;
    std::uint64_t tick = 0;
    for (const auto root : tree.roots) emit_tree(tree, root, wall, 0, tick, out);
    return out;
}

std::string overwrite_guard(const std::string& path, bool force) {
    std::error_code ec;
    if (!force && std::filesystem::exists(path, ec))
        return "refusing to overwrite '" + path + "' (pass --force to allow)";
    return {};
}

std::string write_text_file(const std::string& path, std::string_view content, bool force) {
    if (std::string err = overwrite_guard(path, force); !err.empty()) return err;
    std::ofstream out(path, std::ios::trunc);
    if (!out) return "cannot write '" + path + "'";
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    return out.good() ? std::string{} : "write to '" + path + "' failed";
}

std::string export_to_file(const std::string& path, bool force) {
    return write_text_file(path, tracing() ? trace_chrome_json() : metrics_text(true), force);
}

void reset() {
    {
        auto& r = detail::registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        for (auto* buf : r.bufs) buf->recs.clear();
        for (auto* shard : r.shards) {
            std::lock_guard<std::mutex> shard_lock(shard->mutex);
            shard->slots.clear();
        }
        for (auto& h : detail::g_hot) h.store(0, std::memory_order_relaxed);
        r.root_seq.store(0, std::memory_order_relaxed);
    }
    flight::reset();
}

} // namespace si::obs
