// Internal sharing surface between obs.cpp and trace.cpp: the recorded
// span arenas, the metric shards, and the canonical-tree reconstruction.
// Everything here lives in si::obs::detail, obeys the quiescence
// contract from obs.hpp, and is NOT part of the installed API — the
// analysis layer (si::obs::trace) is the public face of this data.
#pragma once

#include "si/obs/obs.hpp"

#include <array>
#include <atomic>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace si::obs::detail {

// One recorded span. Arenas are per-thread deques (pointer-stable), so
// a record is appended and mutated only by its owning thread; the single
// cross-thread link — a task span pointing at the fan-out span in the
// caller's arena — stores (buf, idx) and never writes through it.
struct Rec {
    std::string name;
    std::vector<std::pair<std::string, std::string>> attrs;
    std::int32_t parent_buf = -1; ///< -1 for roots
    std::uint32_t parent_idx = 0;
    /// Sort key among siblings: the parent's sequential child counter,
    /// or the task index under a fan-out span. Unique per parent either
    /// way, so child order is canonical.
    std::uint64_t key = 0;
    std::uint32_t next_child = 0; ///< sequential-child counter (owner thread only)
    std::uint64_t begin_ns = 0;   ///< wall clock mode or wall lane only
    std::uint64_t end_ns = 0;
    /// Keyed-path base for stacks rooted at this span. A worker's TLS
    /// stack starts at its task span, so without this the flight
    /// recorder's paths would lose the caller-side chain and depend on
    /// which thread ran the task. Set on a fan-out span (its own full
    /// keyed path, computed on the calling thread) before any task is
    /// published, copied into each task span, immutable afterwards.
    std::string flight_prefix;
};

struct ThreadBuf {
    std::deque<Rec> recs;
    std::int32_t id = -1;
};

struct Slot {
    enum class Kind : unsigned char { Counter, Gauge, Hist };
    Kind kind = Kind::Counter;
    Tag tag = Tag::Stable;
    std::uint64_t value = 0; ///< counter sum / gauge max
    std::uint64_t hist_count = 0;
    std::uint64_t hist_sum = 0;
    std::array<std::uint64_t, 65> buckets{}; ///< index = bit_width(value)
};

struct MetricShard {
    /// Guards `slots`. Uncontended in the owning thread's hot path, but
    /// required so the live heartbeat thread can merge mid-flight
    /// snapshots without racing the owner's rehashes (the quiescence
    /// contract covers span arenas only; metric shards are lock-safe).
    std::mutex mutex;
    std::unordered_map<std::string, Slot> slots;
};

// Leaked singleton: pool worker threads outlive every static-destruction
// order we could reason about, so the registry is never destroyed.
struct Registry {
    std::mutex mutex;
    std::vector<ThreadBuf*> bufs;
    std::vector<MetricShard*> shards;
    std::atomic<std::uint64_t> root_seq{0};
};

[[nodiscard]] Registry& registry();

// ---------------------------------------------------------------------------
// Canonical tree reconstruction shared by the exporters and the
// analysis layer.

struct TreeNode {
    const Rec* rec = nullptr;
    std::int32_t buf = 0;
    std::vector<std::uint32_t> children; ///< global node indices, key-sorted
};

struct Tree {
    std::vector<TreeNode> nodes;
    std::vector<std::uint32_t> roots; ///< key-sorted
};

/// Must be called under the registry lock with no spans being recorded
/// (the quiescence contract from obs.hpp). The returned tree borrows
/// the arenas' records; they stay valid until reset().
[[nodiscard]] Tree build_tree(Registry& r);

/// Merged, name-ordered snapshot of every metric shard plus the hot
/// counters. Takes the registry lock and each shard's lock itself, so —
/// unlike the span exports — it is safe to call while instrumented work
/// is in flight (the live snapshotter depends on this).
[[nodiscard]] std::map<std::string, Slot> merged_metrics();

} // namespace si::obs::detail
