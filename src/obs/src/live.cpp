#include "si/obs/live.hpp"

#include "obs_internal.hpp"
#include "si/obs/flight.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace si::obs::live {

namespace detail {
std::atomic<unsigned char> g_armed{0};

/// One registered obs::Progress gauge. `done/total/budget_*` are written
/// by the owning (and, for shared gauges, worker) threads with relaxed
/// atomics; the watchdog bookkeeping below them is touched only under
/// the live-state mutex by whichever thread emits heartbeats.
struct ProgressSlot {
    std::string stage;
    std::atomic<std::uint64_t> done{0};
    std::atomic<std::uint64_t> total{0};
    std::atomic<std::uint64_t> budget_spent{0};
    std::atomic<std::uint64_t> budget_cap{0};
    bool watchdog = true;
    bool observed = false;        ///< seen by at least one heartbeat
    std::uint64_t last_done = 0;  ///< done at the previous heartbeat
    std::uint32_t stalled_ticks = 0;
    bool tripped = false;
};
} // namespace detail

namespace {

using detail::ProgressSlot;

struct CompletedAgg {
    std::uint64_t done = 0;
    std::uint64_t instances = 0;
};

struct RequestEntry {
    std::uint64_t seed = 0;
    std::uint64_t refs = 0; ///< nesting depth of scopes sharing the id
};

// Leaked singleton, like the obs registry: gauges on pool workers and
// the atexit shutdown hook must outlive static destruction.
struct State {
    std::mutex mutex; ///< everything below except the atomics
    std::condition_variable cv;
    std::thread thread;
    bool stop = false;
    bool atexit_registered = false;
    std::FILE* sink = nullptr;
    Options opts;
    std::uint64_t seq = 0;
    /// Counter values at the previous heartbeat (the delta baseline).
    std::map<std::string, std::uint64_t> prev;
    std::vector<ProgressSlot*> active;
    std::map<std::string, CompletedAgg> completed;
    std::map<std::uint64_t, RequestEntry> requests;
    /// 0 = SI_OBS_LIVE not yet consulted, 1 = consulted.
    std::atomic<unsigned char> env_state{0};
    std::atomic<std::uint64_t> pool_fan_outs{0};
    std::atomic<std::uint64_t> pool_tasks{0};
};

State& state() {
    static State* s = new State;
    return *s;
}

void append_json_string(std::string& out, std::string_view s) {
    out += '"';
    obs::detail::json_escape(out, s);
    out += '"';
}

void append_kv(std::string& out, const char* key, std::uint64_t value, bool& first) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, key);
    out += ':';
    out += std::to_string(value);
}

/// Composes and writes one heartbeat line. Caller holds `s.mutex` and
/// has checked the snapshotter is armed with an open sink.
/// `advance_watchdog` is true only for interval heartbeats (manual or
/// timed ticks) — event and final heartbeats must not age the gauges.
std::uint64_t emit_locked(State& s, const char* event_kind, std::string_view event_detail,
                          bool final_hb, bool advance_watchdog) {
    using detail::ProgressSlot;
    const auto merged = obs::detail::merged_metrics();
    using Slot = obs::detail::Slot;

    // Watchdog: a gauge that fails to advance between stall_intervals
    // consecutive heartbeats is tripped until it moves again.
    bool fresh_trip = false;
    if (advance_watchdog) {
        for (ProgressSlot* p : s.active) {
            if (!p->watchdog) continue;
            const std::uint64_t d = p->done.load(std::memory_order_relaxed);
            if (!p->observed) {
                p->observed = true; // grace heartbeat: just baseline it
            } else if (d == p->last_done) {
                if (++p->stalled_ticks >= s.opts.stall_intervals && !p->tripped) {
                    p->tripped = true;
                    fresh_trip = true;
                }
            } else {
                p->stalled_ticks = 0;
                p->tripped = false;
            }
            p->last_done = d;
        }
    }
    std::set<std::string> stalled_stages;
    for (const ProgressSlot* p : s.active)
        if (p->tripped) stalled_stages.insert(p->stage);

    std::string line = "{\"si_live\":1,\"seq\":" + std::to_string(s.seq) +
                       ",\"interval_ms\":" + std::to_string(s.opts.interval_ms);
    if (final_hb) line += ",\"final\":true";
    if (event_kind != nullptr) {
        line += ",\"event\":{\"kind\":";
        append_json_string(line, event_kind);
        line += ",\"detail\":";
        append_json_string(line, event_detail);
        line += '}';
    }
    line += stalled_stages.empty() ? ",\"stalled\":false" : ",\"stalled\":true";
    line += ",\"stalled_stages\":[";
    {
        bool first = true;
        for (const auto& stage : stalled_stages) {
            if (!first) line += ',';
            first = false;
            append_json_string(line, stage);
        }
    }
    line += ']';

    // Active progress gauges, aggregated per stage (a portfolio race
    // registers one gauge per racer under one stage name).
    struct ProgAgg {
        std::uint64_t done = 0, total = 0, spent = 0, cap = 0, gauges = 0;
    };
    std::map<std::string, ProgAgg> prog;
    for (const ProgressSlot* p : s.active) {
        ProgAgg& a = prog[p->stage];
        a.done += p->done.load(std::memory_order_relaxed);
        a.total += p->total.load(std::memory_order_relaxed);
        a.spent += p->budget_spent.load(std::memory_order_relaxed);
        a.cap += p->budget_cap.load(std::memory_order_relaxed);
        ++a.gauges;
    }
    line += ",\"progress\":{";
    {
        bool first_stage = true;
        for (const auto& [stage, a] : prog) {
            if (!first_stage) line += ',';
            first_stage = false;
            append_json_string(line, stage);
            line += ":{";
            bool first = true;
            append_kv(line, "done", a.done, first);
            append_kv(line, "total", a.total, first);
            append_kv(line, "gauges", a.gauges, first);
            append_kv(line, "budget_spent", a.spent, first);
            append_kv(line, "budget_cap", a.cap, first);
            line += '}';
        }
    }
    line += "},\"completed\":{";
    {
        bool first_stage = true;
        for (const auto& [stage, c] : s.completed) {
            if (!first_stage) line += ',';
            first_stage = false;
            append_json_string(line, stage);
            line += ":{";
            bool first = true;
            append_kv(line, "done", c.done, first);
            append_kv(line, "instances", c.instances, first);
            line += '}';
        }
    }
    line += "},\"requests\":[";
    {
        bool first = true;
        for (const auto& [id, req] : s.requests) {
            if (!first) line += ',';
            first = false;
            line += "{\"id\":" + std::to_string(id) + ",\"seed\":" + std::to_string(req.seed) +
                    '}';
        }
    }
    line += "],\"pool\":{\"fan_outs\":" +
            std::to_string(s.pool_fan_outs.load(std::memory_order_relaxed)) +
            ",\"tasks\":" + std::to_string(s.pool_tasks.load(std::memory_order_relaxed)) + '}';

    // Counter deltas since the previous heartbeat, split by lane. A
    // counter that shrank (obs::reset ran between heartbeats) restarts
    // its baseline instead of producing a bogus huge delta.
    std::string stable_json, diag_json, rates_json, gauges_json, hists_json;
    bool first_stable = true, first_diag = true, first_rate = true, first_gauge = true,
         first_hist = true;
    for (const auto& [name, slot] : merged) {
        const bool diag_lane = slot.tag == Tag::Diag;
        if (diag_lane && !s.opts.diag) continue;
        switch (slot.kind) {
        case Slot::Kind::Counter: {
            const std::uint64_t prev = s.prev.count(name) != 0 ? s.prev[name] : 0;
            const std::uint64_t delta = slot.value >= prev ? slot.value - prev : slot.value;
            s.prev[name] = slot.value;
            if (delta == 0) break;
            std::string& lane = diag_lane ? diag_json : stable_json;
            bool& first = diag_lane ? first_diag : first_stable;
            if (!first) lane += ',';
            first = false;
            append_json_string(lane, name);
            lane += ':' + std::to_string(delta);
            if (!diag_lane) {
                if (!first_rate) rates_json += ',';
                first_rate = false;
                append_json_string(rates_json, name);
                // Nominal-interval integer rate: deterministic under the
                // manual-tick driver (never the measured wall time).
                rates_json += ':' + std::to_string(delta * 1000 / s.opts.interval_ms);
            }
            break;
        }
        case Slot::Kind::Gauge:
            if (!first_gauge) gauges_json += ',';
            first_gauge = false;
            append_json_string(gauges_json, name);
            gauges_json += ':' + std::to_string(slot.value);
            break;
        case Slot::Kind::Hist: {
            if (!first_hist) hists_json += ',';
            first_hist = false;
            append_json_string(hists_json, name);
            hists_json += ":{\"count\":" + std::to_string(slot.hist_count) +
                          ",\"sum\":" + std::to_string(slot.hist_sum) + ",\"buckets\":[";
            bool first_bucket = true;
            for (std::size_t b = 0; b < slot.buckets.size(); ++b) {
                if (slot.buckets[b] == 0) continue;
                if (!first_bucket) hists_json += ',';
                first_bucket = false;
                hists_json +=
                    '[' + std::to_string(b) + ',' + std::to_string(slot.buckets[b]) + ']';
            }
            hists_json += "]}";
            break;
        }
        }
    }
    line += ",\"stable\":{" + stable_json + '}';
    if (s.opts.diag) line += ",\"diag\":{" + diag_json + '}';
    line += ",\"rates\":{" + rates_json + '}';
    line += ",\"gauges\":{" + gauges_json + '}';
    line += ",\"hists\":{" + hists_json + "}}";

    std::fwrite(line.data(), 1, line.size(), s.sink);
    std::fputc('\n', s.sink);
    std::fflush(s.sink);

    if (fresh_trip) {
        count("obs.live.stalls", 1, Tag::Diag);
        if (flight::armed()) {
            std::string what = "live watchdog: stalled stages:";
            for (const auto& stage : stalled_stages) what += ' ' + stage;
            flight::note(what);
            (void)flight::dump("stalled");
        }
    }
    count("obs.live.heartbeats", 1, Tag::Diag);
    return s.seq++;
}

void ticker() {
    State& s = state();
    std::unique_lock<std::mutex> lock(s.mutex);
    while (!s.stop) {
        if (s.cv.wait_for(lock, std::chrono::milliseconds(s.opts.interval_ms),
                          [&s] { return s.stop; }))
            break;
        if (detail::g_armed.load(std::memory_order_relaxed) == 1 && s.sink != nullptr)
            (void)emit_locked(s, nullptr, {}, false, true);
    }
}

/// Stops the background thread if running. Must be called without
/// holding `s.mutex` (joins the thread).
void stop_thread(State& s) {
    std::thread t;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        s.stop = true;
        t.swap(s.thread);
    }
    s.cv.notify_all();
    if (t.joinable()) t.join();
}

} // namespace

std::string configure(const Options& opts) {
    if (opts.path.empty()) return "live: empty heartbeat sink path";
    State& s = state();
    stop_thread(s);
    std::lock_guard<std::mutex> lock(s.mutex);
    detail::g_armed.store(0);
    if (s.sink != nullptr) {
        std::fclose(s.sink);
        s.sink = nullptr;
    }
    if (std::string err = overwrite_guard(opts.path, opts.force); !err.empty()) return err;
    std::FILE* f = std::fopen(opts.path.c_str(), "wb");
    if (f == nullptr) return "cannot write '" + opts.path + "'";
    s.sink = f;
    s.opts = opts;
    if (s.opts.interval_ms == 0) s.opts.interval_ms = 1;
    if (s.opts.stall_intervals == 0) s.opts.stall_intervals = 1;
    s.seq = 0;
    s.stop = false;
    // Delta baseline = the counters as of arming, so the first heartbeat
    // reports what happened after configure(), not process history. The
    // completed/pool aggregates restart too; only the *live* request and
    // gauge sets carry over (those scopes are still open).
    s.completed.clear();
    s.pool_fan_outs.store(0, std::memory_order_relaxed);
    s.pool_tasks.store(0, std::memory_order_relaxed);
    s.prev.clear();
    for (const auto& [name, slot] : obs::detail::merged_metrics())
        if (slot.kind == obs::detail::Slot::Kind::Counter) s.prev[name] = slot.value;
    for (ProgressSlot* p : s.active) {
        p->observed = false;
        p->stalled_ticks = 0;
        p->tripped = false;
    }
    detail::g_armed.store(1);
    return {};
}

void start() {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (detail::g_armed.load(std::memory_order_relaxed) != 1 || s.thread.joinable()) return;
    if (!s.atexit_registered) {
        s.atexit_registered = true;
        std::atexit(&shutdown);
    }
    s.stop = false;
    s.thread = std::thread(&ticker);
}

void shutdown() {
    State& s = state();
    stop_thread(s);
    std::lock_guard<std::mutex> lock(s.mutex);
    if (detail::g_armed.load(std::memory_order_relaxed) == 1 && s.sink != nullptr)
        (void)emit_locked(s, nullptr, {}, true, false);
    if (s.sink != nullptr) {
        std::fclose(s.sink);
        s.sink = nullptr;
    }
    detail::g_armed.store(0);
}

void ensure_started() {
    State& s = state();
    unsigned char expected = 0;
    if (!s.env_state.compare_exchange_strong(expected, 1)) return;
    const char* env = std::getenv("SI_OBS_LIVE");
    if (env == nullptr || env[0] == '\0') return;
    Options opts;
    std::string err;
    if (!detail::parse_env_spec(env, opts, err)) {
        // Only the consulting thread reaches this, so a malformed
        // SI_OBS_LIVE is reported exactly once (the SI_OBS convention).
        std::fprintf(stderr, "si::obs::live: %s; live telemetry stays off\n", err.c_str());
        return;
    }
    // Heartbeats of empty deltas are useless; the env var is an explicit
    // operator request, so it may upgrade Off to Metrics.
    if (mode() == Mode::Off) set_mode(Mode::Metrics);
    if (std::string cfg = configure(opts); !cfg.empty()) {
        std::fprintf(stderr, "si::obs::live: %s; live telemetry stays off\n", cfg.c_str());
        return;
    }
    start();
}

std::uint64_t tick() {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (detail::g_armed.load(std::memory_order_relaxed) != 1 || s.sink == nullptr)
        return UINT64_MAX;
    return emit_locked(s, nullptr, {}, false, true);
}

namespace detail {

ProgressSlot* progress_begin(const char* stage, std::uint64_t total, bool watchdog) {
    auto* p = new ProgressSlot;
    p->stage = stage;
    p->total.store(total, std::memory_order_relaxed);
    p->watchdog = watchdog;
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.active.push_back(p);
    return p;
}

void progress_end(ProgressSlot* slot) {
    State& s = state();
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        s.active.erase(std::find(s.active.begin(), s.active.end(), slot));
        CompletedAgg& c = s.completed[slot->stage];
        c.done += slot->done.load(std::memory_order_relaxed);
        ++c.instances;
    }
    delete slot;
}

void request_begin(std::uint64_t id, std::uint64_t seed) {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    RequestEntry& e = s.requests[id];
    e.seed = seed;
    ++e.refs;
}

void request_end(std::uint64_t id) {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    auto it = s.requests.find(id);
    if (it == s.requests.end()) return;
    if (--it->second.refs == 0) s.requests.erase(it);
}

void pool_note(std::uint64_t fan_outs, std::uint64_t tasks) {
    State& s = state();
    s.pool_fan_outs.fetch_add(fan_outs, std::memory_order_relaxed);
    s.pool_tasks.fetch_add(tasks, std::memory_order_relaxed);
}

void event(std::string_view kind, std::string_view what) {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (g_armed.load(std::memory_order_relaxed) != 1 || s.sink == nullptr) return;
    (void)emit_locked(s, std::string(kind).c_str(), what, false, false);
}

bool parse_env_spec(const char* spec, Options& out, std::string& err) {
    const std::string str(spec);
    std::size_t pos = str.find(':');
    out.path = str.substr(0, pos);
    if (out.path.empty()) {
        err = "SI_OBS_LIVE has an empty sink path";
        return false;
    }
    const auto all_digits = [](const std::string& t) {
        return !t.empty() && std::all_of(t.begin(), t.end(), [](unsigned char c) {
            return std::isdigit(c) != 0;
        });
    };
    while (pos != std::string::npos) {
        const std::size_t next = str.find(':', pos + 1);
        const std::string tok =
            str.substr(pos + 1, next == std::string::npos ? std::string::npos : next - pos - 1);
        pos = next;
        if (tok == "force") {
            out.force = true;
        } else if (tok == "nodiag") {
            out.diag = false;
        } else if (tok.rfind("stall=", 0) == 0) {
            const std::string n = tok.substr(6);
            if (!all_digits(n)) {
                err = "ignoring malformed SI_OBS_LIVE option '" + tok + "'";
                return false;
            }
            out.stall_intervals = static_cast<std::uint32_t>(
                std::min<unsigned long long>(std::stoull(n), 1000000ULL));
        } else if (all_digits(tok)) {
            const unsigned long long ms = std::stoull(tok);
            if (ms == 0 || ms > 3600000ULL) {
                err = "ignoring out-of-range SI_OBS_LIVE interval '" + tok + "'";
                return false;
            }
            out.interval_ms = static_cast<std::uint32_t>(ms);
        } else {
            err = "ignoring unrecognized SI_OBS_LIVE option '" + tok +
                  "' (expected <interval_ms>|force|nodiag|stall=<n>)";
            return false;
        }
    }
    return true;
}

void reset_env_for_test() {
    shutdown();
    state().env_state.store(0);
}

} // namespace detail

} // namespace si::obs::live

namespace si::obs {

Progress::Progress(const char* stage, std::uint64_t total, bool watchdog) : stage_(stage) {
    live::ensure_started();
    if (enabled() || live::armed())
        slot_ = live::detail::progress_begin(stage, total, watchdog);
}

Progress::~Progress() {
    if (slot_ == nullptr) return;
    const std::uint64_t final_done = slot_->done.load(std::memory_order_relaxed);
    live::detail::progress_end(slot_);
    // The deterministic footprint of the gauge: how much work the stage
    // reported, independent of heartbeat timing.
    if (enabled()) count(std::string("progress.") + stage_ + ".done", final_done);
}

void Progress::advance(std::uint64_t delta) {
    if (slot_ != nullptr) slot_->done.fetch_add(delta, std::memory_order_relaxed);
}

void Progress::set_done(std::uint64_t value) {
    if (slot_ == nullptr) return;
    std::uint64_t cur = slot_->done.load(std::memory_order_relaxed);
    while (value > cur &&
           !slot_->done.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
}

void Progress::set_total(std::uint64_t value) {
    if (slot_ != nullptr) slot_->total.store(value, std::memory_order_relaxed);
}

void Progress::set_budget(std::uint64_t spent, std::uint64_t cap) {
    if (slot_ == nullptr) return;
    slot_->budget_spent.store(spent, std::memory_order_relaxed);
    slot_->budget_cap.store(cap == UINT64_MAX ? 0 : cap, std::memory_order_relaxed);
}

std::uint64_t Progress::done() const {
    return slot_ == nullptr ? 0 : slot_->done.load(std::memory_order_relaxed);
}

std::uint64_t Progress::total() const {
    return slot_ == nullptr ? 0 : slot_->total.load(std::memory_order_relaxed);
}

} // namespace si::obs
