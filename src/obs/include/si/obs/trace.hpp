// si::obs::trace — analysis toolkit over the recorded span machinery.
//
// obs.hpp records; this header answers questions. The toolkit reads the
// merged canonical span tree (byte-identical across worker counts) into
// a value-type Snapshot and derives:
//
//   * per-span self/total durations in two lanes — the deterministic
//     DFS-tick lane (always present; a span's tick total is the size of
//     its subtree footprint, 2·spans−1) and the wall-clock lane
//     (steady-clock nanoseconds, present under ClockMode::Wall or the
//     opt-in obs::wall_lane());
//   * per-name aggregation (count, self, total, max fan-out) and the
//     critical path — the heaviest root-to-leaf chain, deterministic
//     tie-break by smallest keyed path — plus a folded-stack export for
//     flamegraph tooling;
//   * p50/p95/p99 percentiles derived from log2 histograms, both the
//     metric histograms obs::observe feeds and per-span-name latency
//     histograms built from a snapshot;
//   * a profile interchange JSON (bench/trace_diff loads two of them
//     and attributes the delta span by span).
//
// Everything here is read-only over quiescent recordings (the obs.hpp
// quiescence contract) and pure from Snapshot onward, so any analysis
// of the tick lane inherits the byte-stability of the trace itself.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "si/obs/obs.hpp"

namespace si::obs::trace {

/// Which per-span duration lane an analysis reads.
enum class Lane : unsigned char {
    Tick, ///< deterministic DFS ticks (always present)
    Wall, ///< steady-clock nanoseconds (ClockMode::Wall or wall_lane())
};

[[nodiscard]] constexpr const char* lane_name(Lane lane) {
    return lane == Lane::Tick ? "tick" : "wall";
}

/// One span of the merged canonical tree.
struct Node {
    std::string name;
    std::string path; ///< keyed path, "mc.check:0/parallel:0/task:3"
    std::vector<std::pair<std::string, std::string>> attrs;
    std::string request;  ///< "req" id of the nearest enclosing request span, "" if none
    std::uint32_t parent = UINT32_MAX; ///< index into Snapshot::nodes, UINT32_MAX for roots
    std::vector<std::uint32_t> children;
    std::uint64_t tick_begin = 0;
    std::uint64_t tick_end = 0;
    std::uint64_t tick_total = 0; ///< tick_end - tick_begin (= 2·subtree−1)
    std::uint64_t tick_self = 0;  ///< tick_total minus children's totals
    std::uint64_t wall_total = 0; ///< ns; 0 when the wall lane was off
    std::uint64_t wall_self = 0;  ///< ns, clamped at 0 (children may overlap)

    [[nodiscard]] std::uint64_t total(Lane lane) const {
        return lane == Lane::Tick ? tick_total : wall_total;
    }
    [[nodiscard]] std::uint64_t self(Lane lane) const {
        return lane == Lane::Tick ? tick_self : wall_self;
    }
};

/// The merged span tree as a value: nodes in canonical DFS order
/// (every parent precedes its children), ticks assigned exactly like
/// the deterministic exporters assign them.
struct Snapshot {
    std::vector<Node> nodes;
    std::vector<std::uint32_t> roots;
    bool has_wall = false; ///< any span carried wall-lane timestamps

    [[nodiscard]] bool empty() const { return nodes.empty(); }
};

/// Captures the currently recorded spans (quiescence contract: call
/// after fan-outs have joined). The snapshot owns its data — reset()
/// afterwards is safe.
[[nodiscard]] Snapshot snapshot();

// ---------------------------------------------------------------------------
// Aggregation, critical path, folded stacks

/// Per-span-name totals over one snapshot.
struct Agg {
    std::uint64_t count = 0;      ///< span instances with this name
    std::uint64_t tick_total = 0; ///< summed over instances
    std::uint64_t tick_self = 0;
    std::uint64_t wall_total = 0; ///< ns
    std::uint64_t wall_self = 0;  ///< ns
    std::uint64_t max_fanout = 0; ///< widest child list of any instance
};

/// One step of the critical path (root first).
struct CriticalStep {
    std::string name;
    std::string path;
    std::uint64_t tick_total = 0;
    std::uint64_t tick_self = 0;
    std::uint64_t wall_total = 0;
    std::uint64_t wall_self = 0;
};

/// Aggregated profile — the interchange unit bench/trace_diff consumes.
/// Self-times partition the root totals exactly in the tick lane (and in
/// the wall lane up to clamping of overlapped parallel children), which
/// is what lets a diff attribute 100% of a delta to named spans.
struct Profile {
    std::map<std::string, Agg> by_name;
    std::vector<CriticalStep> critical; ///< lane-weighted heaviest chain
    Lane lane = Lane::Tick;             ///< lane the critical path used
    std::uint64_t root_tick = 0;        ///< summed root tick totals
    std::uint64_t root_wall = 0;        ///< summed root wall totals (ns)
    bool has_wall = false;
};

[[nodiscard]] Profile profile(const Snapshot& snap, Lane lane = Lane::Tick);

/// The heaviest root-to-leaf chain under `lane` weights: start from the
/// root with the largest total, descend into the child with the largest
/// total; every tie breaks to the lexicographically smallest keyed path,
/// so the result is unique — and, in the tick lane, byte-identical for
/// any worker count. Returns node indices, root first (empty snapshot →
/// empty path).
[[nodiscard]] std::vector<std::uint32_t> critical_path(const Snapshot& snap,
                                                       Lane lane = Lane::Tick);

/// The critical path rendered one step per line:
/// "  mc.check:0  total=37 self=3" (tick lane) — stable format, used by
/// the determinism tests and bench/trace_diff.
[[nodiscard]] std::string critical_path_text(const Snapshot& snap, Lane lane = Lane::Tick);

/// Folded-stack export (Brendan Gregg's collapsed format, one line per
/// distinct stack): "root;child;leaf <self-weight>\n", name-sorted.
/// Feed to flamegraph.pl or speedscope. Zero-self stacks are kept in
/// the tick lane (every span has tick self ≥ 1) and skipped in the wall
/// lane.
[[nodiscard]] std::string export_folded(const Snapshot& snap, Lane lane = Lane::Tick);

// ---------------------------------------------------------------------------
// Profile interchange

/// The profile as JSON: {"si_trace_profile": 1, "lane": .., "spans":
/// [{"name", "count", "tick_total", "tick_self", "wall_ns_total",
/// "wall_ns_self", "max_fanout"}...], "critical_path": [...],
/// "root_tick": .., "root_wall_ns": ..}. Deterministic: spans are
/// name-sorted and tick values canonical.
[[nodiscard]] std::string profile_json(const Profile& prof);

/// Parses profile_json output back. Returns false (and sets *error)
/// on malformed input or a missing si_trace_profile marker.
[[nodiscard]] bool parse_profile(std::string_view text, Profile& out,
                                 std::string* error = nullptr);

// ---------------------------------------------------------------------------
// Percentiles over log2 histograms

/// Nearest-rank percentiles over log2 buckets (bucket b counts values
/// with bit_width == b, i.e. {0} for b=0 and [2^(b−1), 2^b−1] for
/// b ≥ 1). A percentile reports its bucket's upper bound, so results
/// are exact for the singleton buckets {0} and {1} and conservative
/// (rounded up) elsewhere; p50 ≤ p95 ≤ p99 by construction.
struct Percentiles {
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t count = 0; ///< total observations; 0 = no data
};

[[nodiscard]] Percentiles percentiles(const std::array<std::uint64_t, 65>& buckets);

/// Percentiles of a recorded obs::observe histogram, by metric name
/// (count == 0 when the metric is missing or not a histogram).
[[nodiscard]] Percentiles metric_percentiles(std::string_view hist_name);

/// Per-span-name latency percentiles over a snapshot: each instance's
/// `lane` total feeds a log2 histogram per name, then the derivation
/// above. Tick-lane results are deterministic and safe to guard with
/// bench/obs_diff; wall-lane results are real nanoseconds.
[[nodiscard]] std::map<std::string, Percentiles> latency_percentiles(const Snapshot& snap,
                                                                     Lane lane = Lane::Tick);

} // namespace si::obs::trace
