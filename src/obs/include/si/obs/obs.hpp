// si::obs — deterministic tracing, metrics and profiling.
//
// The pipeline (SG unfolding → regions → MC cubes → implementation →
// SI verification) is instrumented with three primitives:
//
//   * Span — an RAII stage marker with a name and key=value attributes.
//     Spans nest per thread; parallel fan-outs (si::util::parallel) open
//     one span per fan-out and one per task, keyed by the task *index*,
//     so the merged trace tree is canonical: byte-identical for any
//     worker count and for fast_path on/off. Ticks come from a pluggable
//     clock — the default deterministic clock assigns them at export
//     time by a DFS over the canonical tree (so they never depend on
//     scheduling); wall-clock timestamps are opt-in.
//   * Metrics — named counters / max-gauges / log2 histograms, sharded
//     per thread and merged commutatively (sums and maxima), so the
//     merged snapshot is deterministic whenever the work is. Metrics
//     whose value is inherently execution-dependent (pool task placement,
//     fast-path index hit counts) are tagged Tag::Diag and excluded from
//     the deterministic export.
//   * Exporters — Chrome trace-event JSON (chrome://tracing), a
//     human-readable span tree, and a sorted metrics listing.
//
// Everything is gated on one mode flag (SI_OBS=trace|metrics|off or
// set_mode); when Off, every entry point reduces to one relaxed atomic
// load and a branch, so the instrumented hot paths cost nothing
// measurable. The module sits below si::util (no dependencies into the
// rest of the library) so every layer, including Budget/Meter, can use
// it.
//
// Quiescence contract: span exports (trace_chrome_json, trace_tree) and
// reset() must be called while no instrumented parallel work is in
// flight (after fan-outs have joined). The library's fan-outs all block
// until completion, so any single-threaded caller satisfies this by
// construction. Metric snapshots are exempt: the per-thread shards are
// individually locked, so metrics_text/brief/json — and the live
// heartbeat snapshotter (live.hpp) — may run concurrently with counting
// threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace si::obs {

// ---------------------------------------------------------------------------
// Mode control

enum class Mode : unsigned char {
    Off,     ///< everything disabled (near-zero overhead)
    Metrics, ///< metrics only
    Trace,   ///< spans + metrics
};

/// Active mode. Initialized once from the SI_OBS environment variable
/// ("trace", "metrics", "off"/"0"/unset = off); an unrecognized value is
/// treated as off with a one-time warning on stderr. set_mode overrides.
[[nodiscard]] Mode mode();
void set_mode(Mode m);

namespace detail {
/// The mode flag, exposed so the inline guards below compile to one
/// relaxed load. 255 = "not yet initialized from the environment".
extern std::atomic<unsigned char> g_mode;
/// Per-thread suppression depth (see Silence below). Checked after the
/// mode flag so the obs-off fast path never touches thread-local state.
extern thread_local int g_silence_depth;
[[nodiscard]] Mode mode_slow();
[[nodiscard]] inline Mode mode_fast() {
    const unsigned char m = g_mode.load(std::memory_order_relaxed);
    if (m == 255) return mode_slow();
    return static_cast<Mode>(m);
}
} // namespace detail

/// True when metrics (and possibly spans) are being recorded.
[[nodiscard]] inline bool enabled() {
    return detail::mode_fast() != Mode::Off && detail::g_silence_depth == 0;
}
/// True when spans are being recorded.
[[nodiscard]] inline bool tracing() {
    return detail::mode_fast() == Mode::Trace && detail::g_silence_depth == 0;
}

/// RAII: suppresses all obs recording (counters, spans, hot counters) on
/// the current thread while alive. Portfolio racers run under Silence —
/// a cancelled racer stops at a wall-clock-dependent point, so letting it
/// write Stable counters would make the merged snapshot nondeterministic;
/// the winner's effort is re-exported deterministically by the caller.
class [[nodiscard]] Silence {
public:
    Silence() { ++detail::g_silence_depth; }
    ~Silence() { --detail::g_silence_depth; }
    Silence(const Silence&) = delete;
    Silence& operator=(const Silence&) = delete;
};

// ---------------------------------------------------------------------------
// Clock

enum class ClockMode : unsigned char {
    Deterministic, ///< ticks assigned at export by canonical DFS (default)
    Wall,          ///< steady_clock nanoseconds recorded at span begin/end
};

[[nodiscard]] ClockMode clock_mode();
void set_clock(ClockMode m);

/// Wall-clock lane: when on, spans record steady_clock begin/end
/// nanoseconds *in addition to* whatever the active clock mode exports —
/// the deterministic tick exports stay byte-stable while the analysis
/// layer (si::obs::trace) can still read real durations per span.
/// Initialized once from SI_OBS_WALL ("1"/"on"); set_wall_lane overrides.
[[nodiscard]] bool wall_lane();
void set_wall_lane(bool on);

// ---------------------------------------------------------------------------
// Spans

namespace detail {
struct Rec; // one recorded span (thread-local arena)
/// Cross-thread reference to a recorded span: arena id + slot. Task
/// spans created on pool workers link to the fan-out span through this.
struct SpanRef {
    Rec* rec = nullptr;
    std::int32_t buf = -1;
    std::uint32_t idx = 0;
};
Rec* span_begin(const char* name);
void span_end(Rec* rec);
void span_attr(Rec* rec, const char* key, std::string value);
[[nodiscard]] SpanRef current_ref();
Rec* task_begin(const SpanRef& fan, std::size_t index);
/// Appends `s` to `out` with JSON string escaping (shared by the trace
/// exporter, the flight recorder and the report renderers).
void json_escape(std::string& out, std::string_view s);
/// Like current_span_path() but each component carries its canonical
/// child key ("mc.check:0/parallel:0/task:3") — unique per concurrent
/// task, which is what the flight recorder sorts by.
[[nodiscard]] std::string keyed_span_path();
} // namespace detail

/// RAII stage span. A no-op unless tracing() at construction. Attributes
/// are attached to the begin event of the exported trace.
class Span {
public:
    explicit Span(const char* name) {
        if (tracing()) rec_ = detail::span_begin(name);
    }
    ~Span() {
        if (rec_ != nullptr) detail::span_end(rec_);
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    void attr(const char* key, std::string value) {
        if (rec_ != nullptr) detail::span_attr(rec_, key, std::move(value));
    }
    void attr(const char* key, const char* value) {
        if (rec_ != nullptr) detail::span_attr(rec_, key, std::string(value));
    }
    void attr(const char* key, std::uint64_t value) {
        if (rec_ != nullptr) detail::span_attr(rec_, key, std::to_string(value));
    }

private:
    detail::Rec* rec_ = nullptr;
};

/// The current thread's open-span path, root first, joined with '/'
/// ("synth.bnb/parallel/task/verify.explore"). Empty when not tracing or
/// outside any span. This is the provenance string violation witnesses
/// carry.
[[nodiscard]] std::string current_span_path();

// ---------------------------------------------------------------------------
// Request-scoped attribution

/// Identity of the request the current thread is working for: a request
/// id plus the seed derived for it (util::RequestContext carries the
/// matching Budget shard). Thread-local; si::util's pool fan-outs
/// capture it on the calling thread and install it on every worker for
/// the duration of each task, so spans, metrics and flight entries
/// recorded anywhere under a request can be grouped per request — the
/// attribution substrate a long-lived batch server needs.
struct RequestInfo {
    std::uint64_t id = 0;
    std::uint64_t seed = 0;
    bool active = false;
};

/// The executing thread's request identity ({0,0,false} outside any
/// RequestScope). Works in every mode, including Off.
[[nodiscard]] RequestInfo current_request();

namespace detail {
/// Installs `info` as the thread's request identity and returns the
/// previous one. Used by the pool to propagate the caller's identity
/// into workers; user code should use RequestScope.
RequestInfo swap_request(const RequestInfo& info);

/// RAII propagation guard for one pool task: installs a captured
/// request identity on the executing thread, restores on exit.
class RequestTlsGuard {
public:
    explicit RequestTlsGuard(const RequestInfo& info) : prev_(swap_request(info)) {}
    ~RequestTlsGuard() { (void)swap_request(prev_); }
    RequestTlsGuard(const RequestTlsGuard&) = delete;
    RequestTlsGuard& operator=(const RequestTlsGuard&) = delete;

private:
    RequestInfo prev_;
};
} // namespace detail

/// RAII request scope. Installs {id, seed} as the thread's request
/// identity; when tracing, additionally opens a "request" span carrying
/// req=<id> and seed=<seed> attributes, so the merged trace tree groups
/// everything the request did under one canonical subtree. Scopes nest
/// (the previous identity is restored on destruction).
class RequestScope {
public:
    explicit RequestScope(std::uint64_t id, std::uint64_t seed = 0);
    ~RequestScope();
    RequestScope(const RequestScope&) = delete;
    RequestScope& operator=(const RequestScope&) = delete;

private:
    RequestInfo prev_;
    detail::Rec* rec_ = nullptr;
    bool live_ = false; ///< registered with the live request set (live.hpp)
};

// ---------------------------------------------------------------------------
// Fan-out integration (used by si::util::parallel, not by user code)

/// Opens a "parallel" span around a fan-out of n tasks. The per-task
/// TaskSpan children are keyed by task index, which is what keeps the
/// merged tree identical for every worker count.
class FanOutSpan {
public:
    explicit FanOutSpan(std::size_t n);
    ~FanOutSpan();
    FanOutSpan(const FanOutSpan&) = delete;
    FanOutSpan& operator=(const FanOutSpan&) = delete;

private:
    friend class TaskSpan;
    detail::SpanRef ref_;
};

/// Opened on the executing thread (pool worker or caller) around task i.
class TaskSpan {
public:
    TaskSpan(const FanOutSpan& fan, std::size_t index);
    ~TaskSpan();
    TaskSpan(const TaskSpan&) = delete;
    TaskSpan& operator=(const TaskSpan&) = delete;

private:
    detail::Rec* rec_ = nullptr;
};

// ---------------------------------------------------------------------------
// Metrics

/// Stable metrics are deterministic whenever the instrumented work is —
/// they survive the byte-identical-across-thread-counts contract. Diag
/// metrics depend on scheduling or on which code path ran (pool task
/// placement, fast-path index hits) and are excluded from deterministic
/// exports.
enum class Tag : unsigned char { Stable, Diag };

/// Adds `delta` to the named counter.
void count(std::string_view name, std::uint64_t delta = 1, Tag tag = Tag::Stable);
/// Raises the named gauge to at least `value` (merge = max: commutative).
void gauge_max(std::string_view name, std::uint64_t value, Tag tag = Tag::Stable);
/// Records `value` into the named log2-bucket histogram.
void observe(std::string_view name, std::uint64_t value, Tag tag = Tag::Stable);

// Fixed-slot counters for the hottest instrumentation points, where even
// a hash lookup per event would distort what is being measured. One
// relaxed atomic increment when enabled; merged into the snapshot under
// the names in obs.cpp. All are Diag (their values depend on fast_path).
enum class Hot : unsigned char {
    ExcitedIndexHit, ///< StateGraph::excited served by the excitation index
    ArcOnIndexHit,   ///< StateGraph::arc_on served by the arc-on table
    FanoutNarrowed,  ///< verifier disabling checks narrowed by FanoutIndex
};
inline constexpr std::size_t kNumHot = 3;
namespace detail {
extern std::atomic<std::uint64_t> g_hot[kNumHot];
} // namespace detail
inline void hot(Hot h) {
    if (enabled())
        detail::g_hot[static_cast<std::size_t>(h)].fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Exports

/// Sorted "counter|gauge|hist name ..." lines, one metric per line.
/// Diag-tagged metrics are appended under a marker line when included.
[[nodiscard]] std::string metrics_text(bool include_diag = true);

/// One-line "name=value ..." summary of the Stable counters — the
/// snapshot util::Exhaustion carries so budget trips are attributable.
[[nodiscard]] std::string metrics_brief();

/// The Stable counters as a flat JSON object, name-sorted:
/// {"mc.cubes_found": 12, "verify.states": 4763}. "{}" when empty. This
/// is the "metrics" block perf_baseline embeds in BENCH_perf.json and
/// one of the snapshot formats bench/obs_diff compares.
[[nodiscard]] std::string metrics_json();

/// Chrome trace-event JSON (load via chrome://tracing or Perfetto).
/// Balanced B/E event pairs in canonical DFS order; with the
/// deterministic clock, timestamps are DFS tick numbers.
[[nodiscard]] std::string trace_chrome_json();

/// Human-readable indented span tree.
[[nodiscard]] std::string trace_tree();

/// The one overwrite-refusal contract every file-writing exporter in the
/// library shares (obs exports, si::report writers, the live heartbeat
/// sink): "" when `path` may be written, else the unified refusal
/// message naming the --force escape hatch.
[[nodiscard]] std::string overwrite_guard(const std::string& path, bool force);

/// Writes `content` to `path` (truncating) under the overwrite_guard
/// contract. Returns an empty string on success, else the error message.
[[nodiscard]] std::string write_text_file(const std::string& path, std::string_view content,
                                          bool force);

/// Writes the active export (trace JSON when tracing, metrics text
/// otherwise) to `path`. Refuses to overwrite an existing file unless
/// `force`. Returns an empty string on success, else the error message.
[[nodiscard]] std::string export_to_file(const std::string& path, bool force);

/// Drops every recorded span and metric (mode and clock are kept).
/// Subject to the quiescence contract above.
void reset();

} // namespace si::obs
