// si::obs::flight — a crash/abort flight recorder.
//
// A bounded in-memory ring of recent observability events (span
// begin/end markers and free-form log notes) that is serialized to
// `<dir>/flight-<reason>.json` when something goes wrong:
//
//   * on a fatal signal (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL), from a
//     best-effort async-signal handler that formats the ring with no
//     allocation and write(2)s it;
//   * on a top-level util::Budget trip ("budget-trip");
//   * on a verifier abort — exploration exhausted, verdict unknown
//     ("verifier-abort").
//
// So a failed CI run leaves a post-mortem artifact even when nobody was
// watching the stdout. Recording is off unless a dump directory is
// armed, either programmatically (set_dir) or through the
// SI_OBS_FLIGHT environment variable; when disarmed every entry point
// is one relaxed atomic load.
//
// Determinism: each entry is stamped with the *keyed* span path of the
// recording thread ("mc.check:0/parallel:0/task:3" — names plus the
// canonical child key, so two tasks of one fan-out get distinct paths)
// and a per-path sequence number, and dumps are sorted by (path, seq).
// Under the deterministic clock, with tracing on and the ring below
// capacity, a dump is therefore byte-identical for every worker count.
// Beyond capacity the eviction order is arrival order and the recency
// window becomes scheduling-dependent; crash dumps are best-effort by
// nature.
#pragma once

#include <atomic>
#include <string>
#include <string_view>

namespace si::obs::flight {

/// Default ring capacity: the post-mortem keeps this many most-recent
/// events unless overridden by set_capacity or SI_OBS_FLIGHT_RING=<n>.
inline constexpr std::size_t kDefaultCapacity = 512;

/// The active ring capacity. Resolved lazily from SI_OBS_FLIGHT_RING on
/// first use (a garbage value warns once and falls back to the default,
/// matching the SI_OBS convention).
[[nodiscard]] std::size_t capacity();

/// Overrides the ring capacity (0 restores the default). An oversized
/// ring is trimmed oldest-first. Also pre-sizes the signal handler's
/// no-allocation sort buffer, so this must not be called from a signal
/// context.
void set_capacity(std::size_t n);

/// Arms the recorder: events are recorded and dumps are written into
/// `dir` (created if missing). An empty string disarms. Also installs
/// the fatal-signal handlers on first arming.
void set_dir(std::string dir);
[[nodiscard]] std::string dir();

namespace detail {
/// 0 = disarmed, 1 = armed, 255 = not yet initialized from SI_OBS_FLIGHT.
extern std::atomic<unsigned char> g_armed;
[[nodiscard]] bool armed_slow();
/// One entry appended to the ring. `kind` is 'B'/'E' for span events,
/// 'N' for notes, 'T' for budget trips.
void record(char kind, std::string path, std::string msg);
} // namespace detail

/// True when the recorder is armed (one relaxed load once initialized).
[[nodiscard]] inline bool armed() {
    const unsigned char a = detail::g_armed.load(std::memory_order_relaxed);
    if (a == 255) return detail::armed_slow();
    return a != 0;
}

/// Appends a log line to the ring, stamped with the current keyed span
/// path. No-op when disarmed.
void note(std::string_view message);

/// The flight JSON document for the current ring contents (canonically
/// sorted events plus the stable-metric snapshot). Works even when
/// disarmed — for tests.
[[nodiscard]] std::string render(std::string_view reason);

/// Writes render(reason) to `<dir>/flight-<reason>.json`, overwriting
/// any previous dump of the same reason (latest post-mortem wins).
/// Returns an empty string on success, else the error message.
[[nodiscard]] std::string dump(std::string_view reason);

/// Clears the ring and the per-path sequence counters (the armed state
/// and directory are kept). Also invoked by obs::reset().
void reset();

} // namespace si::obs::flight
