// si::obs::live — streaming telemetry for long-lived processes.
//
// Everything else in si::obs exports once, at the end; this module makes
// a running analysis watchable *while* it runs. Three pieces:
//
//   * Delta snapshotter — periodic JSONL heartbeats appended to a sink
//     file: per-counter deltas since the previous heartbeat (Stable and,
//     optionally, Diag lanes), integer rates derived from the *nominal*
//     interval, log2 histogram snapshots, the active progress gauges,
//     and the live RequestInfo set. Armed by configure() or by
//     SI_OBS_LIVE=<path>[:<interval_ms>][:force][:nodiag] and driven
//     either by a background thread (start(); production) or by a manual
//     tick() (tests — the stream is then byte-identical across worker
//     counts as long as Diag deltas are excluded).
//   * obs::Progress — a lightweight monotone done/total gauge (plus an
//     optional budget fraction) the long loops thread through their
//     bodies; heartbeats carry per-stage completion and each gauge
//     flushes a deterministic `progress.<stage>.done` Stable counter on
//     destruction.
//   * Stall watchdog — trips when an armed gauge stops advancing for
//     `stall_intervals` consecutive heartbeats: the heartbeat is tagged
//     `"stalled": true` and, when the flight recorder is armed, a
//     flight-stalled.json post-mortem is dumped. "Is it stuck or just
//     slow?" gets an in-process answer.
//
// Determinism contract: heartbeats are Diag-lane output. They never feed
// the Stable surface obs_diff guards — enabling SI_OBS_LIVE changes no
// Stable export byte. All values in a heartbeat are integers; rates are
// delta * 1000 / interval_ms with the configured (never the measured)
// interval, so a manually ticked stream is reproducible.
#pragma once

#include "si/obs/obs.hpp"

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace si::obs::live {

/// Snapshotter configuration. `path` is the JSONL sink (one heartbeat
/// object per line, appended); opening it honours the library-wide
/// overwrite_guard contract unless `force`.
struct Options {
    std::string path;
    std::uint32_t interval_ms = 1000; ///< nominal heartbeat period
    bool force = false;               ///< overwrite an existing sink file
    bool diag = true;  ///< include Diag counter deltas (scheduling-dependent)
    std::uint32_t stall_intervals = 8; ///< watchdog patience, in heartbeats
};

/// Arms the snapshotter: opens the sink, snapshots the current counters
/// as the delta baseline, and resets the heartbeat sequence. Does NOT
/// start the background thread (call start(), or drive tick() manually).
/// Re-configuring while armed shuts the previous sink down first.
/// Returns an empty string on success, else the error message.
[[nodiscard]] std::string configure(const Options& opts);

/// Spawns the background heartbeat thread (idempotent; no-op while
/// disarmed). The thread emits one heartbeat per interval until
/// shutdown(), which is also registered via atexit on first start.
void start();

/// Emits a final heartbeat tagged `"final": true`, stops the background
/// thread, closes the sink and disarms. Safe to call repeatedly.
void shutdown();

namespace detail {
/// 0 = disarmed, 1 = armed. Unlike SI_OBS/SI_OBS_FLIGHT there is no
/// lazy-env sentinel here: the environment is consulted only by
/// ensure_started(), which Progress construction triggers.
extern std::atomic<unsigned char> g_armed;

struct ProgressSlot; // registry entry behind obs::Progress

ProgressSlot* progress_begin(const char* stage, std::uint64_t total, bool watchdog);
void progress_end(ProgressSlot* slot);

// RequestScope registration (obs.cpp) and pool attribution
// (util/parallel.cpp) — cheap no-ops while disarmed.
void request_begin(std::uint64_t id, std::uint64_t seed);
void request_end(std::uint64_t id);
void pool_note(std::uint64_t fan_outs, std::uint64_t tasks);

/// Emits an out-of-band heartbeat carrying {"event": {kind, detail}} —
/// the budget-trip hook. No-op while disarmed.
void event(std::string_view kind, std::string_view what);

/// Parses a SI_OBS_LIVE-style spec ("<path>[:<interval_ms>][:force]
/// [:nodiag][:stall=<n>]") into `out`. False (with a warning message in
/// `err`) on a malformed option token.
[[nodiscard]] bool parse_env_spec(const char* spec, Options& out, std::string& err);

/// Forgets that the environment was consulted and disarms — so a forked
/// test child can re-read SI_OBS_LIVE it just set. Test-only.
void reset_env_for_test();
} // namespace detail

/// True when heartbeats are being collected (one relaxed load).
[[nodiscard]] inline bool armed() {
    return detail::g_armed.load(std::memory_order_relaxed) == 1;
}

/// Consults SI_OBS_LIVE exactly once per process and, when set, arms the
/// snapshotter and starts the background thread. When the variable arms
/// live telemetry but obs is Off, the mode is upgraded to Metrics —
/// heartbeats full of empty deltas would defeat the point. Called from
/// Progress construction, so any instrumented long loop boots the
/// runtime; harmless to call eagerly.
void ensure_started();

/// Manual heartbeat driver for tests and single-threaded embedders:
/// emits one heartbeat now (the watchdog advances by one interval).
/// Returns the heartbeat's sequence number, or UINT64_MAX when disarmed.
std::uint64_t tick();

} // namespace si::obs::live

namespace si::obs {

/// A monotone progress gauge for a long-running stage. Construction is
/// a no-op (null slot, one branch per advance) unless metrics are
/// enabled or live telemetry is armed; destruction deregisters the gauge,
/// folds its final count into the heartbeat "completed" aggregate and —
/// when metrics are enabled — flushes a deterministic Stable counter
/// `progress.<stage>.done`. Gauges are thread-safe (advance is a relaxed
/// fetch_add), may share a stage name (heartbeats aggregate by stage),
/// and `watchdog = false` opts a gauge out of stall detection (for loops
/// that legitimately idle, e.g. a server accept loop).
class Progress {
public:
    explicit Progress(const char* stage, std::uint64_t total = 0, bool watchdog = true);
    ~Progress();
    Progress(const Progress&) = delete;
    Progress& operator=(const Progress&) = delete;

    void advance(std::uint64_t delta = 1);
    /// Raises `done` to `value` (monotone; lower values are ignored).
    void set_done(std::uint64_t value);
    /// Updates the expected total (0 = unknown; may grow as work is found).
    void set_total(std::uint64_t value);
    /// Publishes the governing budget's consumption for the heartbeat's
    /// budget-fraction. `cap == UINT64_MAX` (uncapped) is treated as 0.
    void set_budget(std::uint64_t spent, std::uint64_t cap);

    [[nodiscard]] std::uint64_t done() const;
    [[nodiscard]] std::uint64_t total() const;

private:
    live::detail::ProgressSlot* slot_ = nullptr;
    const char* stage_;
};

} // namespace si::obs
