// trace_diff: span-level latency attribution between two runs.
//
// Loads two snapshots and explains where the difference went, span by
// span, instead of reporting one opaque total. Inputs are auto-detected
// per file:
//
//   * a trace profile (si::obs::trace::profile_json output, the
//     "si_trace_profile" marker) — diffed in profile mode: per-span
//     self-time deltas in the chosen lane, each span's share of the
//     root-total delta, and the current run's critical path. In the
//     tick lane self-times partition the root total exactly, so the
//     attribution sums to 100% of the delta by construction; in the
//     wall lane it sums to whatever survives overlap clamping (the
//     remainder is parallel overlap, reported as unattributed).
//   * anything else parseable as a stable-metrics snapshot
//     (obs::metrics_text, obs::metrics_json, or a BENCH_perf.json with
//     a "metrics" block) — diffed in metrics mode via the same
//     threshold/slack rule bench/obs_diff applies.
//
// Usage: trace_diff [options] <baseline> <current>
//   --lane tick|wall   lane to attribute in profile mode (default: wall
//                      when both profiles carry it, else tick)
//   --threshold <x>    per-span growth factor flagged as a regression
//                      (default 1.5)
//   --slack <n>        absolute self-time growth ignored regardless of
//                      ratio (default 16 ticks / 100000 ns)
//   --top <n>          rows to print in the text table (default 10)
//   --json             machine-readable output
//   --selftest         run the built-in self-check and exit (identical
//                      profiles diff to zero; an injected delta is
//                      attributed to the right span)
//
// Exit: 0 ok, 1 regression (or failed selftest), 2 usage or I/O error.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "si/obs/report.hpp"
#include "si/obs/trace.hpp"

using namespace si;
using obs::trace::Agg;
using obs::trace::Lane;
using obs::trace::Profile;

namespace {

bool read_file(const std::string& path, std::string& out) {
    std::ifstream in(path);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--lane tick|wall] [--threshold <x>] [--slack <n>] [--top <n>]\n"
                 "          [--json] <baseline> <current>\n"
                 "       %s --selftest\n",
                 argv0, argv0);
    return 2;
}

std::uint64_t lane_self(const Agg& a, Lane lane) {
    return lane == Lane::Tick ? a.tick_self : a.wall_self;
}

std::uint64_t lane_root(const Profile& p, Lane lane) {
    return lane == Lane::Tick ? p.root_tick : p.root_wall;
}

struct SpanRow {
    std::string name;
    std::uint64_t base_self = 0;
    std::uint64_t cur_self = 0;
    std::int64_t delta = 0;
    bool regressed = false;
};

struct ProfileDiff {
    Lane lane = Lane::Tick;
    std::uint64_t root_base = 0;
    std::uint64_t root_cur = 0;
    std::int64_t root_delta = 0;
    std::int64_t attributed = 0; ///< Σ per-span self deltas
    std::vector<SpanRow> rows;   ///< |delta| descending, then name
    [[nodiscard]] bool regressed() const {
        return std::any_of(rows.begin(), rows.end(), [](const SpanRow& r) { return r.regressed; });
    }
};

ProfileDiff diff_profiles(const Profile& base, const Profile& cur, Lane lane, double threshold,
                          std::uint64_t slack) {
    ProfileDiff out;
    out.lane = lane;
    out.root_base = lane_root(base, lane);
    out.root_cur = lane_root(cur, lane);
    out.root_delta =
        static_cast<std::int64_t>(out.root_cur) - static_cast<std::int64_t>(out.root_base);
    // Union of span names; absent-in-one means self 0 on that side, so a
    // new or vanished span attributes its full weight.
    std::map<std::string, SpanRow> rows;
    for (const auto& [name, agg] : base.by_name) rows[name].base_self = lane_self(agg, lane);
    for (const auto& [name, agg] : cur.by_name) rows[name].cur_self = lane_self(agg, lane);
    for (auto& [name, row] : rows) {
        row.name = name;
        row.delta =
            static_cast<std::int64_t>(row.cur_self) - static_cast<std::int64_t>(row.base_self);
        row.regressed = static_cast<double>(row.cur_self) >
                            static_cast<double>(row.base_self) * threshold &&
                        row.cur_self > row.base_self + slack;
        out.attributed += row.delta;
        out.rows.push_back(row);
    }
    std::sort(out.rows.begin(), out.rows.end(), [](const SpanRow& a, const SpanRow& b) {
        const std::uint64_t ma = static_cast<std::uint64_t>(a.delta < 0 ? -a.delta : a.delta);
        const std::uint64_t mb = static_cast<std::uint64_t>(b.delta < 0 ? -b.delta : b.delta);
        if (ma != mb) return ma > mb;
        return a.name < b.name;
    });
    return out;
}

/// Share of the root delta a span's self delta explains, as a percent;
/// 0 when the root did not move.
double share_pct(std::int64_t delta, std::int64_t root_delta) {
    if (root_delta == 0) return 0.0;
    return 100.0 * static_cast<double>(delta) / static_cast<double>(root_delta);
}

const char* unit(Lane lane) { return lane == Lane::Tick ? "" : "ns"; }

void print_text(const ProfileDiff& d, const Profile& cur, std::size_t top) {
    const char* u = unit(d.lane);
    std::printf("trace_diff [%s lane]: root %" PRIu64 "%s -> %" PRIu64 "%s (delta %+" PRId64
                "%s)\n",
                obs::trace::lane_name(d.lane), d.root_base, u, d.root_cur, u, d.root_delta, u);
    std::printf("%-32s %14s %14s %12s %8s\n", "span", "base self", "cur self", "delta", "share");
    std::size_t shown = 0;
    for (const auto& row : d.rows) {
        if (shown >= top) break;
        if (row.delta == 0 && !row.regressed) continue;
        ++shown;
        std::printf("%-32s %14" PRIu64 " %14" PRIu64 " %+12" PRId64 " %7.1f%%%s\n",
                    row.name.c_str(), row.base_self, row.cur_self, row.delta,
                    share_pct(row.delta, d.root_delta), row.regressed ? "  REGRESSION" : "");
    }
    if (shown == 0) std::printf("  (no span self-time changed)\n");
    if (d.root_delta != 0)
        std::printf("attributed: %.1f%% of root delta across %zu spans\n",
                    share_pct(d.attributed, d.root_delta), d.rows.size());
    std::size_t bad = 0;
    for (const auto& row : d.rows) bad += row.regressed ? 1 : 0;
    std::printf("trace_diff: %s\n",
                d.regressed()
                    ? ("REGRESSION in " + std::to_string(bad) + " of " +
                       std::to_string(d.rows.size()) + " spans")
                          .c_str()
                    : "OK");
    if (!cur.critical.empty()) {
        std::printf("critical path [%s] (current):\n", obs::trace::lane_name(cur.lane));
        for (const auto& step : cur.critical) {
            if (cur.lane == Lane::Tick)
                std::printf("  %s  total=%" PRIu64 " self=%" PRIu64 "\n", step.path.c_str(),
                            step.tick_total, step.tick_self);
            else
                std::printf("  %s  total=%" PRIu64 "ns self=%" PRIu64 "ns\n", step.path.c_str(),
                            step.wall_total, step.wall_self);
        }
    }
}

void print_json(const ProfileDiff& d, const Profile& cur) {
    auto jesc = [](const std::string& s) {
        std::string out = "\"";
        for (const char c : s) {
            if (c == '"' || c == '\\') out += '\\';
            out += c;
        }
        return out + "\"";
    };
    std::string out = "{\n  \"trace_diff\": 1,\n  \"mode\": \"profile\",\n  \"lane\": \"";
    out += obs::trace::lane_name(d.lane);
    out += "\",\n  \"root_base\": " + std::to_string(d.root_base) +
           ",\n  \"root_cur\": " + std::to_string(d.root_cur) +
           ",\n  \"root_delta\": " + std::to_string(d.root_delta) +
           ",\n  \"attributed\": " + std::to_string(d.attributed) + ",\n  \"regressed\": " +
           (d.regressed() ? "true" : "false") + ",\n  \"spans\": [";
    for (std::size_t i = 0; i < d.rows.size(); ++i) {
        const auto& row = d.rows[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"name\": " + jesc(row.name) +
               ", \"base_self\": " + std::to_string(row.base_self) +
               ", \"cur_self\": " + std::to_string(row.cur_self) +
               ", \"delta\": " + std::to_string(row.delta) +
               ", \"regressed\": " + (row.regressed ? "true" : "false") + "}";
    }
    out += d.rows.empty() ? "]" : "\n  ]";
    out += ",\n  \"critical_path\": [";
    for (std::size_t i = 0; i < cur.critical.size(); ++i) {
        const auto& step = cur.critical[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"name\": " + jesc(step.name) + ", \"path\": " + jesc(step.path) +
               ", \"tick_total\": " + std::to_string(step.tick_total) +
               ", \"tick_self\": " + std::to_string(step.tick_self) +
               ", \"wall_ns_total\": " + std::to_string(step.wall_total) +
               ", \"wall_ns_self\": " + std::to_string(step.wall_self) + "}";
    }
    out += cur.critical.empty() ? "]\n}\n" : "\n  ]\n}\n";
    std::fputs(out.c_str(), stdout);
}

// ---------------------------------------------------------------------------
// Self-test

int fail(const char* what) {
    std::fprintf(stderr, "trace_diff selftest FAILED: %s\n", what);
    return 1;
}

/// Hand-built profile, round-tripped through the interchange JSON, then
/// diffed against itself (must be all-zero) and against a copy with one
/// span's self-time tripled (must attribute the whole delta to that
/// span and flag it).
int selftest() {
    Profile base;
    base.lane = Lane::Tick;
    base.has_wall = true;
    base.root_tick = 37;
    base.root_wall = 5000;
    base.by_name["mc.check"] = Agg{1, 37, 3, 5000, 500, 4};
    base.by_name["parallel"] = Agg{1, 33, 1, 4500, 100, 4};
    base.by_name["task"] = Agg{4, 32, 32, 4400, 4400, 0};
    base.critical.push_back({"mc.check", "mc.check:0", 37, 3, 5000, 500});
    base.critical.push_back({"parallel", "mc.check:0/parallel:0", 33, 1, 4500, 100});
    base.critical.push_back({"task", "mc.check:0/parallel:0/task:1", 9, 9, 1400, 1400});

    const std::string js = obs::trace::profile_json(base);
    Profile rt;
    std::string err;
    if (!obs::trace::parse_profile(js, rt, &err)) {
        std::fprintf(stderr, "trace_diff selftest: parse_profile: %s\n", err.c_str());
        return 1;
    }
    if (obs::trace::profile_json(rt) != js) return fail("interchange round-trip not identical");

    const auto zero = diff_profiles(rt, base, Lane::Tick, 1.5, 16);
    if (zero.root_delta != 0 || zero.attributed != 0) return fail("identical profiles: delta != 0");
    for (const auto& row : zero.rows)
        if (row.delta != 0 || row.regressed) return fail("identical profiles: nonzero span row");
    if (zero.regressed()) return fail("identical profiles: regression flagged");

    Profile cur = base;
    auto& task = cur.by_name["task"];
    const std::uint64_t injected = task.tick_self * 2; // 32 -> 96
    task.tick_self += injected;
    task.tick_total += injected;
    cur.root_tick += injected;
    const auto diff = diff_profiles(base, cur, Lane::Tick, 1.5, 16);
    if (diff.root_delta != static_cast<std::int64_t>(injected))
        return fail("injected: root delta mismatch");
    if (diff.rows.empty() || diff.rows.front().name != "task")
        return fail("injected: top attributed span is not the injected one");
    if (diff.rows.front().delta != static_cast<std::int64_t>(injected))
        return fail("injected: span delta mismatch");
    if (!diff.rows.front().regressed) return fail("injected: regression not flagged");
    if (diff.attributed != diff.root_delta)
        return fail("injected: tick-lane attribution not 100%");

    // Metrics mode plumbing: a BENCH_perf.json-shaped document diffs to
    // zero against itself through the same parser obs_diff uses.
    const std::string perf = "{\"bench\": 1, \"metrics\": {\"a.b\": 3, \"c\": 7}}";
    const auto snap = obs::report::parse_snapshot(perf);
    if (snap.counters.size() != 2) return fail("metrics snapshot parse");
    if (obs::report::diff_snapshots(snap, snap).regressed())
        return fail("identical metrics snapshots regressed");

    std::printf("trace_diff selftest OK\n");
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    double threshold = 1.5;
    std::uint64_t slack = 0;
    bool slack_set = false;
    bool json = false;
    bool lane_set = false;
    Lane lane = Lane::Tick;
    std::size_t top = 10;
    std::string base_path;
    std::string cur_path;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--selftest") == 0) {
            return selftest();
        } else if (std::strcmp(arg, "--lane") == 0 && i + 1 < argc) {
            const char* val = argv[++i];
            if (std::strcmp(val, "tick") == 0) lane = Lane::Tick;
            else if (std::strcmp(val, "wall") == 0) lane = Lane::Wall;
            else return usage(argv[0]);
            lane_set = true;
        } else if (std::strcmp(arg, "--threshold") == 0 && i + 1 < argc) {
            char* end = nullptr;
            threshold = std::strtod(argv[++i], &end);
            if (end == argv[i] || threshold <= 0) return usage(argv[0]);
        } else if (std::strcmp(arg, "--slack") == 0 && i + 1 < argc) {
            slack = std::strtoull(argv[++i], nullptr, 10);
            slack_set = true;
        } else if (std::strcmp(arg, "--top") == 0 && i + 1 < argc) {
            top = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--json") == 0) {
            json = true;
        } else if (arg[0] == '-') {
            return usage(argv[0]);
        } else if (base_path.empty()) {
            base_path = arg;
        } else if (cur_path.empty()) {
            cur_path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (base_path.empty() || cur_path.empty()) return usage(argv[0]);

    std::string base_text;
    std::string cur_text;
    if (!read_file(base_path, base_text)) {
        std::fprintf(stderr, "trace_diff: cannot read '%s'\n", base_path.c_str());
        return 2;
    }
    if (!read_file(cur_path, cur_text)) {
        std::fprintf(stderr, "trace_diff: cannot read '%s'\n", cur_path.c_str());
        return 2;
    }

    Profile base_prof;
    Profile cur_prof;
    const bool base_is_profile = obs::trace::parse_profile(base_text, base_prof);
    const bool cur_is_profile = obs::trace::parse_profile(cur_text, cur_prof);
    if (base_is_profile != cur_is_profile) {
        std::fprintf(stderr, "trace_diff: '%s' and '%s' are different snapshot kinds\n",
                     base_path.c_str(), cur_path.c_str());
        return 2;
    }

    if (base_is_profile) {
        if (!lane_set) lane = base_prof.has_wall && cur_prof.has_wall ? Lane::Wall : Lane::Tick;
        if (!slack_set) slack = lane == Lane::Tick ? 16 : 100000;
        const auto diff = diff_profiles(base_prof, cur_prof, lane, threshold, slack);
        if (json) print_json(diff, cur_prof);
        else print_text(diff, cur_prof, top);
        return diff.regressed() ? 1 : 0;
    }

    // Metrics mode: same rule set as bench/obs_diff.
    const auto base_snap = obs::report::parse_snapshot(base_text);
    const auto cur_snap = obs::report::parse_snapshot(cur_text);
    if (base_snap.counters.empty()) {
        std::fprintf(stderr, "trace_diff: no stable counters in '%s'\n", base_path.c_str());
        return 2;
    }
    obs::report::DiffOptions opts;
    opts.threshold = threshold;
    opts.slack = slack_set ? slack : 16;
    const auto diff = obs::report::diff_snapshots(base_snap, cur_snap, opts);
    if (json) std::fputs(diff.to_json().c_str(), stdout);
    else std::fputs(diff.describe().c_str(), stdout);
    if (!json) std::printf("trace_diff: %s\n", diff.regressed() ? "REGRESSION" : "OK");
    return diff.regressed() ? 1 : 0;
}
