// Regenerates the paper's Example 2 (Figure 4): a persistent state graph
// on which every correctness condition of the Beerel-style method [2]
// holds, yet the derived implementation t = c'd, b = a + t is hazardous;
// the MC requirement detects the problem statically and one inserted
// signal removes it. Both failures are narrated through the
// si::obs::report explain renderers: the hazard as an annotated witness
// replay, the MC failure with the cube-search trail and the specific
// Def 17 condition that killed each candidate.
//
// Usage: fig4_hazard [--obs-out <path>] [--force]
//   --obs-out  write the si::obs trace of the run (Chrome trace-event
//              JSON; tracing is switched on if it is not already).
//              Refuses to overwrite an existing file without --force.
#include <cstdio>
#include <cstring>
#include <string>

#include "si/bench_stgs/figures.hpp"
#include "si/mc/cover_cube.hpp"
#include "si/mc/requirement.hpp"
#include "si/netlist/print.hpp"
#include "si/obs/obs.hpp"
#include "si/obs/report.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/regions.hpp"
#include "si/synth/synthesize.hpp"
#include "si/verify/verifier.hpp"

using namespace si;

int main(int argc, char** argv) {
    std::string obs_out;
    bool force = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--obs-out") == 0 && i + 1 < argc) {
            obs_out = argv[++i];
        } else if (std::strcmp(argv[i], "--force") == 0) {
            force = true;
        } else {
            std::fprintf(stderr, "usage: %s [--obs-out <path>] [--force]\n", argv[0]);
            return 2;
        }
    }
    if (!obs_out.empty() && obs::mode() != obs::Mode::Trace) obs::set_mode(obs::Mode::Trace);

    int failures = 0;
    const auto g = bench::figure4();

    printf("== Figure 4: persistent SG, inputs a c d, output b ==\n%s\n", g.dump().c_str());
    const sg::RegionAnalysis ra(g);
    printf("persistent: %s (paper: yes)\n\n", ra.all_persistent() ? "yes" : "NO");
    if (!ra.all_persistent()) ++failures;

    printf("== The naive implementation t = c'd, b = a + t ==\n");
    net::Netlist naive(g.signals());
    naive.name = "fig4-naive";
    const GateId ga = naive.add_gate(net::GateKind::Input, "a", {}, g.signals().find("a"));
    const GateId gc = naive.add_gate(net::GateKind::Input, "c", {}, g.signals().find("c"));
    const GateId gd = naive.add_gate(net::GateKind::Input, "d", {}, g.signals().find("d"));
    const GateId t = naive.add_gate(net::GateKind::And, "t", {{gc, true}, {gd, false}});
    naive.add_gate(net::GateKind::Or, "b", {{ga, false}, {t, false}}, g.signals().find("b"));
    printf("%s\n", net::to_equations(naive).c_str());
    const auto v = verify::verify_speed_independence(naive, g);
    printf("%s\n\n", v.describe().c_str());
    if (v.ok) ++failures; // the paper's point is that this netlist hazards
    printf("-- explain report (annotated witness replay) --\n%s\n",
           obs::report::verify_explain_text(naive, v).c_str());

    printf("== Static detection by the MC requirement ==\n");
    mc::McCubeSearch search;
    search.record_trail = true; // narrate the cube search in the explain report
    const auto report = mc::check_requirement(ra, search);
    printf("%s\n", report.describe(ra).c_str());
    printf("(paper: cube a for ER(+b,1) also covers state 10*01 of ER(+b,2),\n"
           " outside CFR(+b,1) -- condition 3 of Def 17)\n\n");
    if (report.satisfied()) ++failures;
    printf("-- explain report (per-region MC diagnosis) --\n%s\n",
           obs::report::mc_explain_text(ra, report).c_str());

    printf("== Repair: \"MC ... can remove the hazard by adding one signal\" ==\n");
    synth::SynthOptions opts;
    opts.verify_result = true;
    const auto res = synth::synthesize(g, opts);
    printf("%s\n", res.summary().c_str());
    printf("%s\n", net::to_equations(res.netlist).c_str());
    printf("inserted signals: %zu (paper: 1)\nverification: %s\n", res.inserted.size(),
           res.verification.describe().c_str());
    if (res.inserted.size() != 1 || !res.verification.ok) ++failures;

    if (!obs_out.empty()) {
        const std::string err = obs::export_to_file(obs_out, force);
        if (!err.empty()) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 2;
        }
        printf("wrote %s\n", obs_out.c_str());
    }
    return failures;
}
