// flight-smoke: end-to-end validation of the si::obs::flight recorder.
//
// Checks, in order:
//   * a traced MC-requirement run (parallel fan-out) dumped at thread
//     counts 1, 2 and 8 produces byte-identical flight JSON (the keyed
//     span path + per-path sequence sort contract);
//   * the dump round-trips through a JSON well-formedness check and
//     through obs::report::parse_snapshot (the embedded "metrics" block
//     parses back to exactly obs::metrics_json());
//   * an exhausted verification writes both the "budget-trip" and the
//     "verifier-abort" dumps;
//   * (non-sanitized builds only) a forked child that takes SIGSEGV
//     leaves a parseable flight-crash.json behind.
// Exits non-zero on any failure.
//
// Usage: flight_smoke [--dir <path>]   (default: ./flight_smoke_out)
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "si/bench_stgs/figures.hpp"
#include "si/mc/requirement.hpp"
#include "si/netlist/netlist.hpp"
#include "si/obs/flight.hpp"
#include "si/obs/obs.hpp"
#include "si/obs/report.hpp"
#include "si/sg/read_sg.hpp"
#include "si/sg/regions.hpp"
#include "si/util/parallel.hpp"
#include "si/verify/verifier.hpp"

#if defined(__unix__) && !defined(SI_BENCH_SANITIZED)
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#define SI_FLIGHT_CRASH_TEST 1
#endif

using namespace si;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
    std::printf("%-52s %s\n", what, ok ? "ok" : "FAIL");
    if (!ok) ++g_failures;
}

bool read_file(const std::string& path, std::string& out) {
    std::ifstream in(path);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/// Minimal JSON well-formedness scan: balanced braces/brackets outside
/// strings, no trailing garbage.
bool valid_json(const std::string& text) {
    long depth = 0;
    bool in_string = false;
    bool saw_any = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (c == '\\') ++i;
            else if (c == '"') in_string = false;
            continue;
        }
        if (c == '"') in_string = true;
        else if (c == '{' || c == '[') {
            ++depth;
            saw_any = true;
        } else if (c == '}' || c == ']') {
            if (--depth < 0) return false;
        } else if (depth == 0 && std::isspace(static_cast<unsigned char>(c)) == 0 && saw_any) {
            return false; // content after the document closed
        }
    }
    return saw_any && depth == 0 && !in_string;
}

/// One traced MC pass with the recorder armed; returns the bytes of the
/// resulting flight-probe.json.
std::string probe_run(const std::string& dir, std::size_t threads) {
    obs::set_mode(obs::Mode::Trace);
    obs::reset(); // also clears the flight ring
    obs::flight::set_dir(dir);
    util::set_num_threads(threads);

    const auto g = bench::figure1();
    const sg::RegionAnalysis ra(g);
    const auto report = mc::check_requirement(ra);
    (void)report;
    obs::flight::note("probe complete");

    const std::string err = obs::flight::dump("probe");
    if (!err.empty()) {
        std::fprintf(stderr, "dump failed: %s\n", err.c_str());
        return {};
    }
    std::string text;
    if (!read_file(dir + "/flight-probe.json", text)) return {};
    return text;
}

sg::StateGraph handshake() {
    return sg::read_sg(R"(
.model hs
.inputs r
.outputs a
.arcs
00 r+ 10
10 a+ 11
11 r- 01
01 a- 00
.initial 00
.end
)");
}

} // namespace

int main(int argc, char** argv) {
    std::string dir = "flight_smoke_out";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
            dir = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--dir <path>]\n", argv[0]);
            return 2;
        }
    }

    // --- determinism across thread counts -------------------------------
    const std::string t1 = probe_run(dir + "/t1", 1);
    const std::string t2 = probe_run(dir + "/t2", 2);
    const std::string t8 = probe_run(dir + "/t8", 8);
    check(!t1.empty(), "probe dump written (1 thread)");
    check(!t1.empty() && t1 == t2, "flight dump identical for 1 vs 2 threads");
    check(!t1.empty() && t1 == t8, "flight dump identical for 1 vs 8 threads");
    check(t1.find("\"flight\": 1") != std::string::npos, "dump carries the format marker");
    check(t1.find("\"reason\": \"probe\"") != std::string::npos, "dump carries the reason");
    check(t1.find("mc.check:") != std::string::npos, "dump events carry keyed span paths");

    // --- round trip through the parsers ---------------------------------
    check(valid_json(t1), "dump is well-formed JSON");
    const auto parsed = obs::report::parse_snapshot(t1);
    const auto direct = obs::report::parse_snapshot(obs::metrics_json());
    check(!parsed.counters.empty(), "embedded metrics block parses");
    check(parsed.counters == direct.counters, "parsed metrics equal obs::metrics_json()");

    // --- budget-trip and verifier-abort dumps ---------------------------
    // A *correct* implementation under a 2-state cap: the exploration
    // always exhausts (no violation can preempt it), so both the budget
    // trip and the verifier abort leave their artifacts.
    obs::reset();
    obs::flight::set_dir(dir + "/abort");
    {
        const auto g = handshake();
        net::Netlist nl(g.signals());
        const GateId in = nl.add_gate(net::GateKind::Input, "r", {}, g.signals().find("r"));
        nl.add_gate(net::GateKind::Wire, "a", {{in, false}}, g.signals().find("a"));
        verify::VerifyOptions vo;
        vo.max_states = 2;
        const auto result = verify::verify_speed_independence(nl, g, vo);
        check(!result.complete(), "tiny state cap exhausts the verifier");
    }
    std::string trip;
    std::string abort_dump;
    check(read_file(dir + "/abort/flight-budget-trip.json", trip), "budget trip wrote a dump");
    check(read_file(dir + "/abort/flight-verifier-abort.json", abort_dump),
          "verifier abort wrote a dump");
    check(valid_json(trip) && trip.find("\"kind\": \"T\"") != std::string::npos,
          "trip dump records the T event");
    check(valid_json(abort_dump) &&
              abort_dump.find("verifier abort on 'netlist'") != std::string::npos,
          "abort dump notes the exhausted netlist");

    // --- crash handler (skipped under sanitizers: ASan owns SIGSEGV) ----
#ifdef SI_FLIGHT_CRASH_TEST
    {
        const std::string crash_dir = dir + "/crash";
        const pid_t pid = ::fork();
        if (pid == 0) {
            // Child: arm, record a breadcrumb, die by SIGSEGV. The
            // handler must write flight-crash.json before re-raising.
            obs::flight::set_dir(crash_dir);
            obs::flight::note("child about to crash");
            ::raise(SIGSEGV);
            ::_exit(0); // not reached
        }
        int status = 0;
        ::waitpid(pid, &status, 0);
        check(WIFSIGNALED(status) && WTERMSIG(status) == SIGSEGV, "child died by SIGSEGV");
        std::string crash;
        check(read_file(crash_dir + "/flight-crash.json", crash), "crash handler wrote a dump");
        check(valid_json(crash) && crash.find("\"reason\": \"crash\"") != std::string::npos &&
                  crash.find("child about to crash") != std::string::npos,
              "crash dump parses and holds the breadcrumb");
    }
#else
    std::printf("%-52s %s\n", "crash-handler fork test", "skipped (sanitized build)");
#endif

    // Disarm so nothing lingers for other tests in the same process.
    obs::flight::set_dir("");
    obs::set_mode(obs::Mode::Off);
    util::set_num_threads(0);

    if (g_failures != 0) {
        std::printf("\n%d check(s) FAILED\n", g_failures);
        return 1;
    }
    std::printf("\nall checks passed\n");
    return 0;
}
