// Architecture ablations around the paper's design choices.
//
// (1) Complex gates vs basic gates (Section I): Figure 1 satisfies CSC,
//     so the classic complex-gate methodology implements it directly —
//     each output is one atomic gate with a many-literal SOP. The
//     basic-gate architecture refuses (no MC) until a state signal is
//     inserted. This regenerates the paper's motivation: the complex
//     gates are correct but not library cells.
//
// (2) Explicit input inverters (Section III): materializing the AND-gate
//     input bubbles of the standard C-implementation as separate
//     inverter gates (what tech mapping does) breaks pure
//     speed-independence; the implementation is hazard-free only under
//     the relative bound d_inv^max < D_sn^min, which the paper argues is
//     realistic. The verifier exhibits the inverter race.
//
// Usage: ablation_arch [--obs-out <path>] [--force]
//   --obs-out  write the si::obs trace of the run (Chrome trace-event
//              JSON; tracing is switched on if it is not already).
//              Refuses to overwrite an existing file without --force.
#include <cstdio>
#include <cstring>
#include <string>

#include "si/bench_stgs/figures.hpp"
#include "si/bench_stgs/table1.hpp"
#include "si/netlist/builder.hpp"
#include "si/netlist/print.hpp"
#include "si/netlist/transform.hpp"
#include "si/obs/obs.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/regions.hpp"
#include "si/synth/complex_gate.hpp"
#include "si/synth/synthesize.hpp"
#include "si/verify/performance.hpp"
#include "si/verify/timed.hpp"
#include "si/util/error.hpp"
#include "si/util/table.hpp"
#include "si/verify/verifier.hpp"

using namespace si;

int main(int argc, char** argv) {
    std::string obs_out;
    bool force = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--obs-out") == 0 && i + 1 < argc) {
            obs_out = argv[++i];
        } else if (std::strcmp(argv[i], "--force") == 0) {
            force = true;
        } else {
            std::fprintf(stderr, "usage: %s [--obs-out <path>] [--force]\n", argv[0]);
            return 2;
        }
    }
    if (!obs_out.empty() && obs::mode() != obs::Mode::Trace) obs::set_mode(obs::Mode::Trace);

    int failures = 0;

    printf("== (1) complex-gate vs basic-gate implementations ==\n\n");
    TextTable t1({"spec", "complex gates", "complex lits", "complex SI?", "basic added",
                  "basic lits", "basic SI?"});
    auto row = [&](const std::string& name, const sg::StateGraph& g) {
        const sg::RegionAnalysis ra(g);
        std::string cg = "-", cl = "-", cok = "-";
        try {
            const auto nl = synth::build_complex_gate_implementation(ra);
            cg = std::to_string(nl.stats().complex_gates);
            cl = std::to_string(nl.stats().literals);
            cok = verify::verify_speed_independence(nl, g).ok ? "yes" : "NO";
            if (cok == "NO") ++failures;
        } catch (const Error&) {
            cok = "no CSC";
        }
        synth::SynthOptions opts;
        opts.verify_result = true;
        const auto res = synth::synthesize(g, opts);
        if (!res.verification.ok) ++failures;
        t1.add_row({name, cg, cl, cok, std::to_string(res.inserted.size()),
                    std::to_string(res.netlist.stats().literals),
                    res.verification.ok ? "yes" : "NO"});
    };
    row("fig1", bench::figure1());
    row("fig4", bench::figure4());
    for (const auto& e : bench::table1_suite())
        row(e.name, sg::build_state_graph(bench::load(e)));
    printf("%s\n", t1.render().c_str());
    printf("Figure 1 is complex-gate implementable without insertion (it satisfies\n"
           "CSC) but needs a state signal for basic gates; the Table-1 specs violate\n"
           "CSC outright, so both methodologies insert signals there.\n\n");

    printf("== (2) unit-delay cycle time per architecture ==\n\n");
    TextTable t2({"spec", "C-impl", "RS-impl", "shared", "complex"});
    auto period = [](const net::Netlist& nl, const sg::StateGraph& g) -> std::string {
        const auto est = verify::estimate_cycle_time(nl, g);
        return est.periodic ? std::to_string(est.period_ticks) : "-";
    };
    for (const auto& e : bench::table1_suite()) {
        const auto g = sg::build_state_graph(bench::load(e));
        synth::SynthOptions c_opts;
        const auto c_res = synth::synthesize(g, c_opts);
        synth::SynthOptions rs_opts;
        rs_opts.build.use_rs_latches = true;
        const auto rs_res = synth::synthesize(g, rs_opts);
        synth::SynthOptions sh_opts;
        sh_opts.enable_sharing = true;
        const auto sh_res = synth::synthesize(g, sh_opts);
        std::string cx = "-";
        try {
            const sg::RegionAnalysis ra(g);
            cx = period(synth::build_complex_gate_implementation(ra), g);
        } catch (const Error&) {
        }
        t2.add_row({e.name, period(c_res.netlist, c_res.graph),
                    period(rs_res.netlist, rs_res.graph), period(sh_res.netlist, sh_res.graph),
                    cx});
    }
    printf("%s\n", t2.render().c_str());
    printf("Periods are specification cycles in gate delays under the unit-delay\n"
           "model with an instant environment; '-' = no complex-gate form (CSC\n"
           "violated on the unexpanded graph).\n\n");

    printf("== (3) materialized input inverters (Section III) ==\n\n");
    const auto res = synth::synthesize(bench::figure1());
    const auto c1 = res.netlist;
    const auto c2 = net::materialize_inversions(c1);
    const auto v1 = verify::verify_speed_independence(c1, res.graph);
    const auto v2 = verify::verify_speed_independence(c2, res.graph);
    printf("C1 (bubbles inside the gates):   %s\n", v1.describe().c_str());
    printf("C2 (explicit inverter gates):    %s\n\n", v2.describe().c_str());
    printf("%s\n\n", net::inverter_constraint(c1).describe().c_str());
    if (!v1.ok) ++failures;
    if (v2.ok) ++failures; // C2 must fail under pure unbounded delays

    // The positive side of Section III, checked with the bounded-delay
    // verifier: under d_inv^max < D_sn^min the same C2 netlist conforms;
    // with slow inverters a concrete counterexample trace exists.
    const auto fast = verify::verify_bounded_delay(
        c2, res.graph, verify::uniform_bounds(c2, {1, 2}, {1, 1}));
    const auto slow = verify::verify_bounded_delay(
        c2, res.graph, verify::uniform_bounds(c2, {1, 2}, {6, 8}));
    printf("C2, bounded delays, d_inv=[1,1] < D_sn_min=3:  %s\n", fast.describe().c_str());
    printf("C2, bounded delays, d_inv=[6,8] > D_sn_min=3:  %s\n", slow.describe().c_str());
    if (!fast.ok) ++failures;
    if (slow.ok) ++failures;
    printf("\nSection III reproduced: C1 is speed-independent outright; the\n"
           "tech-mapped C2 is hazard-free exactly under the relative timing bound.\n");

    if (!obs_out.empty()) {
        const std::string err = obs::export_to_file(obs_out, force);
        if (!err.empty()) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 2;
        }
        printf("wrote %s\n", obs_out.c_str());
    }
    return failures;
}
