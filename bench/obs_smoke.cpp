// obs-smoke: end-to-end validation of the si::obs tracing layer.
//
// Runs the full pipeline (synthesis + verification + a deliberately
// hazardous baseline netlist) on the paper's Figure-1 example with
// tracing enabled, then checks:
//   * the exported Chrome trace-event JSON is well-formed: every line is
//     a B or E event, B/E pairs balance, nesting depth never goes
//     negative and ends at zero;
//   * the trace is byte-identical when the same work is repeated on a
//     different thread count (the determinism contract, sampled);
//   * the verifier's hazard counterexample carries span-path provenance.
// Exits non-zero on any failure, so the obs-smoke ctest label catches
// regressions in the exporter or the canonical merge.
//
// Usage: obs_smoke [--obs-out <path>] [--force]
#include <cstdio>
#include <cstring>
#include <string>

#include "si/bench_stgs/figures.hpp"
#include "si/netlist/builder.hpp"
#include "si/obs/obs.hpp"
#include "si/sg/regions.hpp"
#include "si/synth/baseline.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/parallel.hpp"
#include "si/verify/verifier.hpp"

using namespace si;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
    std::printf("%-52s %s\n", what, ok ? "ok" : "FAIL");
    if (!ok) ++g_failures;
}

/// One traced pipeline pass; returns the Chrome JSON export.
std::string traced_run(const sg::StateGraph& g, std::size_t threads, std::string* span_path) {
    obs::reset();
    util::set_num_threads(threads);

    synth::SynthOptions opts;
    opts.verify_result = true;
    const auto res = synth::synthesize(g, opts);
    (void)res;

    // The Beerel-style baseline of equations (1) is the paper's known
    // hazard: the verifier must reject it and stamp the violation with
    // the span path it was found under.
    const auto baseline =
        net::build_standard_implementation(g, synth::derive_baseline_networks(sg::RegionAnalysis(g)));
    const auto vr = verify::verify_speed_independence(baseline, g);
    if (span_path != nullptr && !vr.violations.empty()) *span_path = vr.violations.front().span_path;

    return obs::trace_chrome_json();
}

/// Minimal structural validation of the Chrome trace-event export.
bool validate_chrome(const std::string& json, std::size_t* events_out) {
    const std::string head = "{\"traceEvents\":[\n";
    const std::string tail = "],\"displayTimeUnit\":\"ms\"}\n";
    if (json.size() < head.size() + tail.size()) return false;
    if (json.compare(0, head.size(), head) != 0) return false;
    if (json.compare(json.size() - tail.size(), tail.size(), tail) != 0) return false;

    std::size_t begins = 0, ends = 0;
    long depth = 0;
    std::size_t pos = head.size();
    const std::size_t stop = json.size() - tail.size();
    while (pos < stop) {
        std::size_t eol = json.find('\n', pos);
        if (eol == std::string::npos || eol > stop) eol = stop;
        const std::string_view line(json.data() + pos, eol - pos);
        if (line.find("\"ph\":\"B\"") != std::string_view::npos) {
            ++begins;
            ++depth;
        } else if (line.find("\"ph\":\"E\"") != std::string_view::npos) {
            ++ends;
            if (--depth < 0) return false;
        } else {
            return false; // every event must be a B or an E
        }
        if (line.find("\"name\":\"") == std::string_view::npos) return false;
        if (line.find("\"ts\":") == std::string_view::npos) return false;
        pos = eol + 1;
    }
    if (events_out != nullptr) *events_out = begins + ends;
    return depth == 0 && begins == ends && begins > 0;
}

} // namespace

int main(int argc, char** argv) {
    std::string obs_out;
    bool force = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--obs-out") == 0 && i + 1 < argc) {
            obs_out = argv[++i];
        } else if (std::strcmp(argv[i], "--force") == 0) {
            force = true;
        } else {
            std::fprintf(stderr, "usage: %s [--obs-out <path>] [--force]\n", argv[0]);
            return 2;
        }
    }

    obs::set_mode(obs::Mode::Trace);
    const auto g = bench::figure1();

    std::string span_path;
    const std::string trace1 = traced_run(g, 1, &span_path);
    const std::string trace8 = traced_run(g, 8, nullptr);
    util::set_num_threads(0);

    std::size_t events = 0;
    check(validate_chrome(trace1, &events), "chrome export well-formed, B/E balanced");
    std::printf("  (%zu events)\n", events);
    check(trace1 == trace8, "trace byte-identical: 1 thread vs 8 threads");
    check(!span_path.empty(), "hazard counterexample carries span path");
    if (!span_path.empty()) std::printf("  (found in: %s)\n", span_path.c_str());
    check(trace1.find("\"name\":\"synth.bnb\"") != std::string::npos, "trace covers synthesis");
    check(trace1.find("\"name\":\"verify.explore\"") != std::string::npos,
          "trace covers verification");
    check(!obs::metrics_text(false).empty(), "stable metrics recorded");

    if (!obs_out.empty()) {
        // Re-export the last (8-thread) run to the requested file; the
        // overwrite refusal is part of the CLI contract being smoked.
        const std::string err = obs::export_to_file(obs_out, force);
        check(err.empty(), "--obs-out export");
        if (!err.empty()) std::fprintf(stderr, "%s\n", err.c_str());
    }

    std::printf("%s\n", g_failures == 0 ? "obs-smoke: PASS" : "obs-smoke: FAIL");
    return g_failures == 0 ? 0 : 1;
}
