// obs_diff: stable-metrics regression guard.
//
// Compares two stable-metric snapshots — obs::metrics_text dumps,
// obs::metrics_json objects, or whole BENCH_perf.json files (their
// "metrics" block is extracted) — counter by counter against relative
// thresholds, and exits non-zero when the current snapshot regressed.
// Stable counters are deterministic whenever the work is, so a
// checked-in baseline compares meaningfully against any later run of
// the same workload regardless of thread count.
//
// Usage: obs_diff [options] <baseline> <current>
//   --threshold <x>        global growth factor that counts as a
//                          regression (default 1.5)
//   --threshold <name>=<x> per-counter override (repeatable)
//   --slack <n>            absolute growth ignored regardless of ratio
//                          (default 16; keeps 0->3 noise quiet)
//   --fail-on-missing      baseline counters absent from the current
//                          snapshot are regressions, not notes
//   --inject-all <f>       multiply every current counter by <f> before
//                          diffing (self-test hook for the ctest guard)
//   --expect-regression    invert the verdict: exit 0 iff a regression
//                          WAS found (wires the injected-regression
//                          ctest without PASS_REGULAR_EXPRESSION)
//   --json                 print the diff as machine-readable JSON
//                          (DiffResult::to_json) instead of the table
//   -q                     print the summary line only
//
// Exit: 0 ok, 1 regression (inverted by --expect-regression), 2 usage
// or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "si/obs/report.hpp"

using namespace si;

namespace {

bool read_file(const std::string& path, std::string& out) {
    std::ifstream in(path);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--threshold <x> | --threshold <name>=<x>]... [--slack <n>]\n"
                 "          [--fail-on-missing] [--inject-all <f>] [--expect-regression]\n"
                 "          [--json] [-q] <baseline> <current>\n",
                 argv0);
    return 2;
}

} // namespace

int main(int argc, char** argv) {
    obs::report::DiffOptions opts;
    double inject = 1.0;
    bool expect_regression = false;
    bool json = false;
    bool quiet = false;
    std::string base_path;
    std::string cur_path;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--threshold") == 0 && i + 1 < argc) {
            const std::string spec = argv[++i];
            const auto eq = spec.find('=');
            char* end = nullptr;
            if (eq == std::string::npos) {
                opts.threshold = std::strtod(spec.c_str(), &end);
                if (end == spec.c_str() || opts.threshold <= 0) return usage(argv[0]);
            } else {
                const std::string val = spec.substr(eq + 1);
                const double t = std::strtod(val.c_str(), &end);
                if (end == val.c_str() || t <= 0) return usage(argv[0]);
                opts.per_counter[spec.substr(0, eq)] = t;
            }
        } else if (std::strcmp(arg, "--slack") == 0 && i + 1 < argc) {
            opts.slack = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--fail-on-missing") == 0) {
            opts.fail_on_missing = true;
        } else if (std::strcmp(arg, "--inject-all") == 0 && i + 1 < argc) {
            inject = std::strtod(argv[++i], nullptr);
            if (inject <= 0) return usage(argv[0]);
        } else if (std::strcmp(arg, "--expect-regression") == 0) {
            expect_regression = true;
        } else if (std::strcmp(arg, "--json") == 0) {
            json = true;
        } else if (std::strcmp(arg, "-q") == 0) {
            quiet = true;
        } else if (arg[0] == '-') {
            return usage(argv[0]);
        } else if (base_path.empty()) {
            base_path = arg;
        } else if (cur_path.empty()) {
            cur_path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (base_path.empty() || cur_path.empty()) return usage(argv[0]);

    std::string base_text;
    std::string cur_text;
    if (!read_file(base_path, base_text)) {
        std::fprintf(stderr, "obs_diff: cannot read '%s'\n", base_path.c_str());
        return 2;
    }
    if (!read_file(cur_path, cur_text)) {
        std::fprintf(stderr, "obs_diff: cannot read '%s'\n", cur_path.c_str());
        return 2;
    }

    const auto base = obs::report::parse_snapshot(base_text);
    auto cur = obs::report::parse_snapshot(cur_text);
    if (base.counters.empty()) {
        std::fprintf(stderr, "obs_diff: no stable counters in '%s'\n", base_path.c_str());
        return 2;
    }
    if (inject != 1.0)
        for (auto& [name, value] : cur.counters)
            value = static_cast<std::uint64_t>(static_cast<double>(value) * inject);

    const auto diff = obs::report::diff_snapshots(base, cur, opts);
    const std::string text = diff.describe();
    if (json) {
        std::fputs(diff.to_json().c_str(), stdout);
    } else if (quiet) {
        const auto last = text.rfind("obs_diff: ");
        std::fputs(text.c_str() + (last == std::string::npos ? 0 : last), stdout);
    } else {
        std::fputs(text.c_str(), stdout);
    }

    const bool regressed = diff.regressed();
    if (expect_regression) return regressed ? 0 : 1;
    return regressed ? 1 : 0;
}
