// synth-perf smoke: the portfolio insertion race end-to-end, under the
// sanitizers when SI_SANITIZE is on.
//
// For each Table 1 case with CSC violations it runs one root repair
// round through the Portfolio engine at pool widths 1, 2 and 8 and
// asserts the chosen insertions are byte-identical to each other and to
// a single-threaded Eager and Cegar run — the determinism contract of
// DESIGN.md §8 exercised through the real thread pool (the unit tests
// cover the same property on a subset; this smoke covers every case and
// is the ctest home of the `synth-perf` label).
//
// Exit code: 0 all identical, 1 any mismatch (or no case exercised).
#include <cstdio>
#include <string>
#include <vector>

#include "si/bench_stgs/table1.hpp"
#include "si/mc/requirement.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/from_stg.hpp"
#include "si/synth/insertion.hpp"
#include "si/synth/labeling.hpp"
#include "si/util/parallel.hpp"

using namespace si;

namespace {

/// The comparable fingerprint of one repair round.
struct RoundResult {
    std::vector<std::vector<synth::XLabel>> labels;
    std::vector<std::size_t> sizes;
    friend bool operator==(const RoundResult&, const RoundResult&) = default;
};

RoundResult round_result(const sg::RegionAnalysis& ra, const std::vector<RegionId>& victims,
                         synth::InsertEngine engine) {
    synth::InsertionOptions opts;
    opts.engine = engine;
    RoundResult rr;
    for (const auto& c : synth::insert_signal_candidates(ra, victims, "csc0", 3, opts)) {
        rr.labels.push_back(c.labels);
        rr.sizes.push_back(c.graph.num_states());
    }
    return rr;
}

} // namespace

int main() {
    std::size_t exercised = 0;
    std::size_t failures = 0;
    for (const auto& e : bench::table1_suite()) {
        const sg::StateGraph graph = sg::build_state_graph(bench::load(e));
        const sg::RegionAnalysis ra(graph);
        const auto report = mc::check_requirement(ra, {});
        std::vector<RegionId> victims;
        for (const auto& r : report.regions)
            if (!r.ok()) victims.push_back(r.region);
        if (victims.empty()) continue; // CSC already holds
        ++exercised;

        util::set_num_threads(1);
        const RoundResult eager = round_result(ra, victims, synth::InsertEngine::Eager);
        const RoundResult cegar = round_result(ra, victims, synth::InsertEngine::Cegar);
        bool ok = cegar == eager;
        if (!ok)
            std::fprintf(stderr, "FAIL %-12s cegar differs from eager\n", e.name.c_str());
        for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
            util::set_num_threads(workers);
            const RoundResult pf = round_result(ra, victims, synth::InsertEngine::Portfolio);
            if (!(pf == eager)) {
                ok = false;
                std::fprintf(stderr, "FAIL %-12s portfolio at %zu workers differs from eager\n",
                             e.name.c_str(), workers);
            }
        }
        failures += ok ? 0 : 1;
        std::printf("%-12s %4zu states %2zu victims %zu candidates  %s\n", e.name.c_str(),
                    graph.num_states(), victims.size(), eager.labels.size(),
                    ok ? "identical" : "MISMATCH");
    }
    util::set_num_threads(0);
    if (exercised == 0) {
        std::fprintf(stderr, "no Table 1 case had CSC violations — smoke exercised nothing\n");
        return 1;
    }
    std::printf("synth-perf smoke: %zu cases, %zu mismatches\n", exercised, failures);
    return failures == 0 ? 0 : 1;
}
