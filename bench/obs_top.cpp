// obs_top — a terminal tail for si::obs::live heartbeat files: the
// proto-dashboard for the planned si::serve batch server.
//
//   obs_top <heartbeats.jsonl>                follow the file, render each tick
//   obs_top <heartbeats.jsonl> --once         parse what is there, render, exit
//   obs_top <fixture.jsonl> --selftest        parser/renderer self-check (CI)
//
// Renders, per heartbeat: per-stage progress and rates, top-k counters
// by delta, p50/p95 latencies derived from the exported log2 histograms
// (si::obs::trace::percentiles — the same nearest-rank math the trace
// analytics use), and the active request set. Follow mode exits when a
// heartbeat tagged "final" arrives (live::shutdown wrote it) or after
// --max-ticks polls.
//
// Expectation flags turn the reader into a CI assertion:
//   --expect-progress <stage>   some heartbeat carries non-zero done for
//                               <stage> (active or completed)
//   --expect-stalled            some heartbeat is tagged stalled
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "si/obs/trace.hpp"

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader for heartbeat lines. Heartbeats are machine
// generated (flat, integer-valued), so this handles exactly the JSON
// subset live.cpp emits: objects, arrays, strings, unsigned integers,
// booleans and null.

struct Jv {
    enum class Type : unsigned char { Null, Bool, Num, Str, Arr, Obj };
    Type type = Type::Null;
    bool b = false;
    std::uint64_t num = 0;
    std::string str;
    std::vector<Jv> arr;
    std::vector<std::pair<std::string, Jv>> obj;

    [[nodiscard]] const Jv* get(std::string_view key) const {
        for (const auto& [k, v] : obj)
            if (k == key) return &v;
        return nullptr;
    }
    [[nodiscard]] std::uint64_t get_num(std::string_view key) const {
        const Jv* v = get(key);
        return v != nullptr && v->type == Type::Num ? v->num : 0;
    }
    [[nodiscard]] bool get_bool(std::string_view key) const {
        const Jv* v = get(key);
        return v != nullptr && v->type == Type::Bool && v->b;
    }
};

class Parser {
public:
    explicit Parser(std::string_view text) : s_(text) {}

    bool parse(Jv& out, std::string& err) {
        if (!value(out, err)) return false;
        skip_ws();
        if (pos_ != s_.size()) {
            err = "trailing bytes at offset " + std::to_string(pos_);
            return false;
        }
        return true;
    }

private:
    void skip_ws() {
        while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                    s_[pos_] == '\r'))
            ++pos_;
    }
    bool fail(std::string& err, const std::string& what) {
        err = what + " at offset " + std::to_string(pos_);
        return false;
    }
    bool literal(const char* lit) {
        const std::size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) != 0) return false;
        pos_ += n;
        return true;
    }
    bool string(std::string& out, std::string& err) {
        if (pos_ >= s_.size() || s_[pos_] != '"') return fail(err, "expected string");
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size()) return fail(err, "dangling escape");
                const char e = s_[pos_++];
                switch (e) {
                case 'n': c = '\n'; break;
                case 't': c = '\t'; break;
                case 'u': {
                    if (pos_ + 4 > s_.size()) return fail(err, "short \\u escape");
                    c = static_cast<char>(std::strtoul(std::string(s_, pos_, 4).c_str(),
                                                       nullptr, 16));
                    pos_ += 4;
                    break;
                }
                default: c = e;
                }
            }
            out += c;
        }
        if (pos_ >= s_.size()) return fail(err, "unterminated string");
        ++pos_; // closing quote
        return true;
    }
    bool value(Jv& out, std::string& err) {
        skip_ws();
        if (pos_ >= s_.size()) return fail(err, "unexpected end");
        const char c = s_[pos_];
        if (c == '{') {
            ++pos_;
            out.type = Jv::Type::Obj;
            skip_ws();
            if (pos_ < s_.size() && s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skip_ws();
                std::string key;
                if (!string(key, err)) return false;
                skip_ws();
                if (pos_ >= s_.size() || s_[pos_] != ':') return fail(err, "expected ':'");
                ++pos_;
                Jv v;
                if (!value(v, err)) return false;
                out.obj.emplace_back(std::move(key), std::move(v));
                skip_ws();
                if (pos_ < s_.size() && s_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (pos_ < s_.size() && s_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail(err, "expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos_;
            out.type = Jv::Type::Arr;
            skip_ws();
            if (pos_ < s_.size() && s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                Jv v;
                if (!value(v, err)) return false;
                out.arr.push_back(std::move(v));
                skip_ws();
                if (pos_ < s_.size() && s_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (pos_ < s_.size() && s_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail(err, "expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.type = Jv::Type::Str;
            return string(out.str, err);
        }
        if (c == 't' && literal("true")) {
            out.type = Jv::Type::Bool;
            out.b = true;
            return true;
        }
        if (c == 'f' && literal("false")) {
            out.type = Jv::Type::Bool;
            return true;
        }
        if (c == 'n' && literal("null")) return true;
        if (c >= '0' && c <= '9') {
            out.type = Jv::Type::Num;
            while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9')
                out.num = out.num * 10 + static_cast<std::uint64_t>(s_[pos_++] - '0');
            return true;
        }
        return fail(err, std::string("unexpected character '") + c + "'");
    }

    std::string_view s_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Heartbeat model

struct Heartbeat {
    std::uint64_t seq = 0;
    std::uint64_t interval_ms = 1000;
    bool final_hb = false;
    bool stalled = false;
    std::vector<std::string> stalled_stages;
    std::string event_kind, event_detail;
    struct Stage {
        std::uint64_t done = 0, total = 0, gauges = 0, budget_spent = 0, budget_cap = 0;
    };
    std::map<std::string, Stage> progress;
    struct Done {
        std::uint64_t done = 0, instances = 0;
    };
    std::map<std::string, Done> completed;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> requests; ///< (id, seed)
    std::uint64_t pool_fan_outs = 0, pool_tasks = 0;
    std::map<std::string, std::uint64_t> stable, diag, rates;
    struct Hist {
        std::uint64_t count = 0, sum = 0;
        std::array<std::uint64_t, 65> buckets{};
    };
    std::map<std::string, Hist> hists;
};

bool parse_heartbeat(const std::string& line, Heartbeat& hb, std::string& err) {
    Jv root;
    if (!Parser(line).parse(root, err)) return false;
    if (root.type != Jv::Type::Obj || root.get("si_live") == nullptr) {
        err = "not a heartbeat object (missing si_live)";
        return false;
    }
    hb.seq = root.get_num("seq");
    hb.interval_ms = root.get_num("interval_ms");
    if (hb.interval_ms == 0) hb.interval_ms = 1;
    hb.final_hb = root.get_bool("final");
    hb.stalled = root.get_bool("stalled");
    if (const Jv* v = root.get("stalled_stages"); v != nullptr)
        for (const Jv& s : v->arr) hb.stalled_stages.push_back(s.str);
    if (const Jv* v = root.get("event"); v != nullptr) {
        if (const Jv* k = v->get("kind"); k != nullptr) hb.event_kind = k->str;
        if (const Jv* d = v->get("detail"); d != nullptr) hb.event_detail = d->str;
    }
    if (const Jv* v = root.get("progress"); v != nullptr)
        for (const auto& [stage, sv] : v->obj)
            hb.progress[stage] = {sv.get_num("done"), sv.get_num("total"), sv.get_num("gauges"),
                                  sv.get_num("budget_spent"), sv.get_num("budget_cap")};
    if (const Jv* v = root.get("completed"); v != nullptr)
        for (const auto& [stage, sv] : v->obj)
            hb.completed[stage] = {sv.get_num("done"), sv.get_num("instances")};
    if (const Jv* v = root.get("requests"); v != nullptr)
        for (const Jv& r : v->arr) hb.requests.emplace_back(r.get_num("id"), r.get_num("seed"));
    if (const Jv* v = root.get("pool"); v != nullptr) {
        hb.pool_fan_outs = v->get_num("fan_outs");
        hb.pool_tasks = v->get_num("tasks");
    }
    const auto read_map = [&root](const char* key, std::map<std::string, std::uint64_t>& out) {
        if (const Jv* v = root.get(key); v != nullptr)
            for (const auto& [name, nv] : v->obj) out[name] = nv.num;
    };
    read_map("stable", hb.stable);
    read_map("diag", hb.diag);
    read_map("rates", hb.rates);
    if (const Jv* v = root.get("hists"); v != nullptr) {
        for (const auto& [name, hv] : v->obj) {
            Heartbeat::Hist h;
            h.count = hv.get_num("count");
            h.sum = hv.get_num("sum");
            if (const Jv* b = hv.get("buckets"); b != nullptr)
                for (const Jv& pair : b->arr)
                    if (pair.arr.size() == 2 && pair.arr[0].num < h.buckets.size())
                        h.buckets[pair.arr[0].num] = pair.arr[1].num;
            hb.hists[name] = std::move(h);
        }
    }
    return true;
}

// ---------------------------------------------------------------------------
// Rendering

std::string render(const Heartbeat& hb, std::size_t total_heartbeats, std::size_t top_k) {
    std::string out = "obs_top — seq " + std::to_string(hb.seq) + " (" +
                      std::to_string(total_heartbeats) + " heartbeats, interval " +
                      std::to_string(hb.interval_ms) + " ms)";
    if (hb.final_hb) out += " [final]";
    if (hb.stalled) {
        out += " [STALLED:";
        for (const auto& s : hb.stalled_stages) out += ' ' + s;
        out += ']';
    }
    out += '\n';
    if (!hb.event_kind.empty())
        out += "event: " + hb.event_kind + " — " + hb.event_detail + '\n';

    if (!hb.progress.empty()) {
        out += "stages:\n";
        for (const auto& [stage, p] : hb.progress) {
            out += "  " + stage + "  " + std::to_string(p.done);
            if (p.total != 0) {
                out += '/' + std::to_string(p.total) + " (" +
                       std::to_string(p.total == 0 ? 0 : p.done * 100 / p.total) + "%)";
            }
            if (p.gauges > 1) out += "  [" + std::to_string(p.gauges) + " gauges]";
            if (p.budget_cap != 0)
                out += "  budget " + std::to_string(p.budget_spent) + '/' +
                       std::to_string(p.budget_cap);
            out += '\n';
        }
    }
    if (!hb.completed.empty()) {
        out += "completed:\n";
        for (const auto& [stage, c] : hb.completed)
            out += "  " + stage + "  done=" + std::to_string(c.done) + " over " +
                   std::to_string(c.instances) + " runs\n";
    }

    // Top-k counters by this heartbeat's delta, Stable lane first.
    std::vector<std::pair<std::uint64_t, const std::string*>> by_delta;
    for (const auto& [name, delta] : hb.stable) by_delta.emplace_back(delta, &name);
    std::sort(by_delta.begin(), by_delta.end(),
              [](const auto& a, const auto& b) {
                  return a.first != b.first ? a.first > b.first : *a.second < *b.second;
              });
    if (!by_delta.empty()) {
        out += "top counters by delta:\n";
        for (std::size_t i = 0; i < by_delta.size() && i < top_k; ++i) {
            const auto& [delta, name] = by_delta[i];
            out += "  " + *name + "  +" + std::to_string(delta);
            if (const auto it = hb.rates.find(*name); it != hb.rates.end())
                out += " (" + std::to_string(it->second) + "/s)";
            out += '\n';
        }
    }

    if (!hb.hists.empty()) {
        out += "latency (log2 hists):\n";
        for (const auto& [name, h] : hb.hists) {
            const si::obs::trace::Percentiles p = si::obs::trace::percentiles(h.buckets);
            out += "  " + name + "  p50<=" + std::to_string(p.p50) +
                   " p95<=" + std::to_string(p.p95) + " p99<=" + std::to_string(p.p99) +
                   " (n=" + std::to_string(p.count) + ")\n";
        }
    }

    out += "pool: " + std::to_string(hb.pool_fan_outs) + " fan-outs, " +
           std::to_string(hb.pool_tasks) + " tasks\n";
    out += "requests (" + std::to_string(hb.requests.size()) + " active):";
    for (const auto& [id, seed] : hb.requests)
        out += "  id=" + std::to_string(id) + " seed=" + std::to_string(seed);
    out += '\n';
    return out;
}

// ---------------------------------------------------------------------------
// Drivers

struct ReadState {
    std::streamoff offset = 0;
    std::string partial; ///< bytes after the last newline (incomplete line)
};

/// Appends every complete line added to `path` since the last call.
std::vector<std::string> read_new_lines(const std::string& path, ReadState& rs) {
    std::vector<std::string> lines;
    std::ifstream in(path, std::ios::binary);
    if (!in) return lines;
    in.seekg(rs.offset);
    std::string chunk((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    rs.offset += static_cast<std::streamoff>(chunk.size());
    rs.partial += chunk;
    std::size_t start = 0;
    for (std::size_t nl = rs.partial.find('\n', start); nl != std::string::npos;
         nl = rs.partial.find('\n', start)) {
        if (nl > start) lines.push_back(rs.partial.substr(start, nl - start));
        start = nl + 1;
    }
    rs.partial.erase(0, start);
    return lines;
}

int selftest(const std::string& fixture) {
    ReadState rs;
    const std::vector<std::string> lines = read_new_lines(fixture, rs);
    std::vector<Heartbeat> hbs;
    for (const auto& line : lines) {
        Heartbeat hb;
        std::string err;
        if (!parse_heartbeat(line, hb, err)) {
            std::fprintf(stderr, "obs_top selftest: parse failed: %s\n  line: %s\n",
                         err.c_str(), line.c_str());
            return 1;
        }
        hbs.push_back(std::move(hb));
    }
    const auto expect = [](bool ok, const char* what) {
        if (!ok) std::fprintf(stderr, "obs_top selftest: FAILED: %s\n", what);
        return ok;
    };
    bool ok = expect(hbs.size() == 3, "fixture has 3 heartbeats");
    if (!ok) return 1;
    ok = expect(hbs[2].seq == 2, "last seq is 2") && ok;
    ok = expect(hbs[2].stalled, "last heartbeat is stalled") && ok;
    ok = expect(hbs[2].stalled_stages == std::vector<std::string>{"fuzz.campaign"},
                "stalled stage is fuzz.campaign") &&
         ok;
    ok = expect(hbs[1].progress.at("fuzz.campaign").done == 13, "hb1 progress done=13") && ok;
    ok = expect(hbs[1].progress.at("fuzz.campaign").total == 20, "hb1 progress total=20") && ok;
    ok = expect(hbs[0].rates.at("fuzz.cases") == 50, "hb0 fuzz.cases rate=50") && ok;
    ok = expect(hbs[0].requests.size() == 1 && hbs[0].requests[0].first == 4,
                "hb0 active request id=4") &&
         ok;
    ok = expect(hbs[0].pool_tasks == 8, "hb0 pool tasks=8") && ok;
    ok = expect(hbs[2].completed.at("sg.explore").done == 120, "hb2 completed sg done=120") &&
         ok;
    const auto& h = hbs[0].hists.at("mc.cube_literals");
    const si::obs::trace::Percentiles p = si::obs::trace::percentiles(h.buckets);
    ok = expect(p.count == 4 && p.p50 == 0 && p.p95 == 7, "hb0 hist p50=0 p95=7 (n=4)") && ok;
    const std::string view = render(hbs[2], hbs.size(), 8);
    ok = expect(view.find("STALLED") != std::string::npos, "render marks the stall") && ok;
    ok = expect(render(hbs[0], 1, 1).find("sg.markings") != std::string::npos,
                "top-1 delta is sg.markings") &&
         ok;
    if (!ok) return 1;
    std::printf("obs_top selftest: OK (%zu heartbeats)\n", hbs.size());
    return 0;
}

void usage() {
    std::fprintf(stderr,
                 "usage: obs_top <heartbeats.jsonl> [--once] [--selftest] [--top <k>]\n"
                 "               [--poll-ms <n>] [--max-ticks <n>]\n"
                 "               [--expect-progress <stage>] [--expect-stalled]\n");
}

} // namespace

int main(int argc, char** argv) {
    std::string path;
    bool once = false, run_selftest = false, expect_stalled = false;
    std::string expect_progress;
    std::size_t top_k = 8, max_ticks = 0;
    std::uint64_t poll_ms = 0; // 0 = use the heartbeat's own interval
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (arg == "--once") once = true;
        else if (arg == "--selftest") run_selftest = true;
        else if (arg == "--expect-stalled") expect_stalled = true;
        else if (arg == "--top") top_k = std::strtoull(next(), nullptr, 10);
        else if (arg == "--poll-ms") poll_ms = std::strtoull(next(), nullptr, 10);
        else if (arg == "--max-ticks") max_ticks = std::strtoull(next(), nullptr, 10);
        else if (arg == "--expect-progress") expect_progress = next();
        else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 2;
        } else {
            path = arg;
        }
    }
    if (path.empty()) {
        usage();
        return 2;
    }
    if (run_selftest) return selftest(path);

    ReadState rs;
    std::size_t total = 0, ticks = 0, parse_errors = 0;
    bool saw_progress = expect_progress.empty();
    bool saw_stall = !expect_stalled;
    bool saw_final = false;
    std::uint64_t interval_ms = 200;
    while (true) {
        for (const auto& line : read_new_lines(path, rs)) {
            Heartbeat hb;
            std::string err;
            if (!parse_heartbeat(line, hb, err)) {
                ++parse_errors;
                std::fprintf(stderr, "obs_top: skipping bad line: %s\n", err.c_str());
                continue;
            }
            ++total;
            interval_ms = hb.interval_ms;
            saw_final = saw_final || hb.final_hb;
            saw_stall = saw_stall || hb.stalled;
            if (!saw_progress) {
                const auto it = hb.progress.find(expect_progress);
                if (it != hb.progress.end() && it->second.done > 0) saw_progress = true;
                const auto ct = hb.completed.find(expect_progress);
                if (ct != hb.completed.end() && ct->second.done > 0) saw_progress = true;
            }
            std::fputs(render(hb, total, top_k).c_str(), stdout);
            std::fputc('\n', stdout);
        }
        std::fflush(stdout);
        ++ticks;
        if (once || saw_final || (max_ticks != 0 && ticks >= max_ticks)) break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(poll_ms != 0 ? poll_ms : interval_ms));
    }
    if (total == 0) {
        std::fprintf(stderr, "obs_top: no heartbeats in '%s'\n", path.c_str());
        return 1;
    }
    if (!saw_progress) {
        std::fprintf(stderr, "obs_top: expected progress for stage '%s', saw none\n",
                     expect_progress.c_str());
        return 1;
    }
    if (!saw_stall) {
        std::fprintf(stderr, "obs_top: expected a stalled heartbeat, saw none\n");
        return 1;
    }
    return parse_errors == 0 ? 0 : 1;
}
